# Developer entry points. Everything here is also runnable directly —
# these targets just pin the invocations CI uses (see
# .github/workflows/ci.yml) so local runs match the gates.

PYTHON ?= python
BASE_REF ?= origin/main
LINT_PATHS := src benchmarks tests

.PHONY: test test-chaos lint lint-diff lint-sarif ratchet bench-smoke

test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

# CI chaos job: runtime + certify suites with every worker process
# raising one injected fault, then the fault suite itself env-free.
test-chaos:
	REPRO_FAULTS="batch.worker:raise@1" PYTHONPATH=src \
		$(PYTHON) -m pytest -x -q tests/runtime tests/certify
	PYTHONPATH=src $(PYTHON) -m pytest -x -q tests/runtime/test_faults.py

# Full analysis gate: per-node rules + RPR101-105 flow rules (CFG /
# dataflow / call graph) with the shrink-only baseline applied.
lint:
	$(PYTHON) -m tools.analysis --flow $(LINT_PATHS)

# The blocking PR gate: findings on lines changed vs BASE_REF only.
lint-diff:
	$(PYTHON) -m tools.analysis --flow --diff $(BASE_REF) $(LINT_PATHS)

# Full run + SARIF report (what CI uploads to code scanning).
lint-sarif:
	$(PYTHON) -m tools.analysis --flow --sarif lint.sarif $(LINT_PATHS)

ratchet:
	$(PYTHON) -m tools.analysis --ratchet

bench-smoke:
	PYTHONPATH=src $(PYTHON) -m benchmarks.bench_encoding --smoke
	PYTHONPATH=src $(PYTHON) -m benchmarks.bench_bounds --smoke
	PYTHONPATH=src $(PYTHON) -m benchmarks.bench_splitting --smoke
	PYTHONPATH=src $(PYTHON) -m benchmarks.bench_warmstart --smoke
	PYTHONPATH=src $(PYTHON) -m benchmarks.bench_batch_bounds --smoke
	PYTHONPATH=src $(PYTHON) -m benchmarks.bench_faults --smoke
