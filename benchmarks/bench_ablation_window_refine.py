"""Experiment E7 (ablation) — window size W and refinement count r.

Algorithm 1 exposes two accuracy/cost knobs the paper fixes per dataset
(W=2 / half refined for Auto MPG; W=3 / 30 per layer for MNIST).  This
ablation quantifies both axes on a Table I network against the exact ε:
larger windows and more refinement must tighten monotonically, with
superlinear cost growth.
"""

import pytest

from repro.bounds import Box
from repro.certify import CertifierConfig, GlobalRobustnessCertifier, certify_exact_global
from repro.utils import format_table
from repro.zoo import get_network


@pytest.fixture(scope="module")
def setup():
    entry = get_network(2)  # 12 hidden neurons: exact still cheap
    box = Box.uniform(entry.network.input_dim, 0.0, 1.0)
    exact = certify_exact_global(entry.network, box, entry.delta)
    return entry, box, exact


def test_ablation_window(setup, report, json_report, benchmark):
    entry, box, exact = setup
    rows = []
    records = []
    eps_by_window = []
    certify_calls = {}
    for window in (1, 2, 3):
        cfg = CertifierConfig(window=window, refine_count=6)
        certify_calls[window] = lambda cfg=cfg: GlobalRobustnessCertifier(
            entry.network, cfg
        ).certify(box, entry.delta)
        cert = certify_calls[window]()
        eps_by_window.append(cert.epsilon)
        records.append(
            {"window": window, "epsilon": cert.epsilon,
             "solve_time_s": cert.solve_time}
        )
        rows.append(
            [
                window,
                f"{cert.epsilon:.5f}",
                f"{cert.epsilon / exact.epsilon:.2f}x",
                f"{cert.solve_time:.2f}s",
            ]
        )
    json_report(
        "ablation_window_refine",
        {"eps_exact": exact.epsilon, "window": records},
    )
    report(
        format_table(
            ["window W", "ε̄", "vs exact", "time"],
            rows,
            title=f"Ablation — window size (DNN-2, r=6, exact ε="
            f"{exact.epsilon:.5f}).  Deeper windows see past more "
            "decomposition boundaries and tighten the bound.",
        )
    )
    assert eps_by_window[2] <= eps_by_window[0] + 1e-9
    benchmark(certify_calls[1])


def test_ablation_refinement(setup, report, json_report, benchmark):
    entry, box, exact = setup
    rows = []
    records = []
    eps_by_refine = []
    for refine in (0, 2, 6, 12):
        cfg = CertifierConfig(window=2, refine_count=refine)
        cert = GlobalRobustnessCertifier(entry.network, cfg).certify(box, entry.delta)
        eps_by_refine.append(cert.epsilon)
        records.append(
            {"refine_count": refine, "epsilon": cert.epsilon,
             "solve_time_s": cert.solve_time,
             "solves": cert.milp_count or cert.lp_count}
        )
        rows.append(
            [
                refine,
                f"{cert.epsilon:.5f}",
                f"{cert.epsilon / exact.epsilon:.2f}x",
                f"{cert.solve_time:.2f}s",
                cert.milp_count or cert.lp_count,
            ]
        )
    json_report("ablation_window_refine", {"refinement": records})
    report(
        format_table(
            ["refined r", "ε̄", "vs exact", "time", "solves"],
            rows,
            title="Ablation — selective refinement (DNN-2, W=2).  "
            "Refinement trades binaries for tightness; r=0 is the pure "
            "LP pipeline.",
        )
    )
    assert eps_by_refine == sorted(eps_by_refine, reverse=True) or all(
        a >= b - 1e-9 for a, b in zip(eps_by_refine, eps_by_refine[1:])
    )

    benchmark(
        lambda: GlobalRobustnessCertifier(
            entry.network, CertifierConfig(window=2, refine_count=0)
        ).certify(box, entry.delta)
    )


def test_ablation_coupling(setup, report, json_report, benchmark):
    """The second-copy coupling constraints (an ITNE-enabled tightening)."""
    entry, box, exact = setup
    rows = []
    eps = {}
    records = []
    for coupled in (True, False):
        cfg = CertifierConfig(window=2, refine_count=0, couple_second_copy=coupled)
        cert = GlobalRobustnessCertifier(entry.network, cfg).certify(box, entry.delta)
        eps[coupled] = cert.epsilon
        records.append(
            {"coupled": coupled, "epsilon": cert.epsilon,
             "solve_time_s": cert.solve_time}
        )
        rows.append(
            ["on" if coupled else "off", f"{cert.epsilon:.5f}",
             f"{cert.epsilon / exact.epsilon:.2f}x", f"{cert.solve_time:.2f}s"]
        )
    json_report("ablation_window_refine", {"coupling": records})
    report(
        format_table(
            ["second-copy triangle", "ε̄", "vs exact", "time"],
            rows,
            title="Ablation — coupling the implicit second copy (DNN-2, "
            "W=2, r=0).",
        )
    )
    assert eps[True] <= eps[False] + 1e-9
    benchmark(
        lambda: GlobalRobustnessCertifier(
            entry.network,
            CertifierConfig(window=2, refine_count=0, couple_second_copy=False),
        ).certify(box, entry.delta)
    )
