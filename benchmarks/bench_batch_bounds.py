"""Benchmark — batched multi-query bound propagation vs per-query loops.

The batched layer's claim (ISSUE 9): stacking many ε-queries into one
``(Q, n)`` propagation pass amortises per-call overhead without moving
a single verdict.  Three measurements:

* **local ε-sweep** — a centers × ε-targets grid (256 queries in full
  mode) decided by :func:`presolve_local_many` in one pass vs a
  per-query :func:`presolve_local` loop; wall-clock ratio reported and
  every verdict (including ``None`` fallthrough) must be identical;
* **global ε-sweep** — a δ × ε grid over a shared domain through
  :func:`presolve_global_many`, which computes each attack start's
  Jacobian once for all queries, vs the scalar loop;
* **split-frontier scenario** — the deadline-style global query of
  ``bench_splitting`` (bound-provable by input splitting) certified
  with ``frontier_batch=1`` (sequential, one propagation per
  subdomain) vs the default batched frontier, identical verdicts
  asserted.

Run standalone (used by CI in smoke mode, no model training needed)::

    PYTHONPATH=src python -m benchmarks.bench_batch_bounds --smoke

or as part of the benchmark suite::

    PYTHONPATH=src python -m pytest benchmarks/bench_batch_bounds.py -s
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from benchmarks.bench_splitting import splitting_provable_target, tiny_chain
from benchmarks.conftest import write_bench_json
from repro.bounds import Box
from repro.certify import SplitConfig, certify_global_split
from repro.certify.presolve import (
    presolve_global,
    presolve_global_many,
    presolve_local,
    presolve_local_many,
)
from repro.utils import format_table


def verdict(cert) -> str:
    """Presolve outcome as a comparable label (``None`` -> "none")."""
    return "none" if cert is None else cert.detail["verdict"]


def _timed_min(fn, repeats=3):
    """Best-of-``repeats`` wall clock for a deterministic callable.

    Every compared path here is seeded and deterministic, so repeats
    return identical results; taking the minimum time strips scheduler
    noise that would otherwise flake the 20 % regression gate on the
    sub-100 ms measurements.
    """
    best = None
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None or elapsed < best else best
    return best, result


def _verdict_counts(verdicts: list[str]) -> dict:
    return {
        "verdicts_certified": verdicts.count("certified"),
        "verdicts_refuted": verdicts.count("refuted"),
        "verdicts_undecided": verdicts.count("none"),
    }


def local_sweep(layers, domain, delta, n_centers, n_eps, seed=0) -> dict:
    """Centers × ε-targets grid: batched presolve vs the scalar loop.

    The ε ladder is anchored to the sweep's own scale — from far below
    to far above the root symbolic bound — so the grid mixes refuted,
    certified and ``None``-undecided rows (the mix the runtime's bulk
    prefilter actually sees).
    """
    rng = np.random.default_rng(seed)
    centers = domain.sample(rng, n_centers)
    probe = presolve_local_many(
        layers, centers, delta, 1e9, domain=domain, attack_samples=0
    )
    scale = max(float(c.epsilon) for c in probe)
    eps_grid = np.geomspace(scale * 1e-3, scale * 4.0, n_eps)
    stacked = np.repeat(centers, n_eps, axis=0)
    deltas = np.full(len(stacked), delta)
    epsilons = np.tile(eps_grid, n_centers)

    t_loop, loop = _timed_min(lambda: [
        presolve_local(
            layers, stacked[q], float(deltas[q]), float(epsilons[q]),
            domain=domain,
        )
        for q in range(len(stacked))
    ])
    t_batched, batched = _timed_min(
        lambda: presolve_local_many(layers, stacked, deltas, epsilons,
                                    domain=domain)
    )

    verdicts_loop = [verdict(c) for c in loop]
    verdicts_batched = [verdict(c) for c in batched]
    return {
        "queries": len(stacked),
        "time_per_query_loop": t_loop,
        "time_batched": t_batched,
        "speedup": t_loop / max(t_batched, 1e-9),
        "verdicts_identical": verdicts_loop == verdicts_batched,
        **_verdict_counts(verdicts_loop),
    }


def global_sweep(layers, domain, delta_range, n_deltas, n_eps, seed=0) -> dict:
    """δ × ε grid over one domain: shared-Jacobian batch vs the loop."""
    lo, hi = delta_range
    delta_grid = np.linspace(lo, hi, n_deltas)
    probe = presolve_global_many(
        layers, domain, delta_grid, np.full(n_deltas, 1e9), attack_samples=0
    )
    scale = max(float(c.epsilon) for c in probe)
    eps_grid = np.geomspace(scale * 1e-3, scale * 4.0, n_eps)
    deltas = np.repeat(delta_grid, n_eps)
    epsilons = np.tile(eps_grid, n_deltas)

    t_loop, loop = _timed_min(lambda: [
        presolve_global(layers, domain, float(d), float(e))
        for d, e in zip(deltas, epsilons)
    ])
    t_batched, batched = _timed_min(
        lambda: presolve_global_many(layers, domain, deltas, epsilons)
    )

    verdicts_loop = [verdict(c) for c in loop]
    verdicts_batched = [verdict(c) for c in batched]
    return {
        "queries": len(deltas),
        "time_per_query_loop": t_loop,
        "time_batched": t_batched,
        "speedup": t_loop / max(t_batched, 1e-9),
        "verdicts_identical": verdicts_loop == verdicts_batched,
        **_verdict_counts(verdicts_loop),
    }


def frontier_scenario(
    layers, domain, delta, time_limit, max_domains=2048, partitions=64,
) -> dict:
    """Deadline-style split run: sequential frontier vs batched frontier.

    The ε target comes from ``bench_splitting``'s partition probe, so
    pure bound splitting decides it; both runs get the same whole-run
    deadline.  ``frontier_batch=1`` reproduces the pre-batching
    sequential tier bit-for-bit (one propagation per subdomain), the
    default batches each bisection round's children into one pass.
    """
    target = splitting_provable_target(layers, domain, delta, partitions=partitions)
    epsilon = target["epsilon"]

    def timed(frontier_batch: int):
        config = SplitConfig(
            time_limit=time_limit, max_domains=max_domains,
            frontier_batch=frontier_batch,
        )
        return _timed_min(
            lambda: certify_global_split(layers, domain, delta, epsilon,
                                         config=config),
            repeats=5,
        )

    t_seq, cert_seq = timed(1)
    t_batched, cert_batched = timed(SplitConfig().frontier_batch)
    return {
        "epsilon_target": epsilon,
        "bound_tightness": target["bound_tightness"],
        "time_limit": time_limit,
        "sequential_verdict": cert_seq.detail["verdict"],
        "batched_verdict": cert_batched.detail["verdict"],
        "verdicts_identical": (
            cert_seq.detail["verdict"] == cert_batched.detail["verdict"]
        ),
        "sequential_domains": cert_seq.detail["domains"],
        "batched_domains": cert_batched.detail["domains"],
        "frontier_batch": cert_batched.detail["frontier_batch"],
        "time_sequential": t_seq,
        "time_batched": t_batched,
        "frontier_speedup": t_seq / max(t_batched, 1e-9),
    }


def run(smoke: bool, emit=print, write_json=write_bench_json) -> dict:
    """Execute the bench; returns (and persists) the results dict.

    Smoke results are written under ``smoke_*`` keys so the committed
    full-mode numbers survive a CI smoke run (the JSON writer merges).
    """
    if smoke:
        rng = np.random.default_rng(0)
        layers = tiny_chain(rng)
        domain = Box.uniform(6, 0.0, 1.0)
        label = "smoke: random 6-14-14-2 net"
        sweep = local_sweep(layers, domain, 0.12, n_centers=8, n_eps=8)
        gsweep = global_sweep(layers, domain, (0.05, 0.3), n_deltas=6, n_eps=6)
        f_rng = np.random.default_rng(1)
        frontier = frontier_scenario(
            tiny_chain(f_rng, depth=3, width=28, in_dim=2),
            Box.uniform(2, 0.0, 1.0), 0.1, time_limit=3.0,
        )
    else:
        from repro.zoo import get_network

        mpg3 = get_network(3)
        mpg5 = get_network(5)
        label = f"Table-1 DNN-3 ({mpg3.description})"
        layers = mpg3.network.to_affine_layers()
        domain = Box.uniform(mpg3.network.input_dim, 0.0, 1.0)
        sweep = local_sweep(layers, domain, 0.2, n_centers=16, n_eps=16)
        gsweep = global_sweep(layers, domain, (0.5, 2.0), n_deltas=8, n_eps=8)
        # The bench_splitting deadline scenario net: DNN-5 at δ=2, where
        # the frontier is deep enough for per-round batching to matter.
        frontier = frontier_scenario(
            mpg5.network.to_affine_layers(),
            Box.uniform(mpg5.network.input_dim, 0.0, 1.0),
            2.0, time_limit=10.0, partitions=96,
        )

    sweep["label"] = label
    rows = [
        [
            kind,
            f"{stats['queries']}",
            f"{stats['time_per_query_loop']:.3f}s",
            f"{stats['time_batched']:.3f}s",
            f"{stats['speedup']:.1f}x",
            "yes" if stats["verdicts_identical"] else "NO",
        ]
        for kind, stats in (("local", sweep), ("global", gsweep))
    ]
    emit(
        format_table(
            ["sweep", "queries", "t loop", "t batched", "speedup",
             "verdicts ="],
            rows,
            title=f"batched presolve vs per-query loop — {label}",
        )
    )
    emit(
        f"split-frontier scenario (limit {frontier['time_limit']:g}s): "
        f"frontier_batch=1 -> {frontier['sequential_verdict']} "
        f"({frontier['sequential_domains']} subdomains, "
        f"{frontier['time_sequential']:.2f}s) | "
        f"frontier_batch={frontier['frontier_batch']} -> "
        f"{frontier['batched_verdict']} "
        f"({frontier['batched_domains']} subdomains, "
        f"{frontier['time_batched']:.2f}s) | "
        f"speedup {frontier['frontier_speedup']:.2f}x"
    )

    results = {
        "local_sweep": sweep,
        "global_sweep": gsweep,
        "frontier_scenario": frontier,
    }
    prefix = "smoke_" if smoke else ""
    payload = {
        f"{prefix}local_sweep": sweep,
        f"{prefix}global_sweep": gsweep,
        f"{prefix}frontier_scenario": frontier,
        f"{prefix}sweep_speedup": sweep["speedup"],
        f"{prefix}frontier_speedup": frontier["frontier_speedup"],
    }
    if write_json is not None:
        write_json("batch_bounds", payload)
    return results


def _check(results: dict, smoke: bool) -> list[str]:
    """Acceptance checks; returns a list of failure messages."""
    failures = []
    for kind in ("local_sweep", "global_sweep", "frontier_scenario"):
        if not results[kind]["verdicts_identical"]:
            failures.append(
                f"{kind}: batched verdicts diverged from the scalar path"
            )
    for kind in ("local_sweep", "global_sweep"):
        if min(results[kind][k] for k in
               ("verdicts_certified", "verdicts_refuted")) == 0:
            failures.append(
                f"{kind}: ε ladder missed a verdict class — the sweep "
                "no longer exercises both sides of the tier"
            )
    frontier = results["frontier_scenario"]
    if frontier["batched_verdict"] == "undecided":
        failures.append("frontier scenario: split tier failed to decide")
    if not smoke:
        # The ISSUE 9 acceptance floor: >= 5x on the 256-query sweep.
        if results["local_sweep"]["speedup"] < 5.0:
            failures.append(
                f"local sweep speedup {results['local_sweep']['speedup']:.2f}x "
                "below the 5x target"
            )
        if frontier["frontier_speedup"] < 1.0:
            failures.append(
                f"frontier speedup {frontier['frontier_speedup']:.2f}x: "
                "batched frontier slower than sequential"
            )
    return failures


def test_bench_batch_bounds(report, json_report):
    """Benchmark-suite entry: Table-1 nets, asserts the PR targets."""
    results = run(smoke=False, emit=report, write_json=json_report)
    failures = _check(results, smoke=False)
    assert not failures, failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="small random nets (CI mode; no model training)",
    )
    args = parser.parse_args(argv)
    results = run(smoke=args.smoke)
    failures = _check(results, smoke=args.smoke)
    for message in failures:
        print(f"FAIL: {message}", file=sys.stderr)
    if failures:
        return 1
    print(
        f"OK (sweep speedup {results['local_sweep']['speedup']:.1f}x, "
        f"frontier speedup "
        f"{results['frontier_scenario']['frontier_speedup']:.2f}x, "
        "all verdicts identical)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
