"""Benchmark — symbolic vs interval bounds: tightness and presolve speedup.

Every MILP in the pipeline is seeded by per-layer interval bounds; PR 4
put the propagators behind one ``BoundPropagator`` API and added the
CROWN/DeepPoly-style symbolic engine plus a bounds-only presolve tier.
This bench quantifies both halves on the Table-1 nets:

* **tightness** — mean pre-activation width and stable-neuron fraction
  of ``"symbolic"`` vs ``"ibp"``, for the value bounds and the twin
  distance bounds (the ε̄ the intervals alone certify);
* **presolve speedup** — wall-clock of a batch of ε-targeted local
  certification queries with the presolve tier on vs off, checking that
  the queries still reaching the MILP tier produce *bit-identical*
  certificates.

Run standalone (used by CI in smoke mode, no model training needed)::

    PYTHONPATH=src python -m benchmarks.bench_bounds --smoke

or as part of the benchmark suite::

    PYTHONPATH=src python -m pytest benchmarks/bench_bounds.py -s
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from benchmarks.conftest import write_bench_json
from repro.bounds import Box, get_propagator
from repro.nn.affine import AffineLayer
from repro.runtime import BatchCertifier, local_queries
from repro.utils import format_table


def tiny_chain(rng, depth=3, width=16, in_dim=8, out_dim=2):
    """Smoke-mode stand-in: one tiny random net, trains nothing."""
    dims = [in_dim] + [width] * (depth - 1) + [out_dim]
    return [
        AffineLayer(
            rng.standard_normal((dims[i + 1], dims[i])) / np.sqrt(dims[i]),
            0.1 * rng.standard_normal(dims[i + 1]),
            relu=i < depth - 1,
        )
        for i in range(depth)
    ]


def tightness_stats(layers, box, delta) -> dict:
    """Compare the ``"ibp"`` and ``"symbolic"`` engines on one net."""
    stats = {}
    for name in ("ibp", "symbolic"):
        t0 = time.perf_counter()
        bounds = get_propagator(name).propagate(layers, box, delta)
        stats[name] = {
            "propagate_ms": 1e3 * (time.perf_counter() - t0),
            "mean_y_width": bounds.mean_pre_activation_width(),
            "stable_fraction": bounds.stable_fraction(layers),
            "interval_epsilon": float(bounds.output_variation_bounds().max()),
        }
    stats["width_ratio"] = (
        stats["symbolic"]["mean_y_width"] / stats["ibp"]["mean_y_width"]
    )
    return stats


def ball_tightness(layers, domain, radius: float, n_centers: int, seed: int = 1) -> dict:
    """Stable-neuron fractions over certification balls (radius ``radius``).

    Stability over the δ-ball is what actually shrinks the MILPs — a
    stable neuron encodes without a binary — so this is measured where
    certification happens, averaged over ``n_centers`` random centers.
    """
    from repro.certify.presolve import perturbation_ball

    rng = np.random.default_rng(seed)
    stats = {name: {"stable": [], "width": []} for name in ("ibp", "symbolic")}
    for x in domain.sample(rng, n_centers):
        ball = perturbation_ball(x, radius, domain)
        for name in stats:
            bounds = get_propagator(name).propagate(layers, ball)
            stats[name]["stable"].append(bounds.stable_fraction(layers))
            stats[name]["width"].append(bounds.mean_pre_activation_width())
    return {
        "radius": radius,
        "centers": n_centers,
        **{
            name: {
                "stable_fraction": float(np.mean(vals["stable"])),
                "mean_y_width": float(np.mean(vals["width"])),
            }
            for name, vals in stats.items()
        },
    }


def presolve_speedup(
    layers, domain, delta, method: str, n_samples: int, seed: int = 0
) -> dict:
    """Batch-certify ``n_samples`` with the presolve tier on vs off.

    Per-sample ε targets are chosen so the batch genuinely mixes tiers:
    even samples get a target just above their symbolic bound (decided
    by presolve), odd samples probe for a target the tier *cannot*
    decide (bound too loose to prove, attack too weak to refute) so
    they fall through to the MILP — whose certificates are then
    compared bit-for-bit between the on and off runs.
    """
    from repro.certify.presolve import (
        perturbation_ball,
        presolve_local,
        variation_from_reference,
    )
    from repro.nn.affine import affine_chain_forward
    from repro.runtime import CertificationQuery

    rng = np.random.default_rng(seed)
    samples = domain.sample(rng, n_samples)
    sym = get_propagator("symbolic")

    epsilons = []
    for i, x in enumerate(samples):
        ball = perturbation_ball(x, delta, domain)
        bounds = sym.propagate(layers, ball)
        out = bounds.output
        base = affine_chain_forward(layers, x)
        ub = float(variation_from_reference(out.lo, out.hi, base).max())
        if i % 2 == 0:
            epsilons.append(ub * 1.05)  # provable from bounds alone
            continue
        undecided = next(
            (
                ub * f
                for f in (0.98, 0.9, 0.75, 0.5)
                if presolve_local(
                    layers, x, delta, ub * f, domain=domain, layer_bounds=bounds
                )
                is None
            ),
            None,
        )
        epsilons.append(ub * 1.05 if undecided is None else undecided)

    engine = BatchCertifier(max_workers=1)

    def run_batch(presolve: bool):
        queries = [
            CertificationQuery(
                kind=f"local-{method}",
                layers=layers,
                delta=float(delta),
                center=x,
                domain=domain,
                epsilon=eps,
                presolve=presolve,
                tag=f"sample[{i}]",
            )
            for i, (x, eps) in enumerate(zip(samples, epsilons))
        ]
        t0 = time.perf_counter()
        results = engine.run(queries)
        elapsed = time.perf_counter() - t0
        assert all(r.ok for r in results), [r.error for r in results if not r.ok]
        return elapsed, [r.certificate for r in results]

    # Warm-up: the first query pays one-time lazy-import and solver
    # start-up costs; keep them out of whichever run is timed first.
    engine.run(
        [
            CertificationQuery(
                kind=f"local-{method}", layers=layers, delta=float(delta),
                center=samples[0], domain=domain,
            )
        ]
    )
    t_off, certs_off = run_batch(presolve=False)
    t_on, certs_on = run_batch(presolve=True)

    presolved = sum(1 for c in certs_on if c.method == "presolve")
    milp_pairs = [
        (on, off)
        for on, off in zip(certs_on, certs_off)
        if on.method != "presolve"
    ]
    milp_identical = all(
        np.array_equal(on.epsilons, off.epsilons) for on, off in milp_pairs
    )
    return {
        "method": method,
        "queries": n_samples,
        "epsilon_targets": epsilons,
        "time_presolve_off": t_off,
        "time_presolve_on": t_on,
        "speedup": t_off / max(t_on, 1e-9),
        "presolved": presolved,
        "milp_queries": len(milp_pairs),
        "milp_certificates_identical": milp_identical,
    }


def run(smoke: bool, emit=print, write_json=write_bench_json) -> dict:
    """Execute the bench; returns the aggregate results dict."""
    if smoke:
        rng = np.random.default_rng(0)
        cases = [
            ("smoke: random 8-16-16-2 net", tiny_chain(rng), Box.uniform(8, 0, 1),
             0.05, "lpr", 8),
        ]
    else:
        from repro.zoo import get_network

        mpg = get_network(3)
        mnist = get_network(6, image_size=10)
        cases = [
            (
                f"Table-1 DNN-3 ({mpg.description})",
                mpg.network.to_affine_layers(),
                Box.uniform(mpg.network.input_dim, 0.0, 1.0),
                mpg.delta, "exact", 12,
            ),
            (
                f"Table-1 DNN-6 ({mnist.description})",
                mnist.network.to_affine_layers(),
                Box.uniform(mnist.network.input_dim, 0.0, 1.0),
                mnist.delta, "lpr", 8,
            ),
        ]

    tight_rows = []
    batch_rows = []
    results = {"smoke": smoke, "cases": []}
    for label, layers, box, delta, method, n_samples in cases:
        tight = tightness_stats(layers, box, delta)
        ball = ball_tightness(layers, box, radius=0.1, n_centers=3)
        batch = presolve_speedup(layers, box, delta, method, n_samples)
        results["cases"].append(
            {
                "label": label,
                "layers": len(layers),
                "neurons": int(sum(l.out_dim for l in layers[:-1])),
                "delta": delta,
                "tightness": tight,
                "ball_tightness": ball,
                "presolve": batch,
            }
        )
        tight_rows.append(
            [
                label,
                f"{tight['ibp']['mean_y_width']:.4g}",
                f"{tight['symbolic']['mean_y_width']:.4g}",
                f"{tight['width_ratio']:.3f}",
                f"{100 * ball['ibp']['stable_fraction']:.1f}%",
                f"{100 * ball['symbolic']['stable_fraction']:.1f}%",
                f"{tight['symbolic']['interval_epsilon']:.4g}"
                f" / {tight['ibp']['interval_epsilon']:.4g}",
            ]
        )
        batch_rows.append(
            [
                label,
                f"local-{method} ×{n_samples}",
                f"{batch['presolved']}/{n_samples}",
                f"{batch['milp_queries']}",
                f"{batch['time_presolve_off']:.2f}s",
                f"{batch['time_presolve_on']:.2f}s",
                f"{batch['speedup']:.1f}x",
                "yes" if batch["milp_certificates_identical"] else "NO",
            ]
        )

    emit(
        format_table(
            ["net", "y-width ibp", "y-width sym", "ratio",
             "stable ibp", "stable sym", "ε̄ sym/ibp"],
            tight_rows,
            title="bound tightness: symbolic vs IBP — widths over the full "
            "domain, stable-neuron fractions over r=0.1 balls",
        )
    )
    emit(
        format_table(
            ["net", "batch", "presolved", "to MILP", "t off", "t on",
             "speedup", "identical"],
            batch_rows,
            title="presolve tier: ε-targeted batch certification, "
            "presolve off vs on",
        )
    )
    if write_json is not None:
        write_json("bounds", results)
    return results


def _check(results: dict) -> list[str]:
    """Acceptance checks; returns a list of failure messages."""
    failures = []
    for case in results["cases"]:
        label = case["label"]
        tight = case["tightness"]
        ball = case["ball_tightness"]
        if not tight["width_ratio"] < 1.0:
            failures.append(
                f"{label}: symbolic bounds not strictly tighter "
                f"(width ratio {tight['width_ratio']:.3f})"
            )
        if ball["symbolic"]["stable_fraction"] < ball["ibp"]["stable_fraction"]:
            failures.append(f"{label}: symbolic lost stable neurons")
        if not case["presolve"]["milp_certificates_identical"]:
            failures.append(f"{label}: MILP-tier certificates diverged")
    # The bit-identical claim must be exercised, not vacuously true: at
    # least one query across the cases has to reach the MILP tier.
    if sum(c["presolve"]["milp_queries"] for c in results["cases"]) == 0:
        failures.append(
            "no query reached the MILP tier — bit-identical check was vacuous"
        )
    return failures


def test_bench_bounds(report, json_report):
    """Benchmark-suite entry: Table-1 nets, asserts the PR targets."""
    results = run(smoke=False, emit=report, write_json=json_report)
    failures = _check(results)
    assert not failures, failures
    # End-to-end: the presolve tier must yield a measurable speedup on
    # at least one batch-certification benchmark.
    best = max(c["presolve"]["speedup"] for c in results["cases"])
    assert best >= 1.2, f"best presolve speedup {best:.2f}x < 1.2x floor"
    assert any(c["presolve"]["presolved"] > 0 for c in results["cases"])
    # Table-1 MNIST net: strictly more stable neurons over δ-balls.
    mnist = results["cases"][-1]
    assert (
        mnist["ball_tightness"]["symbolic"]["stable_fraction"]
        > mnist["ball_tightness"]["ibp"]["stable_fraction"]
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="one tiny random net (CI mode; no model training)",
    )
    args = parser.parse_args(argv)
    results = run(smoke=args.smoke)
    failures = _check(results)
    # The speedup floor applies to the full run only: smoke-mode MILPs
    # are too small for the timing difference to be stable in CI.
    if not args.smoke:
        best = max(c["presolve"]["speedup"] for c in results["cases"])
        if best < 1.2:
            failures.append(f"best presolve speedup {best:.2f}x below 1.2x target")
    for message in failures:
        print(f"FAIL: {message}", file=sys.stderr)
    if failures:
        return 1
    print("OK (width ratios: "
          + ", ".join(f"{c['tightness']['width_ratio']:.3f}"
                      for c in results["cases"])
          + ")")
    return 0


if __name__ == "__main__":
    sys.exit(main())
