"""Experiment E5 — §III-B design-time safety verification numbers.

Regenerates the case study's certification chain: perception model
inaccuracy Δd1, certified output-variation bound Δd2 = ε̄ at δ = 2/255,
the invariant-set tolerance ē, and the safety verdict
(Δd1 + Δd2 ≤ ē ⇒ provably safe).

Paper values: Δd1 = 0.0730, Δd2 = 0.0568, total 0.1298 ≤ ē = 0.14 ⇒ safe.
Our substrate (synthetic camera, smaller CNN) reproduces the *shape*:
a certified total error under the invariant-set tolerance.
"""

import pytest

from repro.certify import CertifierConfig
from repro.control import (
    AccDynamics,
    CameraModel,
    FeedbackController,
    default_case_study_model,
    max_safe_estimation_error,
    train_perception_model,
    verify_acc_safety,
)
from repro.utils import format_table


@pytest.fixture(scope="module")
def perception():
    # The default recipe: Lipschitz-capped training on the default
    # camera (8x16, focal 0.6), cached under .models/.
    return default_case_study_model(seed=0)


def test_case_study_certification(perception, report, json_report, benchmark):
    verdict = verify_acc_safety(
        perception,
        delta=2 / 255,
        certifier_config=CertifierConfig(window=2, refine_count=0),
    )

    json_report(
        "case_study_certification",
        {
            "delta": 2 / 255,
            "model_inaccuracy": verdict.model_inaccuracy,
            "certified_variation": verdict.certified_variation,
            "total_error": verdict.total_error,
            "tolerated_error": verdict.tolerated_error,
            "safe": verdict.safe,
            "certification_time_s": verdict.certification_time,
        },
    )
    rows = [
        ["model inaccuracy Δd1", f"{verdict.model_inaccuracy:.4f}", "0.0730"],
        ["certified variation Δd2 (ε̄)", f"{verdict.certified_variation:.4f}", "0.0568"],
        ["total estimation error Δd", f"{verdict.total_error:.4f}", "0.1298"],
        ["invariant-set tolerance ē", f"{verdict.tolerated_error:.4f}", "0.14"],
        ["verdict", "SAFE" if verdict.safe else "NOT PROVEN", "SAFE"],
    ]
    report(
        format_table(
            ["quantity", "ours", "paper §III-B"],
            rows,
            title=f"Case study — design-time safety verification "
            f"(δ=2/255, certification {verdict.certification_time:.0f}s)",
        )
    )

    # Shape assertions: the verification chain must be coherent, and —
    # like the paper — it must actually prove safety at δ = 2/255.
    assert 0.10 < verdict.tolerated_error < 0.16  # ē ≈ 0.13 vs paper 0.14
    assert verdict.certified_variation > 0.0
    assert verdict.total_error == pytest.approx(
        verdict.model_inaccuracy + verdict.certified_variation
    )
    assert verdict.safe, "the Lipschitz-capped perception net must verify SAFE"

    # Benchmark the invariant-set analysis (the control-side cost).
    benchmark(
        lambda: max_safe_estimation_error(AccDynamics(), FeedbackController())
    )
