"""Experiment E6 — §III-B closed-loop FGSM simulation sweep.

The paper deploys the perception DNN in Webots, adds FGSM perturbations
to the camera stream, and observes: at the assumed δ = 2/255 the
estimation error never exceeds the verified bound and the system stays
safe; at δ = 5/255 the bound is sometimes exceeded (no unsafe states
observed); at δ = 10/255 about 17% of simulations become unsafe.

This regenerates the sweep in our simulator.  The *shape* to match:
degradation is monotone in δ — no exceedances at the certified δ, then
exceedances, then actual safety violations.
"""

import pytest

from benchmarks.conftest import full_mode
from repro.control import (
    CameraModel,
    ClosedLoopSimulator,
    default_case_study_model,
    train_perception_model,
)
from repro.control import AccDynamics, FeedbackController, max_safe_estimation_error
from repro.utils import format_table


@pytest.fixture(scope="module")
def simulator():
    return ClosedLoopSimulator(default_case_study_model(seed=0))


def test_case_study_simulation(simulator, report, json_report, benchmark):
    tolerance = max_safe_estimation_error(AccDynamics(), FeedbackController())
    episodes = 20 if full_mode() else 8
    steps = 300 if full_mode() else 120

    deltas = [0.0, 2 / 255, 5 / 255, 10 / 255, 20 / 255]
    paper = ["(clean)", "safe, no exceedance", "exceedances, no unsafe",
             "~17% unsafe", "-"]
    rows = []
    stats_by_delta = {}
    for delta, note in zip(deltas, paper):
        stats = simulator.run_campaign(
            episodes=episodes,
            steps=steps,
            attack_delta=delta,
            error_bound=tolerance,
            seed=7,
            initial_spread=0.05,
        )
        stats_by_delta[delta] = stats
        rows.append(
            [
                f"{delta * 255:.0f}/255",
                f"{stats['max_estimation_error']:.4f}",
                f"{stats['exceed_fraction'] * 100:.0f}%",
                f"{stats['unsafe_fraction'] * 100:.0f}%",
                note,
            ]
        )

    json_report(
        "case_study_simulation",
        {
            "episodes": episodes,
            "steps": steps,
            "tolerance": tolerance,
            "sweep": [
                {
                    "delta": d,
                    "max_estimation_error": stats_by_delta[d]["max_estimation_error"],
                    "exceed_fraction": stats_by_delta[d]["exceed_fraction"],
                    "unsafe_fraction": stats_by_delta[d]["unsafe_fraction"],
                }
                for d in deltas
            ],
        },
    )
    report(
        format_table(
            ["δ (attack)", "max |Δd|", "episodes exceeding ē", "unsafe episodes",
             "paper observation"],
            rows,
            title=f"Case study — closed-loop FGSM sweep ({episodes} episodes × "
            f"{steps} steps, verified tolerance ē={tolerance:.3f})",
        )
    )

    # Shape: attack degradation is monotone in δ.
    errs = [stats_by_delta[d]["max_estimation_error"] for d in deltas]
    assert errs[-1] >= errs[0] - 1e-9
    unsafe = [stats_by_delta[d]["unsafe_fraction"] for d in deltas]
    assert unsafe == sorted(unsafe)

    # Benchmark one clean episode (simulator throughput).
    benchmark(lambda: simulator.run_episode(steps=30, seed=1))
