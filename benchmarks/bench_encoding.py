"""Benchmark — array-native vs per-neuron MILP model construction.

PR 1 made the *solve* path sparse; after that, profile showed model
*construction* dominated by per-coefficient Python work: ``_row_dot``
folding every weight into a dict per neuron, then every ReLU constraint
copying that dict again.  The encoders now emit whole layers as COO
blocks (``Model.add_linear_rows``); this bench measures the build-time
ratio on the Table-1 MNIST net (DNN-6) and verifies the two assembly
paths produce bit-identical standard-form matrices (up to row order,
which is canonicalized before comparison).

Run standalone (used by CI in smoke mode, no model training needed)::

    PYTHONPATH=src python -m benchmarks.bench_encoding --smoke

or as part of the benchmark suite::

    PYTHONPATH=src python -m pytest benchmarks/bench_encoding.py -s
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from benchmarks.conftest import write_bench_json
from repro.bounds import Box
from repro.encoding import encode_btne, encode_itne, encode_single_network
from repro.nn.affine import AffineLayer
from repro.utils import format_table


def tiny_chain(rng, depth=3, width=16, in_dim=8, out_dim=2):
    """Smoke-mode stand-in: one tiny random net, trains nothing."""
    dims = [in_dim] + [width] * (depth - 1) + [out_dim]
    return [
        AffineLayer(
            rng.standard_normal((dims[i + 1], dims[i])),
            0.1 * rng.standard_normal(dims[i + 1]),
            relu=i < depth - 1,
        )
        for i in range(depth)
    ]


def canonical_standard_form(model):
    """Dense standard form with (A|b) rows sorted lexicographically."""
    c, a_ub, b_ub, a_eq, b_eq, bounds, integrality = model.to_standard_form()

    def sort_rows(a, b):
        stacked = np.hstack([a, b[:, None]])
        return stacked[np.lexsort(stacked.T[::-1])]

    return c, sort_rows(a_ub, b_ub), sort_rows(a_eq, b_eq), np.array(bounds), integrality


def matrices_identical(model_a, model_b) -> bool:
    """Bit-identical standard forms (canonical row order)."""
    for part_a, part_b in zip(
        canonical_standard_form(model_a), canonical_standard_form(model_b)
    ):
        if part_a.shape != part_b.shape or not np.array_equal(part_a, part_b):
            return False
    return True


def _time_build(build, repeats: int) -> tuple[float, object]:
    best = float("inf")
    enc = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        enc = build()
        best = min(best, time.perf_counter() - t0)
    return best, enc


def bench_encoders(layers, box, delta, repeats=3):
    """Time vectorized vs reference construction for all three encoders.

    Returns:
        ``(rows, speedups, all_identical, stats)`` — display table rows,
        the raw per-encoder speedup ratios, the overall matrix-equality
        verdict, and the machine-readable per-encoder stats.
    """
    builders = {
        "single": lambda vec: encode_single_network(layers, box, vectorized=vec),
        "itne": lambda vec: encode_itne(layers, box, delta, vectorized=vec),
        "btne": lambda vec: encode_btne(layers, box, delta, vectorized=vec),
    }
    rows = []
    speedups = {}
    stats = {}
    all_identical = True
    for name, build in builders.items():
        t_vec, enc_vec = _time_build(lambda: build(True), repeats)
        t_ref, enc_ref = _time_build(lambda: build(False), max(1, repeats - 2))
        same = matrices_identical(enc_vec.model, enc_ref.model)
        all_identical &= same
        speedups[name] = t_ref / t_vec
        stats[name] = {
            "vars": enc_vec.model.num_vars,
            "constraints": enc_vec.model.num_constrs,
            "per_neuron_ms": t_ref * 1e3,
            "block_ms": t_vec * 1e3,
            "speedup": speedups[name],
            "identical": same,
        }
        rows.append(
            [
                name,
                f"{enc_vec.model.num_vars}",
                f"{enc_vec.model.num_constrs}",
                f"{t_ref * 1e3:.1f}",
                f"{t_vec * 1e3:.1f}",
                f"{speedups[name]:.1f}x",
                "yes" if same else "NO",
            ]
        )
    return rows, speedups, all_identical, stats


def run(smoke: bool, emit=print, write_json=write_bench_json) -> tuple[float, bool]:
    """Execute the bench; returns (itne_speedup, matrices_identical)."""
    if smoke:
        layers = tiny_chain(np.random.default_rng(0))
        delta = 0.01
        label = "smoke: random 8-16-16-2 net"
        repeats = 5
    else:
        from repro.zoo import get_network

        entry = get_network(6, image_size=10)
        layers = entry.network.to_affine_layers()
        delta = entry.delta
        label = f"Table-1 DNN-6 ({entry.description})"
        repeats = 3
    box = Box.uniform(layers[0].in_dim, 0.0, 1.0)
    rows, speedups, identical, stats = bench_encoders(
        layers, box, delta, repeats=repeats
    )
    emit(
        format_table(
            ["encoder", "vars", "rows", "per-neuron ms", "block ms",
             "speedup", "identical"],
            rows,
            title=f"encoding construction: {label}",
        )
    )
    if write_json is not None:
        write_json(
            "encoding",
            {"label": label, "smoke": smoke, "repeats": repeats,
             "all_identical": identical, "encoders": stats},
        )
    return speedups["itne"], identical


def test_bench_encoding(report, json_report):
    """Benchmark-suite entry: MNIST-scale net, asserts the PR targets."""
    speedup, identical = run(smoke=False, emit=report, write_json=json_report)
    assert identical, "vectorized and per-neuron paths diverged"
    assert speedup >= 3.0, f"ITNE construction speedup {speedup}x < 3x floor"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="one tiny random net (CI mode; no model training)",
    )
    args = parser.parse_args(argv)
    speedup, identical = run(smoke=args.smoke)
    if not identical:
        print("FAIL: assembly paths produced different matrices", file=sys.stderr)
        return 1
    # The speedup target applies to the MNIST-scale run; in smoke mode
    # the matrices-identical check is the contract (tiny nets leave
    # little per-coefficient work to vectorize away).
    if not args.smoke and speedup < 5.0:
        print(f"FAIL: ITNE speedup {speedup:.1f}x below 5x target", file=sys.stderr)
        return 1
    print(f"OK (itne speedup {speedup:.1f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
