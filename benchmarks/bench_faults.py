"""Benchmark — fault-tolerance runtime: off-mode overhead and recovery.

The fault-tolerant runtime's claim (ISSUE 10): chaos-grade robustness
must be free when it is off and cheap when it fires.  Three
measurements:

* **off-mode hook overhead** — the disabled fault-point guard
  (``if _faults.ENABLED: fault_point(...)``) micro-timed against the
  same loop without it; reported as nanoseconds per hook and as a
  bound on the per-query overhead percentage (the acceptance target is
  < 1 %);
* **raise-recovery scenario** — a presolve+LPR query mix run clean and
  under a deterministic one-raise-per-worker schedule whose retries
  are guaranteed to succeed; every verdict and every ε must be
  bit-identical to the clean run (gated), recovery throughput is
  recorded;
* **crash-recovery scenario** — every worker's first query kills the
  worker (``os._exit``); the supervisor salvages, rebuilds and
  re-dispatches; throughput and rebuild counts are recorded and every
  query must still resolve (degraded answers allowed, errors not).

Run standalone (used by CI in smoke mode)::

    PYTHONPATH=src python -m benchmarks.bench_faults --smoke

or as part of the benchmark suite::

    PYTHONPATH=src python -m pytest benchmarks/bench_faults.py -s
"""

from __future__ import annotations

import argparse
import math
import sys
import time

import numpy as np

from benchmarks.bench_splitting import tiny_chain
from benchmarks.conftest import write_bench_json
from repro import _faults
from repro.bounds import Box
from repro.certify.presolve import presolve_local_many
from repro.runtime import faults
from repro.runtime.batch import BatchCertifier, local_queries
from repro.runtime.retry import RetryPolicy

#: Generous per-query hook-count bound used to convert the measured
#: per-hook cost into a per-query overhead percentage: one dispatch and
#: one worker hook plus a comfortable margin for every solver-tier hook
#: (``session.solve`` / ``scipy.solve`` / ``solve.chunk``) a query of
#: the benchmarked shape can hit.
HOOKS_PER_QUERY = 64


def _timed_min(fn, repeats=3):
    """Best-of-``repeats`` wall clock for a deterministic callable."""
    best = None
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None or elapsed < best else best
    return best, result


def _loop_guarded(iterations: int) -> float:
    acc = 0.0
    for i in range(iterations):
        if _faults.ENABLED:
            _faults.fault_point("bench.hook")
        acc += math.sqrt(i + 1.5)
    return acc


def _loop_plain(iterations: int) -> float:
    acc = 0.0
    for i in range(iterations):
        acc += math.sqrt(i + 1.5)
    return acc


def hook_overhead(iterations: int) -> dict:
    """Micro-time the disabled guard against the guard-free loop.

    Both loops share the same arithmetic body, so their ratio isolates
    the cost of one module-attribute load and one branch — what every
    fault-point site pays when injection is off — and stays stable
    across machines of different absolute speed.
    """
    faults.clear()
    t_guarded, _ = _timed_min(lambda: _loop_guarded(iterations), repeats=7)
    t_plain, _ = _timed_min(lambda: _loop_plain(iterations), repeats=7)
    return {
        "iterations": iterations,
        "time_guarded": t_guarded,
        "time_plain": t_plain,
        "hook_ns": max(0.0, (t_guarded - t_plain) / iterations * 1e9),
        "off_mode_hook_speedup": t_plain / max(t_guarded, 1e-12),
    }


def _mixed_queries(layers, domain, delta, n_centers, n_eps, seed=0):
    """A centers × ε grid whose presolve verdicts mix all three classes.

    ``presolve`` stays on per query but the engine's bulk prefilter is
    disabled by the caller, so the tier runs *inside* the workers —
    where the chaos schedules fire.
    """
    rng = np.random.default_rng(seed)
    centers = domain.sample(rng, n_centers)
    probe = presolve_local_many(
        layers, centers, delta, 1e9, domain=domain, attack_samples=0
    )
    scale = max(float(c.epsilon) for c in probe)
    queries = []
    for eps in np.geomspace(scale * 1e-3, scale * 4.0, n_eps):
        queries.extend(
            local_queries(
                layers, centers, delta, method="lpr", domain=domain,
                epsilon=float(eps), tag_prefix=f"eps{eps:.3g}",
            )
        )
    return queries


def _verdict_label(result) -> str:
    verdict = result.certificate.verdict
    return "none" if verdict is None else str(verdict)


def recovery_scenario(layers, domain, delta, n_centers, n_eps, workers) -> dict:
    """Clean batch vs the same batch under guaranteed-recovery chaos.

    The schedule raises on every worker process's *first* query — at
    most ``workers`` transient failures and no worker deaths — and the
    policy allows ``workers + 1`` attempts, so every query provably
    succeeds and the chaos run must reproduce the clean run answer for
    answer.  Any verdict or ε drift is a recovery-soundness bug, not a
    performance wobble, hence the exact-gated verdict counts.
    """
    def engine():
        return BatchCertifier(
            max_workers=workers,
            bulk_presolve=False,
            retry=RetryPolicy(max_attempts=workers + 1, base_delay=0.001),
        )

    clean_engine = engine()
    t0 = time.perf_counter()
    clean = clean_engine.run(_mixed_queries(layers, domain, delta, n_centers, n_eps))
    t_clean = time.perf_counter() - t0

    chaos_engine = engine()
    with faults.injected(faults.FaultPlan.parse("batch.worker:raise@1")):
        t0 = time.perf_counter()
        chaotic = chaos_engine.run(
            _mixed_queries(layers, domain, delta, n_centers, n_eps)
        )
        t_chaos = time.perf_counter() - t0

    identical = len(clean) == len(chaotic) and all(
        a.ok and b.ok and not b.degraded
        and _verdict_label(a) == _verdict_label(b)
        and np.array_equal(a.certificate.epsilons, b.certificate.epsilons)
        for a, b in zip(clean, chaotic)
    )
    labels = [_verdict_label(r) for r in chaotic]
    return {
        "queries": len(chaotic),
        "workers": workers,
        "time_clean": t_clean,
        "time_chaos": t_chaos,
        "per_query_clean": t_clean / len(clean),
        "recovery_queries_per_sec": len(chaotic) / max(t_chaos, 1e-9),
        "recovery_overhead_ratio": t_chaos / max(t_clean, 1e-9),
        "retries": chaos_engine.fault_stats["retries"],
        "verdicts_identical": identical,
        "verdicts_certified": labels.count("certified"),
        "verdicts_refuted": labels.count("refuted"),
        "verdicts_undecided": labels.count("none"),
    }


def crash_scenario(layers, domain, delta, n_queries, workers) -> dict:
    """Throughput when every worker's *second* query kills the worker.

    First queries complete and must be salvaged when the crash breaks
    the pool; the crash victims retry on rebuilt workers (whose first
    queries succeed), so the batch recovers by salvage + re-dispatch
    rather than by degradation.
    """
    rng = np.random.default_rng(3)
    centers = domain.sample(rng, n_queries)
    engine = BatchCertifier(
        max_workers=workers,
        retry=RetryPolicy(base_delay=0.001),
    )
    with faults.injected(faults.FaultPlan.parse("batch.worker:crash@2")):
        t0 = time.perf_counter()
        results = engine.run(
            local_queries(layers, centers, delta, method="lpr", domain=domain)
        )
        t_chaos = time.perf_counter() - t0
    return {
        "queries": len(results),
        "workers": workers,
        "time_chaos": t_chaos,
        "crash_queries_per_sec": len(results) / max(t_chaos, 1e-9),
        "all_resolved": all(r.ok for r in results),
        "in_order": [r.index for r in results] == list(range(len(results))),
        "degraded": sum(r.degraded for r in results),
        "pool_rebuilds": engine.fault_stats["pool_rebuilds"],
        "retries": engine.fault_stats["retries"],
    }


def run(smoke: bool, emit=print, write_json=write_bench_json) -> dict:
    """Execute the bench; returns (and persists) the results dict.

    The worker count is pinned (not ``cpu_count``-derived) so the
    scenario structure — worker processes, fault schedules, verdict
    counts — is identical on every machine; only the recorded (ungated)
    timings scale with the hardware.
    """
    workers = 4
    if smoke:
        rng = np.random.default_rng(0)
        layers = tiny_chain(rng)
        domain = Box.uniform(6, 0.0, 1.0)
        hooks = hook_overhead(iterations=200_000)
        recovery = recovery_scenario(
            layers, domain, 0.12, n_centers=6, n_eps=4, workers=workers
        )
        crash = crash_scenario(layers, domain, 0.12, n_queries=8, workers=workers)
    else:
        rng = np.random.default_rng(0)
        layers = tiny_chain(rng, depth=4, width=20)
        domain = Box.uniform(6, 0.0, 1.0)
        hooks = hook_overhead(iterations=400_000)
        recovery = recovery_scenario(
            layers, domain, 0.12, n_centers=12, n_eps=8, workers=workers
        )
        crash = crash_scenario(layers, domain, 0.12, n_queries=16, workers=workers)

    # The acceptance bound: per-hook cost x a generous hook count,
    # relative to the cheapest real per-query time measured above.
    per_query_ns = recovery["per_query_clean"] * 1e9
    hooks["off_overhead_pct_bound"] = (
        100.0 * HOOKS_PER_QUERY * hooks["hook_ns"] / max(per_query_ns, 1.0)
    )

    emit(
        f"off-mode fault hook: {hooks['hook_ns']:.1f} ns/hook "
        f"(guarded/plain ratio {hooks['off_mode_hook_speedup']:.3f}) -> "
        f"<= {hooks['off_overhead_pct_bound']:.4f}% of a "
        f"{per_query_ns / 1e6:.2f} ms query at {HOOKS_PER_QUERY} hooks/query"
    )
    emit(
        f"raise-recovery: {recovery['queries']} queries, "
        f"{recovery['retries']} retries, clean {recovery['time_clean']:.2f}s "
        f"vs chaos {recovery['time_chaos']:.2f}s "
        f"({recovery['recovery_queries_per_sec']:.1f} q/s, answers "
        f"{'identical' if recovery['verdicts_identical'] else 'DIVERGED'})"
    )
    emit(
        f"crash-recovery: {crash['queries']} queries through "
        f"{crash['pool_rebuilds']} pool rebuild(s), "
        f"{crash['crash_queries_per_sec']:.1f} q/s, "
        f"{crash['degraded']} degraded, "
        f"{'all resolved' if crash['all_resolved'] else 'UNRESOLVED QUERIES'}"
    )

    results = {"hooks": hooks, "recovery": recovery, "crash": crash}
    prefix = "smoke_" if smoke else ""
    payload = {f"{prefix}{key}": value for key, value in results.items()}
    if write_json is not None:
        write_json("faults", payload)
    return results


def _check(results: dict, smoke: bool) -> list[str]:
    """Acceptance checks; returns a list of failure messages."""
    failures = []
    hooks = results["hooks"]
    if hooks["off_overhead_pct_bound"] >= 1.0:
        failures.append(
            f"off-mode fault hooks cost {hooks['off_overhead_pct_bound']:.2f}% "
            "of a query — the <1% acceptance bound is blown"
        )
    recovery = results["recovery"]
    if not recovery["verdicts_identical"]:
        failures.append(
            "raise-recovery run diverged from the clean run (the schedule "
            "guarantees full recovery, so this is a retry-engine bug)"
        )
    if min(recovery["verdicts_certified"], recovery["verdicts_refuted"]) == 0:
        failures.append(
            "recovery ε ladder missed a verdict class — the scenario no "
            "longer exercises both presolve sides under chaos"
        )
    crash = results["crash"]
    if not crash["all_resolved"]:
        failures.append("crash scenario left unresolved (error) queries")
    if not crash["in_order"]:
        failures.append("crash scenario returned results out of order")
    return failures


def test_bench_faults(report, json_report):
    """Benchmark-suite entry: asserts the ISSUE 10 acceptance bounds."""
    results = run(smoke=False, emit=report, write_json=json_report)
    failures = _check(results, smoke=False)
    assert not failures, failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="small nets and batches (CI mode)",
    )
    args = parser.parse_args(argv)
    results = run(smoke=args.smoke)
    failures = _check(results, smoke=args.smoke)
    for message in failures:
        print(f"FAIL: {message}", file=sys.stderr)
    if failures:
        return 1
    print(
        f"OK (hook {results['hooks']['hook_ns']:.1f} ns, overhead bound "
        f"{results['hooks']['off_overhead_pct_bound']:.4f}% < 1%, "
        "chaos answers identical, crashes recovered)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
