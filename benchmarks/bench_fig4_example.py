"""Experiment E1/E2 — regenerate Fig. 4 (the illustrating example).

Reproduces both halves of the paper's Fig. 4 on the 2-2-1 network of
Fig. 1: local robustness around x0 = [0, 0] (exact / ND / LPR) and
global robustness over X = [-1, 1]^2 (exact, and ND/LPR under both BTNE
and ITNE), with δ = 0.1.
"""

import numpy as np
import pytest

from repro.bounds import Box
from repro.certify import (
    CertifierConfig,
    GlobalRobustnessCertifier,
    certify_exact_global,
    certify_local_exact,
    certify_local_lpr,
    certify_local_nd,
)
from repro.certify.comparisons import certify_global_btne_lpr, certify_global_btne_nd
from repro.nn.affine import AffineLayer
from repro.utils import format_table


@pytest.fixture(scope="module")
def example():
    layers = [
        AffineLayer(np.array([[1.0, 0.5], [-0.5, 1.0]]), np.zeros(2), relu=True),
        AffineLayer(np.array([[1.0, -1.0]]), np.zeros(1), relu=True),
    ]
    return layers, Box.uniform(2, -1.0, 1.0), 0.1


def _rng(lo, hi):
    return f"[{lo:.4g}, {hi:.4g}]"


def test_fig4_local(example, report, json_report, benchmark):
    layers, box, delta = example
    x0 = np.zeros(2)

    exact = certify_local_exact(layers, x0, delta, domain=box)
    nd = certify_local_nd(layers, x0, delta, window=1, domain=box)
    lpr = benchmark(lambda: certify_local_lpr(layers, x0, delta, domain=box))

    json_report(
        "fig4_example",
        {
            "local": {
                cert.method: {
                    "output_lo": float(cert.output_lo[0]),
                    "output_hi": float(cert.output_hi[0]),
                    "solve_time_s": cert.solve_time,
                }
                for cert in (exact, nd, lpr)
            }
        },
    )
    rows = [
        ["Exact (MILP)", _rng(exact.output_lo[0], exact.output_hi[0]), "[0, 0.125]"],
        ["ND", _rng(nd.output_lo[0], nd.output_hi[0]), "[0, 0.15]"],
        ["LPR", _rng(lpr.output_lo[0], lpr.output_hi[0]), "[0, 0.144]"],
    ]
    report(
        format_table(
            ["method", "x̂(2) range (ours)", "paper Fig. 4"],
            rows,
            title="Fig. 4 — LOCAL robustness of the illustrating example "
            "(x0=[0,0], δ=0.1)",
        )
    )
    assert exact.output_hi[0] == pytest.approx(0.125, abs=1e-6)


def test_fig4_global(example, report, json_report, benchmark):
    layers, box, delta = example

    exact = certify_exact_global(layers, box, delta)
    itne_nd = GlobalRobustnessCertifier(
        layers, CertifierConfig(window=1, refine_count=10**6)
    ).certify(box, delta)
    itne_lpr = benchmark(
        lambda: GlobalRobustnessCertifier(
            layers, CertifierConfig(window=2, refine_count=0)
        ).certify(box, delta)
    )
    btne_nd = certify_global_btne_nd(layers, box, delta, window=1)
    btne_lpr = certify_global_btne_lpr(layers, box, delta)

    json_report(
        "fig4_example",
        {
            "global": {
                cert.method: {
                    "epsilon": cert.epsilon,
                    "solve_time_s": cert.solve_time,
                }
                for cert in (exact, itne_nd, itne_lpr, btne_nd, btne_lpr)
            }
        },
    )

    def ratio(eps):
        return f"{eps / exact.epsilon:.2f}x"

    rows = [
        ["Exact (MILP)", f"{exact.epsilon:.4g}", "1.00x", "0.2 (1x)"],
        ["BTNE + ND", f"{btne_nd.epsilon:.4g}", ratio(btne_nd.epsilon), "1.5 (7.5x)"],
        ["BTNE + LPR", f"{btne_lpr.epsilon:.4g}", ratio(btne_lpr.epsilon), "2.85 (10.9x*)"],
        ["ITNE + ND", f"{itne_nd.epsilon:.4g}", ratio(itne_nd.epsilon), "0.3 (1.5x)"],
        ["ITNE + LPR", f"{itne_lpr.epsilon:.4g}", ratio(itne_lpr.epsilon), "0.275 (1.38x)"],
    ]
    report(
        format_table(
            ["method", "ε (ours)", "over-approx", "paper Fig. 4"],
            rows,
            title="Fig. 4 — GLOBAL robustness of the illustrating example "
            "(X=[-1,1]^2, δ=0.1).  (*our BTNE-LPR is tighter than the "
            "paper's because both copies use layer-wise LP bounds; the "
            "BTNE≫ITNE looseness gap is preserved)",
        )
    )
    assert exact.epsilon == pytest.approx(0.2, abs=1e-6)
    assert itne_nd.epsilon == pytest.approx(0.3, abs=1e-6)
    # ITNE must beat BTNE by a wide margin (the paper's core message).
    assert btne_nd.epsilon / itne_nd.epsilon > 3.0
    assert btne_lpr.epsilon / itne_lpr.epsilon > 3.0
