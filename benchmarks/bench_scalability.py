"""Experiment E8 — scalability: exact blow-up vs Algorithm 1's mild growth.

The paper's §I headline: exact methods cannot certify 64 neurons in a
day, while Algorithm 1 handles >5k neurons in hours.  This bench traces
runtime against network width for the exact twin MILP, the
Reluplex-style solver, and Algorithm 1, on freshly trained regressors.
The shape to reproduce: exact curves grow superlinearly (×10+ per size
doubling), ours stays polynomial.

The Algorithm 1 runs go through the batch certification engine
(:class:`repro.runtime.BatchCertifier`): one independent global query
per network size, fanned across worker processes with per-query timing
measured inside the worker.
"""

import numpy as np
import pytest

from benchmarks.conftest import full_mode
from repro.bounds import Box
from repro.certify import (
    CertifierConfig,
    GlobalRobustnessCertifier,
    ReluplexStyleSolver,
    certify_exact_global,
)
from repro.data import load_auto_mpg
from repro.nn import Dense, Network, TrainConfig, train
from repro.runtime import BatchCertifier, global_query
from repro.utils import Timer, format_table


def make_trained(hidden: int, seed: int = 0) -> Network:
    rng = np.random.default_rng(seed)
    x, y = load_auto_mpg(250, seed=seed)
    half = hidden // 2
    net = Network(
        (7,),
        [
            Dense(7, half, relu=True, rng=rng),
            Dense(half, hidden - half, relu=True, rng=rng),
            Dense(hidden - half, 1, rng=rng),
        ],
    )
    train(net, x, y, config=TrainConfig(epochs=25, batch_size=32, seed=seed))
    return net


def test_scalability(report, json_report, benchmark):
    sizes = (8, 12, 16, 24) if not full_mode() else (8, 12, 16, 24, 32, 48)
    exact_cutoff = 16 if not full_mode() else 32
    reluplex_cutoff = 8 if not full_mode() else 12

    box = Box.uniform(7, 0.0, 1.0)
    delta = 0.001

    nets = {}
    baseline_times = {}
    exact_times = []
    for hidden in sizes:
        net = make_trained(hidden)
        nets[hidden] = net

        t_reluplex = None
        if hidden <= reluplex_cutoff:
            with Timer() as timer:
                ReluplexStyleSolver(max_nodes=500_000).certify(net, box, delta)
            t_reluplex = timer.elapsed

        t_exact = None
        if hidden <= exact_cutoff:
            with Timer() as timer:
                certify_exact_global(net, box, delta)
            t_exact = timer.elapsed
            exact_times.append((hidden, t_exact))
        baseline_times[hidden] = (t_reluplex, t_exact)

    # Algorithm 1 for every size, fanned through the batch engine; each
    # query's runtime is measured inside its worker.
    queries = [
        global_query(
            nets[hidden], box, delta,
            window=2, refine_count=min(8, hidden // 2),
            tag=f"hidden={hidden}",
        )
        for hidden in sizes
    ]
    batch = BatchCertifier(max_workers=2).run(queries)

    rows = []
    ours_times = []
    records = []
    for hidden, result in zip(sizes, batch):
        assert result.ok, result.error
        ours_times.append((hidden, result.elapsed))
        t_reluplex, t_exact = baseline_times[hidden]
        fmt = lambda t: f"{t:.2f}s" if t is not None else "skipped (blow-up)"
        rows.append(
            [hidden, fmt(t_reluplex), fmt(t_exact), f"{result.elapsed:.2f}s"]
        )
        records.append(
            {
                "hidden_neurons": hidden,
                "t_reluplex_s": t_reluplex,
                "t_exact_s": t_exact,
                "t_ours_s": result.elapsed,
            }
        )

    json_report("scalability", {"delta": delta, "rows": records})
    report(
        format_table(
            ["hidden neurons", "t_R (Reluplex-style)", "t_M (exact MILP)",
             "t_our (Algorithm 1)"],
            rows,
            title="Scalability — certification runtime vs network size "
            "(Auto MPG-style regressors, δ=0.001).",
        )
    )

    # Shape check: exact runtime must grow much faster than ours between
    # the smallest and largest commonly-certified sizes.
    if len(exact_times) >= 2:
        (h0, e0), (h1, e1) = exact_times[0], exact_times[-1]
        ours_map = dict(ours_times)
        exact_growth = e1 / max(e0, 1e-3)
        ours_growth = ours_map[h1] / max(ours_map[h0], 1e-3)
        assert exact_growth > ours_growth

    benchmark(
        lambda: GlobalRobustnessCertifier(
            nets[sizes[0]], CertifierConfig(window=2, refine_count=4)
        ).certify(Box.uniform(7, 0.0, 1.0), 0.001)
    )
