"""Benchmark — input-splitting tier vs the monolithic MILP tier.

The split tier's claim: for ε-queries the presolve tier leaves
undecided, branch-and-bound over the input space (symbolic bounds per
subdomain, binary-sparse MILPs only at the leaves) beats one monolithic
big-M MILP over the whole perturbation ball.  Two measurements:

* **speedup at equal verdicts** — a set of presolve-*undecided* local
  ε-queries (targets chosen strictly between each query's attack lower
  bound and its root symbolic bound) certified both ways; wall-clock
  ratio is reported and every verdict must be identical;
* **deadline scenario** — a global ε-query under a shared time limit
  that the monolithic exact MILP cannot decide within (it times out and
  falls back to a too-loose sound bound), while the split tier decides
  it by proving cheap subdomains.

Run standalone (used by CI in smoke mode, no model training needed)::

    PYTHONPATH=src python -m benchmarks.bench_splitting --smoke

or as part of the benchmark suite::

    PYTHONPATH=src python -m pytest benchmarks/bench_splitting.py -s
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from benchmarks.conftest import write_bench_json
from repro.bounds import Box, get_propagator
from repro.certify import SplitConfig, certify_exact_global, certify_global_split
from repro.certify.presolve import (
    perturbation_ball,
    presolve_global,
    presolve_local,
    variation_from_reference,
)
from repro.nn.affine import AffineLayer, affine_chain_forward
from repro.runtime import BatchCertifier, local_queries
from repro.utils import format_table


def tiny_chain(rng, depth=3, width=14, in_dim=6, out_dim=2, scale=1.6):
    """Smoke-mode stand-in: one small random net, trains nothing."""
    dims = [in_dim] + [width] * (depth - 1) + [out_dim]
    return [
        AffineLayer(
            scale * rng.standard_normal((dims[i + 1], dims[i])) / np.sqrt(dims[i]),
            0.1 * rng.standard_normal(dims[i + 1]),
            relu=i < depth - 1,
        )
        for i in range(depth)
    ]


def undecided_local_epsilon(layers, center, delta, domain, side="high"):
    """A target the presolve tier provably cannot decide, or ``None``.

    Walks down from the root symbolic bound over targets
    :func:`presolve_local` returns ``None`` for (bound too loose to
    prove, attack too weak to refute) — the queries that actually reach
    a MILP tier, where the split-vs-monolithic comparison is meaningful.
    ``side="high"`` returns the largest such target (usually above the
    true ε → both tiers certify); ``side="low"`` the smallest (usually
    below → both tiers refute), so a query set alternating sides
    compares verdicts of both kinds.
    """
    ball = perturbation_ball(center, delta, domain)
    bounds = get_propagator("symbolic").propagate(layers, ball)
    out = bounds.output
    base = affine_chain_forward(layers, center)
    ub = float(variation_from_reference(out.lo, out.hi, base).max())
    undecided = [
        ub * factor
        for factor in (0.98, 0.95, 0.9, 0.8, 0.65, 0.5, 0.35, 0.22, 0.12)
        if presolve_local(
            layers, center, delta, ub * factor, domain=domain,
            layer_bounds=bounds,
        )
        is None
    ]
    if not undecided:
        return None
    return max(undecided) if side == "high" else min(undecided)


def monolithic_verdict(cert, epsilon) -> str:
    """Classify a bound-producing certificate against an ε target."""
    if cert.epsilon <= epsilon:
        return "certified"  # sound upper bound below the target
    if cert.exact:
        return "refuted"  # exact ε above the target
    return "undecided"  # loose bound above the target proves nothing


def refute_side_agreement(layers, domain, delta, n_samples, seed=100) -> dict:
    """Verdict agreement on *refute-side* presolve-undecided targets.

    Targets just above each query's attack lower bound are the hardest
    refutations (the cheap attack already failed); the split tier is
    configured to fall to MILP leaves quickly (deep splitting buys
    nothing when a concrete witness is what's needed).  This set checks
    completeness — both tiers must return the same verdict — but is not
    part of the speedup claim, which is about the bound-provable side.
    """
    rng = np.random.default_rng(seed)
    from repro.certify import SplitConfig, certify_local_exact, certify_local_split

    verdicts_mono = []
    verdicts_split = []
    found = 0
    for x in domain.sample(rng, 6 * n_samples):
        epsilon = undecided_local_epsilon(layers, x, delta, domain, side="low")
        if epsilon is None:
            continue
        found += 1
        mono = certify_local_exact(layers, x, delta, domain=domain)
        verdicts_mono.append(monolithic_verdict(mono, epsilon))
        split = certify_local_split(
            layers, x, delta, epsilon, domain=domain,
            config=SplitConfig(max_domains=16, max_depth=3),
        )
        verdicts_split.append(split.detail["verdict"])
        if found == n_samples:
            break
    return {
        "queries": found,
        "verdicts_monolithic": verdicts_mono,
        "verdicts_split": verdicts_split,
        "verdicts_identical": verdicts_mono == verdicts_split,
    }


def local_speedup(layers, domain, delta, n_samples, seed=0) -> dict:
    """Certify a presolve-undecided query set monolithically and split."""
    rng = np.random.default_rng(seed)
    queries = []
    for x in domain.sample(rng, 4 * n_samples):
        epsilon = undecided_local_epsilon(layers, x, delta, domain)
        if epsilon is not None:
            queries.append((x, epsilon))
        if len(queries) == n_samples:
            break
    if not queries:
        # Nothing presolve-undecided (bounds got tight on this net):
        # report a zeroed case so _check fails with its diagnosis
        # instead of this function crashing on an empty stack.
        return {
            "queries": 0,
            "epsilon_targets": [],
            "time_monolithic": 0.0,
            "time_split": 0.0,
            "speedup": 0.0,
            "verdicts_monolithic": [],
            "verdicts_split": [],
            "verdicts_identical": True,
            "split_domains": [],
            "split_milp_leaves": [],
        }
    engine = BatchCertifier(max_workers=1)

    def run_batch(split: bool):
        qs = local_queries(
            layers,
            np.stack([x for x, _ in queries]),
            delta,
            domain=domain,
            presolve=False,
            split=split,
            epsilon=queries[0][1],  # placeholder; per-query ε set below
        )
        # Per-query ε targets (local_queries applies one ε to all).
        for q, (_, epsilon) in zip(qs, queries):
            q.epsilon = epsilon
        t0 = time.perf_counter()
        results = engine.run(qs)
        elapsed = time.perf_counter() - t0
        assert all(r.ok for r in results), [r.error for r in results if not r.ok]
        return elapsed, [r.certificate for r in results]

    # Warm-up one monolithic query: lazy imports / solver start-up must
    # not pollute whichever timed run goes first.
    engine.run(local_queries(layers, queries[0][0][None], delta, domain=domain))

    t_mono, certs_mono = run_batch(split=False)
    t_split, certs_split = run_batch(split=True)

    verdicts_mono = [
        monolithic_verdict(c, eps) for c, (_, eps) in zip(certs_mono, queries)
    ]
    verdicts_split = [c.detail["verdict"] for c in certs_split]
    return {
        "queries": len(queries),
        "epsilon_targets": [eps for _, eps in queries],
        "time_monolithic": t_mono,
        "time_split": t_split,
        "speedup": t_mono / max(t_split, 1e-9),
        "verdicts_monolithic": verdicts_mono,
        "verdicts_split": verdicts_split,
        "verdicts_identical": verdicts_mono == verdicts_split,
        "split_domains": [c.detail["domains"] for c in certs_split],
        "split_milp_leaves": [c.detail["milp_leaves"] for c in certs_split],
    }


def splitting_provable_target(layers, domain, delta, partitions=24) -> dict:
    """An ε the split tier can prove from bounds over a small partition.

    Greedy probe mirroring the tier's own priority rule: repeatedly
    bisect the subdomain with the loosest twin symbolic bound (on its
    gradient-weighted widest dimension) until ``partitions`` boxes
    exist.  A target a quarter of the way from the partition's worst
    bound up to the root bound is provable by pure splitting in about
    that many subdomains, while staying strictly below the root bound —
    i.e. presolve-undecided.

    Returns the target plus the bound-tightness ratio (root bound over
    partition bound, >1 — how much the partition tightened the symbolic
    bound), the splitting tier's quality claim that the benchmark gate
    tracks alongside the speedup.
    """
    from repro.certify.splitting import _bisect, _split_dimension

    sym = get_propagator("symbolic")

    def bound(box):
        return sym.propagate(layers, box, delta).output_variation_bounds()

    root_eps = bound(domain)
    boxes = [(domain, root_eps)]
    while len(boxes) < partitions:
        worst = max(range(len(boxes)), key=lambda i: float(boxes[i][1].max()))
        box, eps = boxes.pop(worst)
        dim = _split_dimension(layers, box, int(np.argmax(eps)))
        for child in _bisect(box, dim):
            boxes.append((child, bound(child)))
    partition_max = max(float(eps.max()) for _, eps in boxes)
    root_max = float(root_eps.max())
    return {
        "epsilon": partition_max + 0.25 * (root_max - partition_max),
        "root_bound": root_max,
        "partition_bound": partition_max,
        "partitions": partitions,
        "bound_tightness": root_max / max(partition_max, 1e-9),
    }


def timeout_scenario(layers, domain, delta, time_limit, max_domains=512) -> dict:
    """A global ε-query the monolithic tier times out on, split decides.

    The target comes from :func:`splitting_provable_target`, so pure
    bound splitting decides it quickly; the monolithic exact MILP gets
    ``time_limit`` per solve and the split tier gets the same number as
    its *whole-run* deadline (a stricter budget).
    """
    target = splitting_provable_target(layers, domain, delta)
    epsilon = target["epsilon"]
    presolve_undecided = (
        presolve_global(layers, domain, delta, epsilon) is None
    )

    t0 = time.perf_counter()
    mono = certify_exact_global(layers, domain, delta, time_limit=time_limit)
    t_mono = time.perf_counter() - t0
    t0 = time.perf_counter()
    split = certify_global_split(
        layers, domain, delta, epsilon,
        config=SplitConfig(time_limit=time_limit, max_domains=max_domains),
    )
    t_split = time.perf_counter() - t0
    return {
        "epsilon_target": epsilon,
        "root_bound": target["root_bound"],
        "partition_bound": target["partition_bound"],
        "bound_tightness": target["bound_tightness"],
        "presolve_undecided": presolve_undecided,
        "time_limit": time_limit,
        "monolithic_verdict": monolithic_verdict(mono, epsilon),
        "monolithic_exact": mono.exact,
        "monolithic_epsilon": mono.epsilon,
        "monolithic_limit_hits": mono.detail.get("limit_hits", 0),
        "split_verdict": split.detail["verdict"],
        "split_domains": split.detail["domains"],
        "split_milp_leaves": split.detail["milp_leaves"],
        "time_monolithic": t_mono,
        "time_split": t_split,
    }


def run(smoke: bool, emit=print, write_json=write_bench_json) -> dict:
    """Execute the bench; returns (and persists) the results dict.

    Smoke results are written under ``smoke_*`` keys so the committed
    full-mode numbers survive a CI smoke run (the JSON writer merges).
    """
    if smoke:
        rng = np.random.default_rng(0)
        cases = [
            ("smoke: random 6-14-14-2 net", tiny_chain(rng),
             Box.uniform(6, 0.0, 1.0), 0.12, 6),
        ]
        t_rng = np.random.default_rng(1)
        # Low input dim (fast bound convergence under splitting), wide
        # layers (a hard monolithic twin MILP): the regime where input
        # splitting wins outright.
        timeout_net = tiny_chain(t_rng, depth=3, width=28, in_dim=2)
        timeout_args = (timeout_net, Box.uniform(2, 0.0, 1.0), 0.1, 3.0)
    else:
        from repro.zoo import get_network

        mpg3 = get_network(3)
        mpg4 = get_network(4)
        mpg5 = get_network(5)
        cases = [
            (
                f"Table-1 DNN-3 ({mpg3.description})",
                mpg3.network.to_affine_layers(),
                Box.uniform(mpg3.network.input_dim, 0.0, 1.0),
                0.2, 8,
            ),
            (
                f"Table-1 DNN-4 ({mpg4.description})",
                mpg4.network.to_affine_layers(),
                Box.uniform(mpg4.network.input_dim, 0.0, 1.0),
                0.2, 8,
            ),
        ]
        # DNN-5 (64 hidden neurons, 128 ITNE binaries at δ=2): the
        # monolithic exact MILP cannot close the gap in 10 s/solve while
        # the split tier proves the same target from subdomain bounds.
        timeout_args = (
            mpg5.network.to_affine_layers(),
            Box.uniform(mpg5.network.input_dim, 0.0, 1.0),
            2.0, 10.0,
        )

    case_results = []
    rows = []
    for label, layers, box, delta, n_samples in cases:
        stats = local_speedup(layers, box, delta, n_samples)
        stats["label"] = label
        stats["refute_side"] = refute_side_agreement(
            layers, box, delta, max(n_samples // 2, 2)
        )
        case_results.append(stats)
        rows.append(
            [
                label,
                f"{stats['queries']}",
                f"{stats['time_monolithic']:.2f}s",
                f"{stats['time_split']:.2f}s",
                f"{stats['speedup']:.1f}x",
                "yes" if stats["verdicts_identical"] else "NO",
                f"{stats['refute_side']['queries']} "
                + ("yes" if stats["refute_side"]["verdicts_identical"] else "NO"),
            ]
        )
    emit(
        format_table(
            ["net", "queries", "t monolithic", "t split", "speedup",
             "verdicts =", "refute-side ="],
            rows,
            title="input-splitting tier vs monolithic MILP on "
            "presolve-undecided local ε-queries",
        )
    )

    timeout = timeout_scenario(*timeout_args)
    emit(
        f"deadline scenario (limit {timeout['time_limit']:g}s): "
        f"monolithic -> {timeout['monolithic_verdict']} "
        f"(exact={timeout['monolithic_exact']}, "
        f"{timeout['monolithic_limit_hits']} limited solves, "
        f"{timeout['time_monolithic']:.2f}s) | "
        f"split -> {timeout['split_verdict']} "
        f"({timeout['split_domains']} subdomains, "
        f"{timeout['time_split']:.2f}s) | "
        f"bound tightness {timeout['bound_tightness']:.2f}x "
        f"(root {timeout['root_bound']:.3f} -> partition "
        f"{timeout['partition_bound']:.3f})"
    )

    results = {"cases": case_results, "timeout_scenario": timeout}
    if smoke:
        payload = {
            "smoke_cases": case_results,
            "smoke_timeout_scenario": timeout,
            "smoke_speedup": max(c["speedup"] for c in case_results),
            "smoke_bound_tightness": timeout["bound_tightness"],
        }
    else:
        payload = {
            "cases": case_results,
            "timeout_scenario": timeout,
            "speedup": max(c["speedup"] for c in case_results),
            "bound_tightness": timeout["bound_tightness"],
        }
    if write_json is not None:
        write_json("splitting", payload)
    return results


def _check(results: dict, smoke: bool) -> list[str]:
    """Acceptance checks; returns a list of failure messages."""
    failures = []
    for case in results["cases"]:
        if not case["verdicts_identical"]:
            failures.append(
                f"{case['label']}: split verdicts diverged from the "
                f"monolithic MILP ({case['verdicts_split']} vs "
                f"{case['verdicts_monolithic']})"
            )
        if case["queries"] == 0:
            failures.append(f"{case['label']}: no presolve-undecided queries")
        if not case["refute_side"]["verdicts_identical"]:
            failures.append(
                f"{case['label']}: refute-side verdicts diverged "
                f"({case['refute_side']['verdicts_split']} vs "
                f"{case['refute_side']['verdicts_monolithic']})"
            )
    timeout = results["timeout_scenario"]
    if timeout["split_verdict"] == "undecided":
        failures.append("deadline scenario: split tier failed to decide")
    if timeout["bound_tightness"] <= 1.0:
        failures.append(
            "deadline scenario: partitioning did not tighten the root "
            f"symbolic bound (tightness {timeout['bound_tightness']:.2f}x)"
        )
    if timeout["monolithic_verdict"] != "undecided":
        failures.append(
            "deadline scenario: monolithic tier did not time out "
            "(scenario lost its point — raise the problem size)"
        )
    if not smoke:
        best = max(c["speedup"] for c in results["cases"])
        if best < 3.0:
            failures.append(
                f"best split speedup {best:.2f}x below the 3x target"
            )
    return failures


def test_bench_splitting(report, json_report):
    """Benchmark-suite entry: Table-1 nets, asserts the PR targets."""
    results = run(smoke=False, emit=report, write_json=json_report)
    failures = _check(results, smoke=False)
    assert not failures, failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="small random nets (CI mode; no model training)",
    )
    args = parser.parse_args(argv)
    results = run(smoke=args.smoke)
    failures = _check(results, smoke=args.smoke)
    for message in failures:
        print(f"FAIL: {message}", file=sys.stderr)
    if failures:
        return 1
    best = max(c["speedup"] for c in results["cases"])
    print(f"OK (best speedup {best:.1f}x, deadline scenario decided by "
          "split only)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
