"""Experiment E3 — Table I rows 1–5 (Auto MPG regressors).

Regenerates the Auto MPG half of Table I: certification runtime of the
Reluplex-style exact solver (t_R), the exact twin MILP (t_M) and
Algorithm 1 (t_our), plus the exact ε and our over-approximation ε̄.

The paper's timings show t_R and t_M exploding (8 h at 16 neurons, >24 h
at 32) while t_our grows mildly; to keep this suite runnable, the exact
baselines are only executed where they finish in seconds-to-minutes and
are reported as "skipped (blow-up)" beyond that.  Set REPRO_BENCH_FULL=1
to push the exact baselines one size further.
"""

import numpy as np
import pytest

from benchmarks.conftest import full_mode
from repro.bounds import Box
from repro.certify import (
    CertifierConfig,
    GlobalRobustnessCertifier,
    ReluplexStyleSolver,
    certify_exact_global,
)
from repro.utils import Timer, format_table
from repro.zoo import get_network

# Per-row budgets: which baselines run at which sizes (ids 1..5).
RELUPLEX_IDS = {1}
EXACT_IDS = {1, 2, 3}
OUR_IDS = (1, 2, 3, 4)
FULL_EXTRA_RELUPLEX = {2}
FULL_EXTRA_EXACT = {4}
FULL_EXTRA_OURS = (5,)


def certify_ours(entry):
    box = Box.uniform(entry.network.input_dim, 0.0, 1.0)
    half = max(2, entry.hidden_neurons // 2)
    cfg = CertifierConfig(window=2, refine_count=half)
    return GlobalRobustnessCertifier(entry.network, cfg).certify(box, entry.delta)


def test_table1_autompg(report, json_report, benchmark):
    ids = OUR_IDS + (FULL_EXTRA_OURS if full_mode() else ())
    reluplex_ids = RELUPLEX_IDS | (FULL_EXTRA_RELUPLEX if full_mode() else set())
    exact_ids = EXACT_IDS | (FULL_EXTRA_EXACT if full_mode() else set())

    rows = []
    records = []
    ours_first = None
    for dnn_id in ids:
        entry = get_network(dnn_id)
        box = Box.uniform(entry.network.input_dim, 0.0, 1.0)

        t_r = eps_exact = None
        if dnn_id in reluplex_ids:
            solver = ReluplexStyleSolver(max_nodes=200_000)
            try:
                with Timer() as timer:
                    cert_r = solver.certify(entry.network, box, entry.delta)
                t_r = timer.elapsed
                eps_exact = cert_r.epsilon
            except RuntimeError:
                t_r = float("inf")

        t_m = None
        if dnn_id in exact_ids:
            with Timer() as timer:
                cert_m = certify_exact_global(entry.network, box, entry.delta)
            t_m = timer.elapsed
            eps_exact = cert_m.epsilon

        ours = certify_ours(entry)
        if ours_first is None:
            ours_first = entry

        def fmt_t(t):
            if t is None:
                return "skipped (blow-up)"
            if t == float("inf"):
                return "> node budget"
            return f"{t:.2f}s"

        rows.append(
            [
                dnn_id,
                entry.hidden_neurons,
                fmt_t(t_r),
                fmt_t(t_m),
                f"{ours.solve_time:.2f}s",
                f"{eps_exact:.5f}" if eps_exact is not None else "-",
                f"{ours.epsilon:.5f}",
                f"{ours.epsilon / eps_exact:.2f}x" if eps_exact else "-",
            ]
        )
        records.append(
            {
                "dnn": dnn_id,
                "hidden_neurons": entry.hidden_neurons,
                "delta": entry.delta,
                "t_reluplex_s": None if t_r in (None, float("inf")) else t_r,
                "reluplex_over_budget": t_r == float("inf"),
                "t_exact_s": t_m,
                "t_ours_s": ours.solve_time,
                "eps_exact": eps_exact,
                "eps_ours": ours.epsilon,
            }
        )
        if eps_exact is not None:
            # Soundness on every row where the exact value is available.
            assert ours.epsilon >= eps_exact - 1e-7

    json_report("table1_autompg", {"rows": records})
    report(
        format_table(
            ["DNN", "neurons", "t_R", "t_M", "t_our", "ε exact", "ε̄ ours", "ratio"],
            rows,
            title="Table I (Auto MPG rows) — δ=0.001, W=2, half neurons "
            "refined.  Paper shape: t_R/t_M explode with size; ours "
            "grows mildly with ≈1.1–1.4x over-approximation.",
        )
    )

    # Benchmark the headline method on the smallest network.
    benchmark(lambda: certify_ours(ours_first))
