"""Experiment E4 — Table I rows 6–8 (convolutional digit classifiers).

For networks beyond exact certification, the paper sandwiches the true
global robustness between a dataset-wise PGD under-approximation ε̲ and
Algorithm 1's over-approximation ε̄, reporting two of the ten outputs.
The paper's claim to reproduce: ε̄ stays within a small factor (< 3x of
ε̲ is what DNN-6..8 show) at tractable runtime.

Scale note: the zoo's digit nets use a 14×14 canvas and reduced channel
counts (hundreds of hidden ReLUs instead of thousands) so this runs in
CI; DESIGN.md documents the substitution.  Only DNN-6 runs by default —
set REPRO_BENCH_FULL=1 for DNN-7/8.
"""

import numpy as np
import pytest

from benchmarks.conftest import full_mode
from repro.bounds import Box
from repro.certify import CertifierConfig, GlobalRobustnessCertifier, pgd_underapproximation
from repro.data import load_digits
from repro.runtime import BatchCertifier, global_query
from repro.utils import format_table
from repro.zoo import get_network

REPORTED_OUTPUTS = (0, 1)  # the paper reports 2 of the 10 logits


def test_table1_mnist(report, json_report, benchmark):
    ids = (6, 7, 8) if full_mode() else (6,)
    image_size = 14 if full_mode() else 10
    rows = []
    records = []
    bench_target = {}

    entries = {dnn_id: get_network(dnn_id, image_size=image_size) for dnn_id in ids}

    # The paper runs W=3 with 30 refined neurons per layer (hours on a
    # workstation); the default here is the cheap pure-LP pipeline on a
    # 10x10 canvas so the suite completes quickly.  FULL mode restores
    # the paper configuration on the 14x14 nets.  The per-DNN global
    # certifications are independent, so they go through the batch
    # engine (per-query wall time lands in the certificate itself).
    queries = [
        global_query(
            entries[dnn_id].network,
            Box.uniform(entries[dnn_id].network.input_dim, 0.0, 1.0),
            entries[dnn_id].delta,
            window=3 if full_mode() else 2,
            refine_count=30 if full_mode() else 0,
            time_limit=15.0 if full_mode() else None,
            tag=f"DNN-{dnn_id}",
        )
        for dnn_id in ids
    ]
    batch = BatchCertifier(max_workers=min(2, len(ids))).run(queries)

    for dnn_id, result in zip(ids, batch):
        assert result.ok, result.error
        cert = result.certificate
        entry = entries[dnn_id]
        net = entry.network
        if not bench_target:
            bench_target["net"] = net
            bench_target["delta"] = entry.delta

        images, _ = load_digits(60, size=image_size, seed=123)
        under = pgd_underapproximation(
            net,
            images,
            entry.delta,
            outputs=list(REPORTED_OUTPUTS),
            steps=30,
            clip_lo=0.0,
            clip_hi=1.0,
        )

        for out in REPORTED_OUTPUTS:
            ratio = cert.epsilons[out] / max(under.epsilons[out], 1e-12)
            rows.append(
                [
                    dnn_id,
                    entry.hidden_neurons,
                    f"logit {out}",
                    f"{cert.solve_time:.1f}s",
                    f"{under.epsilons[out]:.4f}",
                    f"{cert.epsilons[out]:.4f}",
                    f"{ratio:.2f}x",
                ]
            )
            records.append(
                {
                    "dnn": dnn_id,
                    "hidden_neurons": entry.hidden_neurons,
                    "image_size": image_size,
                    "output": out,
                    "t_ours_s": cert.solve_time,
                    "eps_under": float(under.epsilons[out]),
                    "eps_over": float(cert.epsilons[out]),
                }
            )
            # The sandwich must hold: ε̲ <= ε <= ε̄.
            assert cert.epsilons[out] >= under.epsilons[out] - 1e-9

    json_report("table1_mnist", {"rows": records})
    config_note = (
        "W=3, 30 refined (paper config)" if full_mode() else "W=2, pure LP (fast default)"
    )
    report(
        format_table(
            ["DNN", "neurons", "output", "t_our", "ε̲ (PGD)", "ε̄ (ours)", "ε̄/ε̲"],
            rows,
            title=f"Table I (digit-classifier rows) — δ=2/255, {config_note}.  "
            "Paper shape: meaningful over-approximation (ε̄ within a few x "
            "of ε̲) at tractable runtime.",
        )
    )

    # Benchmark one under-approximation pass (the cheap half).
    images, _ = load_digits(10, size=image_size, seed=5)
    benchmark(
        lambda: pgd_underapproximation(
            bench_target["net"],
            images,
            bench_target["delta"],
            outputs=[0],
            steps=10,
            clip_lo=0.0,
            clip_hi=1.0,
        )
    )
