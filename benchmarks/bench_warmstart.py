"""Benchmark — warm-started solver sessions vs cold per-leaf solves.

The :class:`~repro.milp.session.SolverSession` claim: when the split
tier solves many MILP leaves that differ only in input-variable bounds,
one shared session over the *root* encoding re-enters the simplex from
the previous leaf's basis and skips most pivots that a cold solve pays
again and again.  Both sides run the **same pure-python simplex**
(cold: ``python:simplex``, warm: ``python:simplex-warm``), so the pivot
counts are exactly comparable and fully deterministic.  Two
measurements:

* **session level** — one big-M encoding, a tiling of the input box
  into sub-boxes, every output extremum solved per tile through a cold
  session and through a warm session; optima must agree and total
  simplex pivots are compared (``pivot_speedup`` — the gated,
  machine-independent claim; wall time is reported as ``time_ratio``
  but never gated);
* **split tier** — presolve-undecided local ε-queries certified by
  :func:`~repro.certify.splitting.certify_local_split` cold and with
  ``SplitConfig(warm_start=True)``; every verdict must be identical
  (gated as exact-match ``verdicts_*`` counts) and the tier-level pivot
  ratio plus a ``bound_tightness`` ratio (root symbolic bound over the
  split tier's sound bound) are recorded.

Run standalone (used by CI in smoke mode, no model training needed)::

    PYTHONPATH=src python -m benchmarks.bench_warmstart --smoke

or as part of the benchmark suite::

    PYTHONPATH=src python -m pytest benchmarks/bench_warmstart.py -s
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from benchmarks.bench_splitting import tiny_chain, undecided_local_epsilon
from benchmarks.conftest import write_bench_json
from repro.bounds import Box, get_propagator
from repro.certify import SplitConfig, certify_local_split
from repro.certify.presolve import perturbation_ball, variation_from_reference
from repro.encoding import encode_single_network
from repro.milp.expr import as_expr
from repro.nn.affine import affine_chain_forward
from repro.utils import format_table

#: Cold / warm sides of every comparison: the same B&B backend over the
#: same pure-python simplex, differing only in basis reuse.
COLD_BACKEND = "python:simplex"
WARM_BACKEND = "python:simplex-warm"


def tile_box(box: Box, tiles: int) -> list[Box]:
    """Slice ``box`` into ``tiles`` equal slabs along its widest side."""
    widths = np.asarray(box.hi, dtype=float) - np.asarray(box.lo, dtype=float)
    dim = int(np.argmax(widths))
    edges = np.linspace(float(box.lo[dim]), float(box.hi[dim]), tiles + 1)
    out = []
    for k in range(tiles):
        lo = np.asarray(box.lo, dtype=float).copy()
        hi = np.asarray(box.hi, dtype=float).copy()
        lo[dim], hi[dim] = edges[k], edges[k + 1]
        out.append(Box(lo, hi))
    return out


def session_leaf_resolves(layers, root: Box, tiles: int) -> dict:
    """Per-tile output extrema: cold session vs warm session.

    Mirrors what the split tier's leaves do — the constraint matrix is
    the root big-M encoding, each tile only tightens the input-variable
    bounds — isolated from bounding/attacks so the pivot comparison is
    pure solver work.
    """
    boxes = tile_box(root, tiles)

    def run(backend: str, warm: bool):
        enc = encode_single_network(layers, root)
        session = enc.model.open_session(backend=backend, warm_start=warm)
        objectives = []
        for handle in enc.output:
            expr = as_expr(handle)
            objectives.extend([(expr, "min"), (expr, "max")])
        optima = []
        pivots = 0
        t0 = time.perf_counter()
        try:
            for box in boxes:
                session.set_var_bounds(enc.input_vars, box.lo, box.hi)
                for result in session.solve_objectives(objectives):
                    optima.append(result.objective)
                    pivots += result.iterations
        finally:
            session.close()
        return time.perf_counter() - t0, pivots, np.asarray(optima)

    t_cold, cold_pivots, cold_opt = run(COLD_BACKEND, warm=False)
    t_warm, warm_pivots, warm_opt = run(WARM_BACKEND, warm=True)
    return {
        "tiles": tiles,
        "solves": int(cold_opt.size),
        "cold_pivots": cold_pivots,
        "warm_pivots": warm_pivots,
        "pivot_speedup": cold_pivots / max(warm_pivots, 1),
        "time_cold": t_cold,
        "time_warm": t_warm,
        "time_ratio": t_cold / max(t_warm, 1e-9),
        "optima_agree": bool(
            np.allclose(cold_opt, warm_opt, rtol=1e-7, atol=1e-7)
        ),
        "max_optimum_gap": float(np.abs(cold_opt - warm_opt).max()),
    }


def split_tier_comparison(layers, domain: Box, delta: float, n_queries: int,
                          seed: int = 0) -> dict:
    """Warm vs cold split-tier runs on presolve-undecided ε-queries."""
    rng = np.random.default_rng(seed)
    sym = get_propagator("symbolic")
    queries = []
    for x in domain.sample(rng, 8 * n_queries):
        # Certify side: the largest presolve-undecided target sits
        # between the true variation and the root symbolic bound.
        epsilon = undecided_local_epsilon(layers, x, delta, domain)
        if epsilon is None:
            continue
        queries.append((x, epsilon))
        # Refute side: a target strictly below a sampled witness's
        # variation is refutable by construction, so the verdict-count
        # gate covers both verdict kinds.
        ball = perturbation_ball(x, delta, domain)
        base = affine_chain_forward(layers, x)
        sampled = max(
            float(np.abs(affine_chain_forward(layers, xh) - base).max())
            for xh in ball.sample(rng, 64)
        )
        if sampled > 0.0:
            queries.append((x, 0.5 * sampled))
        if len(queries) >= n_queries:
            break

    knobs = dict(max_domains=8, max_depth=2, backend=COLD_BACKEND)

    def run(warm: bool):
        verdicts, pivots, leaves, bounds_ratio = [], 0, 0, []
        t0 = time.perf_counter()
        for x, epsilon in queries:
            cert = certify_local_split(
                layers, x, delta, epsilon, domain=domain,
                config=SplitConfig(warm_start=warm, **knobs),
            )
            verdicts.append(cert.detail["verdict"])
            pivots += cert.detail.get("simplex_pivots", 0)
            leaves += cert.detail["milp_leaves"]
            if cert.detail["verdict"] == "certified":
                ball = perturbation_ball(x, delta, domain)
                out = sym.propagate(layers, ball).output
                root = variation_from_reference(
                    out.lo, out.hi, affine_chain_forward(layers, x)
                )
                bounds_ratio.append(
                    float(root.max()) / max(float(cert.epsilon), 1e-12)
                )
        elapsed = time.perf_counter() - t0
        return verdicts, pivots, leaves, bounds_ratio, elapsed

    v_cold, p_cold, l_cold, _, t_cold = run(warm=False)
    v_warm, p_warm, l_warm, ratio_warm, t_warm = run(warm=True)
    return {
        "queries": len(queries),
        "epsilon_targets": [eps for _, eps in queries],
        "verdicts_cold": v_cold,
        "verdicts_warm": v_warm,
        "verdicts_identical_bool": v_cold == v_warm,
        "verdicts_certified": v_warm.count("certified"),
        "verdicts_refuted": v_warm.count("refuted"),
        "verdicts_undecided": v_warm.count("undecided"),
        "milp_leaves_cold": l_cold,
        "milp_leaves_warm": l_warm,
        "cold_pivots": p_cold,
        "warm_pivots": p_warm,
        "split_pivot_speedup": p_cold / max(p_warm, 1),
        "time_cold": t_cold,
        "time_warm": t_warm,
        "time_ratio": t_cold / max(t_warm, 1e-9),
        "bound_tightness": (
            float(np.mean(ratio_warm)) if ratio_warm else 0.0
        ),
    }


def run(smoke: bool, emit=print, write_json=write_bench_json) -> dict:
    """Execute the bench; returns (and persists) the results dict.

    Smoke results are written under ``smoke_*`` keys so the committed
    full-mode numbers survive a CI smoke run (the JSON writer merges).
    """
    if smoke:
        rng = np.random.default_rng(7)
        session_net = tiny_chain(rng, depth=2, width=6, in_dim=3, out_dim=2)
        session_args = (session_net, Box.uniform(3, 0.0, 1.0), 4)
        split_rng = np.random.default_rng(11)
        split_net = tiny_chain(split_rng, depth=2, width=7, in_dim=4,
                               out_dim=2)
        split_args = (split_net, Box.uniform(4, 0.0, 1.0), 0.12, 4)
    else:
        rng = np.random.default_rng(7)
        session_net = tiny_chain(rng, depth=3, width=8, in_dim=4, out_dim=2)
        session_args = (session_net, Box.uniform(4, 0.0, 1.0), 8)
        split_rng = np.random.default_rng(11)
        split_net = tiny_chain(split_rng, depth=3, width=8, in_dim=4,
                               out_dim=2)
        split_args = (split_net, Box.uniform(4, 0.0, 1.0), 0.12, 6)

    session = session_leaf_resolves(*session_args)
    split = split_tier_comparison(*split_args)

    emit(
        format_table(
            ["level", "solves/queries", "cold pivots", "warm pivots",
             "pivot speedup", "t cold", "t warm"],
            [
                ["session", f"{session['solves']}",
                 f"{session['cold_pivots']}", f"{session['warm_pivots']}",
                 f"{session['pivot_speedup']:.1f}x",
                 f"{session['time_cold']:.2f}s",
                 f"{session['time_warm']:.2f}s"],
                ["split tier", f"{split['queries']}",
                 f"{split['cold_pivots']}", f"{split['warm_pivots']}",
                 f"{split['split_pivot_speedup']:.1f}x",
                 f"{split['time_cold']:.2f}s",
                 f"{split['time_warm']:.2f}s"],
            ],
            title="warm-started sessions vs cold solves "
            f"({COLD_BACKEND} vs {WARM_BACKEND})",
        )
    )
    emit(
        f"split tier: verdicts "
        + ("identical" if split["verdicts_identical_bool"] else "DIVERGED")
        + f" ({split['verdicts_certified']} certified, "
        f"{split['verdicts_refuted']} refuted, "
        f"{split['verdicts_undecided']} undecided); "
        f"bound tightness {split['bound_tightness']:.2f}x root"
    )

    results = {"session": session, "split": split}
    payload = (
        {f"smoke_{key}": value for key, value in results.items()}
        if smoke
        else results
    )
    if write_json is not None:
        write_json("warmstart", payload)
    return results


def _check(results: dict, smoke: bool) -> list[str]:
    """Acceptance checks; returns a list of failure messages."""
    failures = []
    session = results["session"]
    if not session["optima_agree"]:
        failures.append(
            "session level: warm optima diverged from cold "
            f"(max gap {session['max_optimum_gap']:.2e})"
        )
    if session["pivot_speedup"] <= 1.0:
        failures.append(
            f"session level: warm start saved no pivots "
            f"({session['cold_pivots']} cold vs {session['warm_pivots']})"
        )
    split = results["split"]
    if split["queries"] == 0:
        failures.append("split tier: no presolve-undecided queries found")
    if not split["verdicts_identical_bool"]:
        failures.append(
            f"split tier: warm verdicts diverged from cold "
            f"({split['verdicts_warm']} vs {split['verdicts_cold']})"
        )
    if split["milp_leaves_warm"] == 0:
        failures.append(
            "split tier: no MILP leaves reached (bounds decided "
            "everything — warm start untested)"
        )
    if split["split_pivot_speedup"] <= 1.0:
        failures.append(
            f"split tier: warm start saved no pivots "
            f"({split['cold_pivots']} cold vs {split['warm_pivots']})"
        )
    return failures


def test_bench_warmstart(report, json_report):
    """Benchmark-suite entry: asserts the PR targets in full mode."""
    results = run(smoke=False, emit=report, write_json=json_report)
    failures = _check(results, smoke=False)
    assert not failures, failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="small random nets (CI mode; no model training)",
    )
    args = parser.parse_args(argv)
    results = run(smoke=args.smoke)
    failures = _check(results, smoke=args.smoke)
    for message in failures:
        print(f"FAIL: {message}", file=sys.stderr)
    if failures:
        return 1
    print(
        f"OK (session pivot speedup "
        f"{results['session']['pivot_speedup']:.1f}x, split tier "
        f"{results['split']['split_pivot_speedup']:.1f}x at identical "
        "verdicts)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
