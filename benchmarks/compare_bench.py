"""Diff two ``BENCH_*.json`` files and gate on recorded-claim regressions.

The benchmark suite writes machine-readable ``BENCH_<name>.json`` files
(uploaded as CI artifacts) whose metric entries are the recorded claims
of their PRs.  This tool compares a baseline file against a fresh one
and fails when a claim regressed.  Three metric classes, keyed by the
leaf name of each numeric JSON entry:

* ``*speedup*`` / ``*tightness*`` — **ratio claims** (higher is
  better): fail when the fresh value dropped by more than the threshold
  (default 20 %).  Ratios rather than raw timings, so the gate is
  stable across machines of different speeds.
* ``*verdict*`` — **correctness counts** (e.g. ``verdicts_certified``):
  fail on ANY change.  A verdict flip between benchmark runs is a
  soundness signal, not a performance wobble, so no threshold applies.

Usage::

    PYTHONPATH=src python -m benchmarks.compare_bench \\
        /tmp/BENCH_splitting_base.json benchmarks/BENCH_splitting.json \\
        [--threshold 0.2]

Exit status: 0 when no compared metric regressed, 1 otherwise.  Metrics
present in only one file are reported but never fail the gate (a new
benchmark section must not fail its own introduction).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def numeric_leaves(data, prefix=""):
    """Flatten a JSON tree into ``{dotted.path: float}`` leaves."""
    leaves = {}
    if isinstance(data, dict):
        for key, value in data.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            leaves.update(numeric_leaves(value, path))
    elif isinstance(data, list):
        for index, value in enumerate(data):
            leaves.update(numeric_leaves(value, f"{prefix}[{index}]"))
    elif isinstance(data, (int, float)) and not isinstance(data, bool):
        leaves[prefix] = float(data)
    return leaves


def metric_class(path: str) -> str | None:
    """Gate class of a numeric leaf, from its final name segment.

    ``"ratio"`` (threshold-gated, higher better), ``"verdict"``
    (exact-match-gated) or ``None`` (not gated — plain timings and
    problem sizes are recorded but never fail CI).
    """
    leaf = path.rsplit(".", 1)[-1].lower()
    if "speedup" in leaf or "tightness" in leaf:
        return "ratio"
    if "verdict" in leaf:
        return "verdict"
    return None


def gated_metrics(leaves: dict) -> dict:
    """Every gated leaf: ``{path: (class, value)}``."""
    metrics = {}
    for path, value in leaves.items():
        cls = metric_class(path)
        if cls is not None:
            metrics[path] = (cls, value)
    return metrics


def speedup_metrics(leaves: dict) -> dict:
    """The performance claims: every numeric leaf named ``*speedup*``."""
    return {
        path: value
        for path, value in leaves.items()
        if "speedup" in path.rsplit(".", 1)[-1].lower()
    }


def compare(base: dict, fresh: dict, threshold: float) -> tuple[list, list]:
    """Compare gated metrics; returns (report_rows, regressions)."""
    base_metrics = gated_metrics(numeric_leaves(base))
    fresh_metrics = gated_metrics(numeric_leaves(fresh))
    rows = []
    regressions = []
    for path in sorted(set(base_metrics) | set(fresh_metrics)):
        cls, old = base_metrics.get(path, (None, None))
        new_cls, new = fresh_metrics.get(path, (None, None))
        cls = cls or new_cls
        if old is None:
            rows.append((path, "-", f"{new:.2f}", "new metric"))
            continue
        if new is None:
            rows.append((path, f"{old:.2f}", "-", "metric removed"))
            continue
        change = (new - old) / old if old else 0.0
        status = "ok"
        if cls == "verdict":
            if new != old:
                status = f"VERDICT DRIFT ({old:g} -> {new:g})"
                regressions.append(path)
        elif new < old * (1.0 - threshold):
            status = f"REGRESSION ({change:+.0%})"
            regressions.append(path)
        elif change:
            status = f"{change:+.0%}"
        rows.append((path, f"{old:.2f}", f"{new:.2f}", status))
    return rows, regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="baseline BENCH_*.json")
    parser.add_argument("fresh", help="freshly generated BENCH_*.json")
    parser.add_argument(
        "--threshold", type=float, default=0.2,
        help="relative speedup drop that fails the gate (default 0.2)",
    )
    args = parser.parse_args(argv)
    if not 0.0 < args.threshold < 1.0:
        parser.error("--threshold must be in (0, 1)")

    base = json.loads(Path(args.baseline).read_text())
    fresh = json.loads(Path(args.fresh).read_text())
    rows, regressions = compare(base, fresh, args.threshold)

    if not rows:
        print("no gated metrics found in either file — nothing to gate")
        return 0
    width = max(len(r[0]) for r in rows)
    print(f"{'metric':<{width}} | baseline | fresh | status")
    for path, old, new, status in rows:
        print(f"{path:<{width}} | {old:>8} | {new:>5} | {status}")
    if regressions:
        print(
            f"\nFAIL: {len(regressions)} gated metric(s) regressed "
            f"(ratio threshold {args.threshold:.0%}; verdict counts exact): "
            f"{', '.join(regressions)}",
            file=sys.stderr,
        )
        return 1
    print("\nOK: no gated metric regressed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
