"""Shared fixtures for the benchmark suite.

Every benchmark prints the table/figure rows it regenerates (run pytest
with ``-s`` to see them inline; they are also appended to
``benchmarks/results.txt``) and dumps a machine-readable
``BENCH_<name>.json`` (timings + problem sizes) next to it, so the
performance trajectory can be tracked across PRs.  Set
``REPRO_BENCH_FULL=1`` to run the slow variants (larger Table I rows,
longer simulations).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np
import pytest

RESULTS_PATH = Path(__file__).parent / "results.txt"
BENCH_DIR = Path(__file__).parent


def full_mode() -> bool:
    """Whether the slow benchmark variants are enabled."""
    return os.environ.get("REPRO_BENCH_FULL", "0") == "1"


def _jsonable(value):
    """Fallback encoder: numpy scalars/arrays to plain Python."""
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, np.generic):
        return value.item()
    raise TypeError(f"not JSON-serializable: {type(value)!r}")


def write_bench_json(name: str, payload: dict) -> Path:
    """Write (or merge into) ``benchmarks/BENCH_<name>.json``.

    Merging lets one bench module report several test functions into a
    single file.  Also callable from the standalone ``--smoke`` mains,
    outside pytest.
    """
    path = BENCH_DIR / f"BENCH_{name}.json"
    data = {}
    if path.exists():
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError:
            pass  # stale/corrupt file: overwrite
    # Fresh metadata wins over whatever a stale file claims.
    data.update({"benchmark": name, "full_mode": full_mode()})
    data.update(payload)
    path.write_text(json.dumps(data, indent=2, default=_jsonable) + "\n")
    return path


@pytest.fixture(scope="session")
def report():
    """Callable that prints a block and appends it to results.txt."""
    RESULTS_PATH.write_text("")

    def emit(block: str) -> None:
        print("\n" + block)
        with RESULTS_PATH.open("a") as fh:
            fh.write(block + "\n\n")

    return emit


@pytest.fixture(scope="session")
def json_report():
    """Callable ``(name, payload) -> Path`` writing ``BENCH_<name>.json``.

    Stale JSON artifacts are removed once per session so a suite run
    leaves exactly the files of the benchmarks that executed.
    """
    for stale in BENCH_DIR.glob("BENCH_*.json"):
        stale.unlink()
    return write_bench_json
