"""Shared fixtures for the benchmark suite.

Every benchmark prints the table/figure rows it regenerates (run pytest
with ``-s`` to see them inline; they are also appended to
``benchmarks/results.txt``).  Set ``REPRO_BENCH_FULL=1`` to run the
slow variants (larger Table I rows, longer simulations).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_PATH = Path(__file__).parent / "results.txt"


def full_mode() -> bool:
    """Whether the slow benchmark variants are enabled."""
    return os.environ.get("REPRO_BENCH_FULL", "0") == "1"


@pytest.fixture(scope="session")
def report():
    """Callable that prints a block and appends it to results.txt."""
    RESULTS_PATH.write_text("")

    def emit(block: str) -> None:
        print("\n" + block)
        with RESULTS_PATH.open("a") as fh:
            fh.write(block + "\n\n")

    return emit
