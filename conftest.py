# Root conftest: puts the repository root on sys.path so the test suite
# can import the in-repo tooling package (`tools.analysis`) regardless
# of how pytest was invoked (`pytest` vs `python -m pytest`).
