"""The §III-B case study: verify closed-loop ACC safety end to end.

Pipeline (identical to the paper's):
  1. train a perception CNN that estimates lead-vehicle distance from
     camera frames;
  2. profile its model inaccuracy Δd1 on clean data;
  3. certify its global robustness ε̄ = Δd2 at δ = 2/255 (Algorithm 1);
  4. compute the largest estimation error ē the closed loop tolerates
     (robust control-invariant set);
  5. verdict: safe iff Δd1 + Δd2 ≤ ē;
  6. validate empirically: closed-loop FGSM simulations at increasing δ.

Run:
    python examples/acc_safety_verification.py        # ~5-10 minutes
    QUICK=1 python examples/acc_safety_verification.py  # smaller certs
"""

import os

from repro.certify import CertifierConfig
from repro.control import (
    CameraModel,
    ClosedLoopSimulator,
    train_perception_model,
    verify_acc_safety,
)
from repro.utils import format_table


def main() -> None:
    quick = os.environ.get("QUICK", "0") == "1"

    # 1. Perception model, trained under hard Lipschitz caps — the
    #    property that makes a tight *global* certificate achievable.
    #    (The full-size model is cached under .models/ after first use.)
    print("training perception CNN (Lipschitz-capped)...")
    if quick:
        perception = train_perception_model(n_samples=800, epochs=150, seed=0)
    else:
        from repro.control import default_case_study_model

        perception = default_case_study_model(seed=0)
    print(f"  model inaccuracy Δd1 = {perception.model_inaccuracy:.4f} "
          f"(paper: 0.0730)")

    # 2-5. Design-time verification.
    print("certifying global robustness + computing invariant set...")
    verdict = verify_acc_safety(
        perception,
        delta=2 / 255,
        certifier_config=CertifierConfig(
            window=1 if quick else 2,
            refine_count=0,
        ),
    )
    print()
    print(verdict.summary())
    print(f"(paper: Δd1=0.0730, Δd2=0.0568, total=0.1298 ≤ ē=0.14 ⇒ SAFE)")

    # 6. Empirical validation: FGSM attack sweep in the closed loop.
    print("\nrunning closed-loop FGSM sweep...")
    simulator = ClosedLoopSimulator(perception)
    episodes = 4 if quick else 10
    steps = 80 if quick else 200
    rows = []
    for delta in (0.0, 2 / 255, 5 / 255, 10 / 255):
        stats = simulator.run_campaign(
            episodes=episodes,
            steps=steps,
            attack_delta=delta,
            error_bound=verdict.tolerated_error,
            seed=3,
            initial_spread=0.05,
        )
        rows.append(
            [
                f"{delta * 255:.0f}/255",
                f"{stats['max_estimation_error']:.4f}",
                f"{stats['exceed_fraction']:.0%}",
                f"{stats['unsafe_fraction']:.0%}",
            ]
        )
    print(format_table(
        ["attack δ", "max |Δd|", "episodes exceeding ē", "unsafe episodes"],
        rows,
        title=f"Closed-loop FGSM sweep ({episodes} episodes × {steps} steps)",
    ))
    print(
        "\nPaper observation to compare: safe with no exceedance at the "
        "certified δ=2/255; exceedances at 5/255; ~17% unsafe at 10/255."
    )


if __name__ == "__main__":
    main()
