"""Certify a convolutional digit classifier (Table I rows 6-8 workflow).

Trains a small CNN on the synthetic digit dataset, then sandwiches its
global robustness between a dataset-wise PGD under-approximation and
Algorithm 1's certified over-approximation for two output logits —
exactly the methodology the paper uses for networks too large for exact
certification.

Run:
    python examples/certify_digit_classifier.py
"""

import numpy as np

from repro.bounds import Box
from repro.certify import CertifierConfig, GlobalRobustnessCertifier, pgd_underapproximation
from repro.data import load_digits, train_test_split
from repro.nn import Conv2D, Dense, Flatten, Network, TrainConfig, train
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.optimizers import Adam
from repro.utils import format_table


def main() -> None:
    # 1. Train a conv classifier on synthetic 12x12 digit glyphs.
    size = 12
    rng = np.random.default_rng(1)
    x, y = load_digits(1200, size=size, seed=1)
    x_tr, y_tr, x_te, y_te = train_test_split(x, y, seed=1)

    net = Network(
        (1, size, size),
        [
            Conv2D(1, 4, kernel_size=3, stride=2, relu=True, rng=rng),
            Flatten(),
            Dense(4 * 5 * 5, 24, relu=True, rng=rng),
            Dense(24, 10, rng=rng),
        ],
    )
    train(
        net, x_tr, y_tr,
        loss=SoftmaxCrossEntropy(),
        optimizer=Adam(lr=2e-3),
        config=TrainConfig(epochs=25, batch_size=64),
    )
    acc = SoftmaxCrossEntropy.accuracy(net.forward(x_te), y_te)
    print(f"test accuracy: {acc:.2%}, hidden ReLU neurons: {net.num_hidden_neurons()}")

    # 2. Certify at the paper's pixel perturbation delta = 2/255.
    delta = 2 / 255
    domain = Box.uniform(net.input_dim, 0.0, 1.0)
    outputs = [0, 1]  # the paper reports 2 of 10 logits

    certifier = GlobalRobustnessCertifier(
        net, CertifierConfig(window=2, refine_count=6, milp_time_limit=5.0)
    )
    cert = certifier.certify(domain, delta)
    print(f"\ncertified in {cert.solve_time:.1f}s "
          f"({cert.lp_count} LPs, {cert.milp_count} MILPs)")

    under = pgd_underapproximation(
        net, x_te[:40], delta, outputs=outputs, steps=30,
        clip_lo=0.0, clip_hi=1.0,
    )

    rows = []
    for j in outputs:
        rows.append(
            [
                f"logit {j}",
                f"{under.epsilons[j]:.4f}",
                f"{cert.epsilons[j]:.4f}",
                f"{cert.epsilons[j] / max(under.epsilons[j], 1e-12):.2f}x",
            ]
        )
    print(format_table(
        ["output", "ε̲ (PGD lower)", "ε̄ (certified upper)", "gap"],
        rows,
        title=f"Global robustness sandwich at δ = 2/255",
    ))
    print(
        "\nAny true global robustness ε lies inside the sandwich; the "
        "certified ε̄ is a sound, deterministic guarantee over the whole "
        "pixel domain, not just the test set."
    )


if __name__ == "__main__":
    main()
