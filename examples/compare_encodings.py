"""Deep-dive: why interleaving beats the basic twin encoding.

Sweeps the perturbation bound δ on a trained network and plots (as text)
how the certified bound degrades under four pipelines: exact, ITNE-LPR,
BTNE-LPR, and interval arithmetic (twin IBP).  Shows the key phenomenon:
BTNE's bound is *flat* in δ (it loses the perturbation constraint beyond
the input layer), while ITNE tracks the exact curve.

Run:
    python examples/compare_encodings.py
"""

import numpy as np

from repro.bounds import Box, propagate_twin_box
from repro.certify import CertifierConfig, GlobalRobustnessCertifier, certify_exact_global
from repro.certify.comparisons import certify_global_btne_nd
from repro.data import load_auto_mpg
from repro.nn import Dense, Network, TrainConfig, train
from repro.utils import format_table


def main() -> None:
    rng = np.random.default_rng(2)
    x, y = load_auto_mpg(300, seed=2)
    net = Network(
        (7,),
        [Dense(7, 5, relu=True, rng=rng), Dense(5, 5, relu=True, rng=rng),
         Dense(5, 1, rng=rng)],
    )
    train(net, x, y, config=TrainConfig(epochs=60, batch_size=32))
    domain = Box.uniform(7, 0.0, 1.0)
    chain = net.to_affine_layers()

    rows = []
    for delta in (0.0005, 0.001, 0.002, 0.005, 0.01):
        exact = certify_exact_global(net, domain, delta)
        itne = GlobalRobustnessCertifier(
            net, CertifierConfig(window=2, refine_count=0)
        ).certify(domain, delta)
        btne = certify_global_btne_nd(net, domain, delta)
        twin_ibp = propagate_twin_box(chain, domain, delta)
        ibp_eps = float(
            np.maximum(
                np.abs(twin_ibp.output_distance.lo),
                np.abs(twin_ibp.output_distance.hi),
            ).max()
        )
        rows.append(
            [
                f"{delta:g}",
                f"{exact.epsilon:.5f}",
                f"{itne.epsilon:.5f}",
                f"{ibp_eps:.5f}",
                f"{btne.epsilon:.5f}",
            ]
        )

    print(format_table(
        ["δ", "exact ε", "ITNE-LPR ε̄", "twin-IBP ε̄", "BTNE-ND ε̄"],
        rows,
        title="Certified global robustness vs perturbation bound",
    ))
    print(
        "\nNote how BTNE-ND's column does not change with δ: once the "
        "hidden layers lose the distance variables, the bound degenerates "
        "to the difference of two independent output ranges.  Twin IBP is "
        "δ-aware but loose; ITNE-LPR follows the exact curve closely at a "
        "tiny fraction of the cost."
    )


if __name__ == "__main__":
    main()
