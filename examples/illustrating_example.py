"""The paper's Fig. 1/Fig. 4 illustrating example, end to end.

Builds the 2-2-1 network of Fig. 1 and walks through every certification
variant of Fig. 4, printing our numbers next to the paper's.

Run:
    python examples/illustrating_example.py
"""

import numpy as np

from repro.bounds import Box
from repro.certify import (
    CertifierConfig,
    GlobalRobustnessCertifier,
    certify_exact_global,
    certify_local_exact,
    certify_local_lpr,
    certify_local_nd,
)
from repro.certify.comparisons import certify_global_btne_lpr, certify_global_btne_nd
from repro.nn.affine import AffineLayer
from repro.utils import format_table


def main() -> None:
    # Fig. 1: y1 = x1 + 0.5 x2, y2 = -0.5 x1 + x2 (ReLU), out = relu(x1-x2).
    layers = [
        AffineLayer(np.array([[1.0, 0.5], [-0.5, 1.0]]), np.zeros(2), relu=True),
        AffineLayer(np.array([[1.0, -1.0]]), np.zeros(1), relu=True),
    ]
    domain = Box.uniform(2, -1.0, 1.0)
    delta = 0.1

    # --- Local robustness around x0 = [0, 0] (Fig. 4 top) ---------------
    x0 = np.zeros(2)
    local_rows = []
    for name, cert, paper in [
        ("exact", certify_local_exact(layers, x0, delta, domain=domain), "[0, 0.125]"),
        ("ND", certify_local_nd(layers, x0, delta, window=1, domain=domain), "[0, 0.15]"),
        ("LPR", certify_local_lpr(layers, x0, delta, domain=domain), "[0, 0.144]"),
    ]:
        local_rows.append(
            [name, f"[{cert.output_lo[0]:.4g}, {cert.output_hi[0]:.4g}]", paper]
        )
    print(format_table(["method", "x̂(2) range", "paper"], local_rows,
                       title="Local robustness (x0=[0,0], δ=0.1)"))

    # --- Global robustness over X = [-1,1]^2 (Fig. 4 bottom) ------------
    exact = certify_exact_global(layers, domain, delta)
    itne_nd = GlobalRobustnessCertifier(
        layers, CertifierConfig(window=1, refine_count=10**6)
    ).certify(domain, delta)
    itne_lpr = GlobalRobustnessCertifier(
        layers, CertifierConfig(window=2, refine_count=0)
    ).certify(domain, delta)
    btne_nd = certify_global_btne_nd(layers, domain, delta, window=1)
    btne_lpr = certify_global_btne_lpr(layers, domain, delta)

    global_rows = [
        ["exact MILP", f"{exact.epsilon:.4g}", "0.2"],
        ["BTNE + ND", f"{btne_nd.epsilon:.4g}", "1.5"],
        ["BTNE + LPR", f"{btne_lpr.epsilon:.4g}", "2.85"],
        ["ITNE + ND", f"{itne_nd.epsilon:.4g}", "0.3"],
        ["ITNE + LPR", f"{itne_lpr.epsilon:.4g}", "0.275"],
    ]
    print()
    print(format_table(["method", "ε", "paper"], global_rows,
                       title="Global robustness (X=[-1,1]^2, δ=0.1)"))

    print(
        "\nTakeaway: without the interleaving distance variables (BTNE), "
        "decomposition and relaxation lose the correlation between the "
        "copies and blow up by ~7x; with ITNE they stay within 1.25-1.5x "
        "of the exact bound."
    )


if __name__ == "__main__":
    main()
