"""Quickstart: certify the global robustness of a small trained network.

Trains a two-hidden-layer regressor on the synthetic Auto MPG data and
certifies it three ways — exact twin-network MILP, the Reluplex-style
case-splitting solver, and the paper's Algorithm 1 — then confirms the
sound sandwich ``ε̲(PGD) ≤ ε(exact) ≤ ε̄(Algorithm 1)``.

Run:
    python examples/quickstart.py
"""

import numpy as np

from repro.bounds import Box
from repro.certify import (
    CertifierConfig,
    GlobalRobustnessCertifier,
    ReluplexStyleSolver,
    certify_exact_global,
    pgd_underapproximation,
)
from repro.data import load_auto_mpg
from repro.nn import Dense, Network, TrainConfig, train


def main() -> None:
    # 1. Train a small ReLU regressor on synthetic Auto MPG data.
    rng = np.random.default_rng(0)
    x, y = load_auto_mpg(300, seed=0)
    net = Network(
        (7,),
        [Dense(7, 6, relu=True, rng=rng), Dense(6, 6, relu=True, rng=rng),
         Dense(6, 1, rng=rng)],
    )
    history = train(net, x, y, config=TrainConfig(epochs=60, batch_size=32))
    print(f"trained: final loss {history.final_loss:.5f}, "
          f"{net.num_hidden_neurons()} hidden ReLU neurons")

    # 2. Problem 1: for delta, how small can the output variation bound be?
    domain = Box.uniform(7, 0.0, 1.0)
    delta = 0.001

    exact = certify_exact_global(net, domain, delta)
    print(exact.summary())

    reluplex = ReluplexStyleSolver().certify(net, domain, delta)
    print(reluplex.summary())

    ours = GlobalRobustnessCertifier(
        net, CertifierConfig(window=2, refine_count=6)
    ).certify(domain, delta)
    print(ours.summary())

    under = pgd_underapproximation(
        net, x[:40], delta, steps=25, clip_lo=0.0, clip_hi=1.0
    )
    print(under.summary())

    # 3. The certification sandwich.
    print(
        f"\nsandwich: PGD {under.epsilon:.6f} <= exact {exact.epsilon:.6f} "
        f"<= ours {ours.epsilon:.6f}"
    )
    assert under.epsilon <= exact.epsilon + 1e-9
    assert exact.epsilon <= ours.epsilon + 1e-9
    assert abs(exact.epsilon - reluplex.epsilon) < 1e-5
    print("all bounds consistent — the certificate is sound.")


if __name__ == "__main__":
    main()
