"""Train, save, reload, and re-certify a model (persistence workflow).

Demonstrates the full model lifecycle a downstream user needs: train a
network, snapshot it to a single ``.npz``, reload it elsewhere, verify
the reload is bit-exact, and confirm that certification results are
identical across the round-trip.

Run:
    python examples/train_and_serialize.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.bounds import Box
from repro.certify import CertifierConfig, GlobalRobustnessCertifier
from repro.data import load_auto_mpg
from repro.nn import Dense, Network, TrainConfig, load_network, save_network, train


def main() -> None:
    rng = np.random.default_rng(7)
    x, y = load_auto_mpg(300, seed=7)
    net = Network(
        (7,),
        [Dense(7, 8, relu=True, rng=rng), Dense(8, 8, relu=True, rng=rng),
         Dense(8, 1, rng=rng)],
    )
    train(net, x, y, config=TrainConfig(epochs=50, batch_size=32))

    path = Path(tempfile.mkdtemp()) / "model.npz"
    save_network(net, path)
    print(f"saved to {path} ({path.stat().st_size} bytes)")

    reloaded = load_network(path)
    probe = rng.uniform(0, 1, (16, 7))
    assert np.array_equal(net.forward(probe), reloaded.forward(probe))
    print("reload is bit-exact")

    domain = Box.uniform(7, 0.0, 1.0)
    cfg = CertifierConfig(window=2, refine_count=8)
    original = GlobalRobustnessCertifier(net, cfg).certify(domain, 0.001)
    roundtrip = GlobalRobustnessCertifier(reloaded, cfg).certify(domain, 0.001)
    print(f"certified ε̄: original {original.epsilon:.6f}, "
          f"reloaded {roundtrip.epsilon:.6f}")
    assert abs(original.epsilon - roundtrip.epsilon) < 1e-9
    print("certificates identical across the round-trip.")


if __name__ == "__main__":
    main()
