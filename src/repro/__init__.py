"""repro — Global Robustness Certification via Interleaving Twin-Network Encoding.

A from-scratch Python reproduction of:

    Zhilu Wang, Chao Huang, Qi Zhu.
    "Efficient Global Robustness Certification of Neural Networks via
    Interleaving Twin-Network Encoding", DATE 2022 (arXiv:2203.14141).

Public entry points:

* :class:`repro.certify.GlobalRobustnessCertifier` — Algorithm 1 (ITNE +
  network decomposition + LP relaxation + selective refinement).
* :func:`repro.certify.certify_exact_global` /
  :class:`repro.certify.ReluplexStyleSolver` — exact baselines.
* :mod:`repro.nn` — numpy network substrate (train / load the models to
  certify).
* :mod:`repro.runtime` — the parallel batch certification engine
  (:class:`repro.runtime.BatchCertifier`).
* :mod:`repro.control` — the closed-loop ACC safety-verification case
  study.

Quickstart::

    import numpy as np
    from repro.bounds import Box
    from repro.certify import GlobalRobustnessCertifier, CertifierConfig
    from repro.zoo import get_network

    entry = get_network(1)                      # Table I DNN-1
    domain = Box.uniform(entry.network.input_dim, 0.0, 1.0)
    certifier = GlobalRobustnessCertifier(
        entry.network, CertifierConfig(window=2, refine_count=4))
    print(certifier.certify(domain, delta=entry.delta).summary())
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
