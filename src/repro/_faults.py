"""Deterministic fault injection — the chaos-testing substrate.

The fault-tolerance layer (retry engine, pool supervisor, graceful
degradation) is only trustworthy if failures can be *reproduced on
demand*.  This module provides named **fault points** woven into the
runtime and solver stack; an installed :class:`FaultPlan` decides, per
point and per hit, whether to

* ``raise`` an :class:`InjectedFault` (a transient error),
* ``crash`` the worker process (``os._exit``; downgraded to ``raise``
  in the submitting process so a chaos run never kills the test
  runner or CLI), or
* ``hang`` — stall for a configured number of seconds, modelling a
  stuck native solve that only a hard-timeout watchdog can clear.

Plans are either built programmatically (:meth:`FaultPlan.random` for
seeded chaos schedules, explicit :class:`FaultSpec` lists for
regression tests) or parsed from the ``REPRO_FAULTS`` environment
variable at import time::

    REPRO_FAULTS="batch.worker:raise@2;scipy.solve:hang=5@3x2"

Grammar (specs separated by ``;``)::

    point ":" action ["=" seconds] ["@" nth] ["x" count]

``point`` is a dotted name, a trailing-glob prefix (``batch.*``) or
``*``; ``action`` is ``raise`` / ``crash`` / ``hang``; ``seconds``
(hang only) defaults to :data:`DEFAULT_HANG_SECONDS`; ``nth`` is the
1-based hit at which the spec starts firing (default 1); ``count`` is
how many consecutive hits fire (default 1, ``*`` = forever).  Hit
counters are per *process*: a freshly forked worker starts its own
schedule.

Hook sites guard the call with the module-level flag so a disabled
build costs one attribute load and one branch, nothing else::

    from repro import _faults
    ...
    if _faults.ENABLED:
        _faults.fault_point("scipy.solve")

This implementation module lives at the package root (like
:mod:`repro._sanitize`) so soundness-critical solver modules
(``repro.milp.*``) can hook in without importing the runtime engine
package; user-facing code should import the re-exporting facade
:mod:`repro.runtime.faults` instead.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import random
import time
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Sequence

__all__ = [
    "CRASH_EXIT_CODE",
    "DEFAULT_HANG_SECONDS",
    "ENABLED",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "active_plan",
    "clear",
    "fault_point",
    "injected",
    "install",
]

#: Default stall duration (seconds) for ``hang`` specs that give no
#: explicit ``=seconds`` argument — long enough that only a watchdog
#: resolves it, matching the "stuck native solve" failure it models.
DEFAULT_HANG_SECONDS = 1800.0

#: Exit status of a ``crash`` action, distinguishable from a normal
#: worker death in process-table forensics.
CRASH_EXIT_CODE = 86

_ACTIONS = ("raise", "crash", "hang")


class InjectedFault(RuntimeError):
    """Raised by an armed fault point (and by parent-side ``crash``).

    Transient by construction: the retry engine classifies it like a
    worker death, so chaos schedules exercise exactly the recovery
    paths a real intermittent failure would.
    """

    def __init__(self, point: str, hit: int) -> None:
        super().__init__(f"injected fault at {point!r} (hit {hit})")
        self.point = point
        self.hit = hit


@dataclass(frozen=True)
class FaultSpec:
    """One deterministic schedule entry: fire ``action`` at ``point``.

    Attributes:
        point: Fault-point name, a ``prefix.*`` glob, or ``"*"``.
        action: ``"raise"``, ``"crash"`` or ``"hang"``.
        nth: First hit (1-based, per process) at which the spec fires.
        count: Consecutive firing hits from ``nth`` on; ``math.inf``
            means every hit from ``nth``.
        seconds: Stall duration for ``action="hang"``.
    """

    point: str
    action: str
    nth: int = 1
    count: float = 1.0
    seconds: float = DEFAULT_HANG_SECONDS

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; expected one of {_ACTIONS}"
            )
        if not self.point:
            raise ValueError("fault point name must be non-empty")
        if self.nth < 1:
            raise ValueError("nth is 1-based: the first hit is @1")
        if not self.count >= 1:  # also rejects NaN
            raise ValueError("count must be >= 1 (math.inf = forever)")
        if not self.seconds >= 0:
            raise ValueError("hang seconds must be >= 0")

    def matches(self, point: str) -> bool:
        """Whether this spec applies to fault point ``point``."""
        if self.point == "*" or self.point == point:
            return True
        if self.point.endswith(".*"):
            return point.startswith(self.point[:-1])
        return False

    def armed(self, hit: int) -> bool:
        """Whether the spec fires on the ``hit``-th hit (1-based)."""
        return self.nth <= hit < self.nth + self.count


def _parse_spec(text: str) -> FaultSpec:
    """Parse one ``point:action[=seconds][@nth][x count]`` spec."""
    head, sep, rest = text.partition(":")
    if not sep:
        raise ValueError(
            f"bad fault spec {text!r}: expected 'point:action[=s][@n][x c]'"
        )
    point = head.strip()
    count: float = 1.0
    nth = 1
    if "x" in rest:
        rest, _, count_text = rest.rpartition("x")
        count_text = count_text.strip()
        count = math.inf if count_text in ("*", "inf") else float(int(count_text))
    if "@" in rest:
        rest, _, nth_text = rest.partition("@")
        nth = int(nth_text.strip())
    action, _, seconds_text = rest.partition("=")
    seconds = DEFAULT_HANG_SECONDS
    if seconds_text.strip():
        seconds = float(seconds_text.strip())
    return FaultSpec(
        point=point, action=action.strip(), nth=nth, count=count, seconds=seconds
    )


@dataclass
class _Chaos:
    """Seeded random firing config for :meth:`FaultPlan.random` plans."""

    rate: float
    actions: tuple[str, ...]
    seconds: float
    points: tuple[str, ...] | None  # None = every point


@dataclass
class FaultPlan:
    """A process-local fault schedule: explicit specs plus chaos noise.

    The plan keeps per-point hit counters as *instance* state, so two
    plans (or one plan re-installed via :meth:`fresh`) never interfere
    and every worker process replays its own deterministic schedule
    from hit 1.
    """

    specs: tuple[FaultSpec, ...] = ()
    seed: int = 0
    chaos: _Chaos | None = None
    _hits: dict[str, int] = field(default_factory=dict, repr=False)
    _rngs: dict[str, random.Random] = field(default_factory=dict, repr=False)

    @classmethod
    def parse(cls, text: str, seed: int = 0) -> "FaultPlan":
        """Build a plan from ``REPRO_FAULTS`` grammar (see module doc)."""
        specs = tuple(
            _parse_spec(part)
            for part in text.split(";")
            if part.strip()
        )
        if not specs:
            raise ValueError(f"empty fault schedule {text!r}")
        return cls(specs=specs, seed=seed)

    @classmethod
    def random(
        cls,
        seed: int,
        rate: float,
        points: Sequence[str] | None = None,
        actions: Sequence[str] = _ACTIONS,
        hang_seconds: float = 0.25,
        specs: Sequence[FaultSpec] = (),
    ) -> "FaultPlan":
        """A seeded chaos plan: each hit fires with probability ``rate``.

        The per-point decision streams are deterministic functions of
        ``(seed, point)``, so a chaos test that fails replays
        identically from its seed.  ``hang_seconds`` deliberately
        defaults small: randomized schedules must terminate even
        without a watchdog.
        """
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must be a probability in [0, 1]")
        bad = [a for a in actions if a not in _ACTIONS]
        if bad:
            raise ValueError(f"unknown fault actions {bad!r}")
        chaos = _Chaos(
            rate=rate,
            actions=tuple(actions),
            seconds=hang_seconds,
            points=None if points is None else tuple(points),
        )
        return cls(specs=tuple(specs), seed=seed, chaos=chaos)

    def fresh(self) -> "FaultPlan":
        """The same schedule with all hit counters and streams reset."""
        return FaultPlan(specs=self.specs, seed=self.seed, chaos=self.chaos)

    def hits(self, point: str) -> int:
        """Hits recorded so far at ``point`` (in this process)."""
        return self._hits.get(point, 0)

    def _rng(self, point: str) -> random.Random:
        rng = self._rngs.get(point)
        if rng is None:
            rng = random.Random(self.seed * 0x9E3779B1 + zlib.crc32(point.encode()))
            self._rngs[point] = rng
        return rng

    def poke(self, point: str) -> FaultSpec | None:
        """Record a hit at ``point``; return the spec to fire, if any.

        Explicit specs win over chaos noise; the first matching armed
        spec (in schedule order) fires.
        """
        hit = self._hits.get(point, 0) + 1
        self._hits[point] = hit
        for spec in self.specs:
            if spec.matches(point) and spec.armed(hit):
                return spec
        chaos = self.chaos
        if chaos is not None and (
            chaos.points is None or point in chaos.points
        ):
            rng = self._rng(point)
            draw = rng.random()
            choice = rng.randrange(len(chaos.actions))
            if draw < chaos.rate:
                return FaultSpec(
                    point=point,
                    action=chaos.actions[choice],
                    nth=hit,
                    seconds=chaos.seconds,
                )
        return None


#: Fast-path flag: hook sites check this before calling
#: :func:`fault_point`, so a disabled build pays one attribute load and
#: one branch per hook.  Always read it off the module
#: (``_faults.ENABLED``) — a ``from``-import freezes the value.
ENABLED: bool = False

_PLAN: FaultPlan | None = None


def install(plan: FaultPlan | None) -> None:
    """Install ``plan`` process-wide (``None`` disables injection)."""
    global _PLAN, ENABLED
    _PLAN = plan
    ENABLED = plan is not None


def clear() -> None:
    """Disable fault injection in this process."""
    install(None)


def active_plan() -> FaultPlan | None:
    """The currently installed plan (for shipping to worker pools)."""
    return _PLAN


@contextmanager
def injected(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Context manager installing ``plan`` and restoring the old state."""
    previous = _PLAN
    install(plan)
    try:
        yield plan
    finally:
        install(previous)


def in_worker_process() -> bool:
    """Whether this process was spawned/forked by a parent process."""
    return multiprocessing.parent_process() is not None


def fault_point(name: str) -> None:
    """The injection hook: a no-op unless an installed plan fires here.

    ``crash`` terminates worker processes with :data:`CRASH_EXIT_CODE`
    but downgrades to ``raise`` in the submitting process — chaos runs
    must never take down the test runner or CLI.  ``hang`` stalls
    cooperatively and then returns, modelling a slow (not failed)
    call; pair it with a watchdog timeout to model a permanently stuck
    one.
    """
    plan = _PLAN
    if plan is None:
        return
    spec = plan.poke(name)
    if spec is None:
        return
    if spec.action == "crash" and in_worker_process():
        os._exit(CRASH_EXIT_CODE)
    if spec.action == "hang":
        time.sleep(spec.seconds)
        return
    raise InjectedFault(name, plan.hits(name))


def _install_from_env() -> None:
    text = os.environ.get("REPRO_FAULTS", "").strip()
    if text:
        install(FaultPlan.parse(text))


_install_from_env()
