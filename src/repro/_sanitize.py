"""Runtime contract checks — the ``REPRO_SANITIZE=1`` sanitizer mode.

Analogous to compiling with ASan: hook points at soundness-critical
seams re-verify invariants the static analysis cannot prove and the test
suite can only sample.  The mode costs nothing when off — every hook
site guards with ``if _sanitize.ENABLED:`` (a module-attribute bool
check) before touching any array.

Contracts wired in today:

* **bounds containment** — every symbolic box is contained in its IBP
  box after the tightest-wins intersect
  (:mod:`repro.bounds.symbolic`);
* **finite standard forms** — every coefficient/rhs exported by
  :meth:`repro.milp.model.Model.to_standard_form` is finite (variable
  *bounds* may be infinite by design);
* **split-tier tiling** — the terminal subdomains of a non-refuted
  branch-and-bound run exactly tile the root box
  (:mod:`repro.certify.splitting`);
* **warm-start basis validity** — a
  :class:`~repro.milp.session.WarmStartSession` basis re-entering the
  prepared LP indexes real columns, one per row, without duplicates;
* **batched row agreement** — a batched ``propagate_many`` result
  agrees with the row-sliced scalar propagation on a sampled query row
  (:mod:`repro.bounds.propagator`).

Violations raise :class:`SanitizerError` (an ``AssertionError``
subclass: a sanitizer failure is a bug in this codebase, never a user
error).  Enable via the environment (``REPRO_SANITIZE=1 pytest ...``)
or per-test with the :func:`sanitizing` context manager.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Any, Iterable, Iterator, Sequence

import numpy as np


class SanitizerError(AssertionError):
    """A runtime contract was violated while the sanitizer was active."""


def _env_enabled() -> bool:
    return os.environ.get("REPRO_SANITIZE", "").strip() not in {"", "0", "false"}


#: Master switch, read once from ``REPRO_SANITIZE`` at import.  Hook
#: sites check this attribute directly so the off-mode cost is one
#: attribute load and a branch.
ENABLED: bool = _env_enabled()


@contextmanager
def sanitizing(on: bool = True) -> Iterator[None]:
    """Temporarily force the sanitizer on (or off) — for tests."""
    global ENABLED
    previous = ENABLED
    ENABLED = on
    try:
        yield
    finally:
        ENABLED = previous


def _fail(contract: str, message: str) -> None:
    raise SanitizerError(f"sanitizer[{contract}]: {message}")


# -- contracts ---------------------------------------------------------------


def check_containment(
    inner_lo: np.ndarray,
    inner_hi: np.ndarray,
    outer_lo: np.ndarray,
    outer_hi: np.ndarray,
    what: str,
    tol: float = 1e-9,
) -> None:
    """``[inner_lo, inner_hi] ⊆ [outer_lo, outer_hi]`` element-wise.

    Guards the tightest-wins guarantee: an engine claiming containment
    in IBP (so downstream relaxations may shrink) must actually deliver
    it, or every big-M constant seeded from it is unsound.
    """
    below = np.asarray(inner_lo) < np.asarray(outer_lo) - tol
    above = np.asarray(inner_hi) > np.asarray(outer_hi) + tol
    if bool(np.any(below) or np.any(above)):
        bad = np.flatnonzero(below | above)[:5]
        _fail(
            "containment",
            f"{what}: inner box escapes outer box at indices {bad.tolist()}",
        )


def check_finite(what: str, **arrays: Any) -> None:
    """Every value in every named array must be finite.

    Used on exported standard forms: a NaN/inf coefficient silently
    poisons simplex pivoting and HiGHS presolve alike.
    """
    for name, array in arrays.items():
        if array is None:
            continue
        values = np.asarray(array, dtype=float)
        if values.size and not np.isfinite(values).all():
            bad = np.flatnonzero(~np.isfinite(values).reshape(-1))[:5]
            _fail(
                "finite",
                f"{what}: non-finite entries in {name} at flat indices "
                f"{bad.tolist()}",
            )


def check_tiling(
    root_lo: np.ndarray,
    root_hi: np.ndarray,
    boxes: Iterable[tuple[np.ndarray, np.ndarray]],
    what: str,
    rel_tol: float = 1e-9,
) -> None:
    """Terminal boxes must exactly tile the root box.

    Bisection guarantees (a) every terminal box is contained in the
    root and (b) total volume equals root volume (no gap — a gapped
    tiling under-covers the domain, so a "certified" verdict would be
    unsound).  Widths are measured relative to the root so degenerate
    (zero-width) roots do not divide by zero.
    """
    root_lo = np.asarray(root_lo, dtype=float)
    root_hi = np.asarray(root_hi, dtype=float)
    width = root_hi - root_lo
    scale = np.where(width > 0.0, width, 1.0)
    total = 0.0
    count = 0
    for lo, hi in boxes:
        count += 1
        lo = np.asarray(lo, dtype=float)
        hi = np.asarray(hi, dtype=float)
        tol = rel_tol * scale
        if bool(np.any(lo < root_lo - tol) or np.any(hi > root_hi + tol)):
            _fail(
                "tiling",
                f"{what}: terminal box #{count - 1} escapes the root box",
            )
        # Normalized volume: product of per-dim width fractions (1.0 for
        # degenerate dims), so the full tiling sums to 1.0 exactly.
        frac = np.where(width > 0.0, (hi - lo) / scale, 1.0)
        total += float(np.prod(frac))
    if count == 0:
        _fail("tiling", f"{what}: no terminal boxes recorded")
    if abs(total - 1.0) > 1e-6 * max(1.0, count):
        _fail(
            "tiling",
            f"{what}: terminal boxes cover {total:.9f} of the root volume "
            f"(expected 1.0 over {count} boxes)",
        )


def check_batch_row(
    batched: np.ndarray,
    scalar: np.ndarray,
    what: str,
    tol: float = 1e-9,
) -> None:
    """A batched propagation row must agree with its scalar twin.

    The batched kernels promise per-row results matching the per-query
    scalar path (the :mod:`repro.bounds.batched` bit-identity contract);
    a silent divergence would let a vectorization bug certify with
    bounds nobody ever cross-checked.  Comparison is tolerance-based so
    near-miss third-party engines fail loudly with the offending
    indices rather than on the last ulp.
    """
    left = np.asarray(batched, dtype=float)
    right = np.asarray(scalar, dtype=float)
    if left.shape != right.shape:
        _fail(
            "batch-row",
            f"{what}: batched row shape {left.shape} != scalar {right.shape}",
        )
    # Exact matches (including ±inf and NaN-vs-NaN) pass outright; the
    # tolerance only applies to genuinely differing finite entries.
    same = (left == right) | (np.isnan(left) & np.isnan(right))
    if bool(np.all(same)):
        return
    diff = np.where(same, 0.0, np.abs(left - right))
    scale = np.maximum(1.0, np.maximum(np.abs(left), np.abs(right)))
    bad = diff > tol * np.where(np.isfinite(scale), scale, 1.0)
    if bool(np.any(bad)):
        worst = np.flatnonzero(bad.reshape(-1))[:5]
        _fail(
            "batch-row",
            f"{what}: batched row diverges from scalar propagation at "
            f"flat indices {worst.tolist()}",
        )


def check_basis(
    basis: Sequence[int] | None, num_rows: int, num_cols: int, what: str
) -> None:
    """A simplex basis must index one distinct real column per row.

    A stale/corrupt warm-start basis does not fail loudly by itself —
    phase-2 re-entry with a singular basis just pivots from garbage, so
    the session could silently return a non-optimal "optimum".
    """
    if basis is None:
        return
    if len(basis) != num_rows:
        _fail(
            "warm-basis",
            f"{what}: basis has {len(basis)} entries for {num_rows} rows",
        )
    seen: set[int] = set()
    for entry in basis:
        if not 0 <= int(entry) < num_cols:
            _fail(
                "warm-basis",
                f"{what}: basis entry {entry} outside column range "
                f"[0, {num_cols})",
            )
        if int(entry) in seen:
            _fail("warm-basis", f"{what}: duplicate basis column {entry}")
        seen.add(int(entry))
