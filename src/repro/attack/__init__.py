"""Gradient-based adversarial attacks (FGSM, PGD).

Used in two roles, mirroring the paper:

* dataset-wise PGD gives the *under*-approximation ``ε̲`` of global
  robustness that sandwiches the certified ``ε̄`` for large networks
  (Table I, DNN-6..8);
* FGSM perturbs the perception input inside the closed-loop control
  simulation of the case study (§III-B).
"""

from repro.attack.fgsm import fgsm
from repro.attack.pgd import pgd, variation_pgd

__all__ = ["fgsm", "pgd", "variation_pgd"]
