"""Fast Gradient Sign Method (Goodfellow et al., ICLR 2015)."""

from __future__ import annotations

import numpy as np

from repro.nn.network import Network


def fgsm(
    network: Network,
    x: np.ndarray,
    output_weights: np.ndarray,
    epsilon: float,
    clip_lo: float | np.ndarray | None = None,
    clip_hi: float | np.ndarray | None = None,
    sign: float = 1.0,
) -> np.ndarray:
    """One-step signed-gradient perturbation of ``x``.

    Args:
        network: Target model.
        x: Single input sample (unbatched, network input shape).
        output_weights: Combination of outputs whose value the attack
            increases, e.g. a one-hot selector for one output neuron.
        epsilon: L∞ step size.
        clip_lo / clip_hi: Optional valid-domain clipping (e.g. pixel
            range [0, 1]).
        sign: +1 to increase the selected output, −1 to decrease it.

    Returns:
        The perturbed sample, same shape as ``x``.
    """
    grad = network.input_gradient(x, np.asarray(output_weights, dtype=float))
    adv = np.asarray(x, dtype=float) + sign * epsilon * np.sign(grad)
    if clip_lo is not None or clip_hi is not None:
        adv = np.clip(adv, clip_lo, clip_hi)
    return adv
