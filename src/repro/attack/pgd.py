"""Projected gradient descent attacks (Madry et al., ICLR 2018)."""

from __future__ import annotations

import numpy as np

from repro.nn.network import Network


def _project(adv: np.ndarray, center: np.ndarray, epsilon: float, clip_lo, clip_hi):
    """Project onto the L∞ ball around ``center`` and the valid domain."""
    adv = np.clip(adv, center - epsilon, center + epsilon)
    if clip_lo is not None or clip_hi is not None:
        adv = np.clip(adv, clip_lo, clip_hi)
    return adv


def pgd(
    network: Network,
    x: np.ndarray,
    output_weights: np.ndarray,
    epsilon: float,
    steps: int = 40,
    step_size: float | None = None,
    clip_lo: float | np.ndarray | None = None,
    clip_hi: float | np.ndarray | None = None,
    sign: float = 1.0,
    rng: np.random.Generator | None = None,
    random_start: bool = True,
) -> np.ndarray:
    """Multi-step L∞ PGD maximizing ``sign * (output_weights @ F(x̂))``.

    Args:
        network: Target model.
        x: Single unbatched input sample.
        output_weights: Output combination to push.
        epsilon: L∞ radius of the perturbation ball.
        steps: Number of ascent steps.
        step_size: Per-step L∞ magnitude (default ``2.5 ε / steps``).
        clip_lo / clip_hi: Valid-domain clipping.
        sign: +1 to maximize, −1 to minimize the selected output.
        rng: Generator for the random start.
        random_start: Start from a random point in the ball.

    Returns:
        The adversarial sample.
    """
    x = np.asarray(x, dtype=float)
    step = step_size if step_size is not None else 2.5 * epsilon / max(1, steps)
    rng = rng or np.random.default_rng()
    adv = x.copy()
    if random_start:
        adv = _project(
            adv + rng.uniform(-epsilon, epsilon, size=x.shape), x, epsilon, clip_lo, clip_hi
        )
    w = np.asarray(output_weights, dtype=float)
    for _ in range(steps):
        grad = network.input_gradient(adv, w)
        adv = adv + sign * step * np.sign(grad)
        adv = _project(adv, x, epsilon, clip_lo, clip_hi)
    return adv


def variation_pgd(
    network: Network,
    x: np.ndarray,
    output_index: int,
    delta: float,
    steps: int = 40,
    step_size: float | None = None,
    clip_lo: float | np.ndarray | None = None,
    clip_hi: float | np.ndarray | None = None,
    rng: np.random.Generator | None = None,
    restarts: int = 1,
) -> tuple[np.ndarray, float]:
    """PGD maximizing the *output variation* ``|F(x̂)_j − F(x)_j|``.

    Runs ascent in both directions (increase and decrease the output)
    with optional random restarts and returns the best perturbation.

    Returns:
        ``(x̂_best, variation)`` where ``variation`` is the achieved
        ``|F(x̂)_j − F(x)_j|``.
    """
    x = np.asarray(x, dtype=float)
    rng = rng or np.random.default_rng()
    base = float(network.predict(x).reshape(-1)[output_index])
    weights = np.zeros(network.output_dim)
    weights[output_index] = 1.0

    best_adv = x.copy()
    best_var = 0.0
    for restart in range(max(1, restarts)):
        for direction in (+1.0, -1.0):
            adv = pgd(
                network,
                x,
                weights,
                epsilon=delta,
                steps=steps,
                step_size=step_size,
                clip_lo=clip_lo,
                clip_hi=clip_hi,
                sign=direction,
                rng=rng,
                random_start=restart > 0,
            )
            value = float(network.predict(adv).reshape(-1)[output_index])
            var = abs(value - base)
            if var > best_var:
                best_var = var
                best_adv = adv
    return best_adv, best_var
