"""Interval analysis: boxes, bound propagators, and range tables.

Bound propagation serves two roles in the pipeline:

1. It seeds the big-M constants of every MILP encoding (a valid ``[l, u]``
   range per pre-activation is required for the exact ReLU encoding).
2. It provides the fallback/starting ranges that Algorithm 1's LP-based
   refinement tightens layer by layer.

All engines sit behind one :class:`~repro.bounds.propagator.BoundPropagator`
protocol (``propagate(layers, input_box, delta=None) -> LayerBounds``):

* ``"ibp"`` — plain interval bound propagation; with a ``delta`` the twin
  variant tracks value and *distance* intervals (``Δy``, ``Δx``) side by
  side, using the exact ReLU-distance facts ``0 ∧ Δy ≤ Δx ≤ 0 ∨ Δy``
  from Fig. 3 of the paper;
* ``"twin-ibp"`` — the same twin engine with the perturbation mandatory;
* ``"symbolic"`` — CROWN/DeepPoly-style backward substitution of linear
  relaxations (:mod:`repro.bounds.symbolic`), never looser than IBP and
  usually much tighter; it also propagates distance bounds symbolically.

The low-level :func:`propagate_box` / :func:`propagate_twin_box`
functions remain as the IBP engine's implementation.
"""

from __future__ import annotations

from repro.bounds.interval import Box
from repro.bounds.ibp import propagate_box
from repro.bounds.twin_ibp import TwinBounds, propagate_twin_box, relu_distance_interval
from repro.bounds.propagator import (
    BoundPropagator,
    IBPPropagator,
    LayerBounds,
    TwinIBPPropagator,
    available_propagators,
    get_propagator,
    register_propagator,
)
from repro.bounds.symbolic import SymbolicPropagator
from repro.bounds.ranges import LayerRanges, RangeTable

__all__ = [
    "Box",
    "propagate_box",
    "propagate_twin_box",
    "relu_distance_interval",
    "TwinBounds",
    "LayerRanges",
    "RangeTable",
    "BoundPropagator",
    "LayerBounds",
    "IBPPropagator",
    "TwinIBPPropagator",
    "SymbolicPropagator",
    "available_propagators",
    "get_propagator",
    "register_propagator",
]
