"""Interval analysis: boxes, single-net IBP, and twin-net IBP.

Interval bound propagation serves two roles in the pipeline:

1. It seeds the big-M constants of every MILP encoding (a valid ``[l, u]``
   range per pre-activation is required for the exact ReLU encoding).
2. It provides the fallback/starting ranges that Algorithm 1's LP-based
   refinement tightens layer by layer.

The twin variant propagates value intervals and *distance* intervals
(``Δy``, ``Δx``) side by side, using the exact ReLU-distance facts
``0 ∧ Δy ≤ Δx ≤ 0 ∨ Δy`` from Fig. 3 of the paper.
"""

from repro.bounds.interval import Box
from repro.bounds.ibp import propagate_box
from repro.bounds.twin_ibp import TwinBounds, propagate_twin_box, relu_distance_interval
from repro.bounds.ranges import LayerRanges, RangeTable

__all__ = [
    "Box",
    "propagate_box",
    "propagate_twin_box",
    "relu_distance_interval",
    "TwinBounds",
    "LayerRanges",
    "RangeTable",
]
