"""Interval analysis: boxes, bound propagators, and range tables.

Bound propagation serves two roles in the pipeline:

1. It seeds the big-M constants of every MILP encoding (a valid ``[l, u]``
   range per pre-activation is required for the exact ReLU encoding).
2. It provides the fallback/starting ranges that Algorithm 1's LP-based
   refinement tightens layer by layer.

All engines sit behind one :class:`~repro.bounds.propagator.BoundPropagator`
protocol (``propagate(layers, input_box, delta=None) -> LayerBounds``):

* ``"ibp"`` — plain interval bound propagation; with a ``delta`` the twin
  variant tracks value and *distance* intervals (``Δy``, ``Δx``) side by
  side, using the exact ReLU-distance facts ``0 ∧ Δy ≤ Δx ≤ 0 ∨ Δy``
  from Fig. 3 of the paper;
* ``"twin-ibp"`` — the same twin engine with the perturbation mandatory;
* ``"symbolic"`` — CROWN/DeepPoly-style backward substitution of linear
  relaxations (:mod:`repro.bounds.symbolic`), never looser than IBP and
  usually much tighter; it also propagates distance bounds symbolically.

The low-level :func:`propagate_box` / :func:`propagate_twin_box`
functions remain as the IBP engine's implementation.
"""

from __future__ import annotations

from repro.bounds.interval import Box
from repro.bounds.batched import (
    BatchedBox,
    BatchedLayerBounds,
    as_batched_box,
    as_batched_delta,
)
from repro.bounds.ibp import propagate_box, propagate_box_batch
from repro.bounds.twin_ibp import (
    BatchedTwinBounds,
    TwinBounds,
    propagate_twin_box,
    propagate_twin_box_batch,
    relu_distance_interval,
    relu_distance_interval_batch,
)
from repro.bounds.propagator import (
    BoundPropagator,
    IBPPropagator,
    LayerBounds,
    TwinIBPPropagator,
    available_propagators,
    get_propagator,
    propagate_many,
    register_propagator,
)
from repro.bounds.symbolic import SymbolicPropagator
from repro.bounds.ranges import LayerRanges, RangeTable

__all__ = [
    "Box",
    "BatchedBox",
    "BatchedLayerBounds",
    "as_batched_box",
    "as_batched_delta",
    "propagate_box",
    "propagate_box_batch",
    "propagate_twin_box",
    "propagate_twin_box_batch",
    "relu_distance_interval",
    "relu_distance_interval_batch",
    "TwinBounds",
    "BatchedTwinBounds",
    "LayerRanges",
    "RangeTable",
    "BoundPropagator",
    "LayerBounds",
    "IBPPropagator",
    "TwinIBPPropagator",
    "SymbolicPropagator",
    "available_propagators",
    "get_propagator",
    "propagate_many",
    "register_propagator",
]
