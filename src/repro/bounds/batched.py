"""Batched multi-query bound containers: ``(Q, n)`` box stacks.

The presolve tier and the splitting tier both run *near-identical*
propagations one query at a time — an ε-sweep over 256 perturbation
balls is 256 separate backsubstitutions over the same weights.  This
module provides the containers for doing all of them in ONE vectorized
pass:

* :class:`BatchedBox` — ``Q`` axis-aligned boxes as stacked ``(Q, n)``
  ``lo``/``hi`` arrays, with the same interval arithmetic as
  :class:`~repro.bounds.interval.Box` applied to every row at once;
* :class:`BatchedLayerBounds` — the per-layer record of one batched
  propagation, row-sliceable back into ordinary
  :class:`~repro.bounds.propagator.LayerBounds`.

Bit-identity contract
---------------------

Every batched kernel in the bounds package is arranged so that row ``q``
of the batched result is **bit-identical** to the scalar propagation of
row ``q`` alone.  The arithmetic trick: matmuls keep the scalar
operand shapes and batch through numpy's *stacked* (leading) axes —
``(m, n) @ (Q, n, 1)`` instead of ``(Q, n) @ (n, m)`` — so each 2-D
slice is computed by exactly the same BLAS call as the scalar path,
independent of the batch size.  Elementwise operations are trivially
per-row.  The ``REPRO_SANITIZE=1`` contract and the property tests
enforce this row agreement.

Both containers copy ingested caller arrays (lint rule RPR002): batched
bounds are shared across whole query batches, so aliasing a caller's
array would corrupt every query at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence, TypeAlias

import numpy as np

from repro.bounds.interval import Box

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.bounds.propagator import LayerBounds

#: Per-query perturbation spec accepted by the batched entry points: one
#: radius for every query, per-query radii, one shared box, a full
#: ``(Q, n)`` stack, or a per-query list of radii/boxes.
DeltaSpec: TypeAlias = (
    "float | np.ndarray | Box | BatchedBox | Sequence[float | Box] | None"
)


@dataclass
class BatchedBox:
    """``Q`` stacked boxes: ``lo``/``hi`` arrays of shape ``(Q, n)``.

    Row ``q`` is one ordinary :class:`Box`; construction applies the
    same validation and tiny-inversion rectification per row.
    """

    lo: np.ndarray
    hi: np.ndarray

    def __post_init__(self) -> None:
        # Copy unconditionally (RPR002): batched bounds are shared
        # across a whole query batch, so aliasing the caller's arrays
        # would corrupt every query at once.
        self.lo = np.atleast_2d(np.array(self.lo, dtype=float))
        self.hi = np.atleast_2d(np.array(self.hi, dtype=float))
        if self.lo.shape != self.hi.shape:
            raise ValueError(
                f"bound shapes differ: {self.lo.shape} vs {self.hi.shape}"
            )
        if self.lo.ndim != 2:
            raise ValueError(
                f"BatchedBox wants (Q, n) stacks, got shape {self.lo.shape}"
            )
        if self.lo.shape[0] == 0:
            raise ValueError("empty batch: need at least one query row")
        bad = self.lo > self.hi + 1e-9
        if np.any(bad):
            rows = np.unique(np.nonzero(bad)[0])[:5]
            raise ValueError(
                f"lower bound exceeds upper in query rows {rows.tolist()}"
            )
        # Rectify tiny inversions caused by floating point (same
        # contract as the scalar Box constructor).
        np.minimum(self.lo, self.hi, out=self.lo)

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_boxes(cls, boxes: Sequence[Box]) -> "BatchedBox":
        """Stack ordinary boxes (all the same dimension) into one batch."""
        if len(boxes) == 0:
            raise ValueError("empty batch: need at least one box")
        dims = {box.dim for box in boxes}
        if len(dims) != 1:
            raise ValueError(f"cannot stack boxes of mixed dimensions {sorted(dims)}")
        return cls(
            np.stack([box.lo for box in boxes]),
            np.stack([box.hi for box in boxes]),
        )

    @classmethod
    def uniform(cls, queries: int, dim: int, lo: float, hi: float) -> "BatchedBox":
        """``queries`` identical boxes with constant bounds per coordinate."""
        return cls(
            np.full((queries, dim), float(lo)), np.full((queries, dim), float(hi))
        )

    # -- basic facts ---------------------------------------------------------

    @property
    def num_queries(self) -> int:
        """Number of stacked boxes ``Q``."""
        return self.lo.shape[0]

    @property
    def dim(self) -> int:
        """Number of coordinates per box."""
        return self.lo.shape[1]

    def row(self, q: int) -> Box:
        """Query ``q``'s box (copied — the constructor copies both sides)."""
        return Box(self.lo[q], self.hi[q])

    def width(self) -> np.ndarray:
        """Per-row, per-coordinate widths ``hi - lo``, shape ``(Q, n)``."""
        return self.hi - self.lo

    @property
    def center(self) -> np.ndarray:
        """Row midpoints, shape ``(Q, n)``."""
        return 0.5 * (self.lo + self.hi)

    # -- arithmetic ----------------------------------------------------------

    def affine(self, weight: np.ndarray, bias: "np.ndarray | float" = 0.0) -> "BatchedBox":
        """Row-wise interval image of ``W x + b``.

        Batched through the stacked-matmul form ``(m, n) @ (Q, n, 1)``,
        whose per-query 2-D slices are the scalar ``W⁺ lo + W⁻ hi``
        calls verbatim — row ``q`` is bit-identical to
        ``self.row(q).affine(weight, bias)``.
        """
        w_pos = np.clip(weight, 0.0, None)
        w_neg = np.clip(weight, None, 0.0)
        lo = (w_pos @ self.lo[..., None])[..., 0] + (w_neg @ self.hi[..., None])[..., 0] + bias
        hi = (w_pos @ self.hi[..., None])[..., 0] + (w_neg @ self.lo[..., None])[..., 0] + bias
        return BatchedBox(lo, hi)

    def relu(self) -> "BatchedBox":
        """Row-wise interval image of element-wise ``max(·, 0)``."""
        return BatchedBox(np.maximum(self.lo, 0.0), np.maximum(self.hi, 0.0))

    def intersect(self, other: "BatchedBox") -> "BatchedBox":
        """Row-wise intersection; raises if any coordinate becomes empty."""
        return BatchedBox(
            np.maximum(self.lo, other.lo), np.minimum(self.hi, other.hi)
        )

    def __repr__(self) -> str:
        return (
            f"BatchedBox(queries={self.num_queries}, dim={self.dim}, "
            f"width_max={self.width().max():.4g})"
        )


def as_batched_box(boxes: "BatchedBox | Box | Sequence[Box]") -> BatchedBox:
    """Coerce a batch spec into a :class:`BatchedBox`.

    A single :class:`Box` becomes a batch of one; a sequence of boxes is
    stacked; a :class:`BatchedBox` passes through unchanged (no copy —
    the constructor already copied on ingest).
    """
    if isinstance(boxes, BatchedBox):
        return boxes
    if isinstance(boxes, Box):
        return BatchedBox.from_boxes([boxes])
    return BatchedBox.from_boxes(list(boxes))


def as_batched_delta(
    deltas: "DeltaSpec", queries: int, dim: int
) -> "BatchedBox | None":
    """Coerce a per-query perturbation spec into a ``(Q, n)`` stack.

    Mirrors the scalar ``_as_delta_box`` semantics per row: a float
    radius ``d`` becomes the box ``[-d, d]^n``; per-query radii may be a
    1-D array (or list) of length ``Q``; explicit boxes pass through
    (one shared box, a per-query list, or a ready-made stack).
    """
    if deltas is None:
        return None
    if isinstance(deltas, BatchedBox):
        if deltas.num_queries != queries or deltas.dim != dim:
            raise ValueError(
                f"perturbation stack shape {(deltas.num_queries, deltas.dim)} "
                f"does not match query stack {(queries, dim)}"
            )
        return deltas
    if isinstance(deltas, Box):
        if deltas.dim != dim:
            raise ValueError("perturbation box dimension mismatch")
        return BatchedBox(
            np.broadcast_to(deltas.lo, (queries, dim)),
            np.broadcast_to(deltas.hi, (queries, dim)),
        )
    if isinstance(deltas, (int, float)):
        radius = np.full((queries, 1), float(deltas))
        return BatchedBox(
            np.broadcast_to(-radius, (queries, dim)),
            np.broadcast_to(radius, (queries, dim)),
        )
    if isinstance(deltas, np.ndarray):
        values = np.asarray(deltas, dtype=float).reshape(-1)
        if values.shape[0] != queries:
            raise ValueError(
                f"got {values.shape[0]} per-query radii for {queries} queries"
            )
        radius = values[:, None]
        return BatchedBox(
            np.broadcast_to(-radius, (queries, dim)),
            np.broadcast_to(radius, (queries, dim)),
        )
    rows = list(deltas)
    if len(rows) != queries:
        raise ValueError(f"got {len(rows)} per-query deltas for {queries} queries")
    boxes = [
        entry if isinstance(entry, Box) else Box.uniform(dim, -float(entry), float(entry))
        for entry in rows
    ]
    return BatchedBox.from_boxes(boxes)


def delta_row(deltas: "DeltaSpec", q: int, dim: int) -> "float | Box | None":
    """Query ``q``'s perturbation in the scalar ``propagate`` vocabulary.

    Used by the loop-over-``propagate`` fallback so third-party engines
    see exactly the argument the per-query caller would have passed.
    """
    if deltas is None:
        return None
    if isinstance(deltas, BatchedBox):
        return deltas.row(q)
    if isinstance(deltas, (Box, int, float)):
        return deltas if isinstance(deltas, Box) else float(deltas)
    if isinstance(deltas, np.ndarray):
        return float(np.asarray(deltas, dtype=float).reshape(-1)[q])
    entry = list(deltas)[q]
    return entry if isinstance(entry, Box) else float(entry)


@dataclass
class BatchedLayerBounds:
    """Per-layer records of one batched propagation over ``Q`` queries.

    The stacked twin of :class:`~repro.bounds.propagator.LayerBounds`:
    entry ``i`` of ``y``/``x`` (and ``dy``/``dx`` for twin runs) holds
    the ``(Q, m_i)`` bound stack of layer ``i+1``.  :meth:`row` slices
    one query back out as an ordinary ``LayerBounds``.

    Attributes:
        input_box: Stacked input boxes, shape ``(Q, n)``.
        y: Pre-activation value stack per layer.
        x: Post-activation value stack per layer.
        delta_box: Input perturbation stack (twin runs only).
        dy: Pre-activation distance stack per layer (twin runs only).
        dx: Post-activation distance stack per layer (twin runs only).
        method: Name of the propagator that produced these bounds.
    """

    input_box: BatchedBox
    y: list[BatchedBox]
    x: list[BatchedBox]
    delta_box: "BatchedBox | None" = None
    dy: "list[BatchedBox] | None" = None
    dx: "list[BatchedBox] | None" = None
    method: str = ""

    def __post_init__(self) -> None:
        # Copy the ingested *lists* (RPR002): same contract as
        # LayerBounds — the BatchedBox elements are shared read-only.
        self.y = list(self.y)
        self.x = list(self.x)
        if self.dy is not None:
            self.dy = list(self.dy)
        if self.dx is not None:
            self.dx = list(self.dx)

    @property
    def num_queries(self) -> int:
        """Number of stacked queries ``Q``."""
        return self.input_box.num_queries

    @property
    def num_layers(self) -> int:
        """Number of network layers covered."""
        return len(self.y)

    @property
    def has_distance(self) -> bool:
        """Whether twin distance bounds were propagated."""
        return self.dy is not None

    @property
    def output(self) -> BatchedBox:
        """Post-activation stack of the final layer (network outputs)."""
        return self.x[-1]

    @property
    def output_distance(self) -> BatchedBox:
        """Distance stack of the network output ``Δx(n)``."""
        if self.dx is None:
            raise ValueError(
                "no distance bounds: propagate with deltas to get Δ stacks"
            )
        return self.dx[-1]

    def output_variation_bounds(self) -> np.ndarray:
        """Per-query, per-output ``ε̄`` from the distance stack, ``(Q, out)``."""
        dist = self.output_distance
        return np.maximum(np.abs(dist.lo), np.abs(dist.hi))

    def row(self, q: int) -> "LayerBounds":
        """Query ``q``'s bounds as an ordinary :class:`LayerBounds`."""
        from repro.bounds.propagator import LayerBounds

        if not 0 <= q < self.num_queries:
            raise IndexError(f"query row {q} outside batch of {self.num_queries}")
        return LayerBounds(
            input_box=self.input_box.row(q),
            y=[stack.row(q) for stack in self.y],
            x=[stack.row(q) for stack in self.x],
            delta_box=None if self.delta_box is None else self.delta_box.row(q),
            dy=None if self.dy is None else [stack.row(q) for stack in self.dy],
            dx=None if self.dx is None else [stack.row(q) for stack in self.dx],
            method=self.method,
        )

    def rows(self) -> "list[LayerBounds]":
        """All queries, row-sliced (one ``LayerBounds`` per query)."""
        return [self.row(q) for q in range(self.num_queries)]

    @classmethod
    def stack(cls, bounds: "Sequence[LayerBounds]") -> "BatchedLayerBounds":
        """Stack per-query propagations into one batched record.

        All entries must come from the same engine over the same network
        (equal layer counts and method names, uniform twin-ness).
        """
        if len(bounds) == 0:
            raise ValueError("empty batch: need at least one LayerBounds")
        first = bounds[0]
        for entry in bounds[1:]:
            if entry.num_layers != first.num_layers:
                raise ValueError("cannot stack bounds with different layer counts")
            if entry.has_distance != first.has_distance:
                raise ValueError("cannot stack twin and value-only bounds")
            if entry.method != first.method:
                raise ValueError(
                    f"cannot stack bounds from different engines "
                    f"({entry.method!r} vs {first.method!r})"
                )

        def stacked(select: "list[Box]") -> BatchedBox:
            return BatchedBox.from_boxes(select)

        dy: "list[BatchedBox] | None" = None
        dx: "list[BatchedBox] | None" = None
        delta: "BatchedBox | None" = None
        if first.has_distance:
            assert first.dy is not None and first.dx is not None
            delta_boxes = [entry.delta_box for entry in bounds]
            assert all(box is not None for box in delta_boxes)
            delta = stacked([box for box in delta_boxes if box is not None])
            dy = [
                stacked([entry.dy[i] for entry in bounds if entry.dy is not None])
                for i in range(first.num_layers)
            ]
            dx = [
                stacked([entry.dx[i] for entry in bounds if entry.dx is not None])
                for i in range(first.num_layers)
            ]
        return cls(
            input_box=stacked([entry.input_box for entry in bounds]),
            y=[stacked([entry.y[i] for entry in bounds]) for i in range(first.num_layers)],
            x=[stacked([entry.x[i] for entry in bounds]) for i in range(first.num_layers)],
            delta_box=delta,
            dy=dy,
            dx=dx,
            method=first.method,
        )
