"""Single-network interval bound propagation (IBP)."""

from __future__ import annotations

from repro.bounds.batched import BatchedBox
from repro.bounds.interval import Box
from repro.nn.affine import AffineLayer


def propagate_box(
    layers: list[AffineLayer], input_box: Box, collect: bool = False
) -> "Box | tuple[Box, list[Box]]":
    """Propagate an input box through an affine chain.

    Args:
        layers: Normal-form network (see :mod:`repro.nn.affine`).
        input_box: Box over the flattened input.
        collect: When True, also return per-layer pre-activation boxes.

    Returns:
        The output box, or ``(output_box, pre_activation_boxes)`` when
        ``collect`` is set.  ``pre_activation_boxes[i]`` bounds ``y(i+1)``
        in the paper's indexing.
    """
    box = input_box
    pre_acts: list[Box] = []
    for layer in layers:
        box = box.affine(layer.weight, layer.bias)
        if collect:
            pre_acts.append(box)
        if layer.relu:
            box = box.relu()
    if collect:
        return box, pre_acts
    return box


def propagate_box_batch(
    layers: list[AffineLayer], input_boxes: BatchedBox, collect: bool = False
) -> "BatchedBox | tuple[BatchedBox, list[BatchedBox]]":
    """Propagate a ``(Q, n)`` stack of input boxes in one vectorized pass.

    The batched twin of :func:`propagate_box`: row ``q`` of every
    returned stack is bit-identical to propagating ``input_boxes.row(q)``
    alone (see the :mod:`repro.bounds.batched` bit-identity contract).

    Args:
        layers: Normal-form network (see :mod:`repro.nn.affine`).
        input_boxes: Stacked boxes over the flattened input.
        collect: When True, also return per-layer pre-activation stacks.

    Returns:
        The output stack, or ``(output_stack, pre_activation_stacks)``
        when ``collect`` is set.
    """
    boxes = input_boxes
    pre_acts: list[BatchedBox] = []
    for layer in layers:
        boxes = boxes.affine(layer.weight, layer.bias)
        if collect:
            pre_acts.append(boxes)
        if layer.relu:
            boxes = boxes.relu()
    if collect:
        return boxes, pre_acts
    return boxes
