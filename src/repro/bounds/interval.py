"""Axis-aligned boxes (vectors of closed intervals) and their arithmetic."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class Box:
    """A vector of intervals ``[lo_i, hi_i]``.

    The workhorse container for bound propagation.  Construction
    validates ``lo <= hi`` element-wise (within a small tolerance that
    absorbs floating-point jitter, then rectifies).
    """

    lo: np.ndarray
    hi: np.ndarray

    def __post_init__(self) -> None:
        # Copy unconditionally: ``np.asarray``/``np.atleast_1d`` return
        # float64 input unchanged, so rectifying in place (below) — or
        # any later in-place update through ``self.lo``/``self.hi`` —
        # would silently mutate the caller's arrays.
        self.lo = np.atleast_1d(np.array(self.lo, dtype=float))
        self.hi = np.atleast_1d(np.array(self.hi, dtype=float))
        if self.lo.shape != self.hi.shape:
            raise ValueError(f"bound shapes differ: {self.lo.shape} vs {self.hi.shape}")
        bad = self.lo > self.hi + 1e-9
        if np.any(bad):
            raise ValueError(
                f"lower bound exceeds upper at indices {np.flatnonzero(bad)[:5]}"
            )
        # Rectify tiny inversions caused by floating point.
        np.minimum(self.lo, self.hi, out=self.lo)

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_center(cls, center: np.ndarray, radius: float | np.ndarray) -> "Box":
        """Box ``[c - r, c + r]`` (the L∞ ball used for perturbations)."""
        center = np.asarray(center, dtype=float)
        return cls(center - radius, center + radius)

    @classmethod
    def uniform(cls, dim: int, lo: float, hi: float) -> "Box":
        """A box with identical bounds in every coordinate."""
        return cls(np.full(dim, float(lo)), np.full(dim, float(hi)))

    @classmethod
    def point(cls, value: np.ndarray) -> "Box":
        """Degenerate box containing exactly one point."""
        value = np.asarray(value, dtype=float)
        return cls(value, value)  # the constructor copies both sides

    # -- basic facts ------------------------------------------------------------

    @property
    def dim(self) -> int:
        """Number of coordinates."""
        return self.lo.shape[0]

    @property
    def center(self) -> np.ndarray:
        """Midpoints."""
        return 0.5 * (self.lo + self.hi)

    @property
    def radius(self) -> np.ndarray:
        """Half-widths."""
        return 0.5 * (self.hi - self.lo)

    def width(self) -> np.ndarray:
        """Per-coordinate widths ``hi - lo``."""
        return self.hi - self.lo

    def contains(self, x: np.ndarray, tol: float = 1e-9) -> bool:
        """Point membership test."""
        x = np.asarray(x, dtype=float).reshape(-1)
        return bool(np.all(x >= self.lo - tol) and np.all(x <= self.hi + tol))

    def sample(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        """Uniform samples from the box, shape ``(n, dim)``."""
        u = rng.random((n, self.dim))
        return self.lo + u * (self.hi - self.lo)

    # -- arithmetic --------------------------------------------------------------

    def affine(self, weight: np.ndarray, bias: np.ndarray | float = 0.0) -> "Box":
        """Tight interval image of ``W x + b`` over the box.

        Uses the standard split ``W = W⁺ + W⁻``:
        ``lo' = W⁺ lo + W⁻ hi + b`` and ``hi' = W⁺ hi + W⁻ lo + b``.
        """
        w_pos = np.clip(weight, 0.0, None)
        w_neg = np.clip(weight, None, 0.0)
        lo = w_pos @ self.lo + w_neg @ self.hi + bias
        hi = w_pos @ self.hi + w_neg @ self.lo + bias
        return Box(lo, hi)

    def relu(self) -> "Box":
        """Interval image of element-wise ``max(·, 0)``."""
        return Box(np.maximum(self.lo, 0.0), np.maximum(self.hi, 0.0))

    def intersect(self, other: "Box") -> "Box":
        """Intersection; raises if any coordinate becomes empty."""
        return Box(np.maximum(self.lo, other.lo), np.minimum(self.hi, other.hi))

    def union_hull(self, other: "Box") -> "Box":
        """Smallest box containing both operands."""
        return Box(np.minimum(self.lo, other.lo), np.maximum(self.hi, other.hi))

    def expand(self, margin: float) -> "Box":
        """Box enlarged by ``margin`` on every side."""
        return Box(self.lo - margin, self.hi + margin)

    def __add__(self, other: "Box") -> "Box":
        """Minkowski sum (independent interval addition)."""
        if not isinstance(other, Box):
            return NotImplemented
        return Box(self.lo + other.lo, self.hi + other.hi)

    def __sub__(self, other: "Box") -> "Box":
        """Interval difference ``{a - b}`` for independent a, b."""
        if not isinstance(other, Box):
            return NotImplemented
        return Box(self.lo - other.hi, self.hi - other.lo)

    def __getitem__(self, idx: "int | slice | np.ndarray") -> "Box":
        """Sub-box over selected coordinates."""
        return Box(np.atleast_1d(self.lo[idx]), np.atleast_1d(self.hi[idx]))

    def scalar(self, j: int) -> tuple[float, float]:
        """``(lo_j, hi_j)`` as plain floats."""
        return float(self.lo[j]), float(self.hi[j])

    def __repr__(self) -> str:
        if self.dim <= 4:
            pairs = ", ".join(
                f"[{l:.4g}, {h:.4g}]" for l, h in zip(self.lo, self.hi)
            )
            return f"Box({pairs})"
        return f"Box(dim={self.dim}, width_max={self.width().max():.4g})"
