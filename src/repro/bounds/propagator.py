"""The unified bound-propagation API: one protocol, many engines.

Every MILP in the pipeline is only as tight as the interval bounds that
seed it — big-M constants, Algorithm 1's initial range tables and the
Eq. 4 / Eq. 6 relaxation gaps all start from per-layer boxes.  This
module defines the single entry point through which those boxes are
produced:

* :class:`LayerBounds` — the per-layer pre/post-activation boxes of one
  propagation, with optional twin *distance* boxes (``Δy``/``Δx``) when
  a perturbation was supplied;
* :class:`BoundPropagator` — the protocol ``propagate(layers, input_box,
  delta=None) -> LayerBounds`` every engine implements;
* a registry (:func:`register_propagator` / :func:`get_propagator`) with
  the built-in engines ``"ibp"``, ``"twin-ibp"`` and ``"symbolic"``
  (the latter registered by :mod:`repro.bounds.symbolic`).

Implementations must return *sound* enclosures: every reachable
pre/post-activation (and, for twin runs, every reachable distance) lies
inside the reported boxes.  Engines other than plain IBP additionally
guarantee containment in the IBP boxes (tightest-wins), so swapping the
propagator can only shrink downstream relaxations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.bounds.ranges import RangeTable

import numpy as np

from repro.bounds.interval import Box
from repro.bounds.ibp import propagate_box
from repro.bounds.twin_ibp import propagate_twin_box
from repro.nn.affine import AffineLayer


def _copy_box(box: Box) -> Box:
    return Box(box.lo.copy(), box.hi.copy())


@dataclass
class LayerBounds:
    """Per-layer interval records of one bound propagation.

    Layer indices follow the encoders: entry ``i`` bounds layer ``i+1``
    of the paper's 1-based chain.  Distance attributes are ``None`` for
    value-only runs (no perturbation supplied).

    Attributes:
        input_box: Box over the flattened input ``x(0)``.
        y: Pre-activation value box per layer.
        x: Post-activation value box per layer.
        delta_box: Input perturbation box ``Δx(0)`` (twin runs only).
        dy: Pre-activation distance box per layer (twin runs only).
        dx: Post-activation distance box per layer (twin runs only).
        method: Name of the propagator that produced these bounds.
    """

    input_box: Box
    y: list[Box]
    x: list[Box]
    delta_box: Box | None = None
    dy: list[Box] | None = None
    dx: list[Box] | None = None
    method: str = ""

    def __post_init__(self) -> None:
        # Copy the ingested *lists* (RPR002): a caller appending to or
        # reordering the list it passed in must not retroactively edit
        # these bounds.  The Box elements themselves are shared — every
        # producer hands over freshly built boxes and all consumers
        # treat them as read-only.
        self.y = list(self.y)
        self.x = list(self.x)
        if self.dy is not None:
            self.dy = list(self.dy)
        if self.dx is not None:
            self.dx = list(self.dx)

    @property
    def num_layers(self) -> int:
        """Number of network layers covered."""
        return len(self.y)

    @property
    def has_distance(self) -> bool:
        """Whether twin distance bounds were propagated."""
        return self.dy is not None

    @property
    def output(self) -> Box:
        """Post-activation box of the final layer (the network output)."""
        return self.x[-1]

    @property
    def output_distance(self) -> Box:
        """Distance box of the network output ``Δx(n)``."""
        if self.dx is None:
            raise ValueError(
                "no distance bounds: propagate with a delta to get Δ boxes"
            )
        return self.dx[-1]

    def intersect(self, other: "LayerBounds") -> "LayerBounds":
        """Tightest-wins element-wise intersection of two propagations.

        Both operands must be sound for the same network and input box,
        so the intersection is sound and no looser than either.  When
        only one operand carries distance bounds, its distance boxes are
        kept as-is (there is nothing to intersect them with).
        """
        if other.num_layers != self.num_layers:
            raise ValueError("layer count mismatch")
        if self.has_distance and other.has_distance:
            delta_box = self.delta_box.intersect(other.delta_box)
            dy = [a.intersect(b) for a, b in zip(self.dy, other.dy)]
            dx = [a.intersect(b) for a, b in zip(self.dx, other.dx)]
        else:
            twin = self if self.has_distance else other
            delta_box, dy, dx = twin.delta_box, twin.dy, twin.dx
        return LayerBounds(
            input_box=self.input_box.intersect(other.input_box),
            y=[a.intersect(b) for a, b in zip(self.y, other.y)],
            x=[a.intersect(b) for a, b in zip(self.x, other.x)],
            delta_box=delta_box,
            dy=dy,
            dx=dx,
            method=f"{self.method}&{other.method}",
        )

    def stable_mask(self, i: int) -> np.ndarray:
        """Boolean mask of layer ``i``'s neurons stable under these bounds.

        A neuron is *stable* when its pre-activation box does not
        straddle zero — a stable ReLU encodes without a binary variable.
        """
        y_box = self.y[i]
        return (y_box.lo >= 0.0) | (y_box.hi <= 0.0)

    def stable_split(self, layers: list[AffineLayer]) -> tuple[int, int]:
        """``(stable, total)`` ReLU-neuron counts under these bounds."""
        stable = total = 0
        for i, layer in enumerate(layers):
            if not layer.relu:
                continue
            total += self.y[i].dim
            stable += int(np.sum(self.stable_mask(i)))
        return stable, total

    def stable_fraction(self, layers: list[AffineLayer]) -> float:
        """Fraction of ReLU neurons stable under these bounds (1.0 if none)."""
        stable, total = self.stable_split(layers)
        return stable / total if total else 1.0

    def mean_pre_activation_width(self) -> float:
        """Mean width of all pre-activation intervals (the tightness metric)."""
        return float(np.mean(np.concatenate([b.width() for b in self.y])))

    def output_variation_bounds(self) -> np.ndarray:
        """Per-output ``ε̄ = max(|Δx̲(n)|, |Δx̅(n)|)`` from the distance box.

        The variation bound these intervals alone certify (mirrors
        :meth:`repro.bounds.ranges.RangeTable.output_variation_bounds`).
        """
        dist = self.output_distance
        return np.maximum(np.abs(dist.lo), np.abs(dist.hi))

    def to_range_table(self) -> "RangeTable":
        """Convert to the mutable :class:`~repro.bounds.ranges.RangeTable`.

        Requires distance bounds (the table tracks ``Δy``/``Δx``).
        """
        from repro.bounds.ranges import LayerRanges, RangeTable

        if not self.has_distance:
            raise ValueError(
                "RangeTable needs distance bounds: propagate with a delta"
            )
        table = RangeTable(self.input_box, self.delta_box)
        for i in range(self.num_layers):
            table.layers.append(
                LayerRanges(
                    y=_copy_box(self.y[i]),
                    dy=_copy_box(self.dy[i]),
                    x=_copy_box(self.x[i]),
                    dx=_copy_box(self.dx[i]),
                )
            )
        return table


@runtime_checkable
class BoundPropagator(Protocol):
    """Protocol of a bound-propagation engine.

    Attributes:
        name: Registry key (also recorded on produced bounds).
    """

    name: str

    def propagate(
        self,
        layers: list[AffineLayer],
        input_box: Box,
        delta: float | Box | None = None,
    ) -> LayerBounds:
        """Bound every layer of ``layers`` over ``input_box``.

        Args:
            layers: Normal-form network.
            input_box: Box over the flattened input.
            delta: When given (L∞ radius or explicit box), also propagate
                twin *distance* bounds for ITNE/BTNE seeding.

        Returns:
            Sound :class:`LayerBounds`.
        """
        ...  # pragma: no cover - protocol


def _as_delta_box(delta: float | Box, dim: int) -> Box:
    if isinstance(delta, Box):
        if delta.dim != dim:
            raise ValueError("perturbation box dimension mismatch")
        return delta
    return Box.uniform(dim, -float(delta), float(delta))


class IBPPropagator:
    """Plain interval bound propagation (the existing IBP / twin-IBP).

    Value boxes come from forward interval arithmetic; with a ``delta``
    the twin variant of :mod:`repro.bounds.twin_ibp` also tracks the
    per-layer distance boxes.
    """

    name = "ibp"

    def propagate(
        self,
        layers: list[AffineLayer],
        input_box: Box,
        delta: float | Box | None = None,
    ) -> LayerBounds:
        if delta is not None:
            twin = propagate_twin_box(layers, input_box, delta)
            return LayerBounds(
                input_box=twin.x[0],
                y=twin.y,
                x=twin.x[1:],
                delta_box=twin.dx[0],
                dy=twin.dy,
                dx=twin.dx[1:],
                method=self.name,
            )
        _, y_boxes = propagate_box(layers, input_box, collect=True)
        x_boxes = [
            y.relu() if layer.relu else y for layer, y in zip(layers, y_boxes)
        ]
        return LayerBounds(
            input_box=input_box, y=y_boxes, x=x_boxes, method=self.name
        )


class TwinIBPPropagator(IBPPropagator):
    """Twin-network IBP: like ``"ibp"`` but a perturbation is mandatory."""

    name = "twin-ibp"

    def propagate(
        self,
        layers: list[AffineLayer],
        input_box: Box,
        delta: float | Box | None = None,
    ) -> LayerBounds:
        if delta is None:
            raise ValueError("twin-ibp requires a perturbation (delta)")
        bounds = super().propagate(layers, input_box, delta)
        bounds.method = self.name
        return bounds


_REGISTRY: dict[str, BoundPropagator] = {}


def register_propagator(propagator: BoundPropagator) -> BoundPropagator:
    """Register an engine under ``propagator.name`` (last write wins)."""
    _REGISTRY[propagator.name] = propagator
    return propagator


def get_propagator(spec: "str | BoundPropagator") -> BoundPropagator:
    """Resolve a propagator: a registry name or an instance (passed through)."""
    if not isinstance(spec, str):
        return spec
    try:
        return _REGISTRY[spec]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(
            f"unknown bound propagator {spec!r}; registered: {known}"
        ) from None


def available_propagators() -> tuple[str, ...]:
    """Sorted names of all registered engines."""
    return tuple(sorted(_REGISTRY))


register_propagator(IBPPropagator())
register_propagator(TwinIBPPropagator())
