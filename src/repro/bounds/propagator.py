"""The unified bound-propagation API: one protocol, many engines.

Every MILP in the pipeline is only as tight as the interval bounds that
seed it — big-M constants, Algorithm 1's initial range tables and the
Eq. 4 / Eq. 6 relaxation gaps all start from per-layer boxes.  This
module defines the single entry point through which those boxes are
produced:

* :class:`LayerBounds` — the per-layer pre/post-activation boxes of one
  propagation, with optional twin *distance* boxes (``Δy``/``Δx``) when
  a perturbation was supplied;
* :class:`BoundPropagator` — the protocol ``propagate(layers, input_box,
  delta=None) -> LayerBounds`` every engine implements;
* a registry (:func:`register_propagator` / :func:`get_propagator`) with
  the built-in engines ``"ibp"``, ``"twin-ibp"`` and ``"symbolic"``
  (the latter registered by :mod:`repro.bounds.symbolic`).

Implementations must return *sound* enclosures: every reachable
pre/post-activation (and, for twin runs, every reachable distance) lies
inside the reported boxes.  Engines other than plain IBP additionally
guarantee containment in the IBP boxes (tightest-wins), so swapping the
propagator can only shrink downstream relaxations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol, TypeAlias, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.bounds.ranges import RangeTable

import numpy as np

from repro import _sanitize
from repro.bounds.batched import (
    BatchedBox,
    BatchedLayerBounds,
    DeltaSpec,
    as_batched_box,
    as_batched_delta,
    delta_row,
)
from repro.bounds.interval import Box
from repro.bounds.ibp import propagate_box, propagate_box_batch
from repro.bounds.twin_ibp import propagate_twin_box, propagate_twin_box_batch
from repro.nn.affine import AffineLayer

#: Accepted ways of naming a stack of query boxes: a ready-made
#: ``BatchedBox``, one box (a batch of one), or a list of boxes.
BoxStack: TypeAlias = "BatchedBox | Box | list[Box]"


def _copy_box(box: Box) -> Box:
    return Box(box.lo.copy(), box.hi.copy())


@dataclass
class LayerBounds:
    """Per-layer interval records of one bound propagation.

    Layer indices follow the encoders: entry ``i`` bounds layer ``i+1``
    of the paper's 1-based chain.  Distance attributes are ``None`` for
    value-only runs (no perturbation supplied).

    Attributes:
        input_box: Box over the flattened input ``x(0)``.
        y: Pre-activation value box per layer.
        x: Post-activation value box per layer.
        delta_box: Input perturbation box ``Δx(0)`` (twin runs only).
        dy: Pre-activation distance box per layer (twin runs only).
        dx: Post-activation distance box per layer (twin runs only).
        method: Name of the propagator that produced these bounds.
    """

    input_box: Box
    y: list[Box]
    x: list[Box]
    delta_box: Box | None = None
    dy: list[Box] | None = None
    dx: list[Box] | None = None
    method: str = ""

    def __post_init__(self) -> None:
        # Copy the ingested *lists* (RPR002): a caller appending to or
        # reordering the list it passed in must not retroactively edit
        # these bounds.  The Box elements themselves are shared — every
        # producer hands over freshly built boxes and all consumers
        # treat them as read-only.
        self.y = list(self.y)
        self.x = list(self.x)
        if self.dy is not None:
            self.dy = list(self.dy)
        if self.dx is not None:
            self.dx = list(self.dx)

    @property
    def num_layers(self) -> int:
        """Number of network layers covered."""
        return len(self.y)

    @property
    def has_distance(self) -> bool:
        """Whether twin distance bounds were propagated."""
        return self.dy is not None

    @property
    def output(self) -> Box:
        """Post-activation box of the final layer (the network output)."""
        return self.x[-1]

    @property
    def output_distance(self) -> Box:
        """Distance box of the network output ``Δx(n)``."""
        if self.dx is None:
            raise ValueError(
                "no distance bounds: propagate with a delta to get Δ boxes"
            )
        return self.dx[-1]

    def intersect(self, other: "LayerBounds") -> "LayerBounds":
        """Tightest-wins element-wise intersection of two propagations.

        Both operands must be sound for the same network and input box,
        so the intersection is sound and no looser than either.  When
        only one operand carries distance bounds, its distance boxes are
        kept as-is (there is nothing to intersect them with).
        """
        if other.num_layers != self.num_layers:
            raise ValueError("layer count mismatch")
        if self.has_distance and other.has_distance:
            delta_box = self.delta_box.intersect(other.delta_box)
            dy = [a.intersect(b) for a, b in zip(self.dy, other.dy)]
            dx = [a.intersect(b) for a, b in zip(self.dx, other.dx)]
        else:
            twin = self if self.has_distance else other
            delta_box, dy, dx = twin.delta_box, twin.dy, twin.dx
        return LayerBounds(
            input_box=self.input_box.intersect(other.input_box),
            y=[a.intersect(b) for a, b in zip(self.y, other.y)],
            x=[a.intersect(b) for a, b in zip(self.x, other.x)],
            delta_box=delta_box,
            dy=dy,
            dx=dx,
            method=f"{self.method}&{other.method}",
        )

    def stable_mask(self, i: int) -> np.ndarray:
        """Boolean mask of layer ``i``'s neurons stable under these bounds.

        A neuron is *stable* when its pre-activation box does not
        straddle zero — a stable ReLU encodes without a binary variable.
        """
        y_box = self.y[i]
        return (y_box.lo >= 0.0) | (y_box.hi <= 0.0)

    def stable_split(self, layers: list[AffineLayer]) -> tuple[int, int]:
        """``(stable, total)`` ReLU-neuron counts under these bounds."""
        stable = total = 0
        for i, layer in enumerate(layers):
            if not layer.relu:
                continue
            total += self.y[i].dim
            stable += int(np.sum(self.stable_mask(i)))
        return stable, total

    def stable_fraction(self, layers: list[AffineLayer]) -> float:
        """Fraction of ReLU neurons stable under these bounds (1.0 if none)."""
        stable, total = self.stable_split(layers)
        return stable / total if total else 1.0

    def mean_pre_activation_width(self) -> float:
        """Mean width of all pre-activation intervals (the tightness metric)."""
        return float(np.mean(np.concatenate([b.width() for b in self.y])))

    def output_variation_bounds(self) -> np.ndarray:
        """Per-output ``ε̄ = max(|Δx̲(n)|, |Δx̅(n)|)`` from the distance box.

        The variation bound these intervals alone certify (mirrors
        :meth:`repro.bounds.ranges.RangeTable.output_variation_bounds`).
        """
        dist = self.output_distance
        return np.maximum(np.abs(dist.lo), np.abs(dist.hi))

    def to_range_table(self) -> "RangeTable":
        """Convert to the mutable :class:`~repro.bounds.ranges.RangeTable`.

        Requires distance bounds (the table tracks ``Δy``/``Δx``).
        """
        from repro.bounds.ranges import LayerRanges, RangeTable

        if not self.has_distance:
            raise ValueError(
                "RangeTable needs distance bounds: propagate with a delta"
            )
        table = RangeTable(self.input_box, self.delta_box)
        for i in range(self.num_layers):
            table.layers.append(
                LayerRanges(
                    y=_copy_box(self.y[i]),
                    dy=_copy_box(self.dy[i]),
                    x=_copy_box(self.x[i]),
                    dx=_copy_box(self.dx[i]),
                )
            )
        return table


@runtime_checkable
class BoundPropagator(Protocol):
    """Protocol of a bound-propagation engine.

    Engines may additionally expose a native ``propagate_many(layers,
    boxes, deltas=None) -> BatchedLayerBounds`` answering a whole query
    stack in one vectorized pass (all built-ins do).  The method is
    deliberately *not* part of the required protocol: the module-level
    :func:`propagate_many` dispatcher falls back to a loop over
    ``propagate`` plus :meth:`BatchedLayerBounds.stack`, so third-party
    propagators keep working unchanged.

    Attributes:
        name: Registry key (also recorded on produced bounds).
    """

    name: str

    def propagate(
        self,
        layers: list[AffineLayer],
        input_box: Box,
        delta: float | Box | None = None,
    ) -> LayerBounds:
        """Bound every layer of ``layers`` over ``input_box``.

        Args:
            layers: Normal-form network.
            input_box: Box over the flattened input.
            delta: When given (L∞ radius or explicit box), also propagate
                twin *distance* bounds for ITNE/BTNE seeding.

        Returns:
            Sound :class:`LayerBounds`.
        """
        ...  # pragma: no cover - protocol


def _as_delta_box(delta: float | Box, dim: int) -> Box:
    if isinstance(delta, Box):
        if delta.dim != dim:
            raise ValueError("perturbation box dimension mismatch")
        return delta
    return Box.uniform(dim, -float(delta), float(delta))


class IBPPropagator:
    """Plain interval bound propagation (the existing IBP / twin-IBP).

    Value boxes come from forward interval arithmetic; with a ``delta``
    the twin variant of :mod:`repro.bounds.twin_ibp` also tracks the
    per-layer distance boxes.
    """

    name = "ibp"

    def propagate(
        self,
        layers: list[AffineLayer],
        input_box: Box,
        delta: float | Box | None = None,
    ) -> LayerBounds:
        if delta is not None:
            twin = propagate_twin_box(layers, input_box, delta)
            return LayerBounds(
                input_box=twin.x[0],
                y=twin.y,
                x=twin.x[1:],
                delta_box=twin.dx[0],
                dy=twin.dy,
                dx=twin.dx[1:],
                method=self.name,
            )
        _, y_boxes = propagate_box(layers, input_box, collect=True)
        x_boxes = [
            y.relu() if layer.relu else y for layer, y in zip(layers, y_boxes)
        ]
        return LayerBounds(
            input_box=input_box, y=y_boxes, x=x_boxes, method=self.name
        )

    def propagate_many(
        self,
        layers: list[AffineLayer],
        input_boxes: BoxStack,
        deltas: DeltaSpec = None,
    ) -> BatchedLayerBounds:
        """Bound all ``Q`` stacked queries in one vectorized IBP pass.

        Row ``q`` of the result is bit-identical to
        ``self.propagate(layers, input_boxes.row(q), <delta row q>)``.
        """
        stack = as_batched_box(input_boxes)
        delta_stack = as_batched_delta(deltas, stack.num_queries, stack.dim)
        if delta_stack is not None:
            twin = propagate_twin_box_batch(layers, stack, delta_stack)
            return BatchedLayerBounds(
                input_box=twin.x[0],
                y=twin.y,
                x=twin.x[1:],
                delta_box=twin.dx[0],
                dy=twin.dy,
                dx=twin.dx[1:],
                method=self.name,
            )
        _, y_stacks = propagate_box_batch(layers, stack, collect=True)
        x_stacks = [
            y.relu() if layer.relu else y for layer, y in zip(layers, y_stacks)
        ]
        return BatchedLayerBounds(
            input_box=stack, y=y_stacks, x=x_stacks, method=self.name
        )


class TwinIBPPropagator(IBPPropagator):
    """Twin-network IBP: like ``"ibp"`` but a perturbation is mandatory."""

    name = "twin-ibp"

    def propagate(
        self,
        layers: list[AffineLayer],
        input_box: Box,
        delta: float | Box | None = None,
    ) -> LayerBounds:
        if delta is None:
            raise ValueError("twin-ibp requires a perturbation (delta)")
        bounds = super().propagate(layers, input_box, delta)
        bounds.method = self.name
        return bounds

    def propagate_many(
        self,
        layers: list[AffineLayer],
        input_boxes: BoxStack,
        deltas: DeltaSpec = None,
    ) -> BatchedLayerBounds:
        if deltas is None:
            raise ValueError("twin-ibp requires a perturbation (delta)")
        bounds = super().propagate_many(layers, input_boxes, deltas)
        bounds.method = self.name
        return bounds


_REGISTRY: dict[str, BoundPropagator] = {}


def register_propagator(propagator: BoundPropagator) -> BoundPropagator:
    """Register an engine under ``propagator.name`` (last write wins)."""
    _REGISTRY[propagator.name] = propagator
    return propagator


def get_propagator(spec: "str | BoundPropagator") -> BoundPropagator:
    """Resolve a propagator: a registry name or an instance (passed through)."""
    if not isinstance(spec, str):
        return spec
    try:
        return _REGISTRY[spec]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(
            f"unknown bound propagator {spec!r}; registered: {known}"
        ) from None


def available_propagators() -> tuple[str, ...]:
    """Sorted names of all registered engines."""
    return tuple(sorted(_REGISTRY))


def _check_batch_agreement(
    engine: BoundPropagator,
    layers: list[AffineLayer],
    stack: BatchedBox,
    deltas: DeltaSpec,
    result: BatchedLayerBounds,
) -> None:
    """Sanitizer: a sampled batched row must match its scalar propagation.

    Re-runs the scalar ``propagate`` for one deterministically sampled
    query and compares every per-layer array — the runtime analogue of
    the bit-identity property tests, but exercised on *real* workloads
    whenever ``REPRO_SANITIZE=1``.
    """
    queries = result.num_queries
    q = int(np.random.default_rng(queries * 1000003 + stack.dim).integers(queries))
    scalar = engine.propagate(layers, stack.row(q), delta_row(deltas, q, stack.dim))
    row = result.row(q)
    what = f"propagate_many[{engine.name}] query {q}/{queries}"
    if row.num_layers != scalar.num_layers:
        raise _sanitize.SanitizerError(
            f"sanitizer[batch-row]: {what}: batched result covers "
            f"{row.num_layers} layers, scalar propagation {scalar.num_layers}"
        )
    if row.has_distance != scalar.has_distance:
        raise _sanitize.SanitizerError(
            f"sanitizer[batch-row]: {what}: batched and scalar results "
            f"disagree on distance-bound presence"
        )
    for t in range(row.num_layers):
        _sanitize.check_batch_row(row.y[t].lo, scalar.y[t].lo, f"{what} y[{t}].lo")
        _sanitize.check_batch_row(row.y[t].hi, scalar.y[t].hi, f"{what} y[{t}].hi")
        _sanitize.check_batch_row(row.x[t].lo, scalar.x[t].lo, f"{what} x[{t}].lo")
        _sanitize.check_batch_row(row.x[t].hi, scalar.x[t].hi, f"{what} x[{t}].hi")
    if row.has_distance:
        assert row.dy is not None and row.dx is not None
        assert scalar.dy is not None and scalar.dx is not None
        for t in range(row.num_layers):
            _sanitize.check_batch_row(
                row.dy[t].lo, scalar.dy[t].lo, f"{what} dy[{t}].lo"
            )
            _sanitize.check_batch_row(
                row.dy[t].hi, scalar.dy[t].hi, f"{what} dy[{t}].hi"
            )
            _sanitize.check_batch_row(
                row.dx[t].lo, scalar.dx[t].lo, f"{what} dx[{t}].lo"
            )
            _sanitize.check_batch_row(
                row.dx[t].hi, scalar.dx[t].hi, f"{what} dx[{t}].hi"
            )


def propagate_many(
    propagator: "str | BoundPropagator",
    layers: list[AffineLayer],
    boxes: BoxStack,
    deltas: DeltaSpec = None,
) -> BatchedLayerBounds:
    """Bound a whole stack of queries through one engine.

    The batched entry point of the bounds package: engines exposing a
    native ``propagate_many`` (all built-ins) answer the stack in one
    vectorized pass; third-party propagators implementing only the
    :class:`BoundPropagator` protocol are looped per query and stacked,
    so every registered engine works here unchanged.

    Args:
        propagator: Registry name or engine instance.
        layers: Normal-form network shared by all queries.
        boxes: The ``Q`` input boxes — a :class:`BatchedBox`, a single
            :class:`Box`, or a list of boxes.
        deltas: Optional per-query perturbations (shared radius, array of
            radii, shared box, list of boxes, or a ``(Q, n)`` stack).

    Returns:
        Sound :class:`BatchedLayerBounds`; row ``q`` equals the scalar
        ``propagate`` result of query ``q`` (bit-identical for the
        built-in engines, sanitizer-checked for native third-party
        batched implementations).
    """
    engine = get_propagator(propagator)
    stack = as_batched_box(boxes)
    native = getattr(engine, "propagate_many", None)
    if native is None or not callable(native):
        rows = [
            engine.propagate(layers, stack.row(q), delta_row(deltas, q, stack.dim))
            for q in range(stack.num_queries)
        ]
        return BatchedLayerBounds.stack(rows)
    result: BatchedLayerBounds = native(layers, stack, deltas)
    if _sanitize.ENABLED:
        _check_batch_agreement(engine, layers, stack, deltas, result)
    return result


register_propagator(IBPPropagator())
register_propagator(TwinIBPPropagator())
