"""Mutable per-layer range tables used by Algorithm 1.

Algorithm 1 evaluates, layer by layer and neuron by neuron, the ranges of
``y(i)_j``, ``Δy(i)_j``, ``x(i)_j`` and ``Δx(i)_j``.  The
:class:`RangeTable` stores these as per-layer :class:`LayerRanges`
records that start from sound interval-propagation values and are
overwritten with tighter LP-derived values as the algorithm proceeds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bounds.interval import Box
from repro.bounds.propagator import BoundPropagator, get_propagator
from repro.nn.affine import AffineLayer


@dataclass
class LayerRanges:
    """Ranges attached to one layer ``i`` (1-based in the paper).

    Attributes:
        y: Pre-activation value box ``y(i)``.
        dy: Pre-activation distance box ``Δy(i)``.
        x: Post-activation value box ``x(i)``.
        dx: Post-activation distance box ``Δx(i)``.
    """

    y: Box
    dy: Box
    x: Box
    dx: Box

    def set_neuron(
        self,
        j: int,
        y: tuple[float, float] | None = None,
        dy: tuple[float, float] | None = None,
        x: tuple[float, float] | None = None,
        dx: tuple[float, float] | None = None,
    ) -> None:
        """Overwrite individual neuron ranges (tightening updates)."""
        for box, pair in ((self.y, y), (self.dy, dy), (self.x, x), (self.dx, dx)):
            if pair is None:
                continue
            lo, hi = pair
            if lo > hi + 1e-9:
                raise ValueError(f"invalid range for neuron {j}: [{lo}, {hi}]")
            box.lo[j] = min(lo, hi)
            box.hi[j] = hi


class RangeTable:
    """All layer ranges of a twin-encoded network.

    Index 0 holds the *input* ranges (``x(0)`` = input domain,
    ``Δx(0)`` = perturbation box); entries 1..n hold per-layer records.
    """

    def __init__(self, input_box: Box, delta_box: Box) -> None:
        self.input = LayerRanges(
            y=Box(input_box.lo.copy(), input_box.hi.copy()),
            dy=Box(delta_box.lo.copy(), delta_box.hi.copy()),
            x=Box(input_box.lo.copy(), input_box.hi.copy()),
            dx=Box(delta_box.lo.copy(), delta_box.hi.copy()),
        )
        self.layers: list[LayerRanges] = []

    @classmethod
    def from_interval_propagation(
        cls,
        layers: list[AffineLayer],
        input_box: Box,
        delta: float | Box,
        propagator: str | BoundPropagator = "ibp",
    ) -> "RangeTable":
        """Initialize every layer from a bound propagation (sound baseline).

        Args:
            layers: Normal-form network.
            input_box: Input domain.
            delta: L∞ perturbation radius or explicit distance box.
            propagator: Bound engine — a registry name (``"ibp"``,
                ``"symbolic"``, ...) or a
                :class:`~repro.bounds.propagator.BoundPropagator`
                instance.  Registered non-IBP engines guarantee
                tightest-wins containment in the IBP boxes.
        """
        bounds = get_propagator(propagator).propagate(layers, input_box, delta)
        return bounds.to_range_table()

    def layer(self, i: int) -> LayerRanges:
        """Ranges of layer ``i`` (1-based; 0 returns the input record)."""
        if i == 0:
            return self.input
        return self.layers[i - 1]

    @property
    def num_layers(self) -> int:
        """Number of network layers tracked (input excluded)."""
        return len(self.layers)

    def output_variation_bound(self) -> float:
        """``ε̄ = max(|Δx̲(n)|, |Δx̅(n)|)`` over all outputs (line 14)."""
        last = self.layers[-1].dx
        return float(np.max(np.maximum(np.abs(last.lo), np.abs(last.hi))))

    def output_variation_bounds(self) -> np.ndarray:
        """Per-output ε̄ values (Table I reports outputs separately)."""
        last = self.layers[-1].dx
        return np.maximum(np.abs(last.lo), np.abs(last.hi))
