"""Symbolic linear bound propagation (CROWN/DeepPoly-style backsubstitution).

Plain IBP concretizes to a box after every layer, so the dependency
between neurons is lost immediately and the big-M ranges it produces
grow exponentially loose with depth.  The symbolic propagator instead
keeps each pre-activation as a pair of *linear* functions of the input,

    A_L x(0) + c_L  ≤  y(i)  ≤  A_U x(0) + c_U,

obtained by substituting backward through the affine chain and replacing
every intervening ReLU with sound linear lower/upper relaxations (the
CROWN / DeepPoly family):

* stable neurons substitute exactly (identity or zero);
* an unstable neuron ``y ∈ [l, u]`` uses the chord ``u(y − l)/(u − l)``
  as upper relaxation and the adaptive slope (identity when ``u ≥ −l``,
  zero otherwise) as lower relaxation.

Concretizing the final linear pair over the input box yields bounds that
are never looser than one affine step of interval arithmetic — and each
layer's result is additionally intersected with the IBP box, so the
output is *guaranteed* to be contained in the IBP bounds.

The twin variant does the same in distance space: ``Δy(i)`` is kept
linear in the input perturbation ``Δx(0)`` (``Δy = W Δx`` has no bias),
and the nonlinear distance relation ``Δx = relu(y + Δy) − relu(y)`` is
replaced by the chords of its envelope ``min(0, Δy) ≤ Δx ≤ max(0, Δy)``
(Fig. 3 of the paper), tightened to exact substitution wherever the
value bounds prove both copies stably active or stably inactive.  These
distance bounds seed the ITNE/BTNE encoders and Algorithm 1's range
table through :meth:`repro.bounds.ranges.RangeTable.from_interval_propagation`.
"""

from __future__ import annotations

import numpy as np

from repro import _sanitize
from repro.bounds.batched import (
    BatchedBox,
    BatchedLayerBounds,
    DeltaSpec,
    as_batched_box,
    as_batched_delta,
)
from repro.bounds.interval import Box
from repro.bounds.propagator import (
    BoxStack,
    IBPPropagator,
    LayerBounds,
    _as_delta_box,
    register_propagator,
)
from repro.bounds.twin_ibp import (
    relu_distance_interval,
    relu_distance_interval_batch,
)
from repro.nn.affine import AffineLayer

#: Linear relaxation of one activation layer: element-wise coefficient
#: arrays ``(d_lo, b_lo, d_hi, b_hi)`` such that
#: ``d_lo·y + b_lo ≤ act(y) ≤ d_hi·y + b_hi`` over the layer's y-range.
Relaxation = tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]


def _identity_relaxation(dim: int) -> Relaxation:
    one = np.ones(dim)
    zero = np.zeros(dim)
    return one, zero, one.copy(), zero.copy()


def _identity_relaxation_batch(queries: int, dim: int) -> Relaxation:
    one = np.ones((queries, dim))
    zero = np.zeros((queries, dim))
    return one, zero, one.copy(), zero.copy()


def _relu_relaxation_arrays(lo: np.ndarray, hi: np.ndarray) -> Relaxation:
    """Element-wise core of :func:`_relu_relaxation`.

    Shape-agnostic (every operation is element-wise), so it serves both
    the scalar ``(n,)`` path and the batched ``(Q, n)`` stacks with
    bit-identical per-row results.
    """
    active = lo >= 0.0
    inactive = hi <= 0.0
    denom = np.where(hi - lo > 0.0, hi - lo, 1.0)
    slope = hi / denom
    d_hi = np.where(inactive, 0.0, np.where(active, 1.0, slope))
    b_hi = np.where(inactive | active, 0.0, -slope * lo)
    d_lo = np.where(inactive, 0.0, np.where(active, 1.0,
                                            np.where(hi >= -lo, 1.0, 0.0)))
    b_lo = np.zeros_like(lo)
    return d_lo, b_lo, d_hi, b_hi


def _relu_relaxation(y_box: Box) -> Relaxation:
    """CROWN relaxation of ``relu(y)`` over ``y ∈ [lo, hi]``.

    Stable-active → identity, stable-inactive → zero; unstable neurons
    get the chord as upper bound and the adaptive identity/zero slope as
    lower bound (minimizing the relaxation area).
    """
    return _relu_relaxation_arrays(y_box.lo, y_box.hi)


def _distance_relaxation_arrays(
    y_lo: np.ndarray,
    y_hi: np.ndarray,
    lo: np.ndarray,
    hi: np.ndarray,
) -> Relaxation:
    """Element-wise core of :func:`_distance_relaxation` (shape-agnostic)."""
    yhat_lo = y_lo + lo
    yhat_hi = y_hi + hi
    both_active = (y_lo >= 0.0) & (yhat_lo >= 0.0)
    both_inactive = (y_hi <= 0.0) & (yhat_hi <= 0.0)

    denom = np.where(hi - lo > 0.0, hi - lo, 1.0)
    up_slope = hi / denom        # chord of max(0, ·): (l, 0) -> (u, u)
    lo_slope = -lo / denom       # chord of min(0, ·): (l, l) -> (u, 0)
    d_hi = np.where(hi <= 0.0, 0.0, np.where(lo >= 0.0, 1.0, up_slope))
    b_hi = np.where((hi <= 0.0) | (lo >= 0.0), 0.0, -up_slope * lo)
    d_lo = np.where(hi <= 0.0, 1.0, np.where(lo >= 0.0, 0.0, lo_slope))
    b_lo = np.where((hi <= 0.0) | (lo >= 0.0), 0.0, -lo_slope * hi)

    d_lo = np.where(both_active, 1.0, np.where(both_inactive, 0.0, d_lo))
    d_hi = np.where(both_active, 1.0, np.where(both_inactive, 0.0, d_hi))
    b_lo = np.where(both_active | both_inactive, 0.0, b_lo)
    b_hi = np.where(both_active | both_inactive, 0.0, b_hi)
    return d_lo, b_lo, d_hi, b_hi


def _distance_relaxation(y_box: Box, dy_box: Box) -> Relaxation:
    """Linear envelope of ``Δx = relu(y + Δy) − relu(y)`` in ``Δy``.

    Uses the Fig. 3 facts ``min(0, Δy) ≤ Δx ≤ max(0, Δy)``: the chord of
    ``max(0, ·)`` over ``Δy ∈ [l, u]`` bounds above (convex), the chord
    of ``min(0, ·)`` bounds below (concave).  Neurons whose value boxes
    prove both copies stably active substitute ``Δx = Δy`` exactly;
    both-inactive neurons substitute ``Δx = 0``.
    """
    return _distance_relaxation_arrays(
        y_box.lo, y_box.hi, dy_box.lo, dy_box.hi
    )


def _backsubstitute(
    layers: list[AffineLayer],
    t: int,
    box: Box,
    relaxations: list[Relaxation],
    with_bias: bool,
) -> tuple[np.ndarray, np.ndarray]:
    """Concrete bounds of layer ``t``'s pre-activation by backsubstitution.

    Starting from ``y(t) = W(t) h(t−1) (+ b(t))``, each earlier
    activation ``h(k) = act(y(k))`` is replaced by its linear relaxation
    (``relaxations[k]``, sign-split per coefficient) and each ``y(k)``
    by its affine definition, until the bound is linear in the input;
    the final pair is concretized over ``box``.  ``with_bias=False``
    runs the same recursion in distance space (``Δy = W Δx``, biasless).

    Returns:
        ``(lo, hi)`` arrays for ``y(t)`` (or ``Δy(t)``).
    """
    a_lo = layers[t].weight.copy()
    a_hi = layers[t].weight.copy()
    if with_bias:
        c_lo = layers[t].bias.copy()
        c_hi = layers[t].bias.copy()
    else:
        c_lo = np.zeros(layers[t].out_dim)
        c_hi = np.zeros(layers[t].out_dim)

    for k in range(t - 1, -1, -1):
        d_lo, b_lo, d_hi, b_hi = relaxations[k]
        pos, neg = np.maximum(a_lo, 0.0), np.minimum(a_lo, 0.0)
        c_lo = c_lo + pos @ b_lo + neg @ b_hi
        a_lo = pos * d_lo + neg * d_hi
        pos, neg = np.maximum(a_hi, 0.0), np.minimum(a_hi, 0.0)
        c_hi = c_hi + pos @ b_hi + neg @ b_lo
        a_hi = pos * d_hi + neg * d_lo
        if with_bias:
            c_lo = c_lo + a_lo @ layers[k].bias
            c_hi = c_hi + a_hi @ layers[k].bias
        a_lo = a_lo @ layers[k].weight
        a_hi = a_hi @ layers[k].weight

    pos, neg = np.maximum(a_lo, 0.0), np.minimum(a_lo, 0.0)
    lo = pos @ box.lo + neg @ box.hi + c_lo
    pos, neg = np.maximum(a_hi, 0.0), np.minimum(a_hi, 0.0)
    hi = pos @ box.hi + neg @ box.lo + c_hi
    return lo, hi


def _backsubstitute_batch(
    layers: list[AffineLayer],
    t: int,
    boxes: BatchedBox,
    relaxations: list[Relaxation],
    with_bias: bool,
) -> tuple[np.ndarray, np.ndarray]:
    """Backsubstitution for all ``Q`` queries in one pass.

    The batched twin of :func:`_backsubstitute`: the coefficient
    matrices carry a leading query axis (``(Q, m_t, m_k)``), relaxation
    entries are ``(Q, m_k)`` stacks, and every matmul is arranged in the
    *stacked* form (batch through numpy's leading axes, never folded
    into a wider 2-D product) so each per-query slice runs the exact
    scalar computation — row ``q`` of the result is bit-identical to
    backsubstituting query ``q`` alone.

    The coefficients start 2-D (shared across the batch: layer ``t``'s
    weight) and pick up the query axis at the first per-query relaxation
    by broadcasting, so a depth-1 backsubstitution never materializes
    ``Q`` weight copies.
    """
    a_lo: np.ndarray = layers[t].weight
    a_hi: np.ndarray = layers[t].weight
    c_lo: np.ndarray
    c_hi: np.ndarray
    if with_bias:
        c_lo = layers[t].bias
        c_hi = layers[t].bias
    else:
        c_lo = np.zeros(layers[t].out_dim)
        c_hi = np.zeros(layers[t].out_dim)

    for k in range(t - 1, -1, -1):
        d_lo, b_lo, d_hi, b_hi = relaxations[k]
        pos, neg = np.maximum(a_lo, 0.0), np.minimum(a_lo, 0.0)
        c_lo = (
            c_lo
            + (pos @ b_lo[..., None])[..., 0]
            + (neg @ b_hi[..., None])[..., 0]
        )
        a_lo = pos * d_lo[:, None, :] + neg * d_hi[:, None, :]
        pos, neg = np.maximum(a_hi, 0.0), np.minimum(a_hi, 0.0)
        c_hi = (
            c_hi
            + (pos @ b_hi[..., None])[..., 0]
            + (neg @ b_lo[..., None])[..., 0]
        )
        a_hi = pos * d_hi[:, None, :] + neg * d_lo[:, None, :]
        if with_bias:
            c_lo = c_lo + a_lo @ layers[k].bias
            c_hi = c_hi + a_hi @ layers[k].bias
        a_lo = a_lo @ layers[k].weight
        a_hi = a_hi @ layers[k].weight

    pos, neg = np.maximum(a_lo, 0.0), np.minimum(a_lo, 0.0)
    lo = (
        (pos @ boxes.lo[..., None])[..., 0]
        + (neg @ boxes.hi[..., None])[..., 0]
        + c_lo
    )
    pos, neg = np.maximum(a_hi, 0.0), np.minimum(a_hi, 0.0)
    hi = (
        (pos @ boxes.hi[..., None])[..., 0]
        + (neg @ boxes.lo[..., None])[..., 0]
        + c_hi
    )
    return lo, hi


class SymbolicPropagator:
    """Backward-substitution linear bounds (value and twin distance).

    Every layer's symbolic result is intersected with the IBP box before
    it feeds later relaxations, so the produced :class:`LayerBounds` are
    always contained in (usually strictly tighter than) plain IBP.
    """

    name = "symbolic"

    def __init__(self) -> None:
        self._ibp = IBPPropagator()

    def propagate(
        self,
        layers: list[AffineLayer],
        input_box: Box,
        delta: float | Box | None = None,
    ) -> LayerBounds:
        ibp = self._ibp.propagate(layers, input_box, delta)

        y_boxes: list[Box] = []
        x_boxes: list[Box] = []
        value_relax: list[Relaxation] = []
        for t, layer in enumerate(layers):
            lo, hi = _backsubstitute(layers, t, input_box, value_relax, with_bias=True)
            y_box = Box(lo, hi).intersect(ibp.y[t])
            if _sanitize.ENABLED:
                _sanitize.check_containment(
                    y_box.lo, y_box.hi, ibp.y[t].lo, ibp.y[t].hi,
                    f"symbolic y[{t}] vs ibp",
                )
            y_boxes.append(y_box)
            if layer.relu:
                x_boxes.append(y_box.relu())
                value_relax.append(_relu_relaxation(y_box))
            else:
                x_boxes.append(Box(y_box.lo.copy(), y_box.hi.copy()))
                value_relax.append(_identity_relaxation(layer.out_dim))

        if delta is None:
            return LayerBounds(
                input_box=input_box, y=y_boxes, x=x_boxes, method=self.name
            )

        delta_box = _as_delta_box(delta, input_box.dim)
        dy_boxes: list[Box] = []
        dx_boxes: list[Box] = []
        dist_relax: list[Relaxation] = []
        for t, layer in enumerate(layers):
            lo, hi = _backsubstitute(
                layers, t, delta_box, dist_relax, with_bias=False
            )
            dy_box = Box(lo, hi).intersect(ibp.dy[t])
            if _sanitize.ENABLED:
                _sanitize.check_containment(
                    dy_box.lo, dy_box.hi, ibp.dy[t].lo, ibp.dy[t].hi,
                    f"symbolic dy[{t}] vs ibp",
                )
            dy_boxes.append(dy_box)
            if layer.relu:
                dx_box = relu_distance_interval(y_boxes[t], dy_box)
                dist_relax.append(_distance_relaxation(y_boxes[t], dy_box))
            else:
                dx_box = Box(dy_box.lo.copy(), dy_box.hi.copy())
                dist_relax.append(_identity_relaxation(layer.out_dim))
            dx_box = dx_box.intersect(ibp.dx[t])
            if _sanitize.ENABLED:
                _sanitize.check_containment(
                    dx_box.lo, dx_box.hi, ibp.dx[t].lo, ibp.dx[t].hi,
                    f"symbolic dx[{t}] vs ibp",
                )
            dx_boxes.append(dx_box)

        return LayerBounds(
            input_box=input_box,
            y=y_boxes,
            x=x_boxes,
            delta_box=delta_box,
            dy=dy_boxes,
            dx=dx_boxes,
            method=self.name,
        )

    def propagate_many(
        self,
        layers: list[AffineLayer],
        input_boxes: BoxStack,
        deltas: DeltaSpec = None,
    ) -> BatchedLayerBounds:
        """One backsubstitution pass serving all ``Q`` stacked queries.

        Identical structure to :meth:`propagate` — batched IBP first,
        per-layer batched backsubstitution intersected tightest-wins
        with the IBP stacks — with every kernel in the stacked-matmul
        form, so row ``q`` of the result is bit-identical to the scalar
        ``propagate`` of query ``q``.
        """
        stack = as_batched_box(input_boxes)
        queries = stack.num_queries
        delta_stack = as_batched_delta(deltas, queries, stack.dim)
        ibp = self._ibp.propagate_many(layers, stack, delta_stack)

        y_stacks: list[BatchedBox] = []
        x_stacks: list[BatchedBox] = []
        value_relax: list[Relaxation] = []
        for t, layer in enumerate(layers):
            lo, hi = _backsubstitute_batch(
                layers, t, stack, value_relax, with_bias=True
            )
            y_stack = BatchedBox(lo, hi).intersect(ibp.y[t])
            if _sanitize.ENABLED:
                _sanitize.check_containment(
                    y_stack.lo, y_stack.hi, ibp.y[t].lo, ibp.y[t].hi,
                    f"symbolic-batch y[{t}] vs ibp",
                )
            y_stacks.append(y_stack)
            if layer.relu:
                x_stacks.append(y_stack.relu())
                value_relax.append(
                    _relu_relaxation_arrays(y_stack.lo, y_stack.hi)
                )
            else:
                x_stacks.append(BatchedBox(y_stack.lo, y_stack.hi))
                value_relax.append(
                    _identity_relaxation_batch(queries, layer.out_dim)
                )

        if delta_stack is None:
            return BatchedLayerBounds(
                input_box=stack, y=y_stacks, x=x_stacks, method=self.name
            )

        assert ibp.dy is not None and ibp.dx is not None
        dy_stacks: list[BatchedBox] = []
        dx_stacks: list[BatchedBox] = []
        dist_relax: list[Relaxation] = []
        for t, layer in enumerate(layers):
            lo, hi = _backsubstitute_batch(
                layers, t, delta_stack, dist_relax, with_bias=False
            )
            dy_stack = BatchedBox(lo, hi).intersect(ibp.dy[t])
            if _sanitize.ENABLED:
                _sanitize.check_containment(
                    dy_stack.lo, dy_stack.hi, ibp.dy[t].lo, ibp.dy[t].hi,
                    f"symbolic-batch dy[{t}] vs ibp",
                )
            dy_stacks.append(dy_stack)
            if layer.relu:
                dx_stack = relu_distance_interval_batch(y_stacks[t], dy_stack)
                dist_relax.append(
                    _distance_relaxation_arrays(
                        y_stacks[t].lo, y_stacks[t].hi,
                        dy_stack.lo, dy_stack.hi,
                    )
                )
            else:
                dx_stack = BatchedBox(dy_stack.lo, dy_stack.hi)
                dist_relax.append(
                    _identity_relaxation_batch(queries, layer.out_dim)
                )
            dx_stack = dx_stack.intersect(ibp.dx[t])
            if _sanitize.ENABLED:
                _sanitize.check_containment(
                    dx_stack.lo, dx_stack.hi, ibp.dx[t].lo, ibp.dx[t].hi,
                    f"symbolic-batch dx[{t}] vs ibp",
                )
            dx_stacks.append(dx_stack)

        return BatchedLayerBounds(
            input_box=stack,
            y=y_stacks,
            x=x_stacks,
            delta_box=delta_stack,
            dy=dy_stacks,
            dx=dx_stacks,
            method=self.name,
        )


register_propagator(SymbolicPropagator())
