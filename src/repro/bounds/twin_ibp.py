"""Twin-network interval propagation: value and distance boxes together.

This is the interval-arithmetic analogue of the paper's ITNE: alongside
the value interval of one network copy we track the interval of the
*distance* ``Δ`` between the two copies.  Through an affine layer the
distance transforms without the bias (``Δy = W Δx``); through a ReLU the
exact distance relation of Fig. 3,

    min(0, Δy) ≤ Δx ≤ max(0, Δy),        |Δx| ≤ |Δy|,

combined with what the value intervals of both copies admit, yields a
sound ``Δx`` interval.  These intervals seed the big-M constants of the
MILP encodings and the initial range table of Algorithm 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bounds.batched import BatchedBox
from repro.bounds.interval import Box
from repro.nn.affine import AffineLayer


@dataclass
class TwinBounds:
    """Per-layer interval records of a twin propagation.

    Attributes:
        x: Value box of the first copy after each layer (index 0 is the
            input box).
        dx: Distance box after each layer (index 0 is the perturbation).
        y: Pre-activation value box per layer (index i bounds y(i+1)).
        dy: Pre-activation distance box per layer.
    """

    x: list[Box] = field(default_factory=list)
    dx: list[Box] = field(default_factory=list)
    y: list[Box] = field(default_factory=list)
    dy: list[Box] = field(default_factory=list)

    @property
    def output_distance(self) -> Box:
        """Distance box of the network output (Δx(n))."""
        return self.dx[-1]


def relu_distance_interval(y_box: Box, dy_box: Box) -> Box:
    """Sound interval for ``Δx = relu(y + Δy) − relu(y)``.

    Intersects two valid enclosures:

    1. The sign/magnitude facts ``min(0, Δy̲) ≤ Δx ≤ max(0, Δy̅)``.
    2. The difference of the (correlated, but soundly treated as
       independent) value enclosures ``relu(ŷ) − relu(y)``.

    Degenerate cases where both copies are certainly active (identity)
    or certainly inactive (zero) are exact.
    """
    yhat_box = Box(y_box.lo + dy_box.lo, y_box.hi + dy_box.hi)

    # Certainly-active: Δx = Δy exactly.
    both_active = (y_box.lo >= 0.0) & (yhat_box.lo >= 0.0)
    # Certainly-inactive: Δx = 0 exactly.
    both_inactive = (y_box.hi <= 0.0) & (yhat_box.hi <= 0.0)

    lo1 = np.minimum(0.0, dy_box.lo)
    hi1 = np.maximum(0.0, dy_box.hi)

    relu_y = y_box.relu()
    relu_yhat = yhat_box.relu()
    lo2 = relu_yhat.lo - relu_y.hi
    hi2 = relu_yhat.hi - relu_y.lo

    lo = np.maximum(lo1, lo2)
    hi = np.minimum(hi1, hi2)

    lo = np.where(both_active, dy_box.lo, np.where(both_inactive, 0.0, lo))
    hi = np.where(both_active, dy_box.hi, np.where(both_inactive, 0.0, hi))
    return Box(lo, hi)


@dataclass
class BatchedTwinBounds:
    """Per-layer ``(Q, n)`` stacks of a batched twin propagation.

    The stacked twin of :class:`TwinBounds`; indexing conventions match
    (``x[0]``/``dx[0]`` are the input/perturbation stacks).
    """

    x: list[BatchedBox] = field(default_factory=list)
    dx: list[BatchedBox] = field(default_factory=list)
    y: list[BatchedBox] = field(default_factory=list)
    dy: list[BatchedBox] = field(default_factory=list)

    @property
    def output_distance(self) -> BatchedBox:
        """Distance stack of the network output (Δx(n))."""
        return self.dx[-1]


def relu_distance_interval_batch(
    y_boxes: BatchedBox, dy_boxes: BatchedBox
) -> BatchedBox:
    """Row-wise :func:`relu_distance_interval` over ``(Q, n)`` stacks.

    The scalar body is purely element-wise, so running it on stacked
    arrays yields rows bit-identical to the per-query calls.
    """
    yhat_boxes = BatchedBox(
        y_boxes.lo + dy_boxes.lo, y_boxes.hi + dy_boxes.hi
    )

    both_active = (y_boxes.lo >= 0.0) & (yhat_boxes.lo >= 0.0)
    both_inactive = (y_boxes.hi <= 0.0) & (yhat_boxes.hi <= 0.0)

    lo1 = np.minimum(0.0, dy_boxes.lo)
    hi1 = np.maximum(0.0, dy_boxes.hi)

    relu_y = y_boxes.relu()
    relu_yhat = yhat_boxes.relu()
    lo2 = relu_yhat.lo - relu_y.hi
    hi2 = relu_yhat.hi - relu_y.lo

    lo = np.maximum(lo1, lo2)
    hi = np.minimum(hi1, hi2)

    lo = np.where(both_active, dy_boxes.lo, np.where(both_inactive, 0.0, lo))
    hi = np.where(both_active, dy_boxes.hi, np.where(both_inactive, 0.0, hi))
    return BatchedBox(lo, hi)


def propagate_twin_box(
    layers: list[AffineLayer], input_box: Box, delta: float | Box
) -> TwinBounds:
    """Propagate value and distance boxes through an affine chain.

    Args:
        layers: Normal-form network.
        input_box: Box over the flattened input domain ``X``.
        delta: Input perturbation — either the L∞ radius δ (a float) or
            an explicit distance box.

    Returns:
        A :class:`TwinBounds` with per-layer value/distance intervals.
    """
    if isinstance(delta, Box):
        dx_box = delta
        if dx_box.dim != input_box.dim:
            raise ValueError("perturbation box dimension mismatch")
    else:
        dx_box = Box.uniform(input_box.dim, -float(delta), float(delta))

    bounds = TwinBounds(x=[input_box], dx=[dx_box])
    x_box, d_box = input_box, dx_box
    for layer in layers:
        y_box = x_box.affine(layer.weight, layer.bias)
        dy_box = d_box.affine(layer.weight, 0.0)
        bounds.y.append(y_box)
        bounds.dy.append(dy_box)
        if layer.relu:
            x_box = y_box.relu()
            d_box = relu_distance_interval(y_box, dy_box)
        else:
            x_box, d_box = y_box, dy_box
        bounds.x.append(x_box)
        bounds.dx.append(d_box)
    return bounds


def propagate_twin_box_batch(
    layers: list[AffineLayer], input_boxes: BatchedBox, deltas: BatchedBox
) -> BatchedTwinBounds:
    """Propagate value and distance stacks through an affine chain at once.

    The batched twin of :func:`propagate_twin_box`; row ``q`` of every
    stack is bit-identical to the scalar propagation of query ``q``.
    Unlike the scalar entry point, the perturbation must already be a
    ``(Q, n)`` stack (use :func:`repro.bounds.batched.as_batched_delta`).
    """
    if deltas.num_queries != input_boxes.num_queries:
        raise ValueError(
            f"perturbation stack has {deltas.num_queries} rows for "
            f"{input_boxes.num_queries} queries"
        )
    if deltas.dim != input_boxes.dim:
        raise ValueError("perturbation box dimension mismatch")

    bounds = BatchedTwinBounds(x=[input_boxes], dx=[deltas])
    x_boxes, d_boxes = input_boxes, deltas
    for layer in layers:
        y_boxes = x_boxes.affine(layer.weight, layer.bias)
        dy_boxes = d_boxes.affine(layer.weight, 0.0)
        bounds.y.append(y_boxes)
        bounds.dy.append(dy_boxes)
        if layer.relu:
            x_boxes = y_boxes.relu()
            d_boxes = relu_distance_interval_batch(y_boxes, dy_boxes)
        else:
            x_boxes, d_boxes = y_boxes, dy_boxes
        bounds.x.append(x_boxes)
        bounds.dx.append(d_boxes)
    return bounds
