"""Robustness certification — the paper's primary contribution.

* :mod:`repro.certify.exact` — exact global robustness by solving the
  full twin-network MILP (Eq. 1); the ``t_M`` baseline of Table I.
* :mod:`repro.certify.reluplex` — an exact case-splitting (ReLU
  branch-and-bound) solver standing in for Reluplex/Marabou; the ``t_R``
  baseline of Table I.
* :mod:`repro.certify.global_cert` — **Algorithm 1**: the efficient
  over-approximation combining ITNE, network decomposition and LP
  relaxation with selective refinement.
* :mod:`repro.certify.local` — local robustness certification (exact /
  ND / LPR), reproducing the local half of Fig. 4.
* :mod:`repro.certify.underapprox` — dataset-wise PGD under-approximation
  ``ε̲`` used to sandwich the true global robustness for large networks.
* :mod:`repro.certify.presolve` — the bounds-only presolve tier:
  ε-targeted queries answered (proved or refuted) without any solve;
  the batched ``presolve_many`` variants decide whole query arrays in
  one vectorized pass with bit-identical per-query verdicts.
* :mod:`repro.certify.splitting` — the input-splitting
  branch-and-bound tier: ε-targeted queries decided by recursively
  bisecting the input domain, with binary-sparse MILPs only at the
  leaves that cheap bounds cannot decide.
"""

from repro.certify.decomposition import SubNetwork, decompose
from repro.certify.exact import certify_exact_global
from repro.certify.global_cert import CertifierConfig, GlobalRobustnessCertifier
from repro.certify.local import certify_local_exact, certify_local_lpr, certify_local_nd
from repro.certify.presolve import (
    presolve_global,
    presolve_global_many,
    presolve_local,
    presolve_local_many,
    presolve_many,
)
from repro.certify.refinement import select_refinement
from repro.certify.reluplex import ReluplexStyleSolver
from repro.certify.results import GlobalCertificate, LocalCertificate
from repro.certify.splitting import (
    SplitConfig,
    certify_global_split,
    certify_local_split,
)
from repro.certify.underapprox import pgd_underapproximation

__all__ = [
    "certify_exact_global",
    "GlobalRobustnessCertifier",
    "CertifierConfig",
    "ReluplexStyleSolver",
    "certify_local_exact",
    "certify_local_nd",
    "certify_local_lpr",
    "presolve_local",
    "presolve_global",
    "presolve_local_many",
    "presolve_global_many",
    "presolve_many",
    "SplitConfig",
    "certify_local_split",
    "certify_global_split",
    "pgd_underapproximation",
    "GlobalCertificate",
    "LocalCertificate",
    "SubNetwork",
    "decompose",
    "select_refinement",
]
