"""BTNE-based ND/LPR baselines used in the Fig. 4 comparison.

Under the basic twin-network encoding there are no hidden-layer distance
variables, so decomposition and relaxation can only be applied to each
network copy *individually*; the correlation between the copies is lost
after the first sub-network and the resulting global-robustness bounds
degrade badly (7.5×/10.9× in the paper's example).  These functions
implement that deliberately-handicapped behaviour for comparison.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bounds.interval import Box
from repro.bounds.propagator import get_propagator
from repro.certify.decomposition import decompose
from repro.certify.results import GlobalCertificate
from repro.encoding.btne import encode_btne
from repro.encoding.single import encode_single_network
from repro.milp.expr import as_expr
from repro.nn.affine import AffineLayer
from repro.nn.network import Network, as_affine_chain


def certify_global_btne_nd(
    network: Network | list[AffineLayer],
    input_box: Box,
    delta: float,
    window: int = 1,
    backend: str = "scipy",
    bounds: str = "ibp",
) -> GlobalCertificate:
    """Global robustness via ND under BTNE (distance info lost).

    Each copy's layer ranges are tightened with exact sub-network MILPs
    (like the local ND), but because the encoding carries no hidden
    distance variables, the output distance can only be bounded by the
    difference of the two copies' *independent* output ranges.
    """
    t0 = time.perf_counter()
    layers = as_affine_chain(network)

    # Per-copy ND ranges (identical for both copies by symmetry).
    x_ranges: list[Box] = [input_box]
    seed = get_propagator(bounds).propagate(layers, input_box)
    y_ranges = [Box(b.lo.copy(), b.hi.copy()) for b in seed.y]
    lp_count = 0
    for i in range(1, len(layers) + 1):
        sub = decompose(layers, i, window, output_relu=False)
        sub_pre = [
            Box(y_ranges[k].lo.copy(), y_ranges[k].hi.copy())
            for k in range(sub.input_layer_index, i)
        ]
        enc = encode_single_network(
            sub.layers, x_ranges[sub.input_layer_index], pre_act_bounds=sub_pre
        )
        objectives = []
        for handle in enc.y[-1]:
            expr = as_expr(handle)
            objectives.extend([(expr, "min"), (expr, "max")])
        results = enc.model.solve_many(objectives, backend=backend)
        lp_count += len(objectives)
        m_i = layers[i - 1].out_dim
        lo = np.array(
            [results[2 * j].require_optimal().objective for j in range(m_i)]
        )
        hi = np.array(
            [results[2 * j + 1].require_optimal().objective for j in range(m_i)]
        )
        y_ranges[i - 1] = Box(
            np.maximum(lo, y_ranges[i - 1].lo), np.minimum(hi, y_ranges[i - 1].hi)
        )
        x_ranges.append(
            y_ranges[i - 1].relu() if layers[i - 1].relu else y_ranges[i - 1]
        )

    # Output distance: difference of two independent copies of the range.
    out = x_ranges[-1]
    epsilons = out.hi - out.lo
    return GlobalCertificate(
        delta=float(delta),
        epsilons=epsilons,
        method=f"btne-nd-w{window}",
        exact=False,
        solve_time=time.perf_counter() - t0,
        milp_count=lp_count,
        detail={"output_distance": Box(out.lo - out.hi, out.hi - out.lo)},
    )


def certify_global_btne_lpr(
    network: Network | list[AffineLayer],
    input_box: Box,
    delta: float,
    backend: str = "scipy",
    bounds: str = "ibp",
) -> GlobalCertificate:
    """Global robustness via LPR under BTNE.

    Both copies are triangle-relaxed and share only the input
    perturbation constraint; the output distance is optimized over the
    joint LP.  Without interleaving distance variables the relaxation
    cannot exploit neuron-level correlation, giving loose bounds.
    """
    t0 = time.perf_counter()
    layers = as_affine_chain(network)
    relax = [np.ones(l.out_dim, dtype=bool) for l in layers]
    enc = encode_btne(layers, input_box, delta, relax_mask=relax, bounds=bounds)
    objectives = []
    for dist in enc.output_distance:
        objectives.extend([(dist, "min"), (dist, "max")])
    results = enc.model.solve_many(objectives, backend=backend)
    out_dim = layers[-1].out_dim
    lo = np.array(
        [results[2 * j].require_optimal().objective for j in range(out_dim)]
    )
    hi = np.array(
        [results[2 * j + 1].require_optimal().objective for j in range(out_dim)]
    )
    return GlobalCertificate(
        delta=float(delta),
        epsilons=np.maximum(np.abs(lo), np.abs(hi)),
        method="btne-lpr",
        exact=False,
        solve_time=time.perf_counter() - t0,
        lp_count=len(objectives),
        detail={"output_distance": Box(lo, hi)},
    )

