"""Network decomposition (ND): extract the sub-networks of Algorithm 1.

``NetDecompose(F, y_j^(i), w)`` yields the depth-``w`` sub-network whose
input is ``x(i−w)`` and whose output is the *single neuron* ``j`` of
layer ``i`` — pre-activation (``F_w(y_j)``) or post-activation
(``F_w(x_j)``).  Algorithm 1 also encodes variants keeping the *whole*
layer ``i`` as output, which lets one model serve all neurons of the
layer (the objective is swapped instead of rebuilding the encoding).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bounds.interval import Box
from repro.bounds.ranges import LayerRanges, RangeTable
from repro.nn.affine import AffineLayer


@dataclass
class SubNetwork:
    """A decomposed slice of the network.

    Attributes:
        layers: Affine chain of the slice (depth ``w``); the final layer
            may keep or drop its ReLU depending on ``F_w(x)`` vs
            ``F_w(y)`` usage.
        input_layer_index: Global index ``i − w`` whose ranges feed the
            slice input.
        output_layer_index: Global index ``i`` of the slice output.
    """

    layers: list[AffineLayer]
    input_layer_index: int
    output_layer_index: int

    @property
    def depth(self) -> int:
        """Number of layers in the slice."""
        return len(self.layers)


def decompose(
    layers: list[AffineLayer],
    layer_index: int,
    window: int,
    output_relu: bool,
    neuron: int | None = None,
) -> SubNetwork:
    """Slice out ``F_w`` ending at layer ``layer_index`` (1-based).

    Args:
        layers: Full normal-form network.
        layer_index: Target layer ``i`` (1-based as in the paper).
        window: Desired depth ``W``; clipped to ``min(i, W)``.  (The
            paper's Algorithm 1 prints ``max(i, W)`` — a typo, since a
            prefix of depth ``i`` cannot contain more than ``i`` layers.)
        output_relu: Keep the final ReLU (``F_w(x_j)``) or strip it
            (``F_w(y_j)``).
        neuron: When given, restrict the final layer to this single row.

    Returns:
        The :class:`SubNetwork` slice.
    """
    n = len(layers)
    if not 1 <= layer_index <= n:
        raise ValueError(f"layer_index {layer_index} out of range 1..{n}")
    w = min(layer_index, max(1, window))
    start = layer_index - w  # input is x(start)
    slice_layers: list[AffineLayer] = []
    for k in range(start, layer_index):
        src = layers[k]
        is_last = k == layer_index - 1
        weight = src.weight
        bias = src.bias
        if is_last and neuron is not None:
            weight = weight[neuron : neuron + 1]
            bias = bias[neuron : neuron + 1]
        relu = src.relu if not is_last else (src.relu and output_relu)
        slice_layers.append(AffineLayer(weight, bias, relu, name=src.name))
    return SubNetwork(slice_layers, start, layer_index)


def subnetwork_ranges(
    table: RangeTable, sub: SubNetwork, neuron: int | None = None
) -> RangeTable:
    """Project the global :class:`RangeTable` onto a sub-network.

    The slice's input record is layer ``i−w`` of the global table; its
    hidden/output records are layers ``i−w+1 .. i``.  When ``neuron`` is
    given the final layer's boxes are restricted to that row.

    Returns:
        A new range table indexed 0..w for the slice.
    """
    input_ranges = table.layer(sub.input_layer_index)
    sub_table = RangeTable(
        input_box=Box(input_ranges.x.lo.copy(), input_ranges.x.hi.copy()),
        delta_box=Box(input_ranges.dx.lo.copy(), input_ranges.dx.hi.copy()),
    )
    for k in range(sub.input_layer_index + 1, sub.output_layer_index + 1):
        rec = table.layer(k)
        is_last = k == sub.output_layer_index
        if is_last and neuron is not None:
            sel = slice(neuron, neuron + 1)
        else:
            sel = slice(None)
        sub_table.layers.append(
            LayerRanges(
                y=Box(rec.y.lo[sel].copy(), rec.y.hi[sel].copy()),
                dy=Box(rec.dy.lo[sel].copy(), rec.dy.hi[sel].copy()),
                x=Box(rec.x.lo[sel].copy(), rec.x.hi[sel].copy()),
                dx=Box(rec.dx.lo[sel].copy(), rec.dx.hi[sel].copy()),
            )
        )
    return sub_table
