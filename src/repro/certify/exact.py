"""Exact global robustness by solving the full twin-network MILP (Eq. 1).

This is the ``t_M`` baseline of Table I: encode both network copies over
the entire input domain, link them with the perturbation constraint, and
maximize/minimize every output distance.  Complexity is exponential in
the number of unstable ReLU neurons (×2, one per copy), which is exactly
the blow-up the paper's Algorithm 1 avoids.

Soundness under resource limits (Algorithm 1's premise) holds here too:
a time/node-limited MILP contributes its *dual bound* via
:meth:`~repro.milp.solution.SolveResult.sound_bound`, intersected with
the twin-IBP interval bound — never the incumbent objective of an
interrupted solve, which is unsound on the extremal side.  The returned
epsilons are therefore always finite and certified; ``exact`` is True
only when every solve proved optimality.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bounds.interval import Box
from repro.bounds.ranges import RangeTable
from repro.encoding.btne import encode_btne
from repro.encoding.itne import encode_itne
from repro.certify.results import GlobalCertificate
from repro.milp.expr import as_expr
from repro.milp.session import solve_objectives as session_solve_objectives
from repro.milp.solution import SolveStatus
from repro.nn.affine import AffineLayer
from repro.nn.network import Network

#: Statuses meaning "the solver was cut off by a resource limit" — the
#: only non-optimal outcomes that soundly fall back to a bound.
#: Infeasible/unbounded/error outcomes are genuine failures and raise.
_LIMIT_STATUSES = (SolveStatus.TIME_LIMIT, SolveStatus.ITERATION_LIMIT)


def certify_exact_global(
    network: Network | list[AffineLayer],
    input_box: Box,
    delta: float,
    encoding: str = "itne",
    backend: str = "scipy",
    time_limit: float | None = None,
    outputs: list[int] | None = None,
    bounds: str = "ibp",
) -> GlobalCertificate:
    """Solve Problem 1 via MILP; sound even when ``time_limit`` bites.

    Args:
        network: A :class:`Network` or its affine chain.
        input_box: Input domain ``X``.
        delta: Perturbation bound δ.
        encoding: ``"itne"`` (all neurons refined) or ``"btne"`` (two
            independent copies, the encoding of [2]).
        backend: MILP backend name.
        time_limit: Per-MILP time limit in seconds.  A limited solve
            never raises: its sound dual bound (or, failing that, the
            twin-IBP interval bound) certifies the output, and the
            certificate reports ``exact=False``.  Non-limit failures
            (infeasible, solver error) still raise — they indicate a
            broken encoding, not a resource trade-off.
        outputs: Restrict to these output indices (default: all).
        bounds: Bound propagator seeding big-M ranges and the interval
            fallback (``"ibp"`` or ``"symbolic"``; tighter bounds mean
            fewer unstable neurons, hence a smaller search tree).

    Returns:
        A :class:`GlobalCertificate`; ``exact=True`` iff every MILP was
        solved to proven optimality (``detail["limit_hits"]`` counts the
        solves that fell back to a bound).
    """
    layers = network.to_affine_layers() if isinstance(network, Network) else network
    if encoding not in ("itne", "btne"):
        raise ValueError(f"unknown encoding {encoding!r}")

    t0 = time.perf_counter()
    out_dim = layers[-1].out_dim
    targets = list(range(out_dim)) if outputs is None else list(outputs)
    epsilons = np.zeros(out_dim)
    milp_count = 0

    # Sound a-priori interval bounds on the output distance: the
    # fallback (and intersection partner) for limited solves.  The same
    # table feeds the ITNE encoder, so twin IBP runs once.
    table = RangeTable.from_interval_propagation(
        layers, input_box, delta, propagator=bounds
    )
    interval = table.layer(len(layers)).dx

    if encoding == "itne":
        enc = encode_itne(layers, input_box, delta, ranges=table)
        distances = enc.output_distance
        model = enc.model
    else:
        # The table's y boxes already are this propagator's single-copy
        # pre-activation bounds; reuse them instead of re-propagating.
        pre_acts = [table.layer(i).y for i in range(1, len(layers) + 1)]
        enc = encode_btne(layers, input_box, delta, pre_act_bounds=pre_acts)
        distances = enc.output_distance
        model = enc.model

    objectives = []
    for j in targets:
        objectives.append((as_expr(distances[j]), "max"))
        objectives.append((as_expr(distances[j]), "min"))
    # One SolverSession for the whole batch: the standard form is
    # exported once and only the objective vector is swapped per solve
    # (identical statuses/optima to Model.solve_many, asserted by the
    # session property tests).
    results = session_solve_objectives(
        model, objectives, backend=backend, time_limit=time_limit
    )
    milp_count += len(objectives)
    limit_hits = 0
    for idx, j in enumerate(targets):
        r_hi = results[2 * idx]
        r_lo = results[2 * idx + 1]
        for r in (r_hi, r_lo):
            if not r.is_optimal and r.status not in _LIMIT_STATUSES:
                # Only resource limits fall back to a bound; anything
                # else (infeasible encoding, solver error) must surface.
                raise RuntimeError(
                    f"exact global solve failed on output {j}: "
                    f"status={r.status.value} ({r.message})"
                )
        # Sound bounds only: the dual bound of a limited solve, or the
        # objective of a proven-optimal one — never a limited incumbent.
        hi = r_hi.sound_bound()
        lo = r_lo.sound_bound()
        hi = float(interval.hi[j]) if hi is None else min(hi, float(interval.hi[j]))
        lo = float(interval.lo[j]) if lo is None else max(lo, float(interval.lo[j]))
        limit_hits += (not r_hi.is_optimal) + (not r_lo.is_optimal)
        epsilons[j] = max(abs(lo), abs(hi))

    return GlobalCertificate(
        delta=float(delta),
        epsilons=epsilons,
        method=f"exact-milp-{encoding}",
        exact=limit_hits == 0,
        solve_time=time.perf_counter() - t0,
        milp_count=milp_count,
        detail={
            "encoding": encoding,
            "binaries": model.num_binary,
            "limit_hits": limit_hits,
        },
    )
