"""Exact global robustness by solving the full twin-network MILP (Eq. 1).

This is the ``t_M`` baseline of Table I: encode both network copies over
the entire input domain, link them with the perturbation constraint, and
maximize/minimize every output distance.  Complexity is exponential in
the number of unstable ReLU neurons (×2, one per copy), which is exactly
the blow-up the paper's Algorithm 1 avoids.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bounds.interval import Box
from repro.encoding.btne import encode_btne
from repro.encoding.itne import encode_itne
from repro.certify.results import GlobalCertificate
from repro.nn.affine import AffineLayer
from repro.nn.network import Network


def certify_exact_global(
    network: Network | list[AffineLayer],
    input_box: Box,
    delta: float,
    encoding: str = "itne",
    backend: str = "scipy",
    time_limit: float | None = None,
    outputs: list[int] | None = None,
) -> GlobalCertificate:
    """Solve Problem 1 exactly via MILP.

    Args:
        network: A :class:`Network` or its affine chain.
        input_box: Input domain ``X``.
        delta: Perturbation bound δ.
        encoding: ``"itne"`` (all neurons refined) or ``"btne"`` (two
            independent copies, the encoding of [2]).
        backend: MILP backend name.
        time_limit: Per-MILP time limit in seconds.
        outputs: Restrict to these output indices (default: all).

    Returns:
        A :class:`GlobalCertificate` with ``exact=True``.
    """
    layers = network.to_affine_layers() if isinstance(network, Network) else network
    if encoding not in ("itne", "btne"):
        raise ValueError(f"unknown encoding {encoding!r}")

    t0 = time.perf_counter()
    out_dim = layers[-1].out_dim
    targets = list(range(out_dim)) if outputs is None else list(outputs)
    epsilons = np.zeros(out_dim)
    milp_count = 0

    if encoding == "itne":
        enc = encode_itne(layers, input_box, delta)
        distances = enc.output_distance
        model = enc.model
    else:
        enc = encode_btne(layers, input_box, delta)
        distances = enc.output_distance
        model = enc.model

    objectives = []
    for j in targets:
        objectives.append((_expr(distances[j]), "max"))
        objectives.append((_expr(distances[j]), "min"))
    results = model.solve_many(objectives, backend=backend, time_limit=time_limit)
    milp_count += len(objectives)
    for idx, j in enumerate(targets):
        # Use the dual bound: sound even if the MILP stopped at a gap.
        r_hi = results[2 * idx].require_optimal()
        r_lo = results[2 * idx + 1].require_optimal()
        hi = r_hi.bound if np.isfinite(r_hi.bound) else r_hi.objective
        lo = r_lo.bound if np.isfinite(r_lo.bound) else r_lo.objective
        epsilons[j] = max(abs(lo), abs(hi))

    return GlobalCertificate(
        delta=float(delta),
        epsilons=epsilons,
        method=f"exact-milp-{encoding}",
        exact=True,
        solve_time=time.perf_counter() - t0,
        milp_count=milp_count,
        detail={"encoding": encoding, "binaries": model.num_binary},
    )


def _expr(handle):
    from repro.milp.expr import Var

    return handle.to_expr() if isinstance(handle, Var) else handle
