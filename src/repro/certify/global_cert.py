"""Algorithm 1: efficient global robustness over-approximation.

Combines the three ingredients of the paper:

* **ITNE** — sub-problems are encoded over twin copies with per-neuron
  distance variables (:mod:`repro.encoding.itne`);
* **ND** — the network is processed layer by layer; for each layer a
  depth-``W`` sub-network ending at that layer is encoded, with input
  ranges taken from the already-tightened table (``LpRelaxY`` /
  ``LpRelaxX`` of Algorithm 1, batched per layer so the constraint
  matrix is built once and only the objective vector changes);
* **LPR + selective refinement** — all ReLU and distance relations are
  relaxed (Eq. 4 / Eq. 6) except the ``refine_count`` worst-scored
  neurons, which keep exact big-M encodings.

The result is a sound, deterministic over-approximation ``ε̄ ≥ ε`` whose
cost grows polynomially with network size (one small LP/MILP per neuron)
instead of exponentially.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.bounds.interval import Box
from repro.bounds.ranges import RangeTable
from repro.bounds.twin_ibp import relu_distance_interval
from repro.certify.decomposition import decompose, subnetwork_ranges
from repro.certify.refinement import select_refinement
from repro.certify.results import GlobalCertificate
from repro.encoding.itne import encode_itne
from repro.milp.expr import as_expr
from repro.nn.affine import AffineLayer
from repro.nn.network import Network


@dataclass
class CertifierConfig:
    """Tuning knobs of Algorithm 1.

    Attributes:
        window: Sub-network depth ``W`` (clipped to the layer index).
        refine_count: Neurons refined (exactly encoded) per sub-network;
            0 gives a pure LP pipeline.
        backend: MILP/LP backend name.
        bounds: Bound propagator seeding the initial range table
            (``"ibp"`` — the paper's twin IBP — or ``"symbolic"`` for
            the backsubstitution bounds, which start the refinement from
            strictly tighter ranges).
        couple_second_copy: Apply the triangle relaxation to the implicit
            second copy as well (tightening; on by default).
        lp_time_limit: Optional per-LP time limit (seconds).
        milp_time_limit: Per-MILP time limit for refined sub-problems.
            A timed-out MILP still contributes its *dual bound*, which is
            sound for range certification, so limits never cost
            soundness — only tightness.
        workers: Worker processes for the per-neuron solve batches.
            Each layer's min/max objectives are independent, so with
            ``workers > 1`` they are fanned across processes via
            :func:`repro.runtime.batch.parallel_solve_many` (results are
            identical to the serial path; 1 = serial, the default).
        verbose: Print per-layer progress.
    """

    window: int = 2
    refine_count: int = 0
    backend: str = "scipy"
    bounds: str = "ibp"
    couple_second_copy: bool = True
    lp_time_limit: float | None = None
    milp_time_limit: float | None = 30.0
    workers: int = 1
    verbose: bool = False


class GlobalRobustnessCertifier:
    """Implements Algorithm 1 of the paper.

    Example::

        certifier = GlobalRobustnessCertifier(net, CertifierConfig(window=2,
                                              refine_count=4))
        cert = certifier.certify(Box.uniform(net.input_dim, 0, 1), delta=0.001)
        print(cert.summary())
    """

    def __init__(
        self,
        network: Network | list[AffineLayer],
        config: CertifierConfig | None = None,
    ) -> None:
        self.layers = (
            network.to_affine_layers() if isinstance(network, Network) else list(network)
        )
        self.config = config or CertifierConfig()

    # -- public API -----------------------------------------------------------

    def certify(self, input_box: Box, delta: float) -> GlobalCertificate:
        """Run Algorithm 1 and return the certified ``ε̄`` per output.

        Args:
            input_box: Input domain ``X`` (flattened).
            delta: L∞ input perturbation bound δ.
        """
        cfg = self.config
        t0 = time.perf_counter()
        table = RangeTable.from_interval_propagation(
            self.layers, input_box, delta, propagator=cfg.bounds
        )
        lp_count = 0
        milp_count = 0

        for i in range(1, len(self.layers) + 1):
            layer = self.layers[i - 1]
            solves, used_binaries = self._tighten_layer(table, i)
            if used_binaries:
                milp_count += solves
            else:
                lp_count += solves
            self._finalize_layer(table, i, layer)
            if cfg.verbose:
                rec = table.layer(i)
                print(
                    f"layer {i}/{len(self.layers)}: "
                    f"|dy| <= {np.abs(rec.dy.hi).max():.4g}, "
                    f"|dx| <= {max(abs(rec.dx.lo.min()), abs(rec.dx.hi.max())):.4g} "
                    f"({solves} solves)"
                )

        return GlobalCertificate(
            delta=float(delta),
            epsilons=table.output_variation_bounds(),
            method=self._method_name(),
            exact=False,
            solve_time=time.perf_counter() - t0,
            lp_count=lp_count,
            milp_count=milp_count,
            detail={
                "window": cfg.window,
                "refine_count": cfg.refine_count,
                "range_table": table,
            },
        )

    # -- internals --------------------------------------------------------------

    def _method_name(self) -> str:
        tag = "itne-nd-lpr"
        if self.config.refine_count > 0:
            tag += f"-r{self.config.refine_count}"
        if self.config.bounds != "ibp":
            tag += f"-{self.config.bounds}"
        return tag

    def _tighten_layer(self, table: RangeTable, i: int) -> tuple[int, bool]:
        """LpRelaxY for every neuron of layer ``i`` (batched).

        Encodes one depth-``w`` sub-network whose output is the whole
        pre-activation layer ``y(i)`` and solves min/max of ``y_j`` and
        ``Δy_j`` for each neuron, updating the table in place.

        Returns:
            ``(num_solves, used_binaries)``.
        """
        cfg = self.config
        sub = decompose(self.layers, i, cfg.window, output_relu=False)
        sub_table = subnetwork_ranges(table, sub)
        masks = select_refinement(
            sub, sub_table, cfg.refine_count, include_output_layer=False
        )
        input_rec = table.layer(sub.input_layer_index)
        enc = encode_itne(
            sub.layers,
            Box(input_rec.x.lo.copy(), input_rec.x.hi.copy()),
            Box(input_rec.dx.lo.copy(), input_rec.dx.hi.copy()),
            ranges=sub_table,
            refine_mask=masks,
            couple_second_copy=cfg.couple_second_copy,
            clip_second_input=True,
        )
        used_binaries = enc.model.num_binary > 0

        m_i = self.layers[i - 1].out_dim
        objectives = []
        for j in range(m_i):
            y_expr = as_expr(enc.y[-1][j])
            dy_expr = as_expr(enc.dy[-1][j])
            objectives.extend(
                [(y_expr, "min"), (y_expr, "max"), (dy_expr, "min"), (dy_expr, "max")]
            )
        time_limit = cfg.milp_time_limit if used_binaries else cfg.lp_time_limit
        if cfg.workers > 1:
            from repro.runtime.batch import parallel_solve_many

            results = parallel_solve_many(
                enc.model,
                objectives,
                backend=cfg.backend,
                time_limit=time_limit,
                max_workers=cfg.workers,
            )
        else:
            # Serial path: one SolverSession per sub-network — the
            # export is cached once for all 4·m_i objective solves.
            from repro.milp.session import solve_objectives

            results = solve_objectives(
                enc.model, objectives, backend=cfg.backend, time_limit=time_limit
            )

        rec = table.layer(i)
        for j in range(m_i):
            r_ylo, r_yhi, r_dlo, r_dhi = results[4 * j : 4 * j + 4]
            # Intersect with the (sound) interval values so bounds never
            # loosen, using each solve's *dual bound* — sound even when a
            # refined MILP stopped at a gap or time limit.  Solves with
            # no usable bound fall back to the interval value.
            y_lo, y_hi = rec.y.scalar(j)
            dy_lo, dy_hi = rec.dy.scalar(j)
            lo_c = r_ylo.sound_bound()
            hi_c = r_yhi.sound_bound()
            if lo_c is not None:
                y_lo = max(y_lo, lo_c)
            if hi_c is not None:
                y_hi = min(y_hi, hi_c)
            lo_c = r_dlo.sound_bound()
            hi_c = r_dhi.sound_bound()
            if lo_c is not None:
                dy_lo = max(dy_lo, lo_c)
            if hi_c is not None:
                dy_hi = min(dy_hi, hi_c)
            rec.set_neuron(
                j,
                y=(min(y_lo, y_hi), max(y_lo, y_hi)),
                dy=(min(dy_lo, dy_hi), max(dy_lo, dy_hi)),
            )
        return len(objectives), used_binaries

    @staticmethod
    def _finalize_layer(table: RangeTable, i: int, layer: AffineLayer) -> None:
        """LpRelaxX: derive ``x(i)``/``Δx(i)`` ranges from fresh y/Δy.

        For a relaxed output neuron the LP optimum of ``x``/``Δx`` equals
        the closed-form image of the Eq. 4 / Eq. 6 relaxations at the
        ``y``/``Δy`` extremes (the relaxation hulls are tight at their
        corners), so this evaluates those images directly — including
        the exact-case intersection used by twin IBP — instead of
        re-solving LPs.
        """
        rec = table.layer(i)
        if layer.relu:
            x_box = rec.y.relu()
            dx_box = relu_distance_interval(rec.y, rec.dy)
        else:
            x_box = Box(rec.y.lo.copy(), rec.y.hi.copy())
            dx_box = Box(rec.dy.lo.copy(), rec.dy.hi.copy())
        for j in range(rec.x.dim):
            rec.set_neuron(
                j,
                x=(float(x_box.lo[j]), float(x_box.hi[j])),
                dx=(float(dx_box.lo[j]), float(dx_box.hi[j])),
            )


