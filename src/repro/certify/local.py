"""Local robustness certification (exact MILP, ND, LPR, bounds presolve).

Local robustness bounds the output change around a *given* sample:
``‖x̂ − x0‖∞ ≤ δ ⇒ |F(x̂)_j − F(x0)_j| ≤ ε_local``.  These routines
reproduce the local half of the paper's Fig. 4 and serve as reference
points for the global techniques (a valid global ε must dominate the
local ε at every sample).

Every certifier takes a ``bounds=`` knob selecting the propagator that
seeds its big-M ranges (``"ibp"`` default, ``"symbolic"`` for the
backsubstitution bounds).  :func:`presolve_local` (the bounds-only
presolve tier, re-exported from :mod:`repro.certify.presolve`) can
answer an ε-targeted query without building a MILP at all.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bounds.interval import Box
from repro.bounds.propagator import get_propagator
from repro.certify.decomposition import decompose
from repro.certify.presolve import (
    perturbation_ball,
    presolve_local,
    variation_from_reference,
)
from repro.certify.results import LocalCertificate
from repro.encoding.single import encode_single_network
from repro.milp.expr import as_expr
from repro.nn.affine import AffineLayer, affine_chain_forward
from repro.nn.network import Network, as_affine_chain

__all__ = [
    "certify_local_exact",
    "certify_local_nd",
    "certify_local_lpr",
    "presolve_local",
]


def _certificate(
    layers, center, delta, lo, hi, method, exact, t0
) -> LocalCertificate:
    base = affine_chain_forward(layers, np.asarray(center, dtype=float).reshape(-1))
    eps = variation_from_reference(lo, hi, base)
    return LocalCertificate(
        center=np.asarray(center, dtype=float),
        delta=float(delta),
        epsilons=eps,
        output_lo=lo,
        output_hi=hi,
        method=method,
        exact=exact,
        solve_time=time.perf_counter() - t0,
    )


def certify_local_exact(
    network: Network | list[AffineLayer],
    center: np.ndarray,
    delta: float,
    domain: Box | None = None,
    backend: str = "scipy",
    bounds: str = "ibp",
    time_limit: float | None = None,
) -> LocalCertificate:
    """Exact local robustness: full big-M MILP over the δ-ball.

    ``time_limit`` caps each objective solve (``None`` = unbounded);
    on timeout the underlying solver raises through
    :meth:`~repro.milp.solution.SolveResult.require_optimal`.
    """
    t0 = time.perf_counter()
    layers = as_affine_chain(network)
    ball = perturbation_ball(center, delta, domain)
    enc = encode_single_network(layers, ball, bounds=bounds)
    objectives = []
    for handle in enc.output:
        expr = as_expr(handle)
        objectives.extend([(expr, "min"), (expr, "max")])
    results = enc.model.solve_many(
        objectives, backend=backend, time_limit=time_limit
    )
    out_dim = layers[-1].out_dim
    lo = np.array([results[2 * j].require_optimal().objective for j in range(out_dim)])
    hi = np.array(
        [results[2 * j + 1].require_optimal().objective for j in range(out_dim)]
    )
    return _certificate(layers, center, delta, lo, hi, "local-exact", True, t0)


def certify_local_nd(
    network: Network | list[AffineLayer],
    center: np.ndarray,
    delta: float,
    window: int = 1,
    domain: Box | None = None,
    backend: str = "scipy",
    bounds: str = "ibp",
    time_limit: float | None = None,
) -> LocalCertificate:
    """Local robustness via network decomposition (exact sub-MILPs).

    Layer ranges are tightened layer by layer: each layer's neurons are
    optimized exactly over a depth-``window`` sub-network whose input
    ranges come from the previous step — the single-network analogue of
    the paper's ND.
    """
    t0 = time.perf_counter()
    layers = as_affine_chain(network)
    ball = perturbation_ball(center, delta, domain)

    # x-ranges per layer index (0 = input).
    x_ranges: list[Box] = [ball]
    seed = get_propagator(bounds).propagate(layers, ball)
    y_ranges: list[Box] = [Box(b.lo.copy(), b.hi.copy()) for b in seed.y]

    for i in range(1, len(layers) + 1):
        sub = decompose(layers, i, window, output_relu=False)
        input_box = x_ranges[sub.input_layer_index]
        sub_pre = [
            Box(y_ranges[k].lo.copy(), y_ranges[k].hi.copy())
            for k in range(sub.input_layer_index, i)
        ]
        enc = encode_single_network(sub.layers, input_box, pre_act_bounds=sub_pre)
        objectives = []
        for handle in enc.y[-1]:
            expr = as_expr(handle)
            objectives.extend([(expr, "min"), (expr, "max")])
        results = enc.model.solve_many(
            objectives, backend=backend, time_limit=time_limit
        )
        m_i = layers[i - 1].out_dim
        lo = np.empty(m_i)
        hi = np.empty(m_i)
        for j in range(m_i):
            lo[j] = results[2 * j].require_optimal().objective
            hi[j] = results[2 * j + 1].require_optimal().objective
        # Intersect with IBP in case of numerical jitter.
        y_ranges[i - 1] = Box(
            np.maximum(lo, y_ranges[i - 1].lo), np.minimum(hi, y_ranges[i - 1].hi)
        )
        x_ranges.append(
            y_ranges[i - 1].relu() if layers[i - 1].relu else y_ranges[i - 1]
        )

    out = x_ranges[-1]
    return _certificate(
        layers, center, delta, out.lo.copy(), out.hi.copy(), f"local-nd-w{window}", False, t0
    )


def certify_local_lpr(
    network: Network | list[AffineLayer],
    center: np.ndarray,
    delta: float,
    domain: Box | None = None,
    backend: str = "scipy",
    bounds: str = "ibp",
    time_limit: float | None = None,
) -> LocalCertificate:
    """Local robustness via the triangle LP relaxation of every ReLU."""
    t0 = time.perf_counter()
    layers = as_affine_chain(network)
    ball = perturbation_ball(center, delta, domain)
    relax_mask = [np.ones(layer.out_dim, dtype=bool) for layer in layers]
    enc = encode_single_network(layers, ball, relax_mask=relax_mask, bounds=bounds)
    objectives = []
    for handle in enc.output:
        expr = as_expr(handle)
        objectives.extend([(expr, "min"), (expr, "max")])
    results = enc.model.solve_many(
        objectives, backend=backend, time_limit=time_limit
    )
    out_dim = layers[-1].out_dim
    lo = np.array([results[2 * j].require_optimal().objective for j in range(out_dim)])
    hi = np.array(
        [results[2 * j + 1].require_optimal().objective for j in range(out_dim)]
    )
    return _certificate(layers, center, delta, lo, hi, "local-lpr", False, t0)

