"""Bounds-only presolve tier: decide ε-targeted queries without a solve.

Given a target ``ε`` ("is the output variation at most ε?"), a query can
often be answered from bound propagation alone:

* **prove** — if the (symbolic) interval bound on the output variation
  is already ≤ ε, the property holds and a certificate with
  ``method="presolve"`` is returned without building any MILP;
* **refute** — if a cheap gradient-guided attack (the
  under-approximation side) exhibits a concrete witness pair with
  variation > ε, the property is false and a ``method="presolve"``
  certificate with ``detail["verdict"] == "refuted"`` is returned, its
  ``epsilons`` being the attack's *lower* bounds;
* **undecided** — ``None`` is returned and the caller falls through to
  the MILP tier (whose result is bit-identical to a run without
  presolve, since presolve never touches the encoding).

The batch engine (:mod:`repro.runtime.batch`) runs this tier first for
every query carrying an ``epsilon`` target, sharing one
:class:`~repro.bounds.propagator.LayerBounds` per (network, input-box)
pair across the batch.

**Batched presolve.**  :func:`presolve_local_many`,
:func:`presolve_global_many` and the :func:`presolve_many` dispatcher
answer a whole array of ε-queries in one pass: one batched bound
propagation (:func:`~repro.bounds.propagator.propagate_many`) proves,
and one corner-vectorized gradient attack refutes, every query at once.
Their per-query verdicts and certificate arrays are **bit-identical**
to calling :func:`presolve_local` / :func:`presolve_global` in a loop —
the batched kernels keep every matmul in the scalar 2-D slice shape
(the :mod:`repro.bounds.batched` contract) and the scalar functions'
RNG discipline (a fresh ``default_rng(seed)`` per query) makes the
random attack starts shareable across the batch.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bounds.batched import BatchedBox, BatchedLayerBounds, as_batched_box
from repro.bounds.interval import Box
from repro.bounds.propagator import LayerBounds, get_propagator, propagate_many
from repro.certify.results import GlobalCertificate, LocalCertificate
from repro.nn.affine import AffineLayer, affine_chain_forward
from repro.nn.network import Network, as_affine_chain

#: Soft cap on the corner-stack element count per attack chunk — bounds
#: the ``(rows, outputs, dim)`` scratch arrays without changing any
#: per-row arithmetic (chunking is over whole query rows).
_ATTACK_CHUNK_ELEMS = 4_000_000


def perturbation_ball(
    center: np.ndarray, delta: float, domain: Box | None
) -> Box:
    """The δ-ball around ``center``, clipped to ``domain`` when given."""
    ball = Box.from_center(np.asarray(center, dtype=float).reshape(-1), float(delta))
    return ball.intersect(domain) if domain is not None else ball


def variation_from_reference(
    out_lo: np.ndarray, out_hi: np.ndarray, reference: np.ndarray
) -> np.ndarray:
    """Per-output bound ``max(|hi − ref|, |ref − lo|)``.

    The one definition of "output variation around a reference point"
    shared by the presolve tier, the local certifiers and the bounds
    benchmark — their ε values must stay definitionally identical.
    """
    return np.maximum(np.abs(out_hi - reference), np.abs(reference - out_lo))


def _output_gradient(layers: list[AffineLayer], x: np.ndarray, j: int) -> np.ndarray:
    """Gradient of output ``j`` w.r.t. the input at ``x`` (ReLU subgradient)."""
    pre_acts = []
    cur = np.asarray(x, dtype=float)
    for layer in layers:
        y = layer.pre_activation(cur)
        pre_acts.append(y)
        cur = np.maximum(y, 0.0) if layer.relu else y
    grad = np.zeros(layers[-1].out_dim)
    grad[j] = 1.0
    for layer, y in zip(reversed(layers), reversed(pre_acts)):
        if layer.relu:
            grad = grad * (y > 0.0)
        grad = layer.weight.T @ grad
    return grad


def _forward_many(layers: list[AffineLayer], x: np.ndarray) -> np.ndarray:
    """Forward pass over a stack of inputs, shape ``(..., n) → (..., m)``.

    Each row's result is **bit-identical** to the 1-D
    :func:`~repro.nn.affine.affine_chain_forward` on that row: the
    matmul keeps the scalar 2-D slice shape (``(..., 1, n) @ (n, m)``)
    instead of collapsing the stack into one gemm, so BLAS cannot
    re-associate the reductions (the :mod:`repro.bounds.batched`
    bit-identity contract).
    """
    cur = np.asarray(x, dtype=float)
    for layer in layers:
        y = (cur[..., None, :] @ layer.weight.T)[..., 0, :] + layer.bias
        cur = np.maximum(y, 0.0) if layer.relu else y
    return cur


def _output_jacobian_many(layers: list[AffineLayer], x: np.ndarray) -> np.ndarray:
    """All output gradients at a stack of inputs, ``(..., n) → (..., m, n)``.

    Row ``[..., j, :]`` is bit-identical to
    ``_output_gradient(layers, row, j)`` — the backward substitution
    runs per stacked row (``W.T @ grad[..., None]``) rather than as one
    fused gemm, for the same reason as :func:`_forward_many`.
    """
    cur = np.asarray(x, dtype=float)
    pre_acts = []
    for layer in layers:
        y = (cur[..., None, :] @ layer.weight.T)[..., 0, :] + layer.bias
        pre_acts.append(y)
        cur = np.maximum(y, 0.0) if layer.relu else y
    out_dim = layers[-1].out_dim
    grad = np.broadcast_to(
        np.eye(out_dim), cur.shape[:-1] + (out_dim, out_dim)
    ).copy()
    for layer, y in zip(reversed(layers), reversed(pre_acts)):
        if layer.relu:
            grad = grad * (y > 0.0)[..., None, :]
        grad = (layer.weight.T @ grad[..., None])[..., 0]
    return grad


def _corner_witness(
    layers: list[AffineLayer],
    jac: np.ndarray,
    ball_lo: np.ndarray,
    ball_hi: np.ndarray,
    base: np.ndarray,
) -> np.ndarray:
    """Corner-attack variations from precomputed gradients, ``(..., m)``.

    ``jac`` has shape ``(..., m, n)`` and ``ball_lo`` / ``ball_hi`` /
    ``base`` broadcast against its leading dims, so callers can share
    one Jacobian across many balls (the global presolve reuses each
    start's gradients for every query's δ-ball).  Per row and output
    the result equals the scalar two-corner scan:
    ``max(|F(corner⁺)_j − base_j|, |F(corner⁻)_j − base_j|)``.
    """
    hi = np.asarray(ball_hi, dtype=float)[..., None, :]
    lo = np.asarray(ball_lo, dtype=float)[..., None, :]
    corner_up = np.where(jac >= 0.0, hi, lo)
    corner_dn = np.where(-jac >= 0.0, hi, lo)
    j_idx = np.arange(layers[-1].out_dim)
    val_up = _forward_many(layers, corner_up)[..., j_idx, j_idx]
    val_dn = _forward_many(layers, corner_dn)[..., j_idx, j_idx]
    base = np.asarray(base, dtype=float)
    return np.maximum(np.abs(val_up - base), np.abs(val_dn - base))


def _variation_witness_many(
    layers: list[AffineLayer],
    x: np.ndarray,
    ball_lo: np.ndarray,
    ball_hi: np.ndarray,
    base: np.ndarray,
) -> np.ndarray:
    """Gradient-corner witnesses for a stack of starts, ``(..., m)``.

    The vectorized core of :func:`_variation_witness`: one Jacobian
    stack, one corner stack, two forward stacks — over *all* starts of
    *all* queries at once instead of two forwards per (start, output).
    """
    jac = _output_jacobian_many(layers, x)
    return _corner_witness(layers, jac, ball_lo, ball_hi, base)


def _variation_witness(
    layers: list[AffineLayer],
    x: np.ndarray,
    ball: Box,
    targets: list[int],
    reference: np.ndarray | None = None,
) -> np.ndarray:
    """Per-output variation achieved by gradient-corner attacks from ``x``.

    For each target output the gradient at ``x`` picks the ball corner
    that maximizes / minimizes the output (exact for a locally-linear
    region, a strong heuristic otherwise).  Every candidate is a
    feasible input, so the returned variations are certified *lower*
    bounds on ``|F(·) − reference|`` (``reference`` defaults to
    ``F(x)`` — the right baseline for global pairs; local queries pass
    ``F(x0)`` so every witness is measured against the center).

    Implemented as the batch-of-one case of
    :func:`_variation_witness_many`; non-target outputs stay zero.
    """
    x = np.asarray(x, dtype=float).reshape(-1)
    base = affine_chain_forward(layers, x) if reference is None else reference
    witness = _variation_witness_many(
        layers, x[None, :], ball.lo[None, :], ball.hi[None, :],
        np.asarray(base, dtype=float)[None, :],
    )[0]
    best = np.zeros(layers[-1].out_dim)
    idx = list(targets)
    best[idx] = witness[idx]
    return best


def presolve_local(
    network: Network | list[AffineLayer],
    center: np.ndarray,
    delta: float,
    epsilon: float,
    domain: Box | None = None,
    bounds: str = "symbolic",
    layer_bounds: LayerBounds | None = None,
    attack_samples: int = 4,
    seed: int = 0,
) -> LocalCertificate | None:
    """Decide a local ε-robustness query from bounds alone, if possible.

    Args:
        network: Model or affine chain.
        center: The sample ``x0``.
        delta: L∞ perturbation radius.
        epsilon: Target variation bound to prove or refute.
        domain: Optional domain box intersected with the δ-ball.
        bounds: Propagator used for the proving side (default symbolic).
        layer_bounds: Pre-computed :class:`LayerBounds` over the δ-ball
            (the batch engine's shared cache); computed here if omitted.
        attack_samples: Extra random starts for the refuting attack.
        seed: RNG seed for the random starts.

    Returns:
        A ``method="presolve"`` :class:`LocalCertificate` with
        ``detail["verdict"]`` ``"certified"`` or ``"refuted"``, or
        ``None`` when bounds and attack leave the query undecided.  On
        ``"refuted"`` the ``epsilons`` are the attack's *lower* bounds.
    """
    t0 = time.perf_counter()
    layers = as_affine_chain(network)
    center = np.asarray(center, dtype=float).reshape(-1)
    ball = perturbation_ball(center, delta, domain)
    if layer_bounds is None:
        layer_bounds = get_propagator(bounds).propagate(layers, ball)
    out = layer_bounds.output
    base = affine_chain_forward(layers, center)
    eps_ub = variation_from_reference(out.lo, out.hi, base)

    def certificate(epsilons, verdict):
        return LocalCertificate(
            center=center,
            delta=float(delta),
            epsilons=epsilons,
            output_lo=out.lo.copy(),
            output_hi=out.hi.copy(),
            method="presolve",
            exact=False,
            solve_time=time.perf_counter() - t0,
            detail={
                "verdict": verdict,
                "bounds": layer_bounds.method,
                "epsilon": float(epsilon),
            },
        )

    if eps_ub.max() <= epsilon:
        return certificate(eps_ub, "certified")

    targets = list(range(layers[-1].out_dim))
    rng = np.random.default_rng(seed)
    starts = [center] + list(ball.sample(rng, attack_samples))
    eps_lb = np.zeros(layers[-1].out_dim)
    for x in starts:
        eps_lb = np.maximum(
            eps_lb, _variation_witness(layers, x, ball, targets, reference=base)
        )
        if eps_lb.max() > epsilon:
            return certificate(eps_lb, "refuted")
    return None


def presolve_global(
    network: Network | list[AffineLayer],
    domain: Box,
    delta: float,
    epsilon: float,
    bounds: str = "symbolic",
    layer_bounds: LayerBounds | None = None,
    attack_samples: int = 8,
    seed: int = 0,
) -> GlobalCertificate | None:
    """Decide a global ε-robustness query from bounds alone, if possible.

    The proving side uses the twin propagation's output-distance box;
    the refuting side launches gradient-corner attacks in the δ-ball
    around random domain samples (every witness pair is feasible, so its
    variation is a certified lower bound on the true global ε).

    Returns:
        A ``method="presolve"`` :class:`GlobalCertificate` (see
        :func:`presolve_local` for verdict semantics), or ``None``.
    """
    t0 = time.perf_counter()
    layers = as_affine_chain(network)
    if layer_bounds is None:
        layer_bounds = get_propagator(bounds).propagate(layers, domain, delta)
    eps_ub = layer_bounds.output_variation_bounds()

    def certificate(epsilons, verdict):
        return GlobalCertificate(
            delta=float(delta),
            epsilons=epsilons,
            method="presolve",
            exact=False,
            solve_time=time.perf_counter() - t0,
            detail={
                "verdict": verdict,
                "bounds": layer_bounds.method,
                "epsilon": float(epsilon),
            },
        )

    if eps_ub.max() <= epsilon:
        return certificate(eps_ub, "certified")

    targets = list(range(layers[-1].out_dim))
    rng = np.random.default_rng(seed)
    eps_lb = np.zeros(layers[-1].out_dim)
    for x in domain.sample(rng, attack_samples):
        ball = perturbation_ball(x, delta, domain)
        eps_lb = np.maximum(eps_lb, _variation_witness(layers, x, ball, targets))
        if eps_lb.max() > epsilon:
            return certificate(eps_lb, "refuted")
    return None


# -- batched presolve ---------------------------------------------------------


def _as_query_array(values, queries: int, what: str) -> np.ndarray:
    """Broadcast a scalar or per-query vector to shape ``(queries,)``."""
    arr = np.asarray(values, dtype=float).reshape(-1)
    if arr.size == 1:
        return np.full(queries, float(arr[0]))
    if arr.size != queries:
        raise ValueError(
            f"{what} has {arr.size} entries for {queries} queries"
        )
    return arr.copy()


def _attack_chunk(rows: int, per_row: int) -> int:
    """Query rows per attack chunk under the scratch-memory soft cap."""
    return max(1, int(_ATTACK_CHUNK_ELEMS // max(per_row, 1)))


def _replay_attack(
    witness: np.ndarray, epsilon: float
) -> np.ndarray | None:
    """Replay one query's sequential attack over its witness rows.

    Reproduces the scalar loop exactly: a running per-output max over
    the starts in order, stopping at the *first* start whose max
    exceeds ε — so a refuted certificate carries the same (possibly
    partial) ``epsilons`` array the scalar early-exit would have
    returned.  ``None`` when no prefix exceeds ε (undecided).
    """
    eps_lb = np.zeros(witness.shape[-1])
    for row in witness:
        eps_lb = np.maximum(eps_lb, row)
        if eps_lb.max() > epsilon:
            return eps_lb
    return None


def presolve_local_many(
    network: Network | list[AffineLayer],
    centers: np.ndarray,
    deltas: "float | np.ndarray",
    epsilons: "float | np.ndarray",
    domain: Box | None = None,
    bounds: str = "symbolic",
    layer_bounds: BatchedLayerBounds | None = None,
    attack_samples: int = 4,
    seed: int = 0,
) -> "list[LocalCertificate | None]":
    """Decide many local ε-queries in one batched pass.

    One batched bound propagation over all δ-balls proves, and one
    corner-vectorized gradient attack refutes, the whole stack at once.
    Entry ``q`` of the returned list is **bit-identical** (verdict,
    ``epsilons``, output box) to
    ``presolve_local(network, centers[q], deltas[q], epsilons[q], ...)``
    — including the ``None`` fallthrough for undecided queries.  The
    scalar path's fresh ``default_rng(seed)`` per query means all
    queries share the same uniform draws, so the batch samples them
    once.

    Args:
        network: Model or affine chain (shared by every query).
        centers: Stacked samples, shape ``(queries, n)``.
        deltas: Scalar or per-query L∞ radii.
        epsilons: Scalar or per-query variation targets.
        domain: Optional domain box intersected with every δ-ball.
        bounds: Propagator for the proving side (default symbolic).
        layer_bounds: Pre-computed :class:`BatchedLayerBounds` over the
            δ-ball stack (the batch engine's cache); computed if omitted.
        attack_samples: Extra random starts per query (scalar default).
        seed: RNG seed for the shared random starts.
    """
    t0 = time.perf_counter()
    layers = as_affine_chain(network)
    centers = np.atleast_2d(np.asarray(centers, dtype=float))
    queries, dim = centers.shape
    deltas = _as_query_array(deltas, queries, "deltas")
    epsilons = _as_query_array(epsilons, queries, "epsilons")
    out_dim = layers[-1].out_dim

    ball_lo = centers - deltas[:, None]
    ball_hi = centers + deltas[:, None]
    if domain is not None:
        ball_lo = np.maximum(ball_lo, domain.lo)
        ball_hi = np.minimum(ball_hi, domain.hi)
    balls = BatchedBox(ball_lo, ball_hi)
    if layer_bounds is None:
        layer_bounds = propagate_many(bounds, layers, balls)
    out = layer_bounds.output
    base = _forward_many(layers, centers)
    eps_ub = variation_from_reference(out.lo, out.hi, base)

    verdicts: list[tuple[str, np.ndarray] | None] = [None] * queries
    attack_rows = []
    for q in range(queries):
        if float(eps_ub[q].max()) <= epsilons[q]:
            verdicts[q] = ("certified", eps_ub[q].copy())
        else:
            attack_rows.append(q)

    if attack_rows:
        rng = np.random.default_rng(seed)
        u = rng.random((attack_samples, dim))
        chunk = _attack_chunk(
            len(attack_rows), (attack_samples + 1) * out_dim * dim
        )
        for k in range(0, len(attack_rows), chunk):
            sel = np.asarray(attack_rows[k : k + chunk])
            lo, hi = balls.lo[sel], balls.hi[sel]
            starts = np.concatenate(
                [
                    centers[sel][:, None, :],
                    lo[:, None, :] + u[None, :, :] * (hi - lo)[:, None, :],
                ],
                axis=1,
            )
            witness = _variation_witness_many(
                layers, starts, lo[:, None, :], hi[:, None, :],
                base[sel][:, None, :],
            )
            for row, q in enumerate(sel):
                eps_lb = _replay_attack(witness[row], float(epsilons[q]))
                if eps_lb is not None:
                    verdicts[q] = ("refuted", eps_lb)

    share = (time.perf_counter() - t0) / queries
    results: list[LocalCertificate | None] = [None] * queries
    for q, verdict in enumerate(verdicts):
        if verdict is None:
            continue
        name, eps = verdict
        results[q] = LocalCertificate(
            center=centers[q].copy(),
            delta=float(deltas[q]),
            epsilons=eps,
            output_lo=out.lo[q].copy(),
            output_hi=out.hi[q].copy(),
            method="presolve",
            exact=False,
            solve_time=share,
            detail={
                "verdict": name,
                "bounds": layer_bounds.method,
                "epsilon": float(epsilons[q]),
            },
        )
    return results


def presolve_global_many(
    network: Network | list[AffineLayer],
    domain: Box,
    deltas: "float | np.ndarray",
    epsilons: "float | np.ndarray",
    bounds: str = "symbolic",
    layer_bounds: BatchedLayerBounds | None = None,
    attack_samples: int = 8,
    seed: int = 0,
) -> "list[GlobalCertificate | None]":
    """Decide many global ε-queries (shared domain) in one batched pass.

    The twin propagation runs once over a stack of ``queries`` copies of
    ``domain`` with per-query δ radii; the refuting attack computes each
    start's Jacobian **once** and reuses it for every query's δ-ball
    corners.  Entry ``q`` is bit-identical to
    ``presolve_global(network, domain, deltas[q], epsilons[q], ...)``
    (see :func:`presolve_local_many` for the RNG-sharing argument —
    here even the domain samples coincide across queries).
    """
    t0 = time.perf_counter()
    layers = as_affine_chain(network)
    dim = domain.dim
    deltas = np.asarray(deltas, dtype=float).reshape(-1)
    epsilons = np.asarray(epsilons, dtype=float).reshape(-1)
    queries = max(deltas.size, epsilons.size)
    deltas = _as_query_array(deltas, queries, "deltas")
    epsilons = _as_query_array(epsilons, queries, "epsilons")
    out_dim = layers[-1].out_dim

    if layer_bounds is None:
        stack = as_batched_box([domain] * queries)
        layer_bounds = propagate_many(bounds, layers, stack, deltas)
    eps_ub = layer_bounds.output_variation_bounds()

    verdicts: list[tuple[str, np.ndarray] | None] = [None] * queries
    attack_rows = []
    for q in range(queries):
        if float(eps_ub[q].max()) <= epsilons[q]:
            verdicts[q] = ("certified", eps_ub[q].copy())
        else:
            attack_rows.append(q)

    if attack_rows and attack_samples > 0:
        rng = np.random.default_rng(seed)
        starts = domain.sample(rng, attack_samples)
        jac = _output_jacobian_many(layers, starts)
        base = _forward_many(layers, starts)
        chunk = _attack_chunk(
            len(attack_rows), attack_samples * out_dim * dim
        )
        for k in range(0, len(attack_rows), chunk):
            sel = np.asarray(attack_rows[k : k + chunk])
            radius = deltas[sel][:, None, None]
            lo = np.maximum(starts[None, :, :] - radius, domain.lo)
            hi = np.minimum(starts[None, :, :] + radius, domain.hi)
            witness = _corner_witness(layers, jac, lo, hi, base)
            for row, q in enumerate(sel):
                eps_lb = _replay_attack(witness[row], float(epsilons[q]))
                if eps_lb is not None:
                    verdicts[q] = ("refuted", eps_lb)

    share = (time.perf_counter() - t0) / queries
    results: list[GlobalCertificate | None] = [None] * queries
    for q, verdict in enumerate(verdicts):
        if verdict is None:
            continue
        name, eps = verdict
        results[q] = GlobalCertificate(
            delta=float(deltas[q]),
            epsilons=eps,
            method="presolve",
            exact=False,
            solve_time=share,
            detail={
                "verdict": name,
                "bounds": layer_bounds.method,
                "epsilon": float(epsilons[q]),
            },
        )
    return results


def presolve_many(
    network: Network | list[AffineLayer],
    kind: str,
    *,
    centers: np.ndarray | None = None,
    domain: Box | None = None,
    deltas: "float | np.ndarray",
    epsilons: "float | np.ndarray",
    bounds: str = "symbolic",
    layer_bounds: BatchedLayerBounds | None = None,
    attack_samples: int | None = None,
    seed: int = 0,
):
    """Batched presolve dispatcher: one call per query *family*.

    ``kind="local"`` requires ``centers`` and forwards to
    :func:`presolve_local_many`; ``kind="global"`` requires ``domain``
    and forwards to :func:`presolve_global_many`.  ``attack_samples``
    defaults to each family's scalar default (4 local, 8 global).
    """
    if kind == "local":
        if centers is None:
            raise ValueError("kind='local' needs stacked centers")
        return presolve_local_many(
            network, centers, deltas, epsilons, domain=domain,
            bounds=bounds, layer_bounds=layer_bounds,
            attack_samples=4 if attack_samples is None else attack_samples,
            seed=seed,
        )
    if kind == "global":
        if domain is None:
            raise ValueError("kind='global' needs an input domain")
        return presolve_global_many(
            network, domain, deltas, epsilons,
            bounds=bounds, layer_bounds=layer_bounds,
            attack_samples=8 if attack_samples is None else attack_samples,
            seed=seed,
        )
    raise ValueError(f"unknown presolve kind {kind!r} (expected 'local'/'global')")
