"""Bounds-only presolve tier: decide ε-targeted queries without a solve.

Given a target ``ε`` ("is the output variation at most ε?"), a query can
often be answered from bound propagation alone:

* **prove** — if the (symbolic) interval bound on the output variation
  is already ≤ ε, the property holds and a certificate with
  ``method="presolve"`` is returned without building any MILP;
* **refute** — if a cheap gradient-guided attack (the
  under-approximation side) exhibits a concrete witness pair with
  variation > ε, the property is false and a ``method="presolve"``
  certificate with ``detail["verdict"] == "refuted"`` is returned, its
  ``epsilons`` being the attack's *lower* bounds;
* **undecided** — ``None`` is returned and the caller falls through to
  the MILP tier (whose result is bit-identical to a run without
  presolve, since presolve never touches the encoding).

The batch engine (:mod:`repro.runtime.batch`) runs this tier first for
every query carrying an ``epsilon`` target, sharing one
:class:`~repro.bounds.propagator.LayerBounds` per (network, input-box)
pair across the batch.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bounds.interval import Box
from repro.bounds.propagator import LayerBounds, get_propagator
from repro.certify.results import GlobalCertificate, LocalCertificate
from repro.nn.affine import AffineLayer, affine_chain_forward
from repro.nn.network import Network, as_affine_chain


def perturbation_ball(
    center: np.ndarray, delta: float, domain: Box | None
) -> Box:
    """The δ-ball around ``center``, clipped to ``domain`` when given."""
    ball = Box.from_center(np.asarray(center, dtype=float).reshape(-1), float(delta))
    return ball.intersect(domain) if domain is not None else ball


def variation_from_reference(
    out_lo: np.ndarray, out_hi: np.ndarray, reference: np.ndarray
) -> np.ndarray:
    """Per-output bound ``max(|hi − ref|, |ref − lo|)``.

    The one definition of "output variation around a reference point"
    shared by the presolve tier, the local certifiers and the bounds
    benchmark — their ε values must stay definitionally identical.
    """
    return np.maximum(np.abs(out_hi - reference), np.abs(reference - out_lo))


def _output_gradient(layers: list[AffineLayer], x: np.ndarray, j: int) -> np.ndarray:
    """Gradient of output ``j`` w.r.t. the input at ``x`` (ReLU subgradient)."""
    pre_acts = []
    cur = np.asarray(x, dtype=float)
    for layer in layers:
        y = layer.pre_activation(cur)
        pre_acts.append(y)
        cur = np.maximum(y, 0.0) if layer.relu else y
    grad = np.zeros(layers[-1].out_dim)
    grad[j] = 1.0
    for layer, y in zip(reversed(layers), reversed(pre_acts)):
        if layer.relu:
            grad = grad * (y > 0.0)
        grad = layer.weight.T @ grad
    return grad


def _variation_witness(
    layers: list[AffineLayer],
    x: np.ndarray,
    ball: Box,
    targets: list[int],
    reference: np.ndarray | None = None,
) -> np.ndarray:
    """Per-output variation achieved by gradient-corner attacks from ``x``.

    For each target output the gradient at ``x`` picks the ball corner
    that maximizes / minimizes the output (exact for a locally-linear
    region, a strong heuristic otherwise).  Every candidate is a
    feasible input, so the returned variations are certified *lower*
    bounds on ``|F(·) − reference|`` (``reference`` defaults to
    ``F(x)`` — the right baseline for global pairs; local queries pass
    ``F(x0)`` so every witness is measured against the center).
    """
    base = affine_chain_forward(layers, x) if reference is None else reference
    best = np.zeros(layers[-1].out_dim)
    for j in targets:
        grad = _output_gradient(layers, x, j)
        for direction in (grad, -grad):
            corner = np.where(direction >= 0.0, ball.hi, ball.lo)
            value = affine_chain_forward(layers, corner)[j]
            best[j] = max(best[j], abs(value - base[j]))
    return best


def presolve_local(
    network: Network | list[AffineLayer],
    center: np.ndarray,
    delta: float,
    epsilon: float,
    domain: Box | None = None,
    bounds: str = "symbolic",
    layer_bounds: LayerBounds | None = None,
    attack_samples: int = 4,
    seed: int = 0,
) -> LocalCertificate | None:
    """Decide a local ε-robustness query from bounds alone, if possible.

    Args:
        network: Model or affine chain.
        center: The sample ``x0``.
        delta: L∞ perturbation radius.
        epsilon: Target variation bound to prove or refute.
        domain: Optional domain box intersected with the δ-ball.
        bounds: Propagator used for the proving side (default symbolic).
        layer_bounds: Pre-computed :class:`LayerBounds` over the δ-ball
            (the batch engine's shared cache); computed here if omitted.
        attack_samples: Extra random starts for the refuting attack.
        seed: RNG seed for the random starts.

    Returns:
        A ``method="presolve"`` :class:`LocalCertificate` with
        ``detail["verdict"]`` ``"certified"`` or ``"refuted"``, or
        ``None`` when bounds and attack leave the query undecided.  On
        ``"refuted"`` the ``epsilons`` are the attack's *lower* bounds.
    """
    t0 = time.perf_counter()
    layers = as_affine_chain(network)
    center = np.asarray(center, dtype=float).reshape(-1)
    ball = perturbation_ball(center, delta, domain)
    if layer_bounds is None:
        layer_bounds = get_propagator(bounds).propagate(layers, ball)
    out = layer_bounds.output
    base = affine_chain_forward(layers, center)
    eps_ub = variation_from_reference(out.lo, out.hi, base)

    def certificate(epsilons, verdict):
        return LocalCertificate(
            center=center,
            delta=float(delta),
            epsilons=epsilons,
            output_lo=out.lo.copy(),
            output_hi=out.hi.copy(),
            method="presolve",
            exact=False,
            solve_time=time.perf_counter() - t0,
            detail={
                "verdict": verdict,
                "bounds": layer_bounds.method,
                "epsilon": float(epsilon),
            },
        )

    if eps_ub.max() <= epsilon:
        return certificate(eps_ub, "certified")

    targets = list(range(layers[-1].out_dim))
    rng = np.random.default_rng(seed)
    starts = [center] + list(ball.sample(rng, attack_samples))
    eps_lb = np.zeros(layers[-1].out_dim)
    for x in starts:
        eps_lb = np.maximum(
            eps_lb, _variation_witness(layers, x, ball, targets, reference=base)
        )
        if eps_lb.max() > epsilon:
            return certificate(eps_lb, "refuted")
    return None


def presolve_global(
    network: Network | list[AffineLayer],
    domain: Box,
    delta: float,
    epsilon: float,
    bounds: str = "symbolic",
    layer_bounds: LayerBounds | None = None,
    attack_samples: int = 8,
    seed: int = 0,
) -> GlobalCertificate | None:
    """Decide a global ε-robustness query from bounds alone, if possible.

    The proving side uses the twin propagation's output-distance box;
    the refuting side launches gradient-corner attacks in the δ-ball
    around random domain samples (every witness pair is feasible, so its
    variation is a certified lower bound on the true global ε).

    Returns:
        A ``method="presolve"`` :class:`GlobalCertificate` (see
        :func:`presolve_local` for verdict semantics), or ``None``.
    """
    t0 = time.perf_counter()
    layers = as_affine_chain(network)
    if layer_bounds is None:
        layer_bounds = get_propagator(bounds).propagate(layers, domain, delta)
    eps_ub = layer_bounds.output_variation_bounds()

    def certificate(epsilons, verdict):
        return GlobalCertificate(
            delta=float(delta),
            epsilons=epsilons,
            method="presolve",
            exact=False,
            solve_time=time.perf_counter() - t0,
            detail={
                "verdict": verdict,
                "bounds": layer_bounds.method,
                "epsilon": float(epsilon),
            },
        )

    if eps_ub.max() <= epsilon:
        return certificate(eps_ub, "certified")

    targets = list(range(layers[-1].out_dim))
    rng = np.random.default_rng(seed)
    eps_lb = np.zeros(layers[-1].out_dim)
    for x in domain.sample(rng, attack_samples):
        ball = perturbation_ball(x, delta, domain)
        eps_lb = np.maximum(eps_lb, _variation_witness(layers, x, ball, targets))
        if eps_lb.max() > epsilon:
            return certificate(eps_lb, "refuted")
    return None
