"""Selective refinement: score neurons, refine the worst offenders.

LPR removes every integer variable, which can be too loose.  Algorithm 1
re-introduces exactness for a limited number of neurons: each hidden
neuron is scored by the worst-case inaccuracy of the relaxations applied
to it — ``−y̲·y̅/(y̅−y̲)`` for the Eq. 4 triangle and
``max(|Δy̲|, |Δy̅|)`` for the Eq. 6 butterfly — and the top ``r`` scores
keep their exact big-M encoding.
"""

from __future__ import annotations

import numpy as np

from repro.bounds.ranges import RangeTable
from repro.certify.decomposition import SubNetwork
from repro.encoding.relaxation import eq4_score, eq6_score


def neuron_scores(sub_table: RangeTable, layer: int) -> np.ndarray:
    """Combined relaxation-inaccuracy scores of one sub-network layer.

    Args:
        sub_table: Range table of the sub-network (0 = input record).
        layer: 1-based layer index within the sub-network.

    Returns:
        Array of per-neuron scores (larger = worse relaxation).
    """
    rec = sub_table.layer(layer)
    scores = np.empty(rec.y.dim)
    for j in range(rec.y.dim):
        y_lb, y_ub = rec.y.scalar(j)
        dy_lb, dy_ub = rec.dy.scalar(j)
        # A neuron whose ReLU phase is provably stable in both copies has
        # exact Eq. 4 and distance relations — refining it buys nothing.
        yhat_lb, yhat_ub = y_lb + dy_lb, y_ub + dy_ub
        stably_active = y_lb >= 0.0 and yhat_lb >= 0.0
        stably_inactive = y_ub <= 0.0 and yhat_ub <= 0.0
        if stably_active or stably_inactive:
            scores[j] = 0.0
        else:
            scores[j] = eq4_score(y_lb, y_ub) + eq6_score(dy_lb, dy_ub)
    return scores


def select_refinement(
    sub: SubNetwork,
    sub_table: RangeTable,
    refine_count: int,
    include_output_layer: bool = False,
) -> list[np.ndarray]:
    """Build per-layer refine masks for a sub-network encoding.

    Args:
        sub: The decomposed slice.
        sub_table: Its range table.
        refine_count: Number of neurons to encode exactly (top scores).
        include_output_layer: Whether the final slice layer's neurons are
            candidates (True for ``F_w(x_j)`` encodings where the output
            ReLU is part of the problem).

    Returns:
        Boolean masks (True = refine / exact) aligned with ``sub.layers``.
    """
    masks = [np.zeros(layer.out_dim, dtype=bool) for layer in sub.layers]
    if refine_count <= 0:
        return masks

    candidates: list[tuple[float, int, int]] = []
    last = len(sub.layers)
    for depth in range(1, last + 1):
        if depth == last and not include_output_layer:
            continue
        if not sub.layers[depth - 1].relu:
            continue
        scores = neuron_scores(sub_table, depth)
        for j, score in enumerate(scores):
            if score > 0.0:
                candidates.append((float(score), depth, j))

    candidates.sort(key=lambda t: -t[0])
    for _, depth, j in candidates[:refine_count]:
        masks[depth - 1][j] = True
    return masks
