"""Exact case-splitting global robustness solver (Reluplex stand-in).

Reluplex/Marabou decide ReLU-network queries by lazily case-splitting on
ReLU phases, solving an LP at each node.  This module implements that
strategy for the global-robustness optimization problem: the twin
network is encoded with all ReLUs relaxed (triangle), and a depth-first
search branches on the most violated ReLU — fixing it *active*
(``x = y, y ≥ 0``) or *inactive* (``x = 0, y ≤ 0``) — until the LP
optimum satisfies every ReLU, i.e. is a true network evaluation.

The result is exact, and the search exhibits the exponential growth in
unstable neurons that Table I's ``t_R`` column demonstrates.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bounds.interval import Box
from repro.bounds.propagator import get_propagator
from repro.certify.results import GlobalCertificate
from repro.encoding.btne import encode_btne
from repro.milp.expr import LinExpr, Var
from repro.nn.affine import AffineLayer
from repro.nn.network import Network


class _ReluRecord:
    """One ReLU of the twin encoding: pre/post handles and bounds."""

    __slots__ = ("y_expr", "x_var", "lb", "ub")

    def __init__(self, y_expr: Var | LinExpr, x_var, lb: float, ub: float) -> None:
        self.y_expr = y_expr
        self.x_var = x_var
        self.lb = lb
        self.ub = ub

    @property
    def unstable(self) -> bool:
        return self.lb < 0.0 < self.ub


class ReluplexStyleSolver:
    """Case-splitting exact solver for Problem 1.

    Args:
        backend: LP backend used at every node.
        max_nodes: Safety cap on explored nodes (raises when exceeded so
            timing comparisons stay honest).
        tol: ReLU satisfaction tolerance.
        bounds: Bound propagator seeding the relaxations and the
            stable/unstable split (``"ibp"`` or ``"symbolic"``; tighter
            bounds prune the case-splitting tree).
    """

    def __init__(
        self,
        backend: str = "scipy",
        max_nodes: int = 2_000_000,
        tol: float = 1e-6,
        bounds: str = "ibp",
    ) -> None:
        self.backend = backend
        self.max_nodes = max_nodes
        self.tol = tol
        self.bounds = bounds
        self.nodes_explored = 0

    # -- public API --------------------------------------------------------

    def certify(
        self,
        network: Network | list[AffineLayer],
        input_box: Box,
        delta: float,
        outputs: list[int] | None = None,
    ) -> GlobalCertificate:
        """Exact global robustness by case splitting.

        Returns:
            A :class:`GlobalCertificate` with ``exact=True``.
        """
        layers = (
            network.to_affine_layers() if isinstance(network, Network) else network
        )
        t0 = time.perf_counter()
        out_dim = layers[-1].out_dim
        targets = list(range(out_dim)) if outputs is None else list(outputs)
        epsilons = np.zeros(out_dim)
        self.nodes_explored = 0

        # One propagation serves every (output, sense) sub-search: it
        # seeds both copies' encodings and the stable/unstable split.
        pre_acts = get_propagator(self.bounds).propagate(layers, input_box).y

        for j in targets:
            hi = self._optimize(layers, input_box, delta, j, "max", pre_acts)
            lo = self._optimize(layers, input_box, delta, j, "min", pre_acts)
            epsilons[j] = max(abs(hi), abs(lo))

        return GlobalCertificate(
            delta=float(delta),
            epsilons=epsilons,
            method="reluplex-style",
            exact=True,
            solve_time=time.perf_counter() - t0,
            lp_count=self.nodes_explored,
            detail={"nodes": self.nodes_explored},
        )

    # -- internals -----------------------------------------------------------

    def _optimize(
        self,
        layers: list[AffineLayer],
        input_box: Box,
        delta: float,
        output_index: int,
        sense: str,
        pre_acts: list[Box],
    ) -> float:
        """Exact max/min of one output distance by DFS case splitting."""
        relax = [np.ones(l.out_dim, dtype=bool) for l in layers]
        enc = encode_btne(
            layers, input_box, delta, relax_mask=relax, pre_act_bounds=pre_acts
        )
        model = enc.model
        objective = enc.output_distance[output_index]
        relus = self._collect_relus(enc, layers, pre_acts)

        sign = 1.0 if sense == "max" else -1.0
        best = -np.inf  # best signed objective found (a true evaluation)

        def dfs() -> None:
            nonlocal best
            self.nodes_explored += 1
            if self.nodes_explored > self.max_nodes:
                raise RuntimeError("ReluplexStyleSolver: node budget exceeded")
            model.set_objective(objective * sign, sense="max")
            result = model.solve(backend=self.backend)
            if not result.is_optimal:
                return  # infeasible phase combination
            if result.objective <= best + self.tol:
                return  # cannot beat the incumbent
            violated = self._most_violated(relus, result)
            if violated is None:
                best = max(best, result.objective)
                return
            record = relus[violated]
            base_len = len(model.constraints)
            # Active phase: x = y (and y >= 0).
            model.add_constr(record.x_var == record.y_expr)
            model.add_constr(record.y_expr >= 0.0)
            dfs()
            del model.constraints[base_len:]
            # Inactive phase: x = 0 (and y <= 0).
            model.add_constr(record.x_var == 0.0)
            model.add_constr(record.y_expr <= 0.0)
            dfs()
            del model.constraints[base_len:]

        dfs()
        if not np.isfinite(best):
            raise RuntimeError("case-splitting search found no feasible evaluation")
        return sign * best

    def _most_violated(self, relus: list[_ReluRecord], result):
        """Index of the ReLU farthest from exact satisfaction, or None."""
        worst_idx = None
        worst_gap = self.tol
        for idx, rec in enumerate(relus):
            if not rec.unstable:
                continue
            y_val = result[rec.y_expr]
            x_val = result[rec.x_var]
            gap = abs(x_val - max(y_val, 0.0))
            if gap > worst_gap:
                worst_gap = gap
                worst_idx = idx
        return worst_idx

    @staticmethod
    def _collect_relus(enc, layers, pre_acts: list[Box]) -> list[_ReluRecord]:
        """Gather (y, x, bounds) records of both copies' ReLU neurons."""
        records: list[_ReluRecord] = []
        for copy in (enc.first, enc.second):
            for i, layer in enumerate(layers):
                if not layer.relu:
                    continue
                for j in range(layer.out_dim):
                    lb, ub = pre_acts[i].scalar(j)
                    x_handle = copy.x[i][j]
                    if not isinstance(x_handle, Var):
                        continue  # stably-inactive neurons encode as constants
                    records.append(
                        _ReluRecord(copy.y[i][j], x_handle, lb, ub)
                    )
        return records
