"""Result containers for certification runs."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class GlobalCertificate:
    """Outcome of a global robustness certification.

    The statement certified is Definition 1: for all ``x, x̂`` in the
    input domain with ``‖x̂ − x‖∞ ≤ δ``, each output ``j`` satisfies
    ``|F(x̂)_j − F(x)_j| ≤ epsilons[j]``.

    Attributes:
        delta: Input perturbation bound δ.
        epsilons: Per-output certified variation bounds (ε̄ per output).
        method: Human-readable method tag, e.g. ``"itne-nd-lpr"``
            (``"presolve"`` / ``"split"`` for the ε-targeted tiers).
        exact: Whether the bound is exact (ε) rather than an
            over-approximation (ε̄).  ε-targeted tiers overload this as
            "the verdict is decided": a ``method="split"`` certificate
            has ``exact=True`` iff its verdict is not ``"undecided"``.
        solve_time: Wall-clock seconds.
        lp_count / milp_count: Number of LP / MILP solves performed.
        detail: Free-form extra data (per-layer ranges, gaps...); the
            ε-targeted tiers record their ``verdict`` here.
    """

    delta: float
    epsilons: np.ndarray
    method: str
    exact: bool = False
    solve_time: float = 0.0
    lp_count: int = 0
    milp_count: int = 0
    detail: dict = field(default_factory=dict)

    @property
    def epsilon(self) -> float:
        """Worst output variation bound (scalar ε of Problem 1)."""
        return float(np.max(self.epsilons))

    @property
    def verdict(self) -> str | None:
        """Decision of an ε-targeted tier (presolve / split), if any.

        ``"certified"``, ``"refuted"``, ``"undecided"`` (split tier
        interrupted by its deadline), or ``None`` for certificates of
        the bound-computing methods, which have no ε target to decide.
        On ``"refuted"`` the ``epsilons`` are concrete witness *lower*
        bounds; on every other outcome they are sound upper bounds.
        """
        return self.detail.get("verdict")

    def summary(self) -> str:
        """One-line report."""
        kind = "exact" if self.exact else "over-approx"
        return (
            f"[{self.method}] δ={self.delta:g} -> ε={self.epsilon:.6g} "
            f"({kind}, {self.solve_time:.2f}s, "
            f"{self.lp_count} LPs, {self.milp_count} MILPs)"
        )


@dataclass
class LocalCertificate:
    """Outcome of a local robustness certification around one input.

    Attributes:
        center: The input sample x(0).
        delta: Perturbation radius.
        epsilons: Per-output bounds on ``|F(x̂)_j − F(x(0))_j|``.
        output_lo / output_hi: Certified output range of the perturbed
            copy (the quantity Fig. 4's local table reports).
        method: Method tag (``"presolve"`` for bounds-only answers,
            ``"split"`` for the input-splitting branch-and-bound tier).
        exact: Whether bounds are exact.  ε-targeted tiers overload
            this as "the verdict is decided" (see
            :attr:`GlobalCertificate.exact`).
        solve_time: Wall-clock seconds.
        detail: Free-form extra data; the ε-targeted tiers record their
            ``verdict`` (``"certified"``/``"refuted"``/``"undecided"``)
            and bound method here.  On a refuted verdict ``epsilons``
            are attack *lower* bounds, not certified upper bounds.
    """

    center: np.ndarray
    delta: float
    epsilons: np.ndarray
    output_lo: np.ndarray
    output_hi: np.ndarray
    method: str
    exact: bool = False
    solve_time: float = 0.0
    detail: dict = field(default_factory=dict)

    @property
    def epsilon(self) -> float:
        """Worst-output local robustness bound."""
        return float(np.max(self.epsilons))

    @property
    def verdict(self) -> str | None:
        """Decision of an ε-targeted tier (presolve / split), if any.

        Same semantics as :attr:`GlobalCertificate.verdict`.
        """
        return self.detail.get("verdict")
