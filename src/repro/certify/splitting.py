"""Input-splitting branch-and-bound certification tier.

The monolithic MILP tier answers an ε-query with one big-M encoding
over the *whole* perturbation ball, where loose bounds mean many
unstable ReLUs and many binaries.  This tier instead runs complete
branch-and-bound over the **input space** (the ReluVal / α,β-CROWN
family of input splitting):

* a priority work-queue holds input subdomains ordered by how far their
  symbolic variation bound exceeds the target ε (worst first);
* each subdomain is first attacked with the presolve tier's machinery —
  symbolic bounds prove it, a gradient-corner attack refutes the whole
  query (any concrete witness > ε short-circuits everything);
* undecided subdomains are bisected on a gradient-weighted widest input
  dimension, so cheap bound propagation decides most of the volume;
* below a configurable depth / width / domain-budget threshold a
  subdomain drops to a **MILP leaf** whose encoding inherits the much
  tighter per-subdomain :class:`~repro.bounds.propagator.LayerBounds`
  (more stable neurons → fewer binaries, via the existing ``bounds=``
  knobs on the encoders).

The query is *certified* when every terminal subdomain's bound is ≤ ε
and the terminal subdomains exactly tile the root box (bisection keeps
this invariant by construction); it is *refuted* the moment any
feasible witness exceeds ε.  A shared deadline keeps the tier sound
under ``time_limit``: interrupted runs report ``exact=False`` with
verdict ``"undecided"`` and a finite sound interval bound (never a
claimed decision), exactly like the PR-3 time-limited MILP semantics.
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass, field

import numpy as np

from repro import _faults, _sanitize
from repro.bounds.interval import Box
from repro.bounds.propagator import LayerBounds, get_propagator, propagate_many
from repro.certify.presolve import (
    _output_gradient,
    _variation_witness,
    perturbation_ball,
    variation_from_reference,
)
from repro.certify.results import GlobalCertificate, LocalCertificate
from repro.encoding.itne import encode_itne
from repro.encoding.single import encode_single_network
from repro.milp.expr import as_expr
from repro.milp.solution import SolveStatus
from repro.nn.affine import AffineLayer, affine_chain_forward
from repro.nn.network import Network, as_affine_chain

__all__ = ["SplitConfig", "certify_local_split", "certify_global_split"]

#: Resource-limit statuses that soundly fall back to a bound (mirrors
#: :mod:`repro.certify.exact`); anything else non-optimal raises.
_LIMIT_STATUSES = (SolveStatus.TIME_LIMIT, SolveStatus.ITERATION_LIMIT)


@dataclass
class SplitConfig:
    """Knobs of the input-splitting tier.

    Attributes:
        max_domains: Budget on evaluated subdomains.  Once this many
            boxes have had bounds propagated, bisection stops and every
            remaining queue entry becomes a MILP leaf.
        max_depth: Subdomains at this bisection depth become MILP
            leaves instead of splitting further.
        min_width: Subdomains whose widest side is at most this become
            MILP leaves (guards against splitting a near-point box).
        attack_samples: Extra random gradient-corner attack starts per
            subdomain (the subdomain center is always attacked).
        frontier_batch: Subdomains popped from the work-queue per
            branch-and-bound round.  All children bisected in a round
            are bounded in **one** batched
            :func:`~repro.bounds.propagator.propagate_many` call instead
            of one propagation per child.  Batched rows are
            bit-identical to scalar propagation, so ``1`` reproduces the
            sequential tier's exploration exactly; larger waves keep the
            same soundness but may explore the tree in a different
            order near the domain budget.
        backend: MILP backend for leaf solves.
        bounds: Bound propagator re-run per subdomain (default
            ``"symbolic"`` — the whole point is tight per-box bounds).
        time_limit: Shared wall-clock deadline in seconds for the whole
            query (bounding, attacks and leaf MILPs together).  ``None``
            = unlimited.  When the deadline interrupts the run, the
            verdict is ``"undecided"`` and ``exact=False``.
        leaf_workers: Process count for solving leaf MILPs concurrently
            (``None`` = serial; the batch engine grants its worker
            budget here when a split query runs inline).  Ignored when
            ``warm_start`` is set — a warm session is inherently serial.
        warm_start: Solve all MILP leaves through one shared
            :class:`~repro.milp.session.SolverSession` over the *root*
            encoding: each leaf only tightens the input-variable bounds
            and re-enters the simplex from the previous leaf's basis
            (backend resolved via the capability registry, i.e.
            ``python:simplex-warm``).  Identical verdicts to the cold
            path; ``detail["simplex_pivots"]`` reports the pivots spent.
        record_boxes: Record every terminal subdomain's ``(lo, hi)`` in
            ``detail["leaf_boxes"]`` — the tiling-invariant audit trail
            used by the property tests.
        seed: RNG seed for the attack sample starts.
    """

    max_domains: int = 128
    max_depth: int = 12
    min_width: float = 1e-6
    attack_samples: int = 1
    frontier_batch: int = 8
    backend: str = "scipy"
    bounds: str = "symbolic"
    time_limit: float | None = None
    leaf_workers: int | None = None
    warm_start: bool = False
    record_boxes: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_domains < 1:
            raise ValueError("max_domains must be >= 1")
        if self.max_depth < 0:
            raise ValueError("max_depth must be >= 0")
        if self.frontier_batch < 1:
            raise ValueError("frontier_batch must be >= 1")
        if self.time_limit is not None and not self.time_limit > 0:
            # `not > 0` also rejects NaN (same contract as the batch
            # engine's CertificationQuery.time_limit).
            raise ValueError("time_limit must be positive seconds or None")


@dataclass(order=True)
class _QueueItem:
    """A pending subdomain, ordered worst-excess-first.

    ``priority = ε − ε̄(box)`` is negative while the subdomain's bound
    exceeds the target, so the min-heap pops the most-violating box.
    """

    priority: float
    seq: int
    depth: int = field(compare=False)
    box: Box = field(compare=False)
    bounds: LayerBounds = field(compare=False)
    eps_ub: np.ndarray = field(compare=False)


@dataclass
class _Leaf:
    """One subdomain that dropped to the MILP tier (picklable)."""

    box: Box
    bounds: LayerBounds
    eps_ub: np.ndarray
    depth: int


@dataclass
class _LeafOutcome:
    """Sound per-leaf result of a MILP leaf solve.

    ``eps`` is always a sound per-output upper bound on the variation
    over the leaf (exact when ``exact``); ``witness_eps`` is the best
    concrete per-output variation found (a certified lower bound) and
    ``witness`` the input (or input pair) achieving it.
    """

    eps: np.ndarray
    out_lo: np.ndarray | None
    out_hi: np.ndarray | None
    exact: bool
    limit_hits: int
    witness_eps: np.ndarray | None = None
    witness: np.ndarray | None = None
    pivots: int = 0


def _bisect(box: Box, dim: int) -> tuple[Box, Box]:
    """Split ``box`` at the midpoint of coordinate ``dim``.

    The two halves share the cut hyperplane and nothing else, so a
    bisection tree's leaves always tile the root exactly (no gap, no
    interior overlap) — the soundness invariant of the tier.
    """
    mid = 0.5 * (float(box.lo[dim]) + float(box.hi[dim]))
    lo_half_hi = box.hi.copy()
    lo_half_hi[dim] = mid
    hi_half_lo = box.lo.copy()
    hi_half_lo[dim] = mid
    return Box(box.lo.copy(), lo_half_hi), Box(hi_half_lo, box.hi.copy())


def _split_dimension(layers: list[AffineLayer], box: Box, worst_output: int) -> int:
    """Gradient-weighted widest dimension: argmax ``|∂F_j/∂x_d| · w_d``.

    The gradient is taken at the box center for the output whose bound
    currently violates ε the most; dimensions the network is flat in
    are never split on while an influential one is available.
    """
    width = box.width()
    grad = _output_gradient(layers, box.center, worst_output)
    score = width * np.abs(grad)
    if float(score.max()) <= 0.0:
        return int(np.argmax(width))
    return int(np.argmax(score))


# -- leaf MILP solving --------------------------------------------------------


def _per_solve_limit(leaf_budget: float | None, n_solves: int) -> float | None:
    """Split a leaf's remaining wall-clock budget across its solves.

    ``Model.solve_many`` applies a *per-solve* limit; handing it the
    whole remaining budget would let one leaf overshoot the shared
    deadline by a factor of ``n_solves``.  A small floor keeps a solve
    from being strangled into a useless instant timeout — overshooting
    the deadline slightly only delays the (sound) undecided fallback.
    """
    if leaf_budget is None:
        return None
    return max(leaf_budget / max(n_solves, 1), 0.05)


def _local_outcome(
    layers: list[AffineLayer],
    leaf: _Leaf,
    base: np.ndarray,
    results,
    input_vars,
) -> _LeafOutcome:
    """Assemble a local leaf's outcome from its 2-per-output solves.

    Shared by the cold (fresh model per leaf) and warm (shared session)
    paths so the sound-bound intersection and witness extraction cannot
    drift between them.
    """
    out_dim = layers[-1].out_dim
    interval = leaf.bounds.output
    lo = np.empty(out_dim)
    hi = np.empty(out_dim)
    limit_hits = 0
    witness = None
    witness_eps = None
    for j in range(out_dim):
        r_lo, r_hi = results[2 * j], results[2 * j + 1]
        for r in (r_lo, r_hi):
            if not r.is_optimal and r.status not in _LIMIT_STATUSES:
                raise RuntimeError(
                    f"split leaf solve failed on output {j}: "
                    f"status={r.status.value} ({r.message})"
                )
        b_lo = r_lo.sound_bound()
        b_hi = r_hi.sound_bound()
        lo[j] = float(interval.lo[j]) if b_lo is None else max(b_lo, float(interval.lo[j]))
        hi[j] = float(interval.hi[j]) if b_hi is None else min(b_hi, float(interval.hi[j]))
        limit_hits += (not r_lo.is_optimal) + (not r_hi.is_optimal)
        # Track the extremal feasible input as a concrete witness.
        for r in (r_lo, r_hi):
            if not r.is_optimal:
                continue
            x = np.array([r[v] for v in input_vars])
            eps = np.abs(affine_chain_forward(layers, x) - base)
            if witness_eps is None or eps.max() > witness_eps.max():
                witness_eps, witness = eps, x
    return _LeafOutcome(
        eps=variation_from_reference(lo, hi, base),
        out_lo=lo,
        out_hi=hi,
        exact=limit_hits == 0,
        limit_hits=limit_hits,
        witness_eps=witness_eps,
        witness=witness,
        pivots=sum(r.iterations for r in results),
    )


def _solve_local_leaf(
    layers: list[AffineLayer],
    leaf: _Leaf,
    base: np.ndarray,
    backend: str,
    time_limit: float | None,
) -> _LeafOutcome:
    """Exact min/max of every output over one leaf box (single copy).

    The encoding inherits the leaf's per-subdomain pre-activation
    bounds, so stable neurons encode without binaries.  A time-limited
    solve soundly falls back to its dual bound intersected with the
    leaf's interval bound (never a limited incumbent).
    """
    enc = encode_single_network(
        layers, leaf.box, pre_act_bounds=leaf.bounds.y
    )
    objectives = []
    for handle in enc.output:
        expr = as_expr(handle)
        objectives.extend([(expr, "min"), (expr, "max")])
    results = enc.model.solve_many(
        objectives, backend=backend,
        time_limit=_per_solve_limit(time_limit, len(objectives)),
    )
    return _local_outcome(layers, leaf, base, results, enc.input_vars)


def _solve_global_leaf(
    layers: list[AffineLayer],
    leaf: _Leaf,
    delta: float,
    domain: Box,
    backend: str,
    time_limit: float | None,
) -> _LeafOutcome:
    """Exact output-distance extrema over one leaf (twin ITNE MILP).

    The first copy's input ranges over the leaf box; the perturbed copy
    is clipped to the *full* domain (not the leaf!) so the union over a
    tiling of the domain is exactly the monolithic Problem 1 — clipping
    the twin to the leaf would unsoundly shrink the feasible pairs.
    """
    table = leaf.bounds.to_range_table()
    enc = encode_itne(
        layers, leaf.box, delta, ranges=table, clip_second_input=False
    )
    for k, (x0, d0) in enumerate(zip(enc.input_vars, enc.input_dist_vars)):
        second = x0 + d0
        enc.model.add_constr(second >= float(domain.lo[k]))
        enc.model.add_constr(second <= float(domain.hi[k]))
    objectives = []
    for handle in enc.output_distance:
        expr = as_expr(handle)
        objectives.extend([(expr, "min"), (expr, "max")])
    results = enc.model.solve_many(
        objectives, backend=backend,
        time_limit=_per_solve_limit(time_limit, len(objectives)),
    )
    return _global_outcome(
        layers, leaf, results, enc.input_vars, enc.input_dist_vars
    )


def _global_outcome(
    layers: list[AffineLayer],
    leaf: _Leaf,
    results,
    input_vars,
    input_dist_vars,
) -> _LeafOutcome:
    """Assemble a global leaf's outcome from its 2-per-output solves.

    Twin of :func:`_local_outcome` for the ITNE distance encoding
    (shared by the cold and warm leaf paths).
    """
    out_dim = layers[-1].out_dim
    interval = leaf.bounds.output_distance
    eps = np.empty(out_dim)
    limit_hits = 0
    witness = None
    witness_eps = None
    for j in range(out_dim):
        r_lo, r_hi = results[2 * j], results[2 * j + 1]
        for r in (r_lo, r_hi):
            if not r.is_optimal and r.status not in _LIMIT_STATUSES:
                raise RuntimeError(
                    f"split leaf solve failed on output {j}: "
                    f"status={r.status.value} ({r.message})"
                )
        b_lo = r_lo.sound_bound()
        b_hi = r_hi.sound_bound()
        lo = float(interval.lo[j]) if b_lo is None else max(b_lo, float(interval.lo[j]))
        hi = float(interval.hi[j]) if b_hi is None else min(b_hi, float(interval.hi[j]))
        limit_hits += (not r_lo.is_optimal) + (not r_hi.is_optimal)
        eps[j] = max(abs(lo), abs(hi))
        for r in (r_lo, r_hi):
            if not r.is_optimal:
                continue
            x = np.array([r[v] for v in input_vars])
            xh = x + np.array([r[v] for v in input_dist_vars])
            pair_eps = np.abs(
                affine_chain_forward(layers, xh) - affine_chain_forward(layers, x)
            )
            if witness_eps is None or pair_eps.max() > witness_eps.max():
                witness_eps, witness = pair_eps, np.stack([x, xh])
    return _LeafOutcome(
        eps=eps,
        out_lo=None,
        out_hi=None,
        exact=limit_hits == 0,
        limit_hits=limit_hits,
        witness_eps=witness_eps,
        witness=witness,
        pivots=sum(r.iterations for r in results),
    )


class _SessionLeafSolver:
    """Warm-started serial leaf solving through one shared root session.

    Builds ONE encoding over the *root* box and opens one warm
    :class:`~repro.milp.session.SolverSession` on it (backend resolved
    from the capability registry:
    ``find_backend(MIP | INCREMENTAL_ROWS | WARM_START)``).  Each leaf
    then only tightens the input-variable bounds and re-solves: the
    constraint matrix never changes, so the previous leaf's simplex
    basis stays dual feasible and re-entry skips phase 1 entirely.

    Soundness: the root encoding's big-M constants come from root-box
    pre-activation bounds, which remain valid bounds on every sub-box —
    the encoding restricted to a leaf box is still the *exact* big-M
    formulation there, just with looser constants than a per-leaf
    re-encoding would use.  Warm basis reuse is what buys back the
    per-leaf tightening this forgoes.
    """

    def __init__(
        self,
        kind: str,
        layers: list[AffineLayer],
        root: Box,
        root_bounds: LayerBounds,
        extra,
        config: SplitConfig,
    ) -> None:
        from repro.milp.backend import Capability, find_backend

        backend = find_backend(
            Capability.MIP | Capability.INCREMENTAL_ROWS | Capability.WARM_START
        )
        self.kind = kind
        self.layers = layers
        if kind == "local":
            self.base = extra
            enc = encode_single_network(
                layers, root, pre_act_bounds=root_bounds.y
            )
            handles = enc.output
            self.input_dist_vars = None
        else:
            delta, domain = extra
            enc = encode_itne(
                layers, root, delta,
                ranges=root_bounds.to_range_table(),
                clip_second_input=False,
            )
            for k, (x0, d0) in enumerate(
                zip(enc.input_vars, enc.input_dist_vars)
            ):
                second = x0 + d0
                enc.model.add_constr(second >= float(domain.lo[k]))
                enc.model.add_constr(second <= float(domain.hi[k]))
            handles = enc.output_distance
            self.input_dist_vars = enc.input_dist_vars
        self.input_vars = enc.input_vars
        self.session = enc.model.open_session(
            backend=backend,
            relu_info=getattr(enc, "relu_vars", None),
            warm_start=True,
        )
        self.objectives = []
        for handle in handles:
            expr = as_expr(handle)
            self.objectives.extend([(expr, "min"), (expr, "max")])
        self.pivots = 0

    def solve(self, leaf: _Leaf, time_limit: float | None) -> _LeafOutcome:
        """Re-solve the shared session restricted to ``leaf``'s box."""
        self.session.set_var_bounds(
            self.input_vars, leaf.box.lo, leaf.box.hi
        )
        results = self.session.solve_objectives(
            self.objectives,
            time_limit=_per_solve_limit(time_limit, len(self.objectives)),
        )
        if self.kind == "local":
            outcome = _local_outcome(
                self.layers, leaf, self.base, results, self.input_vars
            )
        else:
            outcome = _global_outcome(
                self.layers, leaf, results, self.input_vars,
                self.input_dist_vars,
            )
        self.pivots += outcome.pivots
        return outcome

    def close(self) -> None:
        """Release the shared root session (idempotent)."""
        self.session.close()


def _leaf_worker(payload) -> _LeafOutcome:
    """Picklable entry point for parallel leaf solving."""
    kind, layers, leaf, extra, backend, time_limit = payload
    if _faults.ENABLED:
        _faults.fault_point("split.leaf")
    if kind == "local":
        return _solve_local_leaf(layers, leaf, extra, backend, time_limit)
    delta, domain = extra
    return _solve_global_leaf(layers, leaf, delta, domain, backend, time_limit)


def _solve_leaves(
    kind: str,
    layers: list[AffineLayer],
    leaves: list[_Leaf],
    extra,
    config: SplitConfig,
    deadline: float | None,
    root: Box | None = None,
    root_bounds: LayerBounds | None = None,
    pivot_sink: dict | None = None,
) -> list[_LeafOutcome | None]:
    """Solve every leaf MILP, worst-excess first, optionally in parallel.

    Returns one outcome per leaf (input order); ``None`` marks a leaf
    the deadline prevented from being solved at all.  Parallel mode
    reuses the batch engine's pool machinery (and its fall-back-serial
    contract on platforms that cannot fork).  With
    ``config.warm_start`` the leaves run serially through one shared
    :class:`_SessionLeafSolver` instead (total pivots reported via
    ``pivot_sink["pivots"]``).
    """
    if not leaves:
        return []
    order = sorted(
        range(len(leaves)), key=lambda i: -float(leaves[i].eps_ub.max())
    )
    outcomes: list[_LeafOutcome | None] = [None] * len(leaves)
    if config.warm_start and root is not None and root_bounds is not None:
        solver = _SessionLeafSolver(
            kind, layers, root, root_bounds, extra, config
        )
        try:
            for i in order:
                remaining = (
                    None if deadline is None else deadline - time.perf_counter()
                )
                if remaining is not None and remaining <= 0:
                    break  # deadline: remaining leaves stay undecided (sound)
                outcomes[i] = solver.solve(leaves[i], remaining)
            if pivot_sink is not None:
                pivot_sink["pivots"] = solver.pivots
            return outcomes
        finally:
            solver.close()
    from repro.runtime.batch import _POOL_FAILURES

    transient = _POOL_FAILURES + (_faults.InjectedFault,)
    workers = 1 if config.leaf_workers is None else config.leaf_workers
    workers = min(workers, len(leaves))
    if workers > 1:
        from concurrent.futures import ProcessPoolExecutor, as_completed

        remaining = None if deadline is None else deadline - time.perf_counter()
        if remaining is not None and remaining <= 0:
            return outcomes
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {
                    pool.submit(_leaf_worker, (
                        kind, layers, leaves[i], extra, config.backend,
                        remaining,
                    )): i
                    for i in order
                }
                for future in as_completed(futures):
                    try:
                        outcomes[futures[future]] = future.result()
                    except transient:
                        # Salvage: keep every leaf that finished; this
                        # one re-solves in the serial sweep below.
                        continue
        except _POOL_FAILURES:
            pass  # sandboxes without fork: fall through to serial
    for i in order:
        if outcomes[i] is not None:
            continue  # solved by the pool (or a salvaged remnant of it)
        remaining = None if deadline is None else deadline - time.perf_counter()
        if remaining is not None and remaining <= 0:
            break  # deadline: remaining leaves stay undecided (sound)
        payload = (kind, layers, leaves[i], extra, config.backend, remaining)
        try:
            outcomes[i] = _leaf_worker(payload)
        except transient:
            # One inline retry for transient failures (injected chaos
            # faults, IPC hiccups); a second failure leaves the leaf
            # undecided, which the driver already treats soundly.
            try:
                outcomes[i] = _leaf_worker(payload)
            except transient:
                continue
    return outcomes


# -- the branch-and-bound driver ----------------------------------------------


class _SplitRun:
    """State of one branch-and-bound certification run (local or global).

    The local and global variants share the whole queue discipline and
    differ only in how a box is bounded, attacked and leaf-solved; the
    ``kind`` switch keeps that delta in one place instead of two nearly
    identical drivers.
    """

    def __init__(
        self,
        kind: str,
        layers: list[AffineLayer],
        root: Box,
        epsilon: float,
        config: SplitConfig,
        base: np.ndarray | None = None,
        delta: float | None = None,
        domain: Box | None = None,
    ) -> None:
        self.kind = kind
        self.layers = layers
        self.root = root
        self.epsilon = float(epsilon)
        self.config = config
        self.base = base
        self.delta = delta
        self.domain = domain
        self.propagator = get_propagator(config.bounds)
        self.rng = np.random.default_rng(config.seed)
        self.targets = list(range(layers[-1].out_dim))
        self.t0 = time.perf_counter()
        self.deadline = (
            None if config.time_limit is None else self.t0 + config.time_limit
        )
        self.seq = itertools.count()
        self.domains = 0
        self.bisections = 0
        self.proved: list[tuple[Box, np.ndarray, LayerBounds]] = []
        self.undecided: list[tuple[Box, np.ndarray]] = []
        self.milp_leaves: list[_Leaf] = []
        self.milp_limit_hits = 0
        self.proved_by_bounds = 0
        self.root_bounds: LayerBounds | None = None
        self.simplex_pivots = 0

    # -- per-box primitives --------------------------------------------------

    def evaluate(self, box: Box, depth: int) -> _QueueItem:
        """Propagate per-subdomain bounds and build the queue entry."""
        self.domains += 1
        if self.kind == "local":
            bounds = self.propagator.propagate(self.layers, box)
            out = bounds.output
            eps_ub = variation_from_reference(out.lo, out.hi, self.base)
        else:
            bounds = self.propagator.propagate(self.layers, box, self.delta)
            eps_ub = bounds.output_variation_bounds()
        return _QueueItem(
            priority=self.epsilon - float(eps_ub.max()),
            seq=next(self.seq),
            depth=depth,
            box=box,
            bounds=bounds,
            eps_ub=eps_ub,
        )

    def evaluate_many(self, boxes: list[Box], depths: list[int]) -> list[_QueueItem]:
        """Bound a whole frontier wave in one batched propagation.

        One :func:`~repro.bounds.propagator.propagate_many` call
        replaces one ``propagate`` per child.  Every returned queue
        entry is bit-identical to :meth:`evaluate` on its box (batched
        rows match scalar propagation exactly), so the wave size only
        changes *when* boxes are bounded, never what their bounds are.
        """
        self.domains += len(boxes)
        deltas = None if self.kind == "local" else self.delta
        batched = propagate_many(self.propagator, self.layers, boxes, deltas)
        if self.kind == "local":
            out = batched.output
            eps_ub = variation_from_reference(out.lo, out.hi, self.base)
        else:
            eps_ub = batched.output_variation_bounds()
        return [
            _QueueItem(
                priority=self.epsilon - float(eps_ub[q].max()),
                seq=next(self.seq),
                depth=depths[q],
                box=boxes[q],
                bounds=batched.row(q),
                eps_ub=eps_ub[q].copy(),
            )
            for q in range(len(boxes))
        ]

    def attack(self, box: Box) -> np.ndarray:
        """Best concrete per-output variation found inside ``box``."""
        starts = [box.center]
        if self.config.attack_samples > 0:
            starts += list(box.sample(self.rng, self.config.attack_samples))
        eps_lb = np.zeros(len(self.targets))
        for x in starts:
            if self.kind == "local":
                # Corners of the subdomain are feasible perturbations of
                # the original ball (the subdomain is a subset of it).
                witness = _variation_witness(
                    self.layers, x, box, self.targets, reference=self.base
                )
            else:
                ball = perturbation_ball(x, self.delta, self.domain)
                witness = _variation_witness(self.layers, x, ball, self.targets)
            eps_lb = np.maximum(eps_lb, witness)
            if float(eps_lb.max()) > self.epsilon:
                break
        return eps_lb

    def out_of_time(self) -> bool:
        return self.deadline is not None and time.perf_counter() > self.deadline

    # -- the main loop -------------------------------------------------------

    def run(self) -> dict:
        """Drive the queue to a verdict; returns the result summary."""
        refuted_eps: np.ndarray | None = None
        root_item = self.evaluate(self.root, depth=0)
        self.root_bounds = root_item.bounds
        heap: list[_QueueItem] = []
        if float(root_item.eps_ub.max()) <= self.epsilon:
            self.proved.append((root_item.box, root_item.eps_ub, root_item.bounds))
            self.proved_by_bounds += 1
        else:
            heap.append(root_item)

        while heap and refuted_eps is None:
            if self.out_of_time():
                self.undecided.extend((i.box, i.eps_ub) for i in heap)
                heap.clear()
                break
            # One round: pop a wave of the worst subdomains, attack and
            # classify them in pop order, then bound every bisected
            # child in a single batched propagation.
            wave: list[_QueueItem] = []
            while heap and len(wave) < self.config.frontier_batch:
                wave.append(heapq.heappop(heap))
            splits: list[tuple[_QueueItem, int]] = []
            for w, item in enumerate(wave):
                eps_lb = self.attack(item.box)
                if float(eps_lb.max()) > self.epsilon:
                    refuted_eps = eps_lb
                    # Wave members not yet resolved (and scheduled
                    # splits whose children never got bounded) rejoin
                    # the heap so the post-loop bookkeeping records
                    # them as undecided — one witness refutes them all.
                    for leftover in wave[w + 1 :] + [i for i, _ in splits]:
                        heapq.heappush(heap, leftover)
                    break
                at_leaf = (
                    item.depth >= self.config.max_depth
                    or float(item.box.width().max()) <= self.config.min_width
                    # Children already scheduled this round count toward
                    # the budget, exactly as sequential processing
                    # would have evaluated them before this pop.
                    or self.domains + 2 * len(splits) >= self.config.max_domains
                )
                if at_leaf:
                    self.milp_leaves.append(
                        _Leaf(item.box, item.bounds, item.eps_ub, item.depth)
                    )
                    continue
                dim = _split_dimension(
                    self.layers, item.box, int(np.argmax(item.eps_ub))
                )
                self.bisections += 1
                splits.append((item, dim))
            if refuted_eps is not None or not splits:
                continue
            children: list[Box] = []
            depths: list[int] = []
            for item, dim in splits:
                children.extend(_bisect(item.box, dim))
                depths.extend([item.depth + 1, item.depth + 1])
            for child_item in self.evaluate_many(children, depths):
                if float(child_item.eps_ub.max()) <= self.epsilon:
                    self.proved.append(
                        (child_item.box, child_item.eps_ub, child_item.bounds)
                    )
                    self.proved_by_bounds += 1
                else:
                    heapq.heappush(heap, child_item)

        witness = None
        witness_eps = refuted_eps
        if refuted_eps is not None:
            # Whatever is still queued never got decided; that is fine —
            # one concrete witness refutes the whole query.
            self.undecided.extend((i.box, i.eps_ub) for i in heap)
        else:
            extra = (
                self.base if self.kind == "local" else (self.delta, self.domain)
            )
            pivot_sink: dict = {}
            outcomes = _solve_leaves(
                self.kind, self.layers, self.milp_leaves, extra,
                self.config, self.deadline,
                root=self.root, root_bounds=self.root_bounds,
                pivot_sink=pivot_sink,
            )
            # Cold leaves also report their LP iteration counts (nonzero
            # for the pure-python backends), so warm-vs-cold pivot
            # comparisons read the same detail key either way.
            self.simplex_pivots = pivot_sink.get(
                "pivots", sum(o.pivots for o in outcomes if o is not None)
            )
            for leaf, outcome in zip(self.milp_leaves, outcomes):
                if outcome is None:
                    self.undecided.append((leaf.box, leaf.eps_ub))
                    continue
                self.milp_limit_hits += outcome.limit_hits
                # The leaf's interval bound stays valid; intersect.
                eps = np.minimum(outcome.eps, leaf.eps_ub)
                if (
                    outcome.witness_eps is not None
                    and float(outcome.witness_eps.max()) > self.epsilon
                ):
                    witness_eps = outcome.witness_eps
                    witness = outcome.witness
                    refuted_eps = outcome.witness_eps
                    break
                if float(eps.max()) <= self.epsilon:
                    self.proved.append((leaf.box, eps, leaf.bounds))
                else:
                    # A sound bound above ε that no witness confirms:
                    # only possible for a resource-limited leaf solve
                    # (an exact solve above ε yields a witness).
                    self.undecided.append((leaf.box, eps))

        if refuted_eps is not None:
            verdict = "refuted"
            epsilons = witness_eps
        elif self.undecided:
            verdict = "undecided"
            epsilons = self._sound_upper_bound()
        else:
            verdict = "certified"
            epsilons = self._sound_upper_bound()
        if _sanitize.ENABLED and refuted_eps is None:
            # A refuting witness short-circuits leaf processing, so only
            # non-refuted verdicts promise a complete tiling — and for
            # those it is the soundness argument: a gap would be an
            # unexplored part of the domain under a "certified" stamp.
            terminal = [box for box, _, _ in self.proved]
            terminal += [box for box, _ in self.undecided]
            _sanitize.check_tiling(
                self.root.lo, self.root.hi,
                ((box.lo, box.hi) for box in terminal),
                f"split-tier terminal subdomains ({verdict})",
            )
        return {
            "verdict": verdict,
            "epsilons": np.asarray(epsilons, dtype=float),
            "witness": witness,
            "solve_time": time.perf_counter() - self.t0,
        }

    def _sound_upper_bound(self) -> np.ndarray:
        """Per-output max over all terminal subdomains' sound bounds."""
        parts = [eps for _, eps, _ in self.proved]
        parts += [eps for _, eps in self.undecided]
        return np.max(np.stack(parts), axis=0)

    def detail(self, verdict: str) -> dict:
        info = {
            "verdict": verdict,
            "epsilon": self.epsilon,
            "bounds": self.config.bounds,
            "domains": self.domains,
            "bisections": self.bisections,
            "frontier_batch": self.config.frontier_batch,
            "proved_by_bounds": self.proved_by_bounds,
            "milp_leaves": len(self.milp_leaves),
            "milp_limit_hits": self.milp_limit_hits,
            "undecided": len(self.undecided),
        }
        if self.config.warm_start:
            info["warm_start"] = True
        if self.config.warm_start or self.simplex_pivots:
            info["simplex_pivots"] = self.simplex_pivots
        if self.config.record_boxes:
            terminal = [box for box, _, _ in self.proved]
            terminal += [box for box, _ in self.undecided]
            info["leaf_boxes"] = [
                (box.lo.copy(), box.hi.copy()) for box in terminal
            ]
        return info


def certify_local_split(
    network: Network | list[AffineLayer],
    center: np.ndarray,
    delta: float,
    epsilon: float,
    domain: Box | None = None,
    config: SplitConfig | None = None,
) -> LocalCertificate:
    """Decide a local ε-robustness query by input-splitting B&B.

    Branch-and-bound over sub-boxes of the δ-ball around ``center``:
    symbolic bounds prove subdomains, gradient-corner attacks refute the
    query, undecided subdomains bisect until they drop to binary-sparse
    MILP leaves.  Verdict semantics match :func:`presolve_local` —
    ``detail["verdict"]`` is ``"certified"``, ``"refuted"`` or (only
    when the deadline interrupts) ``"undecided"``.

    Returns:
        A ``method="split"`` :class:`LocalCertificate`.  ``exact`` is
        True iff the verdict is decided (not ``"undecided"``); on
        ``"refuted"`` the ``epsilons`` are concrete witness *lower*
        bounds, otherwise sound upper bounds over the whole ball.
    """
    config = config or SplitConfig()
    layers = as_affine_chain(network)
    center = np.asarray(center, dtype=float).reshape(-1)
    ball = perturbation_ball(center, delta, domain)
    base = affine_chain_forward(layers, center)
    run = _SplitRun(
        "local", layers, ball, epsilon, config, base=base
    )
    result = run.run()
    detail = run.detail(result["verdict"])
    if result["witness"] is not None:
        detail["witness"] = result["witness"]
    if result["verdict"] == "certified":
        # Every terminal subdomain was proved and the subdomains tile
        # the ball, so the hull of their output boxes encloses F(ball).
        out_boxes = [bounds.output for _, _, bounds in run.proved]
        hull = out_boxes[0]
        for box in out_boxes[1:]:
            hull = hull.union_hull(box)
        out_lo, out_hi = hull.lo, hull.hi
    else:
        # Refuted / undecided runs have terminal subdomains whose output
        # was never enclosed (or only lower-bounded); the only sound
        # range is the root propagation's output box.
        out_lo = run.root_bounds.output.lo.copy()
        out_hi = run.root_bounds.output.hi.copy()
    return LocalCertificate(
        center=center,
        delta=float(delta),
        epsilons=result["epsilons"],
        output_lo=out_lo,
        output_hi=out_hi,
        method="split",
        exact=result["verdict"] != "undecided",
        solve_time=result["solve_time"],
        detail=detail,
    )


def certify_global_split(
    network: Network | list[AffineLayer],
    domain: Box,
    delta: float,
    epsilon: float,
    config: SplitConfig | None = None,
) -> GlobalCertificate:
    """Decide a global ε-robustness query by input-splitting B&B.

    The first copy's input domain is tiled; each subdomain re-runs the
    twin symbolic propagation (distance bounds) and the gradient-corner
    pair attack; MILP leaves encode ITNE over the sub-box with the
    perturbed copy clipped to the *full* domain, so the union over the
    tiling is exactly the monolithic Problem 1.

    Returns:
        A ``method="split"`` :class:`GlobalCertificate` (see
        :func:`certify_local_split` for verdict / ``exact`` semantics).
    """
    config = config or SplitConfig()
    layers = as_affine_chain(network)
    run = _SplitRun(
        "global", layers, domain, epsilon, config, delta=float(delta),
        domain=domain,
    )
    result = run.run()
    detail = run.detail(result["verdict"])
    if result["witness"] is not None:
        detail["witness"] = result["witness"]
    return GlobalCertificate(
        delta=float(delta),
        epsilons=result["epsilons"],
        method="split",
        exact=result["verdict"] != "undecided",
        solve_time=result["solve_time"],
        milp_count=2 * len(run.milp_leaves) * layers[-1].out_dim,
        detail=detail,
    )
