"""Dataset-wise PGD under-approximation of global robustness (ε̲).

Following the paper (inspired by Ruan et al. [9]): for every sample in a
dataset, search the δ-ball around it with PGD for the input pair that
maximizes the output variation; the largest variation found over the
whole dataset is a certified *lower* bound on the true global robustness
ε.  Together with Algorithm 1's ε̄ this sandwiches ε for networks too
large for exact certification (Table I, DNN-6..8).
"""

from __future__ import annotations

import time

import numpy as np

from repro.attack.pgd import variation_pgd
from repro.certify.results import GlobalCertificate
from repro.nn.network import Network


def pgd_underapproximation(
    network: Network,
    dataset: np.ndarray,
    delta: float,
    outputs: list[int] | None = None,
    steps: int = 40,
    restarts: int = 1,
    clip_lo: float | np.ndarray | None = None,
    clip_hi: float | np.ndarray | None = None,
    seed: int = 0,
    max_samples: int | None = None,
) -> GlobalCertificate:
    """Compute ``ε̲`` by dataset-wise variation PGD.

    Args:
        network: Trained model.
        dataset: Samples ``(N, *input_shape)`` to search around.
        delta: L∞ perturbation bound δ.
        outputs: Output indices to evaluate (default: all).
        steps: PGD steps per direction.
        restarts: Random restarts per sample.
        clip_lo / clip_hi: Valid input domain for projection.
        seed: RNG seed.
        max_samples: Optional cap on the number of dataset samples used.

    Returns:
        A :class:`GlobalCertificate` whose ``epsilons`` are *lower*
        bounds (method ``"pgd-under"``, ``exact=False``).
    """
    t0 = time.perf_counter()
    rng = np.random.default_rng(seed)
    targets = list(range(network.output_dim)) if outputs is None else list(outputs)
    samples = dataset if max_samples is None else dataset[:max_samples]

    epsilons = np.zeros(network.output_dim)
    for x in samples:
        for j in targets:
            _, var = variation_pgd(
                network,
                x,
                j,
                delta,
                steps=steps,
                clip_lo=clip_lo,
                clip_hi=clip_hi,
                rng=rng,
                restarts=restarts,
            )
            if var > epsilons[j]:
                epsilons[j] = var

    return GlobalCertificate(
        delta=float(delta),
        epsilons=epsilons,
        method="pgd-under",
        exact=False,
        solve_time=time.perf_counter() - t0,
        detail={"samples": len(samples), "steps": steps, "restarts": restarts},
    )
