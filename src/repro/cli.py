"""Command-line interface: certify saved models without writing code.

Usage::

    python -m repro info model.npz
    python -m repro bounds model.npz --delta 0.001
    python -m repro certify model.npz --delta 0.001 --lo 0 --hi 1 \
        --window 2 --refine 8 --bounds symbolic
    python -m repro certify model.npz --delta 0.001 --method exact
    python -m repro attack model.npz --delta 0.01 --samples 20
    python -m repro batch model.npz --delta 0.01 --samples 16 \
        --method exact --workers 4 --epsilon 0.5
    python -m repro certify model.npz --delta 0.001 --epsilon 0.5 --split \
        --max-domains 256 --split-depth 10
    python -m repro batch model.npz --delta 0.01 --samples 16 \
        --method exact --epsilon 0.5 --split

Models are ``.npz`` snapshots written by
:func:`repro.nn.serialize.save_network`.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.bounds import Box, get_propagator
from repro.certify import (
    CertifierConfig,
    GlobalRobustnessCertifier,
    ReluplexStyleSolver,
    certify_exact_global,
    pgd_underapproximation,
)
from repro.nn import load_network
from repro.nn.lipschitz import linf_gain_upper_bound

#: Propagator choices exposed on every ``--bounds`` flag.
_BOUNDS_CHOICES = ("ibp", "symbolic")


def _add_domain_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--lo", type=float, default=0.0, help="domain lower bound")
    parser.add_argument("--hi", type=float, default=1.0, help="domain upper bound")


def _add_split_args(parser: argparse.ArgumentParser) -> None:
    """The input-splitting tier's flags, shared by certify and batch."""
    parser.add_argument("--split", action="store_true",
                        help="decide the --epsilon query by input-splitting "
                        "branch-and-bound instead of one monolithic MILP")
    parser.add_argument("--max-domains", type=int, default=None,
                        help="split tier: budget on evaluated subdomains")
    parser.add_argument("--split-depth", type=int, default=None,
                        help="split tier: bisection depth at which "
                        "subdomains drop to MILP leaves")
    parser.add_argument("--warm-start", action="store_true",
                        help="split tier: solve all MILP leaves through "
                        "one shared warm solver session (serial; reuses "
                        "the simplex basis across leaves)")


def _positive_seconds(text: str) -> float:
    """Argparse type for ``--time-limit``: a strictly positive float.

    ``0`` is rejected explicitly (it is not "no limit" — omit the flag
    for the 30 s default, or pass ``inf`` for an unlimited solve).
    """
    try:
        value = float(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"invalid time limit: {text!r}") from exc
    if not value > 0:
        raise argparse.ArgumentTypeError(
            f"--time-limit must be > 0 seconds, got {text!r} "
            "(omit the flag for the default, or pass 'inf' for no limit)"
        )
    return value


def _positive_epsilon(text: str) -> float:
    """Argparse type for ``--epsilon``: a strictly positive float."""
    try:
        value = float(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"invalid epsilon: {text!r}") from exc
    if not value > 0:
        raise argparse.ArgumentTypeError(
            f"--epsilon must be a positive variation target, got {text!r}"
        )
    return value


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Global robustness certification of ReLU networks "
        "(ITNE / DATE 2022 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_info = sub.add_parser("info", help="describe a saved model")
    p_info.add_argument("model", help="path to a .npz network snapshot")

    p_bounds = sub.add_parser(
        "bounds",
        help="per-layer interval widths and stable-neuron percentages "
        "under IBP vs symbolic propagation",
    )
    p_bounds.add_argument("model", help="path to a .npz network snapshot")
    _add_domain_args(p_bounds)
    p_bounds.add_argument(
        "--delta", type=float, default=None,
        help="optional L-inf perturbation; adds the twin distance-bound "
        "columns used for ITNE/BTNE seeding",
    )

    p_cert = sub.add_parser("certify", help="certify global robustness")
    p_cert.add_argument("model", help="path to a .npz network snapshot")
    p_cert.add_argument("--delta", type=float, required=True,
                        help="L-inf input perturbation bound")
    _add_domain_args(p_cert)
    p_cert.add_argument(
        "--method",
        choices=["algorithm1", "exact", "reluplex"],
        default="algorithm1",
        help="algorithm1 = the paper's over-approximation (default); "
        "exact/reluplex = exact baselines (exponential!)",
    )
    p_cert.add_argument("--window", type=int, default=2, help="ND window W")
    p_cert.add_argument("--refine", type=int, default=0,
                        help="neurons refined per sub-network")
    p_cert.add_argument("--backend", default="scipy",
                        help="scipy | python | python:simplex")
    p_cert.add_argument("--bounds", choices=_BOUNDS_CHOICES, default=None,
                        help="bound propagator seeding big-M ranges / the "
                        "initial range table (default: ibp; the --split "
                        "tier defaults to symbolic per-subdomain bounds)")
    p_cert.add_argument("--time-limit", type=_positive_seconds, default=None,
                        help="per-MILP time limit in seconds, > 0 "
                        "(default: 30 for algorithm1, unlimited for exact; "
                        "'inf' disables the limit; for --split this is "
                        "the shared deadline of the whole run)")
    p_cert.add_argument("--epsilon", type=_positive_epsilon, default=None,
                        help="target variation bound to decide "
                        "(required by --split)")
    _add_split_args(p_cert)

    p_att = sub.add_parser("attack", help="PGD under-approximation of ε")
    p_att.add_argument("model", help="path to a .npz network snapshot")
    p_att.add_argument("--delta", type=float, required=True)
    _add_domain_args(p_att)
    p_att.add_argument("--samples", type=int, default=20,
                       help="random dataset samples to attack from")
    p_att.add_argument("--steps", type=int, default=40, help="PGD steps")
    p_att.add_argument("--seed", type=int, default=0)

    p_batch = sub.add_parser(
        "batch",
        help="certify many samples in parallel (batch engine)",
    )
    p_batch.add_argument("model", help="path to a .npz network snapshot")
    p_batch.add_argument("--delta", type=float, required=True,
                         help="L-inf input perturbation bound")
    _add_domain_args(p_batch)
    p_batch.add_argument(
        "--method", choices=["exact", "nd", "lpr"], default="exact",
        help="local certification method per sample (default: exact)",
    )
    p_batch.add_argument("--samples", type=int, default=8,
                         help="random samples drawn from the domain")
    p_batch.add_argument("--inputs", default=None,
                         help="optional .npy file of samples (rows)")
    p_batch.add_argument("--window", type=int, default=1,
                         help="ND window (method=nd)")
    p_batch.add_argument("--workers", type=int, default=None,
                         help="worker processes (default: all cores)")
    p_batch.add_argument("--backend", default="scipy",
                         help="scipy | python | python:simplex")
    p_batch.add_argument("--bounds", choices=_BOUNDS_CHOICES, default=None,
                         help="bound propagator for the solver tier "
                         "(default: ibp for the MILP tier, symbolic for "
                         "--split)")
    p_batch.add_argument("--epsilon", type=_positive_epsilon, default=None,
                         help="target variation bound; enables the "
                         "bounds-only presolve tier (queries decided by "
                         "symbolic bounds / the attack gap skip the MILP)")
    p_batch.add_argument("--no-presolve", action="store_true",
                         help="force the MILP tier even when --epsilon "
                         "is given")
    p_batch.add_argument("--no-bulk-presolve", action="store_true",
                         help="disable the batched presolve prefilter "
                         "(queries fall back to per-query presolve in "
                         "the workers; identical certificates, no bulk "
                         "screening)")
    _add_split_args(p_batch)
    p_batch.add_argument("--time-limit", type=_positive_seconds, default=None,
                         help="per-query time limit in seconds (for --split "
                         "queries: the shared deadline of each run)")
    p_batch.add_argument("--query-timeout", type=_positive_seconds,
                         default=None,
                         help="HARD per-query wall-clock limit: a watchdog "
                         "kills the worker running an overdue query and the "
                         "query resolves to a sound degraded answer "
                         "(multi-worker runs only; --time-limit is the "
                         "cooperative solver budget)")
    p_batch.add_argument("--max-retries", type=int, default=None,
                         help="attempts per query for transient failures "
                         "(worker deaths, broken pools) before a sound "
                         "degraded answer (default: 3)")
    p_batch.add_argument("--seed", type=int, default=0)
    return parser


def _cmd_info(args) -> int:
    net = load_network(args.model)
    chain = net.to_affine_layers()
    print(f"model        : {args.model}")
    print(f"input shape  : {net.input_shape} ({net.input_dim} flat)")
    print(f"output dim   : {net.output_dim}")
    print(f"layers       : {len(net.layers)} "
          f"({', '.join(type(l).__name__ for l in net.layers)})")
    print(f"normal form  : {len(chain)} affine stages, "
          f"{net.num_hidden_neurons()} hidden ReLU neurons")
    print(f"parameters   : {net.num_parameters()}")
    print(f"L-inf gain   : <= {linf_gain_upper_bound(net):.4g} "
          f"(product of layer inf-norms)")
    return 0


def _cmd_bounds(args) -> int:
    from repro.utils import format_table

    net = load_network(args.model)
    layers = net.to_affine_layers()
    domain = Box.uniform(net.input_dim, args.lo, args.hi)
    ibp = get_propagator("ibp").propagate(layers, domain, args.delta)
    sym = get_propagator("symbolic").propagate(layers, domain, args.delta)

    def stable_pct(bounds, i):
        if not layers[i].relu:
            return "-"
        return f"{100.0 * np.mean(bounds.stable_mask(i)):.1f}%"

    headers = ["layer", "neurons", "y-width ibp", "y-width sym",
               "stable ibp", "stable sym"]
    if args.delta is not None:
        headers += ["Δy-width ibp", "Δy-width sym"]
    rows = []
    for i, layer in enumerate(layers):
        row = [
            f"{i + 1}{' (relu)' if layer.relu else ''}",
            layer.out_dim,
            f"{np.mean(ibp.y[i].width()):.4g}",
            f"{np.mean(sym.y[i].width()):.4g}",
            stable_pct(ibp, i),
            stable_pct(sym, i),
        ]
        if args.delta is not None:
            row += [
                f"{np.mean(ibp.dy[i].width()):.4g}",
                f"{np.mean(sym.dy[i].width()):.4g}",
            ]
        rows.append(row)
    title = f"bound propagation over [{args.lo:g}, {args.hi:g}]^{net.input_dim}"
    if args.delta is not None:
        title += f", δ={args.delta:g}"
    print(format_table(headers, rows, title=title))

    ratio = sym.mean_pre_activation_width() / max(
        ibp.mean_pre_activation_width(), 1e-300
    )
    print(f"overall stable neurons : ibp {100 * ibp.stable_fraction(layers):.1f}%"
          f" | symbolic {100 * sym.stable_fraction(layers):.1f}%")
    print(f"mean y-width tightness : symbolic/ibp = {ratio:.3f}")
    if args.delta is not None:
        eps_ibp = float(ibp.output_variation_bounds().max())
        eps_sym = float(sym.output_variation_bounds().max())
        print(f"output variation bound : ibp ε̄={eps_ibp:.6g} | "
              f"symbolic ε̄={eps_sym:.6g}")
    return 0


def _cmd_certify(args) -> int:
    from repro.certify import SplitConfig, certify_global_split

    net = load_network(args.model)
    domain = Box.uniform(net.input_dim, args.lo, args.hi)
    if args.split:
        if args.epsilon is None:
            print("error: --split needs an --epsilon target to decide",
                  file=sys.stderr)
            return 2
        config = SplitConfig(
            backend=args.backend,
            bounds=args.bounds or "symbolic",
            time_limit=(
                None if args.time_limit in (None, float("inf"))
                else args.time_limit
            ),
            warm_start=args.warm_start,
        )
        if args.max_domains is not None:
            config.max_domains = args.max_domains
        if args.split_depth is not None:
            config.max_depth = args.split_depth
        cert = certify_global_split(net, domain, args.delta, args.epsilon,
                                    config=config)
        print(cert.summary())
        print(f"verdict: {cert.verdict} (epsilon target {args.epsilon:g}; "
              f"{cert.detail['domains']} subdomains, "
              f"{cert.detail['proved_by_bounds']} proved by bounds, "
              f"{cert.detail['milp_leaves']} MILP leaves)")
        for j, eps in enumerate(cert.epsilons):
            print(f"  output {j}: eps = {eps:.6g}")
        return 0
    if args.method == "algorithm1":
        # `is not None`, not truthiness: an explicit small limit (e.g.
        # 0.25) must be honored, and `inf` means "no limit".
        limit = 30.0 if args.time_limit is None else args.time_limit
        config = CertifierConfig(
            window=args.window,
            refine_count=args.refine,
            backend=args.backend,
            bounds=args.bounds or "ibp",
            milp_time_limit=None if limit == float("inf") else limit,
        )
        cert = GlobalRobustnessCertifier(net, config).certify(domain, args.delta)
    elif args.method == "exact":
        limit = args.time_limit
        cert = certify_exact_global(
            net, domain, args.delta, backend=args.backend, bounds=args.bounds or "ibp",
            time_limit=None if limit in (None, float("inf")) else limit,
        )
    else:
        cert = ReluplexStyleSolver(backend=args.backend, bounds=args.bounds or "ibp").certify(
            net, domain, args.delta
        )
    print(cert.summary())
    for j, eps in enumerate(cert.epsilons):
        print(f"  output {j}: eps = {eps:.6g}")
    return 0


def _cmd_attack(args) -> int:
    net = load_network(args.model)
    rng = np.random.default_rng(args.seed)
    domain = Box.uniform(net.input_dim, args.lo, args.hi)
    dataset = domain.sample(rng, args.samples).reshape(
        args.samples, *net.input_shape
    )
    cert = pgd_underapproximation(
        net, dataset, args.delta, steps=args.steps,
        clip_lo=args.lo, clip_hi=args.hi, seed=args.seed,
    )
    print(cert.summary())
    for j, eps in enumerate(cert.epsilons):
        print(f"  output {j}: eps >= {eps:.6g}")
    return 0


def _cmd_batch(args) -> int:
    from repro.runtime import BatchCertifier, RetryPolicy, local_queries
    from repro.utils import format_table

    net = load_network(args.model)
    domain = Box.uniform(net.input_dim, args.lo, args.hi)
    if args.inputs:
        samples = np.load(args.inputs).reshape(-1, net.input_dim)
    else:
        rng = np.random.default_rng(args.seed)
        samples = domain.sample(rng, args.samples)
    if args.split and args.epsilon is None:
        print("error: --split needs an --epsilon target to decide",
              file=sys.stderr)
        return 2
    if args.split and args.method != "exact":
        print("error: --split applies to --method exact only", file=sys.stderr)
        return 2
    queries = local_queries(
        net, samples, args.delta,
        method=args.method, domain=domain, backend=args.backend,
        window=args.window, epsilon=args.epsilon, bounds=args.bounds,
        presolve=not args.no_presolve, split=args.split,
        max_domains=args.max_domains, split_depth=args.split_depth,
        warm_start=args.warm_start, time_limit=args.time_limit,
    )
    if args.max_retries is not None and args.max_retries < 1:
        print("error: --max-retries must be >= 1", file=sys.stderr)
        return 2
    engine = BatchCertifier(
        max_workers=args.workers,
        bulk_presolve=not args.no_bulk_presolve,
        retry=(
            None if args.max_retries is None
            else RetryPolicy(max_attempts=args.max_retries)
        ),
        query_timeout=args.query_timeout,
    )
    results = engine.run(
        queries,
        progress=lambda done, total, r: print(
            f"[{done}/{total}] {r.tag}: "
            + (f"eps={r.certificate.epsilon:.6g}" if r.ok else "FAILED")
            + f" ({r.elapsed:.2f}s)",
            file=sys.stderr,
        ),
    )
    rows = []
    for r in results:
        if r.ok:
            verdict = r.certificate.detail.get("verdict", "")
            method = r.certificate.method + (f" ({verdict})" if verdict else "")
            rows.append(
                [r.tag, method, f"{r.certificate.epsilon:.6g}", f"{r.elapsed:.2f}s"]
            )
        else:
            rows.append([r.tag, "-", "error", f"{r.elapsed:.2f}s"])
    print(format_table(
        ["query", "method", "eps", "time"], rows,
        title=f"batch local-{args.method} certification, δ={args.delta:g} "
        f"({len(results)} queries)",
    ))
    failures = [r for r in results if not r.ok]
    ok = [r for r in results if r.ok]
    if ok:
        presolved = sum(1 for r in ok if r.certificate.method == "presolve")
        certified = [
            r for r in ok if r.certificate.detail.get("verdict") != "refuted"
        ]
        if certified:
            worst = max(r.certificate.epsilon for r in certified)
            print(f"worst eps over {len(certified)} certified samples: {worst:.6g}")
        if args.epsilon is not None:
            print(f"presolve tier answered {presolved}/{len(ok)} queries "
                  "without a MILP")
            stats = engine.presolve_stats
            if stats["queries"]:
                print(f"bulk presolve screened {stats['queries']} queries in "
                      f"{stats['groups']} batched pass(es), answering "
                      f"{stats['answered']} before dispatch")
        if args.split:
            split_results = [r for r in ok if r.certificate.method == "split"]
            decided = sum(
                1 for r in split_results
                if r.certificate.verdict != "undecided"
            )
            print(f"split tier decided {decided}/{len(split_results)} "
                  "escalated queries")
    faults = engine.fault_stats
    if any(faults.values()):
        degraded = [r for r in results if r.degraded]
        print(f"fault tolerance: {faults['retries']} retried attempt(s), "
              f"{len(degraded)} degraded answer(s), "
              f"{faults['workers_killed']} stuck worker(s) replaced, "
              f"{faults['pool_rebuilds']} pool rebuild(s)")
        for r in degraded:
            print(f"  {r.tag}: degraded ({r.detail.get('reason', '?')}) "
                  "— sound undecided bounds", file=sys.stderr)
    for r in failures:
        print(f"\nquery {r.tag} failed:\n{r.error}", file=sys.stderr)
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "info": _cmd_info,
        "bounds": _cmd_bounds,
        "certify": _cmd_certify,
        "attack": _cmd_attack,
        "batch": _cmd_batch,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
