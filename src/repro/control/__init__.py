"""Closed-loop control safety case study (paper §III-B).

An advanced cruise control (ACC) loop: an ego vehicle follows a
reference vehicle, estimating the inter-vehicle distance from camera
images with a perception CNN.  The paper's Webots setup is replaced by a
fully synthetic but structurally identical stack:

* :mod:`repro.control.dynamics` — the paper's exact 2-D LTI model with
  bounded disturbances ``w1`` (reference-vehicle speed) and ``w2``
  (model inaccuracy).
* :mod:`repro.control.controller` — the feedback law ``u = K x̂`` with
  the published gain K = [0.3617, −0.8582].
* :mod:`repro.control.camera` — deterministic renderer mapping distance
  to an image of the lead vehicle (apparent size ∝ 1/d).
* :mod:`repro.control.perception` — builds/trains the distance-estimation
  CNN on rendered images.
* :mod:`repro.control.invariant` — robust control-invariant set
  computation over 2-D polytopes (own halfplane/vertex geometry).
* :mod:`repro.control.simulator` — the closed-loop simulator with
  optional FGSM perturbation of the camera image.
* :mod:`repro.control.safety` — end-to-end safety verification gluing
  global robustness certification to the invariant-set condition.
"""

from repro.control.camera import CameraModel
from repro.control.controller import FeedbackController
from repro.control.dynamics import AccDynamics
from repro.control.invariant import Polytope2D, max_safe_estimation_error, robust_invariant_set
from repro.control.perception import (
    PerceptionModel,
    default_case_study_model,
    train_perception_model,
)
from repro.control.safety import SafetyVerdict, verify_acc_safety
from repro.control.simulator import ClosedLoopSimulator, SimulationResult

__all__ = [
    "AccDynamics",
    "FeedbackController",
    "CameraModel",
    "PerceptionModel",
    "train_perception_model",
    "default_case_study_model",
    "Polytope2D",
    "robust_invariant_set",
    "max_safe_estimation_error",
    "ClosedLoopSimulator",
    "SimulationResult",
    "SafetyVerdict",
    "verify_acc_safety",
]
