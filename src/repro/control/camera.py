"""Synthetic camera: renders the lead vehicle at a given distance.

Replaces Webots' RGB camera with a deterministic image-formation model:
the reference vehicle appears as a dark rounded body with a bright
license-plate patch on a road/sky background; its apparent size and
vertical position scale with ``1/d`` (pinhole geometry), and mild
per-frame nuisance parameters (lateral offset, illumination) make the
perception task non-trivial.  Images are single-channel in [0, 1] —
the structural property that matters for the case study is a smooth,
monotone-in-distance pixel pattern, which this model provides.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class CameraModel:
    """Distance-to-image renderer.

    Attributes:
        height: Image height in pixels (paper: 24; default 8 keeps the
            per-neuron certification LPs laptop-sized).
        width: Image width in pixels (paper: 48; default 16).
        focal: Pinhole constant: apparent half-width = focal / d.  The
            default 0.6 keeps the lead vehicle large in frame across the
            whole operating range, which matters for certification: the
            distance signal per pixel is strong enough that an accurate
            estimator exists *within a small Lipschitz budget* — the
            property a tight global-robustness certificate requires.
        d_min / d_max: Rendering validity range (matches the safe set
            with margin).
    """

    height: int = 8
    width: int = 16
    focal: float = 0.6
    d_min: float = 0.3
    d_max: float = 2.2

    def render(
        self,
        distance: float,
        lateral: float = 0.0,
        illumination: float = 1.0,
    ) -> np.ndarray:
        """Render one frame.

        Args:
            distance: Inter-vehicle distance (raw units, ~[0.5, 1.9]).
            lateral: Lateral offset of the lead vehicle in [-0.2, 0.2].
            illumination: Global brightness multiplier in [0.8, 1.2].

        Returns:
            Image array ``(1, height, width)`` in [0, 1].
        """
        d = float(np.clip(distance, self.d_min, self.d_max))
        h, w = self.height, self.width

        # Background: sky gradient over road gradient.
        rows = np.linspace(0.0, 1.0, h)[:, None]
        sky = 0.75 - 0.15 * rows
        road = 0.35 + 0.25 * rows
        horizon = 0.45
        background = np.where(rows < horizon, sky, road)
        image = np.broadcast_to(background, (h, w)).copy()

        # Vehicle body: apparent half-size from pinhole model.
        half_w = self.focal / d
        half_h = 0.6 * half_w
        center_col = 0.5 + lateral / d
        # Farther vehicles sit closer to the horizon.
        center_row = horizon + 0.35 * half_h + 0.25 / (1.0 + 2.0 * d)

        cols = np.linspace(0.0, 1.0, w)[None, :]
        rows2 = np.linspace(0.0, 1.0, h)[:, None]
        # Soft-edged rectangle via product of logistic edges.
        sharp = 4.0 * max(h, w)
        inside_c = _soft_band(cols, center_col - half_w, center_col + half_w, sharp)
        inside_r = _soft_band(rows2, center_row - half_h, center_row + half_h, sharp)
        body = inside_c * inside_r
        image = image * (1.0 - body) + 0.15 * body

        # Bright plate patch in the lower middle of the body.
        plate_c = _soft_band(
            cols, center_col - 0.35 * half_w, center_col + 0.35 * half_w, sharp
        )
        plate_r = _soft_band(
            rows2, center_row + 0.2 * half_h, center_row + 0.6 * half_h, sharp
        )
        plate = plate_c * plate_r
        image = image * (1.0 - plate) + 0.9 * plate

        image = np.clip(image * float(illumination), 0.0, 1.0)
        return image[None, :, :]

    def render_batch(
        self,
        distances: np.ndarray,
        rng: np.random.Generator | None = None,
        lateral_range: float = 0.15,
        illum_range: float = 0.15,
    ) -> np.ndarray:
        """Render many frames with random nuisance parameters."""
        rng = rng or np.random.default_rng()
        frames = []
        for d in np.asarray(distances, dtype=float).reshape(-1):
            lateral = float(rng.uniform(-lateral_range, lateral_range))
            illum = float(1.0 + rng.uniform(-illum_range, illum_range))
            frames.append(self.render(d, lateral=lateral, illumination=illum))
        return np.stack(frames)

    @property
    def image_shape(self) -> tuple[int, int, int]:
        """Network input shape ``(1, height, width)``."""
        return (1, self.height, self.width)


def _soft_band(coord: np.ndarray, lo: float, hi: float, sharpness: float) -> np.ndarray:
    """Smooth indicator of ``lo <= coord <= hi`` (logistic edges)."""
    rise = 1.0 / (1.0 + np.exp(-sharpness * (coord - lo)))
    fall = 1.0 / (1.0 + np.exp(-sharpness * (hi - coord)))
    return rise * fall
