"""The feedback controller ``u = K x̂`` of the ACC case study."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class FeedbackController:
    """Static state-feedback law ``u = K x̂``.

    The estimated state ``x̂`` comes from perception: distance from the
    CNN (with estimation error), speed from odometry (assumed exact in
    the paper).

    The default gain is the published ``K = [0.3617, −0.8582]``.  Its
    closed loop is lightly damped (eigenvalues ``0.956 ± 0.042j``), yet
    the verified maximal robust invariant set inside the safe box covers
    most of it (area ≈ 0.48 of the box's 0.84), contains the operating
    point, and tolerates distance-estimation errors up to ≈0.13 — the
    paper reports 0.14 for its (unstated) variant of this analysis.

    Attributes:
        k: Feedback gain row vector (default: the paper's
            ``[0.3617, −0.8582]``).
        u_limits: Optional saturation of the acceleration command.
    """

    k: np.ndarray = field(default_factory=lambda: np.array([0.3617, -0.8582]))
    u_limits: tuple[float, float] | None = None

    def control(self, x_hat: np.ndarray) -> float:
        """Compute the acceleration command from the estimated state."""
        u = float(self.k @ np.asarray(x_hat, dtype=float))
        if self.u_limits is not None:
            u = float(np.clip(u, *self.u_limits))
        return u

    def closed_loop_matrix(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """``A + B K`` of the nominal closed loop (no saturation)."""
        return a + np.outer(b, self.k)
