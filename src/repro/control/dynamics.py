"""The ACC plant model — exactly the system of paper §III-B.

State ``x = [d − 1.2, v_e − 0.4]`` (normalized distance and ego speed):

    x[k+1] = A x[k] + B u[k] + E w1[k] + w2[k]

    A = [[1, −0.1], [0, 1]],   B = [−0.005, 0.1],   E = [1, 0]

``w1 = 0.4 − v_r`` is the external disturbance from the reference
vehicle's speed ``v_r ∈ [0.2, 0.6]``; ``w2`` is the model-inaccuracy
disturbance bounded by ``|w_d| ≤ 5e−4``, ``|w_v| ≤ 3e−5``.  Safety is
``d ∈ [0.5, 1.9]`` and ``v_e ∈ [0.1, 0.7]``.

Deviation from the paper's printed matrices: the paper writes the
disturbance injection as ``E = [1, 0]ᵀ``, which would let the distance
jump by up to ±0.2 per 100 ms step — physically impossible for a
relative-speed effect under a 0.1 s sampling period, and no control
invariant set can exist under it (the distance drift rate would exceed
what any in-range ego speed can cancel).  The physically consistent
discretization multiplies the relative speed by the sampling period,
``d⁺ = d − 0.1·(v_e − 0.4) − 0.1·w1``, so this implementation uses
``E = [−0.1, 0]ᵀ``.  With that correction the invariant-set analysis
reproduces the paper's tolerance of ≈0.14 on the estimation error.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class AccDynamics:
    """ACC plant with the paper's published constants.

    Attributes:
        a: State matrix (2×2).
        b: Input vector (2,).
        e: Disturbance-injection vector for ``w1`` (2,).
        w1_bound: ``|w1| ≤ w1_bound`` (from ``v_r ∈ [0.2, 0.6]``).
        w2_bound: Per-coordinate bounds of ``w2`` (2,).
        d_ref: Distance normalization offset (1.2 m).
        v_ref: Speed normalization offset (0.4 m/s).
        safe_d: Safe raw-distance interval.
        safe_v: Safe raw-speed interval.
    """

    a: np.ndarray = field(
        default_factory=lambda: np.array([[1.0, -0.1], [0.0, 1.0]])
    )
    b: np.ndarray = field(default_factory=lambda: np.array([-0.005, 0.1]))
    e: np.ndarray = field(default_factory=lambda: np.array([-0.1, 0.0]))
    w1_bound: float = 0.2
    w2_bound: np.ndarray = field(default_factory=lambda: np.array([5e-4, 3e-5]))
    d_ref: float = 1.2
    v_ref: float = 0.4
    safe_d: tuple[float, float] = (0.5, 1.9)
    safe_v: tuple[float, float] = (0.1, 0.7)

    # -- state conversions ------------------------------------------------

    def to_state(self, d: float, v_e: float) -> np.ndarray:
        """Raw (distance, speed) -> normalized state vector."""
        return np.array([d - self.d_ref, v_e - self.v_ref])

    def to_raw(self, x: np.ndarray) -> tuple[float, float]:
        """Normalized state -> raw (distance, speed)."""
        return float(x[0] + self.d_ref), float(x[1] + self.v_ref)

    # -- evolution -----------------------------------------------------------

    def step(
        self,
        x: np.ndarray,
        u: float,
        w1: float = 0.0,
        w2: np.ndarray | None = None,
    ) -> np.ndarray:
        """One 100 ms step of the plant.

        Args:
            x: Current normalized state.
            u: Control input (ego acceleration).
            w1: Reference-vehicle disturbance (``0.4 − v_r``).
            w2: Model-inaccuracy disturbance (2,).

        Returns:
            Next normalized state.
        """
        if abs(w1) > self.w1_bound + 1e-12:
            raise ValueError(f"|w1|={abs(w1):g} exceeds bound {self.w1_bound:g}")
        w2 = np.zeros(2) if w2 is None else np.asarray(w2, dtype=float)
        if np.any(np.abs(w2) > self.w2_bound + 1e-12):
            raise ValueError(f"w2={w2} exceeds bounds {self.w2_bound}")
        return self.a @ x + self.b * float(u) + self.e * float(w1) + w2

    # -- safety ------------------------------------------------------------------

    def safe_state_bounds(self) -> tuple[np.ndarray, np.ndarray]:
        """Normalized-state box corresponding to the safe set."""
        lo = np.array([self.safe_d[0] - self.d_ref, self.safe_v[0] - self.v_ref])
        hi = np.array([self.safe_d[1] - self.d_ref, self.safe_v[1] - self.v_ref])
        return lo, hi

    def is_safe(self, x: np.ndarray) -> bool:
        """Safety check in normalized coordinates."""
        d, v = self.to_raw(x)
        return (
            self.safe_d[0] <= d <= self.safe_d[1]
            and self.safe_v[0] <= v <= self.safe_v[1]
        )

    def sample_w1(self, rng: np.random.Generator) -> float:
        """Random admissible reference-speed disturbance."""
        return float(rng.uniform(-self.w1_bound, self.w1_bound))

    def sample_w2(self, rng: np.random.Generator) -> np.ndarray:
        """Random admissible model-inaccuracy disturbance."""
        return rng.uniform(-self.w2_bound, self.w2_bound)
