"""Robust control-invariant sets over 2-D polytopes.

The safety argument of §III-B needs: given the closed loop

    x⁺ = (A + BK) x + B·K₁·Δd + E·w1 + w2,

with ``|Δd| ≤ ē`` (total estimation-error bound) and the disturbance
bounds of :class:`~repro.control.dynamics.AccDynamics`, find a robust
control-invariant subset of the safe box — if a non-empty invariant set
containing the operating point exists, every trajectory starting there
stays safe forever.

Everything is 2-D, so the polytope machinery (halfplane representation,
vertex enumeration, redundancy removal, support functions) is
implemented directly with numpy — no external geometry library.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class Polytope2D:
    """Convex polygon in halfplane form ``{x : A x ≤ b}``.

    Attributes:
        a: ``(m, 2)`` outward normals.
        b: ``(m,)`` offsets.
    """

    a: np.ndarray
    b: np.ndarray

    def __post_init__(self) -> None:
        self.a = np.asarray(self.a, dtype=float).reshape(-1, 2)
        self.b = np.asarray(self.b, dtype=float).reshape(-1)
        if self.a.shape[0] != self.b.shape[0]:
            raise ValueError("A rows and b length differ")

    # -- constructors ----------------------------------------------------------

    @classmethod
    def from_box(cls, lo: np.ndarray, hi: np.ndarray) -> "Polytope2D":
        """Axis-aligned box as a polytope."""
        lo = np.asarray(lo, dtype=float)
        hi = np.asarray(hi, dtype=float)
        a = np.array([[1.0, 0.0], [-1.0, 0.0], [0.0, 1.0], [0.0, -1.0]])
        b = np.array([hi[0], -lo[0], hi[1], -lo[1]])
        return cls(a, b)

    # -- queries ------------------------------------------------------------------

    def contains(self, x: np.ndarray, tol: float = 1e-9) -> bool:
        """Point membership."""
        x = np.asarray(x, dtype=float).reshape(2)
        return bool(np.all(self.a @ x <= self.b + tol))

    def vertices(self, tol: float = 1e-9) -> np.ndarray:
        """Vertex enumeration by pairwise halfplane intersection.

        Fully vectorized: solves all ``m·(m−1)/2`` 2×2 systems at once
        via cross products, then keeps the feasible intersection points.

        Returns:
            ``(k, 2)`` array of vertices in counter-clockwise order
            (empty when the polytope is empty or unbounded in a way that
            yields no vertices).
        """
        m = self.a.shape[0]
        if m < 2:
            return np.empty((0, 2))
        ii, jj = np.triu_indices(m, k=1)
        a_i, a_j = self.a[ii], self.a[jj]
        b_i, b_j = self.b[ii], self.b[jj]
        det = a_i[:, 0] * a_j[:, 1] - a_i[:, 1] * a_j[:, 0]
        ok = np.abs(det) > 1e-12
        if not ok.any():
            return np.empty((0, 2))
        det = det[ok]
        a_i, a_j, b_i, b_j = a_i[ok], a_j[ok], b_i[ok], b_j[ok]
        # Cramer's rule for [a_i; a_j] p = [b_i; b_j].
        px = (b_i * a_j[:, 1] - b_j * a_i[:, 1]) / det
        py = (a_i[:, 0] * b_j - a_j[:, 0] * b_i) / det
        pts = np.stack([px, py], axis=1)
        feas = np.all(pts @ self.a.T <= self.b + 1e-7, axis=1)
        pts = pts[feas]
        if pts.shape[0] == 0:
            return np.empty((0, 2))
        pts = np.unique(np.round(pts, 10), axis=0)
        center = pts.mean(axis=0)
        angles = np.arctan2(pts[:, 1] - center[1], pts[:, 0] - center[0])
        return pts[np.argsort(angles)]

    def is_empty(self, tol: float = 1e-9) -> bool:
        """Emptiness via Chebyshev-style LP-free vertex check."""
        return self.vertices().shape[0] == 0

    def area(self) -> float:
        """Polygon area by the shoelace formula."""
        verts = self.vertices()
        if verts.shape[0] < 3:
            return 0.0
        x, y = verts[:, 0], verts[:, 1]
        return 0.5 * abs(
            float(np.dot(x, np.roll(y, -1)) - np.dot(y, np.roll(x, -1)))
        )

    def support(self, direction: np.ndarray) -> float:
        """Support function ``max_{x ∈ P} direction · x``."""
        verts = self.vertices()
        if verts.shape[0] == 0:
            raise ValueError("support of empty polytope")
        return float(np.max(verts @ np.asarray(direction, dtype=float)))

    # -- operations ------------------------------------------------------------------

    def intersect(self, other: "Polytope2D") -> "Polytope2D":
        """Intersection (concatenate halfplanes, prune redundancy)."""
        return Polytope2D(
            np.vstack([self.a, other.a]), np.concatenate([self.b, other.b])
        ).remove_redundancy()

    def remove_redundancy(self) -> "Polytope2D":
        """Rebuild the minimal halfplane form from the vertex hull.

        Vertices from pairwise intersection carry numerical jitter;
        taking a proper convex hull (monotone chain with collinearity
        tolerance) before converting edges back to halfplanes avoids
        micro-edges whose normals are numerical noise.  This keeps the
        representation size bounded by the true number of polygon edges,
        which is what keeps the invariant-set iteration fast and stable
        over hundreds of intersections.
        """
        verts = _convex_hull(self.vertices())
        k = verts.shape[0]
        if k < 3:
            return self  # empty or degenerate; leave untouched
        a_rows = []
        b_vals = []
        for i in range(k):
            p = verts[i]
            q = verts[(i + 1) % k]
            edge = q - p
            norm = np.hypot(edge[0], edge[1])
            if norm < 1e-9:
                continue
            # CCW polygon: outward normal is the edge rotated by -90°.
            normal = np.array([edge[1], -edge[0]]) / norm
            a_rows.append(normal)
            b_vals.append(float(normal @ p))
        if len(a_rows) < 3:
            return self
        return Polytope2D(np.array(a_rows), np.array(b_vals))

    def linear_preimage(self, matrix: np.ndarray, margin: np.ndarray) -> "Polytope2D":
        """``{x : M x ∈ P ⊖ margin}`` — halfplanes pulled back through M.

        Args:
            matrix: The 2×2 map applied to x.
            margin: Per-halfplane support values of the disturbance set
                (``h_D(a_i)``), subtracted from the offsets.
        """
        return Polytope2D(self.a @ matrix, self.b - np.asarray(margin, dtype=float))


def _convex_hull(points: np.ndarray, tol: float = 1e-9) -> np.ndarray:
    """Monotone-chain convex hull (CCW, collinear points dropped)."""
    pts = np.asarray(points, dtype=float)
    if pts.shape[0] < 3:
        return pts
    order = np.lexsort((pts[:, 1], pts[:, 0]))
    pts = pts[order]
    # Merge near-duplicate points.
    keep = [0]
    for i in range(1, pts.shape[0]):
        if np.max(np.abs(pts[i] - pts[keep[-1]])) > tol:
            keep.append(i)
    pts = pts[keep]
    if pts.shape[0] < 3:
        return pts

    def cross(o, a, b) -> float:
        return (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0])

    lower: list[np.ndarray] = []
    for p in pts:
        while len(lower) >= 2 and cross(lower[-2], lower[-1], p) <= tol:
            lower.pop()
        lower.append(p)
    upper: list[np.ndarray] = []
    for p in pts[::-1]:
        while len(upper) >= 2 and cross(upper[-2], upper[-1], p) <= tol:
            upper.pop()
        upper.append(p)
    hull = lower[:-1] + upper[:-1]
    return np.array(hull) if len(hull) >= 3 else np.array(hull).reshape(-1, 2)


def disturbance_support(
    normals: np.ndarray,
    generators: list[tuple[np.ndarray, float]],
    box: np.ndarray | None = None,
) -> np.ndarray:
    """Support function of a zonotopic disturbance set.

    The total disturbance is ``sum_k g_k * s_k`` with ``|s_k| ≤ r_k``
    (segment generators) plus an optional per-coordinate box.  For a
    normal ``a`` the support is ``sum_k |a·g_k| r_k + |a|·box``.

    Args:
        normals: ``(m, 2)`` halfplane normals.
        generators: List of ``(direction, radius)`` segment generators.
        box: Optional per-coordinate radii (2,).

    Returns:
        ``(m,)`` support values.
    """
    normals = np.asarray(normals, dtype=float).reshape(-1, 2)
    support = np.zeros(normals.shape[0])
    for direction, radius in generators:
        support += np.abs(normals @ np.asarray(direction, dtype=float)) * float(radius)
    if box is not None:
        support += np.abs(normals) @ np.asarray(box, dtype=float)
    return support


def is_robust_invariant(
    polytope: Polytope2D,
    closed_loop: np.ndarray,
    generators: list[tuple[np.ndarray, float]],
    box: np.ndarray | None = None,
    tol: float = 1e-7,
) -> bool:
    """Verify one-step closure: ``A_cl P ⊕ D ⊆ P``.

    For each halfplane ``a·x ≤ b`` of P, the worst case of
    ``a·(A_cl x) + h_D(a)`` over P must not exceed ``b``; the maximum of
    the linear term is attained at a vertex.
    """
    verts = polytope.vertices()
    if verts.shape[0] == 0:
        return False
    margins = disturbance_support(polytope.a, generators, box)
    mapped = verts @ closed_loop.T  # images of all vertices
    worst = mapped @ polytope.a.T  # (n_verts, n_halfplanes)
    return bool(np.all(worst.max(axis=0) + margins <= polytope.b + tol))


def robust_invariant_set(
    closed_loop: np.ndarray,
    generators: list[tuple[np.ndarray, float]],
    safe: Polytope2D,
    box: np.ndarray | None = None,
    max_iter: int = 2000,
    tol: float = 1e-10,
) -> Polytope2D:
    """Maximal robust invariant set inside ``safe`` (backward iteration).

    Iterates ``S ← S ∩ Pre(S)`` where ``Pre(S) = {x : A_cl x ⊕ D ⊆ S}``
    until the set stops changing or becomes empty.  Because the area
    criterion can stall before a true fixed point (slowly-shrinking
    slivers), the result is *verified* for one-step closure before being
    returned; a set that fails verification is reported as empty.  The
    returned set is therefore always a genuine robust invariant set
    (possibly conservative), never an unsound one.

    Args:
        closed_loop: The 2×2 matrix ``A + BK``.
        generators: Disturbance segment generators (see
            :func:`disturbance_support`).
        safe: The safe-set polytope.
        box: Optional box-disturbance radii.
        max_iter: Iteration cap.
        tol: Area-convergence tolerance.

    Returns:
        The (possibly empty) verified invariant polytope.
    """
    current = safe.remove_redundancy()
    prev_area = current.area()
    for _ in range(max_iter):
        margins = disturbance_support(current.a, generators, box)
        pre = current.linear_preimage(closed_loop, margins)
        current = current.intersect(pre)
        area = current.area()
        if area <= 0.0:
            return current
        if abs(prev_area - area) < tol:
            break
        prev_area = area
    if is_robust_invariant(current, closed_loop, generators, box):
        return current
    return Polytope2D(np.array([[1.0, 0.0], [-1.0, 0.0]]), np.array([-1.0, -1.0]))


def max_safe_estimation_error(
    dynamics,
    controller,
    resolution: float = 1e-3,
    hi: float = 0.5,
    require_point: np.ndarray | None = None,
) -> float:
    """Largest ``|Δd|`` bound for which a robust invariant set survives.

    Bisects the distance-estimation-error bound ``ē``; for each
    candidate the closed-loop invariant set under all disturbances
    (w1, w2, and ``|Δd| ≤ ē`` entering through ``B K₁``) is computed,
    and ``ē`` counts as safe when the set is non-empty and contains the
    operating point (the origin by default).

    Returns:
        The verified maximum ``ē`` (paper finds 0.14).
    """
    acl = controller.closed_loop_matrix(dynamics.a, dynamics.b)
    lo_box, hi_box = dynamics.safe_state_bounds()
    safe = Polytope2D.from_box(lo_box, hi_box)
    point = np.zeros(2) if require_point is None else require_point

    def is_safe(err: float) -> bool:
        generators = [
            (dynamics.b * controller.k[0], err),  # estimation error channel
            (dynamics.e, dynamics.w1_bound),  # reference-speed disturbance
        ]
        inv = robust_invariant_set(
            acl, generators, safe, box=dynamics.w2_bound
        )
        return (not inv.is_empty()) and inv.contains(point)

    lo, high = 0.0, hi
    if not is_safe(lo):
        return 0.0
    if is_safe(high):
        return high
    while high - lo > resolution:
        mid = 0.5 * (lo + high)
        if is_safe(mid):
            lo = mid
        else:
            high = mid
    return lo
