"""The perception CNN: estimates distance from a camera frame."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.control.camera import CameraModel
from repro.nn import AvgPool2D, Conv2D, Dense, Flatten, Network, TrainConfig, train
from repro.nn.losses import MeanSquaredError
from repro.nn.optimizers import Adam


@dataclass
class PerceptionModel:
    """A trained distance estimator plus its calibration facts.

    Attributes:
        network: The CNN mapping image -> scalar distance estimate.
        camera: The camera whose frames the network was trained on.
        model_inaccuracy: Worst-case ``|d̂ − d|`` over the training
            dataset — the paper's ``Δd1`` term.
    """

    network: Network
    camera: CameraModel
    model_inaccuracy: float

    def estimate(self, image: np.ndarray) -> float:
        """Distance estimate for one frame ``(1, H, W)``."""
        return float(self.network.predict(image).reshape(-1)[0])


def build_perception_network(
    camera: CameraModel,
    rng: np.random.Generator,
    conv_channels: tuple[int, ...] = (4, 6),
    dense_width: int = 16,
) -> Network:
    """The case study's CNN: conv stack + pooling + 2 FC layers.

    ``dense_width`` controls how many piecewise-linear regions the
    distance read-out can carve — widening it adds accuracy capacity
    without raising the per-layer ∞-norm cap (which binds the *max* row,
    not the row count), so width is the free variable when training
    under Lipschitz caps.
    """
    c, h, w = camera.image_shape
    layers = []
    in_ch = c
    cur_h, cur_w = h, w
    for k, out_ch in enumerate(conv_channels):
        layers.append(
            Conv2D(in_ch, out_ch, kernel_size=3, padding=1, relu=True, rng=rng)
        )
        if cur_h % 2 == 0 and cur_w % 2 == 0 and min(cur_h, cur_w) > 3:
            layers.append(AvgPool2D(2))
            cur_h //= 2
            cur_w //= 2
        in_ch = out_ch
    layers.append(Flatten())
    flat = in_ch * cur_h * cur_w
    layers.append(Dense(flat, dense_width, relu=True, rng=rng))
    layers.append(Dense(dense_width, 1, rng=rng))
    return Network((c, h, w), layers)


def train_perception_model(
    camera: CameraModel | None = None,
    n_samples: int = 2000,
    epochs: int = 550,
    seed: int = 0,
    conv_channels: tuple[int, ...] = (4,),
    dense_width: int = 48,
    weight_decay: float = 0.0,
    lateral_range: float = 0.0,
    illum_range: float = 0.0,
    adversarial_rounds: int = 1,
    adversarial_delta: float = 8.0 / 255.0,
    lipschitz_caps: tuple[float, ...] | None = (2.8, 2.0, 1.8),
    verbose: bool = False,
) -> PerceptionModel:
    """Train the distance-estimation CNN on rendered frames.

    The defaults implement the recipe that makes the §III-B safety
    verification *succeed*: a network can only receive a tight global
    robustness certificate if its true worst-case gain is small, so the
    estimator is trained under **hard Lipschitz caps** — after every
    optimizer step each layer's rows are projected onto an L1-norm cap,
    bounding the product of layer ∞-norms (here 2.8·2.0·1.8 ≈ 10) and
    with it every certified bound (``ε̄ ≤ δ · ∏caps``).  Accuracy under
    the caps comes from width (``dense_width`` rows, each individually
    capped) and a staged learning-rate schedule; distances are sampled
    stratified (grid + uniform) so the worst-case fit error Δd1 is small
    across the whole operating range.

    Optional extras: AdamW weight decay, FGSM adversarial augmentation
    (``adversarial_rounds > 1``), and camera nuisance ranges for
    harder, Webots-like training conditions.

    Returns:
        The trained :class:`PerceptionModel` with its measured ``Δd1``.
    """
    camera = camera or CameraModel()
    rng = np.random.default_rng(seed)
    n_grid = int(0.6 * n_samples)
    distances = np.concatenate(
        [
            np.linspace(0.4, 2.1, n_grid),
            rng.uniform(0.4, 2.1, n_samples - n_grid),
        ]
    )
    images = camera.render_batch(
        distances, rng=rng, lateral_range=lateral_range, illum_range=illum_range
    )
    targets = distances.reshape(-1, 1)

    network = build_perception_network(
        camera, rng, conv_channels, dense_width=dense_width
    )
    # Start the read-out at the mid-range distance: the capped layers
    # then only need to learn the (bounded) deviation around it.
    network.layers[-1].bias[:] = 1.25

    post_step = None
    if lipschitz_caps is not None:
        from repro.nn.lipschitz import make_row_norm_projector

        post_step = make_row_norm_projector(lipschitz_caps)

    rounds = max(1, adversarial_rounds)
    # Staged learning rates; epoch budget split 40/35/25 per round.
    stage_fracs = ((3e-3, 0.40), (1e-3, 0.35), (3e-4, 0.25))
    epochs_per_round = max(3, epochs // rounds)

    train_x, train_y = images, targets
    for round_idx in range(rounds):
        for lr, frac in stage_fracs:
            stage_epochs = max(1, int(epochs_per_round * frac))
            train(
                network,
                train_x,
                train_y,
                loss=MeanSquaredError(),
                optimizer=Adam(lr=lr, weight_decay=weight_decay),
                config=TrainConfig(
                    epochs=stage_epochs, batch_size=64, seed=seed + round_idx,
                    verbose=verbose,
                ),
                post_step=post_step,
            )
        if round_idx < rounds - 1 and adversarial_delta > 0:
            # Augment with FGSM-perturbed copies (labels unchanged):
            # the classic adversarial-training recipe, which flattens the
            # input gradient and thereby the certified variation bound.
            from repro.attack.fgsm import fgsm

            adv = np.stack(
                [
                    fgsm(
                        network,
                        img,
                        np.ones(1),
                        adversarial_delta,
                        clip_lo=0.0,
                        clip_hi=1.0,
                        sign=float(s),
                    )
                    for img, s in zip(images, rng.choice([-1.0, 1.0], len(images)))
                ]
            )
            train_x = np.concatenate([images, adv])
            train_y = np.concatenate([targets, targets])

    predictions = network.forward(images).reshape(-1)
    model_inaccuracy = float(np.max(np.abs(predictions - distances)))
    return PerceptionModel(network, camera, model_inaccuracy)


def default_case_study_model(
    cache_dir=None, seed: int = 0, n_samples: int = 1500, epochs: int = 400
) -> PerceptionModel:
    """The case study's perception model, trained once and cached.

    Benchmarks and examples share this so the (minutes-long) capped
    training runs at most once per machine.  The cache stores the
    network weights plus the profiled ``Δd1`` and camera geometry.
    """
    import json
    from pathlib import Path

    from repro.nn.serialize import load_network, save_network

    if cache_dir is None:
        cache_dir = Path(__file__).resolve().parents[3] / ".models"
    cache_dir = Path(cache_dir)
    cache_dir.mkdir(parents=True, exist_ok=True)
    net_path = cache_dir / f"perception_seed{seed}.npz"
    meta_path = cache_dir / f"perception_seed{seed}.json"

    if net_path.exists() and meta_path.exists():
        meta = json.loads(meta_path.read_text())
        camera = CameraModel(
            height=meta["height"],
            width=meta["width"],
            focal=meta["focal"],
        )
        return PerceptionModel(
            load_network(net_path), camera, meta["model_inaccuracy"]
        )

    model = train_perception_model(
        n_samples=n_samples, epochs=epochs, seed=seed
    )
    save_network(model.network, net_path)
    meta_path.write_text(
        json.dumps(
            {
                "height": model.camera.height,
                "width": model.camera.width,
                "focal": model.camera.focal,
                "model_inaccuracy": model.model_inaccuracy,
            }
        )
    )
    return model
