"""End-to-end ACC safety verification (the paper's §III-B pipeline).

Chain of reasoning reproduced here:

1. ``Δd1`` — perception model inaccuracy: worst ``|d̂ − d|`` over clean
   data (the paper profiles 0.0730).
2. ``Δd2`` — output variation under input perturbation ``δ``: certified
   by Algorithm 1's global robustness bound ``ε̄`` (the paper derives
   0.0568 for δ = 2/255).
3. The invariant-set analysis gives the largest total estimation error
   ``ē`` the closed loop tolerates (the paper finds 0.14).
4. Verdict: safe iff ``Δd1 + Δd2 ≤ ē``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bounds.interval import Box
from repro.certify.global_cert import CertifierConfig, GlobalRobustnessCertifier
from repro.control.controller import FeedbackController
from repro.control.dynamics import AccDynamics
from repro.control.invariant import max_safe_estimation_error
from repro.control.perception import PerceptionModel


@dataclass
class SafetyVerdict:
    """Result of the end-to-end verification.

    Attributes:
        delta: Image perturbation bound δ.
        model_inaccuracy: ``Δd1``.
        certified_variation: ``Δd2 = ε̄`` from global robustness.
        total_error: ``Δd1 + Δd2``.
        tolerated_error: Invariant-set threshold ``ē``.
        safe: ``total_error ≤ tolerated_error``.
        certification_time: Seconds spent in Algorithm 1.
    """

    delta: float
    model_inaccuracy: float
    certified_variation: float
    total_error: float
    tolerated_error: float
    safe: bool
    certification_time: float

    def summary(self) -> str:
        """Multi-line human-readable report."""
        verdict = "SAFE" if self.safe else "NOT PROVEN SAFE"
        return (
            f"perturbation bound δ           : {self.delta:.6g}\n"
            f"model inaccuracy Δd1           : {self.model_inaccuracy:.4f}\n"
            f"certified variation Δd2 (ε̄)    : {self.certified_variation:.4f}\n"
            f"total estimation error Δd      : {self.total_error:.4f}\n"
            f"invariant-set tolerance ē      : {self.tolerated_error:.4f}\n"
            f"verdict                        : {verdict}"
        )


def verify_acc_safety(
    perception: PerceptionModel,
    delta: float = 2.0 / 255.0,
    dynamics: AccDynamics | None = None,
    controller: FeedbackController | None = None,
    certifier_config: CertifierConfig | None = None,
) -> SafetyVerdict:
    """Run the full design-time safety-verification pipeline.

    Args:
        perception: Trained perception model (provides ``Δd1``).
        delta: Camera-image perturbation bound.
        dynamics: Plant (paper constants by default).
        controller: Feedback law (paper gain by default).
        certifier_config: Algorithm 1 settings (window 2, a small
            refinement budget by default).

    Returns:
        The :class:`SafetyVerdict`.
    """
    dynamics = dynamics or AccDynamics()
    controller = controller or FeedbackController()
    config = certifier_config or CertifierConfig(window=2, refine_count=8)

    # Δd2: certified global robustness of the perception network over
    # the full pixel domain [0, 1].
    net = perception.network
    input_box = Box.uniform(net.input_dim, 0.0, 1.0)
    certifier = GlobalRobustnessCertifier(net, config)
    certificate = certifier.certify(input_box, delta)
    d_var = certificate.epsilon

    tolerated = max_safe_estimation_error(dynamics, controller)
    total = perception.model_inaccuracy + d_var
    return SafetyVerdict(
        delta=float(delta),
        model_inaccuracy=perception.model_inaccuracy,
        certified_variation=d_var,
        total_error=total,
        tolerated_error=tolerated,
        safe=bool(total <= tolerated),
        certification_time=certificate.solve_time,
    )
