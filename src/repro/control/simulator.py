"""Closed-loop ACC simulator (the Webots stand-in) with FGSM attacks."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.attack.fgsm import fgsm
from repro.control.camera import CameraModel
from repro.control.controller import FeedbackController
from repro.control.dynamics import AccDynamics
from repro.control.perception import PerceptionModel


@dataclass
class SimulationResult:
    """Outcome of one closed-loop episode.

    Attributes:
        safe: True when the state stayed in the safe set throughout.
        steps_survived: Steps completed before a violation (== steps
            requested when safe).
        max_estimation_error: Largest ``|d̂ − d|`` observed (the paper's
            Δd including both model inaccuracy and attack effect).
        error_exceedances: Steps where ``|d̂ − d|`` exceeded the
            verified bound passed to the simulator (0 when no bound).
        distances / speeds / estimates: Per-step traces.
    """

    safe: bool
    steps_survived: int
    max_estimation_error: float
    error_exceedances: int
    distances: list[float] = field(default_factory=list)
    speeds: list[float] = field(default_factory=list)
    estimates: list[float] = field(default_factory=list)


class ClosedLoopSimulator:
    """Simulate the perception-in-the-loop ACC system.

    Args:
        perception: Trained distance estimator (with its camera).
        dynamics: Plant model (defaults to the paper's constants).
        controller: Feedback law (defaults to the paper's gain).
    """

    def __init__(
        self,
        perception: PerceptionModel,
        dynamics: AccDynamics | None = None,
        controller: FeedbackController | None = None,
    ) -> None:
        self.perception = perception
        self.dynamics = dynamics or AccDynamics()
        self.controller = controller or FeedbackController()

    def run_episode(
        self,
        steps: int = 200,
        attack_delta: float = 0.0,
        seed: int = 0,
        initial_state: np.ndarray | None = None,
        error_bound: float | None = None,
        lateral_range: float = 0.0,
        illum_range: float = 0.0,
    ) -> SimulationResult:
        """Run one closed-loop episode.

        Args:
            steps: Episode length (100 ms per step).
            attack_delta: FGSM L∞ budget on the camera image (0 = clean).
            seed: RNG seed driving disturbances and nuisances.
            initial_state: Normalized start state (default: equilibrium).
            error_bound: Verified ``|Δd|`` bound to count exceedances
                against (e.g. the invariant-set threshold 0.14).
            lateral_range / illum_range: Camera nuisance magnitudes
                (default 0 — the deterministic camera the default
                perception model is trained on).

        Returns:
            A :class:`SimulationResult`.
        """
        rng = np.random.default_rng(seed)
        dyn = self.dynamics
        x = np.zeros(2) if initial_state is None else np.asarray(initial_state, float)

        result = SimulationResult(
            safe=True, steps_survived=0, max_estimation_error=0.0, error_exceedances=0
        )
        weights = np.ones(1)

        for _ in range(steps):
            d, v_e = dyn.to_raw(x)
            lateral = float(rng.uniform(-lateral_range, lateral_range))
            illum = float(1.0 + rng.uniform(-illum_range, illum_range))
            image = self.perception.camera.render(d, lateral=lateral, illumination=illum)

            if attack_delta > 0.0:
                image = self._worst_fgsm(image, d, attack_delta)

            d_hat = self.perception.estimate(image)
            est_error = abs(d_hat - d)
            result.max_estimation_error = max(result.max_estimation_error, est_error)
            if error_bound is not None and est_error > error_bound:
                result.error_exceedances += 1

            x_hat = dyn.to_state(d_hat, v_e)  # speed estimate assumed exact
            u = self.controller.control(x_hat)
            x = dyn.step(x, u, w1=dyn.sample_w1(rng), w2=dyn.sample_w2(rng))

            result.distances.append(d)
            result.speeds.append(v_e)
            result.estimates.append(d_hat)
            if not dyn.is_safe(x):
                result.safe = False
                return result
            result.steps_survived += 1
        return result

    def _worst_fgsm(self, image: np.ndarray, true_d: float, delta: float) -> np.ndarray:
        """FGSM in the direction that worsens the distance estimate most."""
        weights = np.ones(1)
        up = fgsm(
            self.perception.network, image, weights, delta, clip_lo=0.0, clip_hi=1.0,
            sign=+1.0,
        )
        down = fgsm(
            self.perception.network, image, weights, delta, clip_lo=0.0, clip_hi=1.0,
            sign=-1.0,
        )
        err_up = abs(self.perception.estimate(up) - true_d)
        err_down = abs(self.perception.estimate(down) - true_d)
        return up if err_up >= err_down else down

    def run_campaign(
        self,
        episodes: int = 20,
        steps: int = 200,
        attack_delta: float = 0.0,
        error_bound: float | None = None,
        seed: int = 0,
        initial_spread: float = 0.1,
    ) -> dict:
        """Run many episodes from randomized starts; aggregate statistics.

        Returns:
            Dict with ``unsafe_fraction``, ``exceed_fraction`` (episodes
            with at least one ``|Δd|`` exceedance), ``max_estimation_error``
            and the per-episode results.
        """
        rng = np.random.default_rng(seed)
        results = []
        for ep in range(episodes):
            start = rng.uniform(-initial_spread, initial_spread, size=2)
            results.append(
                self.run_episode(
                    steps=steps,
                    attack_delta=attack_delta,
                    seed=seed + 1000 + ep,
                    initial_state=start,
                    error_bound=error_bound,
                )
            )
        unsafe = sum(1 for r in results if not r.safe)
        exceed = sum(1 for r in results if r.error_exceedances > 0)
        return {
            "episodes": episodes,
            "unsafe_fraction": unsafe / episodes,
            "exceed_fraction": exceed / episodes,
            "max_estimation_error": max(r.max_estimation_error for r in results),
            "results": results,
        }
