"""Synthetic stand-ins for the paper's datasets.

The original evaluation uses the UCI Auto MPG dataset and MNIST.  Neither
is available in this offline environment, so this package generates
synthetic datasets with matching structure:

* :mod:`repro.data.auto_mpg` — a 7-feature vehicle fuel-consumption
  regression problem driven by a physically-motivated nonlinear model.
* :mod:`repro.data.mnist` — 10-class digit-like glyph images rendered
  with randomized stroke geometry.

The certification algorithms only see *trained networks*, so any dataset
that trains networks of the paper's sizes exercises identical code paths
(see DESIGN.md §2 for the substitution argument).
"""

from repro.data.auto_mpg import AUTO_MPG_FEATURES, load_auto_mpg
from repro.data.mnist import load_digits
from repro.data.splits import standardize, train_test_split

__all__ = [
    "load_auto_mpg",
    "AUTO_MPG_FEATURES",
    "load_digits",
    "train_test_split",
    "standardize",
]
