"""Synthetic Auto MPG-style regression dataset.

The UCI Auto MPG task predicts fuel economy from 7 vehicle attributes
(cylinders, displacement, horsepower, weight, acceleration, model year,
origin).  We generate samples from a physically-motivated model:
fuel economy falls roughly inversely with weight and displacement,
improves with model year, and carries heteroscedastic noise.  Feature
ranges and correlations mimic the UCI data so trained networks have
realistic weight scales.

All features and the target are scaled to [0, 1], matching the paper's
certified input domain ``X = [0, 1]^7`` with perturbation δ = 0.001.
"""

from __future__ import annotations

import numpy as np

AUTO_MPG_FEATURES = (
    "cylinders",
    "displacement",
    "horsepower",
    "weight",
    "acceleration",
    "model_year",
    "origin",
)


def load_auto_mpg(
    n_samples: int = 400, seed: int = 0, noise: float = 0.02
) -> tuple[np.ndarray, np.ndarray]:
    """Generate the synthetic Auto MPG dataset.

    Args:
        n_samples: Number of (vehicle, mpg) rows.
        seed: RNG seed for reproducibility.
        noise: Standard deviation of the target noise (in scaled units).

    Returns:
        ``(x, y)`` with ``x`` of shape ``(n, 7)`` in [0, 1] and ``y`` of
        shape ``(n, 1)`` in [0, 1] (scaled miles-per-gallon).
    """
    rng = np.random.default_rng(seed)

    # Latent vehicle class drives correlated attributes, like the real
    # data where big cars have many cylinders AND high displacement.
    size_class = rng.uniform(0.0, 1.0, n_samples)

    cylinders = np.clip(size_class + 0.15 * rng.standard_normal(n_samples), 0, 1)
    displacement = np.clip(
        0.8 * size_class + 0.2 * rng.uniform(0, 1, n_samples), 0, 1
    )
    horsepower = np.clip(
        0.7 * displacement + 0.3 * rng.uniform(0, 1, n_samples), 0, 1
    )
    weight = np.clip(
        0.6 * size_class + 0.25 * displacement + 0.15 * rng.uniform(0, 1, n_samples),
        0,
        1,
    )
    acceleration = np.clip(
        1.0 - 0.6 * horsepower + 0.2 * rng.standard_normal(n_samples), 0, 1
    )
    model_year = rng.uniform(0.0, 1.0, n_samples)
    origin = rng.integers(0, 3, n_samples) / 2.0

    x = np.stack(
        [
            cylinders,
            displacement,
            horsepower,
            weight,
            acceleration,
            model_year,
            origin,
        ],
        axis=1,
    )

    # Fuel economy model: inverse in weight/displacement, linear gains
    # from model year and origin, mild interaction terms.
    mpg_raw = (
        1.2 / (0.8 + 1.5 * weight)
        + 0.5 / (0.9 + 1.2 * displacement)
        - 0.25 * horsepower
        + 0.30 * model_year
        + 0.08 * origin
        + 0.05 * acceleration
    )
    mpg_raw = mpg_raw + noise * rng.standard_normal(n_samples)
    # Scale to [0, 1] with fixed physical anchors so every call uses the
    # same units regardless of the sampled batch.
    lo, hi = 0.0, 2.2
    y = np.clip((mpg_raw - lo) / (hi - lo), 0.0, 1.0)
    return x, y.reshape(-1, 1)
