"""Synthetic digit-like image dataset (MNIST stand-in).

Renders 10 glyph classes on a small grayscale canvas using per-class
stroke skeletons (seven-segment-style with diagonals), randomly
translated, scaled, thickened and noised — enough intra-class variation
that a small CNN must learn real spatial features, while staying fully
offline and deterministic under a seed.

Images are float arrays in [0, 1] of shape ``(n, 1, size, size)``,
matching the paper's certified pixel domain with δ = 2/255.
"""

from __future__ import annotations

import numpy as np

# Segment endpoints in a unit box: (x0, y0) -> (x1, y1), y grows downward.
_SEGMENTS = {
    "top": ((0.15, 0.1), (0.85, 0.1)),
    "mid": ((0.15, 0.5), (0.85, 0.5)),
    "bot": ((0.15, 0.9), (0.85, 0.9)),
    "tl": ((0.15, 0.1), (0.15, 0.5)),
    "tr": ((0.85, 0.1), (0.85, 0.5)),
    "bl": ((0.15, 0.5), (0.15, 0.9)),
    "br": ((0.85, 0.5), (0.85, 0.9)),
    "diag": ((0.85, 0.1), (0.3, 0.9)),
    "stem": ((0.5, 0.1), (0.5, 0.9)),
    "hook": ((0.3, 0.25), (0.5, 0.1)),
}

# Seven-segment-inspired skeleton per digit class.
_DIGIT_SEGMENTS: dict[int, tuple[str, ...]] = {
    0: ("top", "bot", "tl", "tr", "bl", "br"),
    1: ("stem", "hook"),
    2: ("top", "tr", "mid", "bl", "bot"),
    3: ("top", "tr", "mid", "br", "bot"),
    4: ("tl", "mid", "tr", "br"),
    5: ("top", "tl", "mid", "br", "bot"),
    6: ("top", "tl", "mid", "bl", "br", "bot"),
    7: ("top", "diag"),
    8: ("top", "mid", "bot", "tl", "tr", "bl", "br"),
    9: ("top", "mid", "bot", "tl", "tr", "br"),
}


def _render_digit(
    digit: int, size: int, rng: np.random.Generator, noise: float
) -> np.ndarray:
    """Rasterize one randomized glyph onto a (size, size) canvas."""
    canvas = np.zeros((size, size))
    # Random affine jitter of the glyph box.
    scale = rng.uniform(0.75, 0.95)
    offset_x = rng.uniform(0.0, 1.0 - scale)
    offset_y = rng.uniform(0.0, 1.0 - scale)
    thickness = rng.uniform(0.05, 0.09) * size
    ys, xs = np.mgrid[0:size, 0:size]
    pts = np.stack([xs.ravel(), ys.ravel()], axis=1) + 0.5  # pixel centers

    for seg in _DIGIT_SEGMENTS[digit]:
        (x0, y0), (x1, y1) = _SEGMENTS[seg]
        a = np.array(
            [(offset_x + scale * x0) * size, (offset_y + scale * y0) * size]
        )
        b = np.array(
            [(offset_x + scale * x1) * size, (offset_y + scale * y1) * size]
        )
        ab = b - a
        denom = float(ab @ ab) or 1.0
        t = np.clip(((pts - a) @ ab) / denom, 0.0, 1.0)
        closest = a + t[:, None] * ab
        dist = np.linalg.norm(pts - closest, axis=1).reshape(size, size)
        # Soft stroke profile: bright core, smooth falloff.
        stroke = np.clip(1.0 - dist / thickness, 0.0, 1.0)
        canvas = np.maximum(canvas, stroke)

    if noise > 0:
        canvas = canvas + noise * rng.standard_normal(canvas.shape)
    return np.clip(canvas, 0.0, 1.0)


def load_digits(
    n_samples: int = 1000,
    size: int = 14,
    seed: int = 0,
    noise: float = 0.05,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate the synthetic digit dataset.

    Args:
        n_samples: Total images (classes are balanced).
        size: Canvas edge in pixels (the paper uses 28; we default to 14
            so MILP certification of conv nets stays laptop-scale).
        seed: RNG seed.
        noise: Additive Gaussian pixel noise before clipping.

    Returns:
        ``(x, y)``: images ``(n, 1, size, size)`` in [0, 1] and integer
        labels ``(n,)``.
    """
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, 10, n_samples)
    images = np.stack(
        [_render_digit(int(d), size, rng, noise) for d in labels]
    )[:, None, :, :]
    return images, labels.astype(np.int64)
