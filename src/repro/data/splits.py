"""Dataset utilities: splitting and standardization."""

from __future__ import annotations

import numpy as np


def train_test_split(
    x: np.ndarray,
    y: np.ndarray,
    test_fraction: float = 0.2,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffle and split into train/test partitions.

    Returns:
        ``(x_train, y_train, x_test, y_test)``.
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    n = x.shape[0]
    rng = np.random.default_rng(seed)
    order = rng.permutation(n)
    n_test = max(1, int(round(n * test_fraction)))
    test_idx, train_idx = order[:n_test], order[n_test:]
    return x[train_idx], y[train_idx], x[test_idx], y[test_idx]


def standardize(
    x_train: np.ndarray, x_test: np.ndarray | None = None, eps: float = 1e-8
) -> tuple[np.ndarray, np.ndarray | None, np.ndarray, np.ndarray]:
    """Zero-mean/unit-variance scaling fit on the training split.

    Returns:
        ``(x_train_std, x_test_std, mean, std)``; ``x_test_std`` is None
        when no test split is given.
    """
    mean = x_train.mean(axis=0)
    std = x_train.std(axis=0) + eps
    x_train_std = (x_train - mean) / std
    x_test_std = None if x_test is None else (x_test - mean) / std
    return x_train_std, x_test_std, mean, std
