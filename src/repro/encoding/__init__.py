"""MILP/LP encodings of ReLU networks and twin-network pairs.

Implements the paper's §II-B/§II-C machinery:

* :mod:`repro.encoding.bigm` — exact big-M encoding of a ReLU given
  pre-activation bounds.
* :mod:`repro.encoding.relaxation` — the triangle relaxation of a ReLU
  (Eq. 4) and the ReLU *distance* relaxation (Eq. 6 / Fig. 3).
* :mod:`repro.encoding.single` — one network copy as a MILP.
* :mod:`repro.encoding.btne` — the basic twin-network encoding of [2]:
  two independent copies tied only at input and output.
* :mod:`repro.encoding.itne` — the paper's interleaving twin-network
  encoding: per-neuron distance variables ``Δy``, ``Δx`` link the copies,
  enabling per-neuron choice of exact vs. relaxed encodings.
"""

from __future__ import annotations

from repro.encoding.assembly import RowBlockBuilder, affine_link_rows, row_dot
from repro.encoding.bigm import encode_relu_exact, relu_exact_rows
from repro.encoding.btne import BtneEncoding, encode_btne
from repro.encoding.itne import ItneEncoding, encode_itne
from repro.encoding.relaxation import (
    couple_triangle_rows,
    distance_relaxed_rows,
    encode_distance_relaxed,
    encode_relu_triangle,
    eq4_score,
    eq6_bounds,
    eq6_score,
    relu_triangle_rows,
)
from repro.encoding.single import SingleEncoding, encode_single_network

__all__ = [
    "RowBlockBuilder",
    "affine_link_rows",
    "row_dot",
    "encode_relu_exact",
    "relu_exact_rows",
    "encode_relu_triangle",
    "relu_triangle_rows",
    "encode_distance_relaxed",
    "distance_relaxed_rows",
    "couple_triangle_rows",
    "eq6_bounds",
    "eq4_score",
    "eq6_score",
    "SingleEncoding",
    "encode_single_network",
    "BtneEncoding",
    "encode_btne",
    "ItneEncoding",
    "encode_itne",
]
