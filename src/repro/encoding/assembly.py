"""Array-native constraint assembly shared by the network encoders.

The encoders historically built every constraint as a Python dict walk:
``_row_dot`` folded one weight row into a :class:`LinExpr` coefficient
dict per neuron, and each ReLU constraint copied that dict several more
times.  Model construction cost was dominated by per-coefficient Python
work.

This module is the fast path that replaces it.  Pre-activations become
model *variables* tied to the previous layer by one equality block per
layer (``y - W x = b``), emitted as COO triplets straight out of the
layer's weight matrix via :func:`affine_link_rows`; the small per-neuron
ReLU rows are batched through a :class:`RowBlockBuilder` and flushed as
one :meth:`~repro.milp.model.Model.add_linear_rows` call per layer.  An
encoded network therefore flows from :class:`~repro.nn.affine.AffineLayer`
arrays to the solver's CSR matrices without materializing per-coefficient
dicts anywhere.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.milp.expr import LinExpr, Var
from repro.milp.model import Model, Sense


def handle_terms(handle: Var | LinExpr) -> tuple[list[int], list[float], float]:
    """Decompose a handle into ``(indices, coefficients, constant)``.

    A ``Var`` is the unit term; a :class:`LinExpr` (e.g. the implicit
    second copy ``y + Δy``) contributes its sparse terms.
    """
    if isinstance(handle, Var):
        return [handle.index], [1.0], 0.0
    return list(handle.coeffs.keys()), list(handle.coeffs.values()), handle.constant


class RowBlockBuilder:
    """Accumulate small constraint rows, flushed as one block call.

    The per-neuron ReLU/relaxation rows have at most a handful of
    coefficients each; appending them one ``add_constr`` at a time would
    re-introduce per-row dict objects.  The builder collects plain
    scalars and emits everything in a single
    :meth:`~repro.milp.model.Model.add_linear_rows` call per layer.
    """

    __slots__ = ("_cols", "_vals", "_counts", "_senses", "_rhs")

    def __init__(self) -> None:
        self._cols: list[int] = []
        self._vals: list[float] = []
        self._counts: list[int] = []
        self._senses: list[Sense] = []
        self._rhs: list[float] = []

    def add(
        self,
        cols: Iterable[int],
        vals: Iterable[float],
        sense: Sense,
        rhs: float,
    ) -> None:
        """Append one row ``sum vals[i]·x[cols[i]]  sense  rhs``."""
        cols = list(cols)
        self._cols.extend(cols)
        self._vals.extend(vals)
        self._counts.append(len(cols))
        self._senses.append(sense)
        self._rhs.append(rhs)

    @property
    def num_rows(self) -> int:
        """Rows accumulated since the last flush."""
        return len(self._counts)

    def flush(self, model: Model, name: str = "") -> None:
        """Emit the accumulated rows into ``model`` and reset."""
        if not self._counts:
            return
        counts = np.asarray(self._counts, dtype=np.int64)
        row = np.repeat(np.arange(counts.shape[0], dtype=np.int64), counts)
        model.add_linear_rows(
            (np.asarray(self._vals, dtype=float), (row, np.asarray(self._cols, dtype=np.int64))),
            self._senses,
            np.asarray(self._rhs, dtype=float),
            name=name,
        )
        self._cols, self._vals = [], []
        self._counts, self._senses, self._rhs = [], [], []


def affine_link_rows(
    model: Model,
    out_vars: list[Var],
    weight: np.ndarray,
    in_handles: list[Var | LinExpr],
    bias: np.ndarray,
    name: str = "",
) -> None:
    """Append ``out_j − Σ_k W[j,k]·h_k == bias_j`` as one COO block.

    This is the whole-layer replacement for per-neuron ``_row_dot``
    loops: the weight block lands in the model as numpy triplets.  The
    input handles are usually plain variables (one column gather); mixed
    ``Var``/``LinExpr`` handles — e.g. the refined ITNE distance handles
    ``Δx = x̂ − x`` — are expanded through their sparse terms, exactly
    as dict-based expression arithmetic would.

    Args:
        model: Target model.
        out_vars: The ``len(bias)`` freshly created output variables.
        weight: ``(len(out_vars), len(in_handles))`` matrix; zero
            entries are skipped (matching ``LinExpr.weighted_sum``).
        in_handles: Previous-layer handles.
        bias: Right-hand-side vector (handle constants fold into it).
        name: Optional block label.
    """
    weight = np.asarray(weight, dtype=float)
    m_out, m_in = weight.shape
    bias = np.asarray(bias, dtype=float)
    if len(in_handles) != m_in or len(out_vars) != m_out:
        raise ValueError("affine_link_rows: handle/weight shape mismatch")

    if all(isinstance(h, Var) for h in in_handles):
        hcol = np.fromiter((h.index for h in in_handles), dtype=np.int64, count=m_in)
        w_sub = weight
        vals = -weight
        rhs = bias
    else:
        owners: list[int] = []
        hcols: list[int] = []
        hcoefs: list[float] = []
        consts = np.zeros(m_in)
        for k, handle in enumerate(in_handles):
            idx, coef, const = handle_terms(handle)
            owners.extend([k] * len(idx))
            hcols.extend(idx)
            hcoefs.extend(coef)
            consts[k] = const
        hcol = np.asarray(hcols, dtype=np.int64)
        w_sub = weight[:, np.asarray(owners, dtype=np.int64)]
        vals = -w_sub * np.asarray(hcoefs)[None, :]
        rhs = bias + weight @ consts if consts.any() else bias

    # repro-lint: ignore[RPR001] — structural COO sparsity mask: exact zeros carry no information; a tolerance would silently delete small weights from the encoding
    mask = w_sub != 0.0
    rows_w, entries = np.nonzero(mask)
    out_idx = np.fromiter((v.index for v in out_vars), dtype=np.int64, count=m_out)
    data = np.concatenate([np.ones(m_out), vals[mask]])
    rows = np.concatenate([np.arange(m_out, dtype=np.int64), rows_w])
    cols = np.concatenate([out_idx, hcol[entries]])
    model.add_linear_rows((data, (rows, cols)), Sense.EQ, rhs, name=name)


def row_dot(
    weights: np.ndarray, handles: list[Var | LinExpr], bias: float
) -> LinExpr:
    """Affine combination ``w · handles + bias`` over mixed handles.

    The dict-based reference implementation of what
    :func:`affine_link_rows` emits array-natively; kept (and used by the
    encoders' ``vectorized=False`` path) so equivalence tests and the
    construction benchmark can compare the two assembly strategies on
    identical formulations.
    """
    total = LinExpr.constant_expr(bias)
    direct_vars: list[Var] = []
    direct_w: list[float] = []
    for w, h in zip(weights, handles):
        # repro-lint: ignore[RPR001] — structural exact-zero skip, mirroring the mask in affine_link_rows: both assembly paths must drop exactly the same (zero) terms to stay bit-identical
        if w == 0.0:
            continue
        if isinstance(h, Var):
            direct_vars.append(h)
            direct_w.append(float(w))
        else:
            total = total + h * float(w)
    if direct_vars:
        total = total + LinExpr.weighted_sum(direct_vars, direct_w)
    return total
