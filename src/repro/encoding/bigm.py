"""Exact big-M MILP encoding of a single ReLU relation.

Two assembly styles produce the same rows: :func:`encode_relu_exact`
builds them as expression comparisons (dict-based, the reference path),
while :func:`relu_exact_rows` appends the identical coefficients to a
:class:`~repro.encoding.assembly.RowBlockBuilder` for array-native batch
insertion — the encoders' fast path.
"""

from __future__ import annotations

from repro.encoding.assembly import RowBlockBuilder, handle_terms
from repro.milp import Model, Sense, Var
from repro.milp.expr import LinExpr


def encode_relu_exact(
    model: Model,
    y: Var | LinExpr,
    lb: float,
    ub: float,
    name: str = "relu",
) -> Var:
    """Add ``x = max(y, 0)`` to ``model`` exactly.

    Uses the standard big-M linearization with one binary indicator when
    the pre-activation range straddles zero; the stable-active and
    stable-inactive cases need no binary at all.

    Args:
        model: Target model.
        y: Pre-activation variable or affine expression.
        lb: Valid lower bound on ``y`` (must be sound, e.g. from IBP).
        ub: Valid upper bound on ``y``.
        name: Prefix for created variables.

    Returns:
        The post-activation variable ``x``.
    """
    if lb > ub:
        raise ValueError(f"invalid ReLU bounds [{lb}, {ub}]")
    y_expr = y.to_expr() if isinstance(y, Var) else y

    if ub <= 0.0:
        # Stably inactive: x is identically zero.
        x = model.add_var(lb=0.0, ub=0.0, name=f"{name}.x")
        return x
    if lb >= 0.0:
        # Stably active: x equals y.
        x = model.add_var(lb=lb, ub=ub, name=f"{name}.x")
        model.add_constr(x == y_expr)
        return x

    x = model.add_var(lb=0.0, ub=ub, name=f"{name}.x")
    z = model.add_var(vtype="binary", name=f"{name}.z")
    # z = 1 -> active phase (x = y >= 0);  z = 0 -> inactive (x = 0, y <= 0).
    model.add_constr(x >= y_expr)
    model.add_constr(x <= y_expr - lb * (1 - z))
    model.add_constr(x <= ub * z)
    return x


def relu_exact_rows(
    model: Model,
    rows: RowBlockBuilder,
    y: Var | LinExpr,
    lb: float,
    ub: float,
    name: str = "relu",
) -> Var:
    """Block-assembly twin of :func:`encode_relu_exact`.

    Creates the same variables in the same order and appends the same
    coefficient rows to ``rows`` instead of the model's constraint list;
    the caller flushes one block per layer.

    Returns:
        The post-activation variable ``x``.
    """
    if lb > ub:
        raise ValueError(f"invalid ReLU bounds [{lb}, {ub}]")
    if ub <= 0.0:
        return model.add_var(lb=0.0, ub=0.0, name=f"{name}.x")
    y_idx, y_coef, y0 = handle_terms(y)
    neg = [-c for c in y_coef]
    if lb >= 0.0:
        x = model.add_var(lb=lb, ub=ub, name=f"{name}.x")
        rows.add([x.index, *y_idx], [1.0, *neg], Sense.EQ, y0)
        return x
    x = model.add_var(lb=0.0, ub=ub, name=f"{name}.x")
    z = model.add_var(vtype="binary", name=f"{name}.z")
    rows.add([x.index, *y_idx], [1.0, *neg], Sense.GE, y0)
    rows.add([x.index, *y_idx, z.index], [1.0, *neg, -lb], Sense.LE, y0 - lb)
    rows.add([x.index, z.index], [1.0, -ub], Sense.LE, 0.0)
    return x
