"""Basic twin-network encoding (BTNE) — the scheme of Katz et al. [2].

Two full copies of the network are encoded independently and tied only at
the input (perturbation constraint) and output (distance expressions).
No hidden-layer distance information exists, which is exactly why ND/LPR
over-approximations degrade badly under BTNE (paper Fig. 4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bounds.interval import Box
from repro.bounds.propagator import get_propagator
from repro.encoding.single import SingleEncoding, encode_single_network
from repro.milp import Model, Sense
from repro.milp.expr import LinExpr, Var, as_expr
from repro.nn.affine import AffineLayer


@dataclass
class BtneEncoding:
    """Handles into a BTNE model.

    Attributes:
        model: The underlying MILP.
        first: Encoding of copy ``F(x)``.
        second: Encoding of copy ``F(x̂)``.
        output_distance: Expressions ``Δx(n)_j = x̂(n)_j − x(n)_j``.
    """

    model: Model
    first: SingleEncoding
    second: SingleEncoding
    output_distance: list[LinExpr]


def encode_btne(
    layers: list[AffineLayer],
    input_box: Box,
    delta: float | Box,
    relax_mask: list[np.ndarray] | None = None,
    vectorized: bool = True,
    bounds: str = "ibp",
    pre_act_bounds: list[Box] | None = None,
) -> BtneEncoding:
    """Encode the twin pair under BTNE.

    Args:
        layers: Normal-form network.
        input_box: Input domain ``X``.
        delta: L∞ perturbation bound δ (or an explicit perturbation box).
        relax_mask: Optional per-layer relax masks applied to *both*
            copies (True = triangle relaxation).
        vectorized: Emit per-layer constraint blocks (default); False
            uses the per-neuron dict-based reference assembly.
        bounds: Bound propagator seeding both copies' big-M ranges
            (``"ibp"`` or ``"symbolic"``); ignored when explicit
            ``pre_act_bounds`` are given.
        pre_act_bounds: Sound per-layer pre-activation boxes over
            ``input_box``, for callers that already propagated them.

    Returns:
        A :class:`BtneEncoding`.
    """
    model = Model("btne")
    # Both copies range over the same input box, so one propagation
    # seeds both encodings.
    if pre_act_bounds is None:
        pre_act_bounds = get_propagator(bounds).propagate(layers, input_box).y
    pre_acts = pre_act_bounds
    first = encode_single_network(
        layers, input_box, relax_mask=relax_mask, pre_act_bounds=pre_acts,
        model=model, prefix="a", vectorized=vectorized,
    )
    second = encode_single_network(
        layers, input_box, relax_mask=relax_mask, pre_act_bounds=pre_acts,
        model=model, prefix="b", vectorized=vectorized,
    )

    if isinstance(delta, Box):
        d_lo, d_hi = delta.lo, delta.hi
    else:
        d_lo = np.full(input_box.dim, -float(delta))
        d_hi = np.full(input_box.dim, float(delta))
    if vectorized:
        from repro.encoding.assembly import RowBlockBuilder

        link = RowBlockBuilder()
        for k, (xa, xb) in enumerate(zip(first.input_vars, second.input_vars)):
            pair = [xb.index, xa.index]
            link.add(pair, [1.0, -1.0], Sense.LE, float(d_hi[k]))
            link.add(pair, [1.0, -1.0], Sense.GE, float(d_lo[k]))
        link.flush(model, name="delta.link")
    else:
        for k, (xa, xb) in enumerate(zip(first.input_vars, second.input_vars)):
            diff = xb - xa
            model.add_constr(diff <= float(d_hi[k]))
            model.add_constr(diff >= float(d_lo[k]))

    output_distance = [
        as_expr(xb) - as_expr(xa)
        for xa, xb in zip(first.output, second.output)
    ]
    return BtneEncoding(model, first, second, output_distance)
