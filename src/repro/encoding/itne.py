"""Interleaving twin-network encoding (ITNE) — the paper's §II-B.

One copy of the network is encoded explicitly (variables ``y``, ``x``);
the second copy exists only through per-neuron *distance* variables
``Δy = ŷ − y`` and ``Δx = x̂ − x``.  The nonlinear map ``ŷ → x̂`` is
replaced by the distance relation ``Δx = relu(y + Δy) − relu(y)``:

* a *refined* neuron encodes both its own ReLU and its twin's ReLU
  exactly (big-M binaries), making the distance relation exact;
* a *relaxed* neuron uses the triangle relaxation (Eq. 4) for its own
  ReLU and the butterfly relaxation (Eq. 6) for the distance relation —
  no binaries at all.

With every neuron refined, optimizing ``Δx(n)`` over this encoding
solves the exact global-robustness problem of Eq. 1.

Pre-activations ``y(i)`` and their distances ``Δy(i)`` are model
variables linked to the previous layer by one equality block each
(``y − W x = b``, ``Δy − W Δx = 0``); the globally valid range cuts of
Algorithm 1 become their variable bounds.  The default assembly is
array-native (per-layer COO blocks, see :mod:`repro.encoding.assembly`);
``vectorized=False`` builds the identical formulation with per-neuron
expression dicts for equivalence testing and benchmarking.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.bounds.interval import Box
from repro.bounds.ranges import RangeTable
from repro.encoding.assembly import RowBlockBuilder, affine_link_rows, row_dot
from repro.encoding.bigm import encode_relu_exact, relu_exact_rows
from repro.encoding.relaxation import (
    couple_triangle_rows,
    distance_relaxed_rows,
    encode_distance_relaxed,
    encode_relu_triangle,
    relu_triangle_rows,
)
from repro.milp import Model, Sense
from repro.milp.expr import LinExpr, Var, as_expr
from repro.nn.affine import AffineLayer

Handle = "Var | LinExpr"


@dataclass
class ItneEncoding:
    """Handles into an ITNE model.

    Attributes:
        model: The underlying MILP/LP.
        input_vars: Variables for ``x(0)`` (one network copy's input).
        input_dist_vars: Variables for ``Δx(0)`` (the perturbation).
        y: Per-layer pre-activation variables of the first copy.
        dy: Per-layer pre-activation *distance* variables.
        x: Per-layer post-activation handles of the first copy.
        dx: Per-layer post-activation distance handles (an expression
            ``x̂ − x`` for refined neurons, a variable otherwise).
        num_binaries: Integer variables introduced (refinement cost).
    """

    model: Model
    input_vars: list[Var]
    input_dist_vars: list[Var]
    y: list[list[Var]] = field(default_factory=list)
    dy: list[list[Var]] = field(default_factory=list)
    x: list[list[Var | LinExpr]] = field(default_factory=list)
    dx: list[list[Var | LinExpr]] = field(default_factory=list)

    @property
    def output_distance(self) -> list[Var | LinExpr]:
        """Distance handles of the output layer (Δx(n))."""
        return self.dx[-1]

    @property
    def output(self) -> list[Var | LinExpr]:
        """First-copy output handles (x(n))."""
        return self.x[-1]

    @property
    def num_binaries(self) -> int:
        """Binary variables in the model (0 for a pure LP relaxation)."""
        return self.model.num_binary


def encode_itne(
    layers: list[AffineLayer],
    input_box: Box,
    delta: float | Box,
    ranges: RangeTable | None = None,
    refine_mask: list[np.ndarray] | None = None,
    couple_second_copy: bool = True,
    clip_second_input: bool = True,
    model: Model | None = None,
    prefix: str = "t",
    vectorized: bool = True,
    bounds: str = "ibp",
) -> ItneEncoding:
    """Encode the twin pair under ITNE.

    Args:
        layers: Normal-form network (or sub-network for ND).
        input_box: Range of the first copy's input — the input domain
            ``X`` for the full network, or the propagated ``x(i−w)``
            range for a sub-network.
        delta: Perturbation: the L∞ bound δ (float) for the full
            network, or the propagated ``Δx(i−w)`` box for a sub-network.
        ranges: Per-layer ``y``/``Δy`` bounds used for big-M constants
            and relaxations; computed by twin IBP when omitted.
        refine_mask: Per-layer boolean arrays; ``True`` = encode this
            neuron exactly (binaries), ``False`` = relax (Eq. 4 + Eq. 6).
            ``None`` refines every neuron (exact encoding).
        couple_second_copy: Additionally apply the triangle relaxation to
            the implicit second copy ``x̂ = x + Δx`` (sound tightening
            enabled by the interleaving variables).
        clip_second_input: Constrain ``x(0) + Δx(0)`` inside
            ``input_box`` (both inputs must lie in the domain, per
            Definition 1).
        model: Existing model to extend.
        prefix: Variable-name prefix.
        vectorized: Emit per-layer constraint blocks (default); False
            assembles the same formulation per neuron via expression
            dicts (reference path).
        bounds: Bound propagator seeding the range table when ``ranges``
            is omitted (``"ibp"`` or ``"symbolic"``).

    Returns:
        An :class:`ItneEncoding`.
    """
    model = model or Model("itne")
    if isinstance(delta, Box):
        delta_box = delta
        if delta_box.dim != input_box.dim:
            raise ValueError("perturbation box dimension mismatch")
    else:
        delta_box = Box.uniform(input_box.dim, -float(delta), float(delta))
    if ranges is None:
        ranges = RangeTable.from_interval_propagation(
            layers, input_box, delta_box, propagator=bounds
        )

    input_vars = model.add_vars_array(
        input_box.dim, lb=input_box.lo, ub=input_box.hi, prefix=f"{prefix}.x0"
    )
    input_dist_vars = model.add_vars_array(
        delta_box.dim, lb=delta_box.lo, ub=delta_box.hi, prefix=f"{prefix}.dx0"
    )
    if clip_second_input:
        if vectorized:
            clip = RowBlockBuilder()
            for k, (x0, d0) in enumerate(zip(input_vars, input_dist_vars)):
                pair = [x0.index, d0.index]
                clip.add(pair, [1.0, 1.0], Sense.GE, float(input_box.lo[k]))
                clip.add(pair, [1.0, 1.0], Sense.LE, float(input_box.hi[k]))
            clip.flush(model, name=f"{prefix}.clip")
        else:
            for k, (x0, d0) in enumerate(zip(input_vars, input_dist_vars)):
                second = x0 + d0
                model.add_constr(second >= float(input_box.lo[k]))
                model.add_constr(second <= float(input_box.hi[k]))

    enc = ItneEncoding(model, input_vars, input_dist_vars)
    cur_x: list[Var | LinExpr] = list(input_vars)
    cur_dx: list[Var | LinExpr] = list(input_dist_vars)

    for i, layer in enumerate(layers):
        layer_ranges = ranges.layer(i + 1)
        mask = None if refine_mask is None else refine_mask[i]
        m_i = layer.out_dim
        # Range cuts: Algorithm 1 lists the hidden-neuron ranges
        # y(i−k), Δy(i−k) as prerequisites of every sub-network
        # problem.  They are globally valid (derived from the full
        # network earlier), so imposing them is sound — and necessary:
        # inside a decomposed slice the box-relaxed inputs can
        # otherwise reach y/Δy values outside these ranges, where the
        # exact big-M encoding admits distance values the Eq. 6
        # butterfly would have cut off (making a *refined* neuron
        # paradoxically looser than a relaxed one).  With y/Δy as model
        # variables the cuts are simply their bounds.
        if layer.relu:
            y_lo, y_hi = layer_ranges.y.lo, layer_ranges.y.hi
            dy_lo, dy_hi = layer_ranges.dy.lo, layer_ranges.dy.hi
        else:
            y_lo = dy_lo = -math.inf
            y_hi = dy_hi = math.inf
        y_vars = model.add_vars_array(m_i, lb=y_lo, ub=y_hi, prefix=f"{prefix}.y{i}")
        dy_vars = model.add_vars_array(
            m_i, lb=dy_lo, ub=dy_hi, prefix=f"{prefix}.dy{i}"
        )
        zero_bias = np.zeros(m_i)
        rows: RowBlockBuilder | None = None
        if vectorized:
            affine_link_rows(
                model, y_vars, layer.weight, cur_x, layer.bias,
                name=f"{prefix}.l{i}.link",
            )
            affine_link_rows(
                model, dy_vars, layer.weight, cur_dx, zero_bias,
                name=f"{prefix}.l{i}.dlink",
            )
            rows = RowBlockBuilder()
        else:
            for j in range(m_i):
                model.add_constr(
                    y_vars[j]
                    == row_dot(layer.weight[j], cur_x, float(layer.bias[j]))
                )
            for j in range(m_i):
                model.add_constr(
                    dy_vars[j] == row_dot(layer.weight[j], cur_dx, 0.0)
                )

        if not layer.relu:
            x_list: list[Var | LinExpr] = list(y_vars)
            dx_list: list[Var | LinExpr] = list(dy_vars)
        else:
            x_list = []
            dx_list = []
            for j in range(m_i):
                y_var, dy_var = y_vars[j], dy_vars[j]
                y_lb, y_ub = layer_ranges.y.scalar(j)
                dy_lb, dy_ub = layer_ranges.dy.scalar(j)
                tag = f"{prefix}.l{i}n{j}"
                refine = True if mask is None else bool(mask[j])
                if refine:
                    if rows is not None:
                        x_var = relu_exact_rows(model, rows, y_var, y_lb, y_ub, name=tag)
                        xhat_var = relu_exact_rows(
                            model,
                            rows,
                            y_var + dy_var,
                            y_lb + dy_lb,
                            y_ub + dy_ub,
                            name=f"{tag}.hat",
                        )
                    else:
                        x_var = encode_relu_exact(model, y_var, y_lb, y_ub, name=tag)
                        xhat_var = encode_relu_exact(
                            model,
                            y_var + dy_var,
                            y_lb + dy_lb,
                            y_ub + dy_ub,
                            name=f"{tag}.hat",
                        )
                    x_list.append(x_var)
                    dx_list.append(as_expr(xhat_var) - as_expr(x_var))
                else:
                    if rows is not None:
                        x_var = relu_triangle_rows(
                            model, rows, y_var, y_lb, y_ub, name=tag
                        )
                        dx_var = distance_relaxed_rows(
                            model, rows, dy_var, dy_lb, dy_ub, name=tag
                        )
                        if couple_second_copy:
                            couple_triangle_rows(
                                rows,
                                x_var,
                                dx_var,
                                y_var,
                                dy_var,
                                y_lb + dy_lb,
                                y_ub + dy_ub,
                            )
                    else:
                        x_var = encode_relu_triangle(
                            model, y_var, y_lb, y_ub, name=tag
                        )
                        dx_var = encode_distance_relaxed(
                            model, dy_var, dy_lb, dy_ub, name=tag
                        )
                        if couple_second_copy:
                            _couple_triangle(
                                model,
                                x_var + dx_var,
                                y_var + dy_var,
                                y_lb + dy_lb,
                                y_ub + dy_ub,
                            )
                    x_list.append(x_var)
                    dx_list.append(dx_var)
        if rows is not None:
            rows.flush(model, name=f"{prefix}.l{i}.relu")
        enc.y.append(list(y_vars))
        enc.dy.append(list(dy_vars))
        enc.x.append(x_list)
        enc.dx.append(dx_list)
        cur_x, cur_dx = x_list, dx_list
    return enc


def _couple_triangle(
    model: Model, xhat: LinExpr, yhat: LinExpr, lb: float, ub: float
) -> None:
    """Triangle constraints on the implicit second copy ``x̂ = x + Δx``."""
    if ub <= 0.0:
        model.add_constr(xhat == 0.0)
        return
    if lb >= 0.0:
        model.add_constr(xhat == yhat)
        return
    model.add_constr(xhat >= 0.0)
    model.add_constr(xhat >= yhat)
    slope = ub / (ub - lb)
    model.add_constr(xhat <= slope * yhat - slope * lb)
