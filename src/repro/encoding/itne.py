"""Interleaving twin-network encoding (ITNE) — the paper's §II-B.

One copy of the network is encoded explicitly (variables ``y``, ``x``);
the second copy exists only through per-neuron *distance* variables
``Δy = ŷ − y`` and ``Δx = x̂ − x``.  The nonlinear map ``ŷ → x̂`` is
replaced by the distance relation ``Δx = relu(y + Δy) − relu(y)``:

* a *refined* neuron encodes both its own ReLU and its twin's ReLU
  exactly (big-M binaries), making the distance relation exact;
* a *relaxed* neuron uses the triangle relaxation (Eq. 4) for its own
  ReLU and the butterfly relaxation (Eq. 6) for the distance relation —
  no binaries at all.

With every neuron refined, optimizing ``Δx(n)`` over this encoding
solves the exact global-robustness problem of Eq. 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bounds.interval import Box
from repro.bounds.ranges import RangeTable
from repro.encoding.bigm import encode_relu_exact
from repro.encoding.relaxation import encode_distance_relaxed, encode_relu_triangle
from repro.milp import Model
from repro.milp.expr import LinExpr, Var
from repro.nn.affine import AffineLayer

Handle = "Var | LinExpr"


@dataclass
class ItneEncoding:
    """Handles into an ITNE model.

    Attributes:
        model: The underlying MILP/LP.
        input_vars: Variables for ``x(0)`` (one network copy's input).
        input_dist_vars: Variables for ``Δx(0)`` (the perturbation).
        y: Per-layer pre-activation expressions of the first copy.
        dy: Per-layer pre-activation *distance* expressions.
        x: Per-layer post-activation handles of the first copy.
        dx: Per-layer post-activation distance handles.
        num_binaries: Integer variables introduced (refinement cost).
    """

    model: Model
    input_vars: list[Var]
    input_dist_vars: list[Var]
    y: list[list[LinExpr]] = field(default_factory=list)
    dy: list[list[LinExpr]] = field(default_factory=list)
    x: list[list[Var | LinExpr]] = field(default_factory=list)
    dx: list[list[Var | LinExpr]] = field(default_factory=list)

    @property
    def output_distance(self) -> list[Var | LinExpr]:
        """Distance handles of the output layer (Δx(n))."""
        return self.dx[-1]

    @property
    def output(self) -> list[Var | LinExpr]:
        """First-copy output handles (x(n))."""
        return self.x[-1]

    @property
    def num_binaries(self) -> int:
        """Binary variables in the model (0 for a pure LP relaxation)."""
        return self.model.num_binary


def encode_itne(
    layers: list[AffineLayer],
    input_box: Box,
    delta: float | Box,
    ranges: RangeTable | None = None,
    refine_mask: list[np.ndarray] | None = None,
    couple_second_copy: bool = True,
    clip_second_input: bool = True,
    model: Model | None = None,
    prefix: str = "t",
) -> ItneEncoding:
    """Encode the twin pair under ITNE.

    Args:
        layers: Normal-form network (or sub-network for ND).
        input_box: Range of the first copy's input — the input domain
            ``X`` for the full network, or the propagated ``x(i−w)``
            range for a sub-network.
        delta: Perturbation: the L∞ bound δ (float) for the full
            network, or the propagated ``Δx(i−w)`` box for a sub-network.
        ranges: Per-layer ``y``/``Δy`` bounds used for big-M constants
            and relaxations; computed by twin IBP when omitted.
        refine_mask: Per-layer boolean arrays; ``True`` = encode this
            neuron exactly (binaries), ``False`` = relax (Eq. 4 + Eq. 6).
            ``None`` refines every neuron (exact encoding).
        couple_second_copy: Additionally apply the triangle relaxation to
            the implicit second copy ``x̂ = x + Δx`` (sound tightening
            enabled by the interleaving variables).
        clip_second_input: Constrain ``x(0) + Δx(0)`` inside
            ``input_box`` (both inputs must lie in the domain, per
            Definition 1).
        model: Existing model to extend.
        prefix: Variable-name prefix.

    Returns:
        An :class:`ItneEncoding`.
    """
    model = model or Model("itne")
    if isinstance(delta, Box):
        delta_box = delta
        if delta_box.dim != input_box.dim:
            raise ValueError("perturbation box dimension mismatch")
    else:
        delta_box = Box.uniform(input_box.dim, -float(delta), float(delta))
    if ranges is None:
        ranges = RangeTable.from_interval_propagation(layers, input_box, delta_box)

    input_vars = [
        model.add_var(lb=float(lo), ub=float(hi), name=f"{prefix}.x0[{k}]")
        for k, (lo, hi) in enumerate(zip(input_box.lo, input_box.hi))
    ]
    input_dist_vars = [
        model.add_var(lb=float(lo), ub=float(hi), name=f"{prefix}.dx0[{k}]")
        for k, (lo, hi) in enumerate(zip(delta_box.lo, delta_box.hi))
    ]
    if clip_second_input:
        for k, (x0, d0) in enumerate(zip(input_vars, input_dist_vars)):
            second = x0 + d0
            model.add_constr(second >= float(input_box.lo[k]))
            model.add_constr(second <= float(input_box.hi[k]))

    enc = ItneEncoding(model, input_vars, input_dist_vars)
    cur_x: list[Var | LinExpr] = list(input_vars)
    cur_dx: list[Var | LinExpr] = list(input_dist_vars)

    for i, layer in enumerate(layers):
        layer_ranges = ranges.layer(i + 1)
        mask = None if refine_mask is None else refine_mask[i]
        y_list: list[LinExpr] = []
        dy_list: list[LinExpr] = []
        x_list: list[Var | LinExpr] = []
        dx_list: list[Var | LinExpr] = []
        for j in range(layer.out_dim):
            w_row = layer.weight[j]
            y_expr = _row_dot(w_row, cur_x, float(layer.bias[j]))
            dy_expr = _row_dot(w_row, cur_dx, 0.0)
            y_list.append(y_expr)
            dy_list.append(dy_expr)

            if not layer.relu:
                x_list.append(y_expr)
                dx_list.append(dy_expr)
                continue

            y_lb, y_ub = layer_ranges.y.scalar(j)
            dy_lb, dy_ub = layer_ranges.dy.scalar(j)
            tag = f"{prefix}.l{i}n{j}"
            # Range cuts: Algorithm 1 lists the hidden-neuron ranges
            # y(i−k), Δy(i−k) as prerequisites of every sub-network
            # problem.  They are globally valid (derived from the full
            # network earlier), so adding them as constraints is sound —
            # and necessary: inside a decomposed slice the box-relaxed
            # inputs can otherwise reach y/Δy values outside these
            # ranges, where the exact big-M encoding admits distance
            # values the Eq. 6 butterfly would have cut off (making a
            # *refined* neuron paradoxically looser than a relaxed one).
            model.add_constr(y_expr >= y_lb)
            model.add_constr(y_expr <= y_ub)
            model.add_constr(dy_expr >= dy_lb)
            model.add_constr(dy_expr <= dy_ub)
            refine = True if mask is None else bool(mask[j])
            if refine:
                x_var = encode_relu_exact(model, y_expr, y_lb, y_ub, name=tag)
                xhat_var = encode_relu_exact(
                    model,
                    y_expr + dy_expr,
                    y_lb + dy_lb,
                    y_ub + dy_ub,
                    name=f"{tag}.hat",
                )
                x_list.append(x_var)
                dx_list.append(_as_expr(xhat_var) - _as_expr(x_var))
            else:
                x_var = encode_relu_triangle(model, y_expr, y_lb, y_ub, name=tag)
                dx_var = encode_distance_relaxed(
                    model, dy_expr, dy_lb, dy_ub, name=tag
                )
                if couple_second_copy:
                    _couple_triangle(
                        model,
                        x_var + dx_var,
                        y_expr + dy_expr,
                        y_lb + dy_lb,
                        y_ub + dy_ub,
                    )
                x_list.append(x_var)
                dx_list.append(dx_var)
        enc.y.append(y_list)
        enc.dy.append(dy_list)
        enc.x.append(x_list)
        enc.dx.append(dx_list)
        cur_x, cur_dx = x_list, dx_list
    return enc


def _couple_triangle(
    model: Model, xhat: LinExpr, yhat: LinExpr, lb: float, ub: float
) -> None:
    """Triangle constraints on the implicit second copy ``x̂ = x + Δx``."""
    if ub <= 0.0:
        model.add_constr(xhat == 0.0)
        return
    if lb >= 0.0:
        model.add_constr(xhat == yhat)
        return
    model.add_constr(xhat >= 0.0)
    model.add_constr(xhat >= yhat)
    slope = ub / (ub - lb)
    model.add_constr(xhat <= slope * yhat - slope * lb)


def _as_expr(handle) -> LinExpr:
    return handle.to_expr() if isinstance(handle, Var) else handle


def _row_dot(weights: np.ndarray, handles, bias: float) -> LinExpr:
    """Affine combination ``w · handles + bias`` over mixed handles."""
    total = LinExpr.constant_expr(bias)
    direct_vars = []
    direct_w = []
    for w, h in zip(weights, handles):
        if w == 0.0:
            continue
        if isinstance(h, Var):
            direct_vars.append(h)
            direct_w.append(float(w))
        else:
            total = total + h * float(w)
    if direct_vars:
        total = total + LinExpr.weighted_sum(direct_vars, direct_w)
    return total
