"""LP relaxations: the ReLU triangle (Eq. 4) and the distance relation (Eq. 6).

These are the two relaxations that, combined with the interleaving
encoding, remove all integer variables from the certification MILPs.
Both come with *scores* measuring their worst-case inaccuracy — the
quantities Algorithm 1 ranks to pick which neurons to refine.
"""

from __future__ import annotations

from repro.encoding.assembly import RowBlockBuilder, handle_terms
from repro.milp import Model, Sense, Var
from repro.milp.expr import LinExpr


def encode_relu_triangle(
    model: Model,
    y: Var | LinExpr,
    lb: float,
    ub: float,
    name: str = "relu",
) -> Var:
    """Add the triangle relaxation of ``x = max(y, 0)`` (paper Eq. 4).

    For ``lb < 0 < ub`` the feasible set is the triangle

        x ≥ 0,   x ≥ y,   x ≤ ub·(y − lb)/(ub − lb).

    Stable cases degenerate to exact equalities.

    Returns:
        The post-activation variable ``x``.
    """
    if lb > ub:
        raise ValueError(f"invalid ReLU bounds [{lb}, {ub}]")
    y_expr = y.to_expr() if isinstance(y, Var) else y

    if ub <= 0.0:
        return model.add_var(lb=0.0, ub=0.0, name=f"{name}.x")
    if lb >= 0.0:
        x = model.add_var(lb=lb, ub=ub, name=f"{name}.x")
        model.add_constr(x == y_expr)
        return x

    x = model.add_var(lb=0.0, ub=ub, name=f"{name}.x")
    model.add_constr(x >= y_expr)
    slope = ub / (ub - lb)
    model.add_constr(x <= slope * y_expr - slope * lb)
    return x


def relu_triangle_rows(
    model: Model,
    rows: RowBlockBuilder,
    y: Var | LinExpr,
    lb: float,
    ub: float,
    name: str = "relu",
) -> Var:
    """Block-assembly twin of :func:`encode_relu_triangle`.

    Same variables, same coefficient rows, appended to ``rows`` for one
    batched insertion per layer.
    """
    if lb > ub:
        raise ValueError(f"invalid ReLU bounds [{lb}, {ub}]")
    if ub <= 0.0:
        return model.add_var(lb=0.0, ub=0.0, name=f"{name}.x")
    y_idx, y_coef, y0 = handle_terms(y)
    if lb >= 0.0:
        x = model.add_var(lb=lb, ub=ub, name=f"{name}.x")
        rows.add([x.index, *y_idx], [1.0, *(-c for c in y_coef)], Sense.EQ, y0)
        return x
    x = model.add_var(lb=0.0, ub=ub, name=f"{name}.x")
    rows.add([x.index, *y_idx], [1.0, *(-c for c in y_coef)], Sense.GE, y0)
    slope = ub / (ub - lb)
    rows.add(
        [x.index, *y_idx],
        [1.0, *(-(slope * c) for c in y_coef)],
        Sense.LE,
        slope * y0 - slope * lb,
    )
    return x


def eq6_bounds(dy_lb: float, dy_ub: float) -> tuple[float, float]:
    """Interval implied by Eq. 6 for ``Δx`` given the ``Δy`` range.

    ``l = min(0, Δy̲)``, ``u = max(0, Δy̅)``; the relaxation's extreme
    values are exactly ``[l, u]``.
    """
    return min(0.0, dy_lb), max(0.0, dy_ub)


def encode_distance_relaxed(
    model: Model,
    dy: Var | LinExpr,
    dy_lb: float,
    dy_ub: float,
    name: str = "dist",
) -> Var:
    """Add the relaxed ReLU distance relation (paper Eq. 6 / Fig. 3 right).

    Encodes the butterfly hull of ``Δx = relu(y + Δy) − relu(y)`` over
    all ``y ∈ R`` given ``Δy ∈ [Δy̲, Δy̅]``:

        l(u − Δy)/(u − l)  ≤  Δx  ≤  u(Δy − l)/(u − l),

    with ``l = min(0, Δy̲)`` and ``u = max(0, Δy̅)``.  Single-signed
    ranges degenerate to the exact hull ``0 ∧ Δy ≤ Δx ≤ 0 ∨ Δy``, and a
    zero-width range pins ``Δx = 0``.

    Returns:
        The distance variable ``Δx``.
    """
    if dy_lb > dy_ub:
        raise ValueError(f"invalid Δy bounds [{dy_lb}, {dy_ub}]")
    dy_expr = dy.to_expr() if isinstance(dy, Var) else dy
    l, u = eq6_bounds(dy_lb, dy_ub)

    if u - l <= 0.0:
        # Δy can only be 0 -> the two copies agree at this neuron.
        return model.add_var(lb=0.0, ub=0.0, name=f"{name}.dx")

    dx = model.add_var(lb=l, ub=u, name=f"{name}.dx")
    span = u - l
    # Lower: dx >= l*(u - dy)/span  <=>  dx - (l/span)*(u - dy) >= 0
    model.add_constr(dx >= (l * u) / span - (l / span) * dy_expr)
    # Upper: dx <= u*(dy - l)/span
    model.add_constr(dx <= (u / span) * dy_expr - (u * l) / span)
    return dx


def distance_relaxed_rows(
    model: Model,
    rows: RowBlockBuilder,
    dy: Var | LinExpr,
    dy_lb: float,
    dy_ub: float,
    name: str = "dist",
) -> Var:
    """Block-assembly twin of :func:`encode_distance_relaxed`."""
    if dy_lb > dy_ub:
        raise ValueError(f"invalid Δy bounds [{dy_lb}, {dy_ub}]")
    l, u = eq6_bounds(dy_lb, dy_ub)
    if u - l <= 0.0:
        return model.add_var(lb=0.0, ub=0.0, name=f"{name}.dx")
    dx = model.add_var(lb=l, ub=u, name=f"{name}.dx")
    d_idx, d_coef, d0 = handle_terms(dy)
    span = u - l
    lo_s = l / span
    hi_s = u / span
    rows.add(
        [dx.index, *d_idx],
        [1.0, *((c * lo_s) for c in d_coef)],
        Sense.GE,
        -(d0 * lo_s) + (l * u) / span,
    )
    rows.add(
        [dx.index, *d_idx],
        [1.0, *(-(c * hi_s) for c in d_coef)],
        Sense.LE,
        d0 * hi_s - (u * l) / span,
    )
    return dx


def couple_triangle_rows(
    rows: RowBlockBuilder,
    x: Var,
    dx: Var,
    y: Var,
    dy: Var,
    lb: float,
    ub: float,
) -> None:
    """Triangle rows on the implicit second copy ``x̂ = x + Δx``.

    Block-assembly twin of the interleaving encoder's second-copy
    coupling: constrains ``x + Δx`` against ``y + Δy`` with the Eq. 4
    triangle over the hat bounds ``[lb, ub]``.
    """
    if ub <= 0.0:
        rows.add([x.index, dx.index], [1.0, 1.0], Sense.EQ, 0.0)
        return
    hat = [x.index, dx.index, y.index, dy.index]
    if lb >= 0.0:
        rows.add(hat, [1.0, 1.0, -1.0, -1.0], Sense.EQ, 0.0)
        return
    rows.add([x.index, dx.index], [1.0, 1.0], Sense.GE, 0.0)
    rows.add(hat, [1.0, 1.0, -1.0, -1.0], Sense.GE, 0.0)
    slope = ub / (ub - lb)
    rows.add(hat, [1.0, 1.0, -slope, -slope], Sense.LE, -slope * lb)


def eq4_score(lb: float, ub: float) -> float:
    """Worst-case inaccuracy of the triangle relaxation: ``−lb·ub/(ub−lb)``.

    Zero for stable neurons (no relaxation gap).
    """
    if lb >= 0.0 or ub <= 0.0:
        return 0.0
    return -lb * ub / (ub - lb)


def eq6_score(dy_lb: float, dy_ub: float) -> float:
    """Worst-case inaccuracy of the distance relaxation: ``max(|Δy̲|,|Δy̅|)``."""
    return max(abs(dy_lb), abs(dy_ub))
