"""Encode one network copy as a MILP (exact or LP-relaxed per neuron)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bounds.ibp import propagate_box
from repro.bounds.interval import Box
from repro.encoding.bigm import encode_relu_exact
from repro.encoding.relaxation import encode_relu_triangle
from repro.milp import Model, Var
from repro.milp.expr import LinExpr
from repro.nn.affine import AffineLayer


@dataclass
class SingleEncoding:
    """Handles into a single-copy encoding.

    Attributes:
        model: The underlying MILP.
        input_vars: Variables for the (flattened) network input.
        y: Per-layer pre-activation expressions.
        x: Per-layer post-activation variables/expressions.
        output: Post-activation handles of the final layer.
    """

    model: Model
    input_vars: list[Var]
    y: list[list[LinExpr]] = field(default_factory=list)
    x: list[list[Var | LinExpr]] = field(default_factory=list)

    @property
    def output(self) -> list[Var | LinExpr]:
        """Output-layer handles."""
        return self.x[-1]


def encode_single_network(
    layers: list[AffineLayer],
    input_box: Box,
    relax_mask: list[np.ndarray] | None = None,
    pre_act_bounds: list[Box] | None = None,
    model: Model | None = None,
    prefix: str = "n",
) -> SingleEncoding:
    """Encode ``F(x)`` over ``input_box`` into a MILP.

    Args:
        layers: Normal-form network.
        input_box: Domain of the input variables.
        relax_mask: Optional per-layer boolean arrays; ``True`` relaxes
            that neuron's ReLU with the triangle (Eq. 4) instead of the
            exact big-M encoding.  ``None`` encodes everything exactly.
        pre_act_bounds: Sound per-layer pre-activation boxes; computed by
            IBP when omitted.
        model: Existing model to extend (used by the twin encoders).
        prefix: Variable-name prefix.

    Returns:
        A :class:`SingleEncoding` with variable handles.
    """
    model = model or Model("single")
    if pre_act_bounds is None:
        _, pre_act_bounds = propagate_box(layers, input_box, collect=True)

    input_vars = [
        model.add_var(lb=float(lo), ub=float(hi), name=f"{prefix}.x0[{k}]")
        for k, (lo, hi) in enumerate(zip(input_box.lo, input_box.hi))
    ]
    enc = SingleEncoding(model=model, input_vars=input_vars)

    current: list[Var | LinExpr] = list(input_vars)
    for i, layer in enumerate(layers):
        y_bounds = pre_act_bounds[i]
        mask = None if relax_mask is None else relax_mask[i]
        y_exprs: list[LinExpr] = []
        x_handles: list[Var | LinExpr] = []
        for j in range(layer.out_dim):
            # Build y = W_j . current + b_j over mixed Var/LinExpr handles.
            y_expr = _row_dot(layer.weight[j], current, float(layer.bias[j]))
            y_exprs.append(y_expr)
            if not layer.relu:
                x_handles.append(y_expr)
                continue
            lb, ub = y_bounds.scalar(j)
            tag = f"{prefix}.l{i}n{j}"
            if mask is not None and bool(mask[j]):
                x_handles.append(
                    encode_relu_triangle(model, y_expr, lb, ub, name=tag)
                )
            else:
                x_handles.append(encode_relu_exact(model, y_expr, lb, ub, name=tag))
        enc.y.append(y_exprs)
        enc.x.append(x_handles)
        current = x_handles
    return enc


def _row_dot(
    weights: np.ndarray, handles: list[Var | LinExpr], bias: float
) -> LinExpr:
    """Affine combination of mixed Var/LinExpr handles: ``w·h + b``."""
    total = LinExpr.constant_expr(bias)
    var_idx: list = []
    var_w: list[float] = []
    for w, h in zip(weights, handles):
        if w == 0.0:
            continue
        if isinstance(h, Var):
            var_idx.append(h)
            var_w.append(float(w))
        else:
            total = total + h * float(w)
    if var_idx:
        total = total + LinExpr.weighted_sum(var_idx, var_w)
    return total
