"""Encode one network copy as a MILP (exact or LP-relaxed per neuron).

Pre-activations are model *variables*: each layer appends free variables
``y(i)`` tied to the previous layer by one equality block
``y − W x = b``.  By default that block (and the per-neuron ReLU rows)
is emitted array-natively — COO triplets straight from the layer's
weight matrix, one :meth:`~repro.milp.model.Model.add_linear_rows` call
per layer (see :mod:`repro.encoding.assembly`).  ``vectorized=False``
builds the identical formulation through dict-based expression
arithmetic, one constraint at a time; it exists as the reference for
equivalence tests and the construction benchmark.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.bounds.interval import Box
from repro.bounds.propagator import BoundPropagator, get_propagator
from repro.encoding.assembly import RowBlockBuilder, affine_link_rows, row_dot
from repro.encoding.bigm import encode_relu_exact, relu_exact_rows
from repro.encoding.relaxation import encode_relu_triangle, relu_triangle_rows
from repro.milp import Model, Var
from repro.nn.affine import AffineLayer


@dataclass
class SingleEncoding:
    """Handles into a single-copy encoding.

    Attributes:
        model: The underlying MILP.
        input_vars: Variables for the (flattened) network input.
        y: Per-layer pre-activation variables.
        x: Per-layer post-activation variables (the pre-activation
            variable itself for layers without a ReLU).
        relu_vars: ``{(layer, neuron): (y_index, x_index, z_index|None)}``
            for every encoded ReLU neuron; ``z_index`` is the big-M
            binary indicator's column (``None`` for stable or
            triangle-relaxed neurons, which have no indicator).  This is
            the metadata a :class:`~repro.milp.session.SolverSession`
            needs for ``fix_relu_phase`` — pass it as the session's
            ``relu_info``.
        output: Post-activation handles of the final layer.
    """

    model: Model
    input_vars: list[Var]
    y: list[list[Var]] = field(default_factory=list)
    x: list[list[Var]] = field(default_factory=list)
    relu_vars: dict[tuple[int, int], tuple[int, int, int | None]] = field(
        default_factory=dict
    )

    @property
    def output(self) -> list[Var]:
        """Output-layer handles."""
        return self.x[-1]


def encode_single_network(
    layers: list[AffineLayer],
    input_box: Box,
    relax_mask: list[np.ndarray] | None = None,
    pre_act_bounds: list[Box] | None = None,
    model: Model | None = None,
    prefix: str = "n",
    vectorized: bool = True,
    bounds: str | BoundPropagator = "ibp",
) -> SingleEncoding:
    """Encode ``F(x)`` over ``input_box`` into a MILP.

    Args:
        layers: Normal-form network.
        input_box: Domain of the input variables.
        relax_mask: Optional per-layer boolean arrays; ``True`` relaxes
            that neuron's ReLU with the triangle (Eq. 4) instead of the
            exact big-M encoding.  ``None`` encodes everything exactly.
        pre_act_bounds: Sound per-layer pre-activation boxes; computed by
            the ``bounds`` propagator when omitted.
        model: Existing model to extend (used by the twin encoders).
        prefix: Variable-name prefix.
        vectorized: Emit per-layer constraint blocks (default).  False
            assembles the same formulation per neuron via expression
            dicts (reference path, much slower on wide layers).
        bounds: Bound propagator seeding the big-M / relaxation ranges
            (``"ibp"`` or ``"symbolic"``); ignored when explicit
            ``pre_act_bounds`` are given.

    Returns:
        A :class:`SingleEncoding` with variable handles.
    """
    model = model or Model("single")
    if pre_act_bounds is None:
        pre_act_bounds = get_propagator(bounds).propagate(layers, input_box).y

    input_vars = model.add_vars_array(
        input_box.dim, lb=input_box.lo, ub=input_box.hi, prefix=f"{prefix}.x0"
    )
    enc = SingleEncoding(model=model, input_vars=input_vars)

    current: list[Var] = list(input_vars)
    for i, layer in enumerate(layers):
        y_bounds = pre_act_bounds[i]
        mask = None if relax_mask is None else relax_mask[i]
        y_vars = model.add_vars_array(
            layer.out_dim, lb=-math.inf, ub=math.inf, prefix=f"{prefix}.y{i}"
        )
        rows: RowBlockBuilder | None = None
        if vectorized:
            affine_link_rows(
                model, y_vars, layer.weight, current, layer.bias,
                name=f"{prefix}.l{i}.link",
            )
            rows = RowBlockBuilder()
        else:
            for j, y_var in enumerate(y_vars):
                model.add_constr(
                    y_var == row_dot(layer.weight[j], current, float(layer.bias[j]))
                )

        if not layer.relu:
            x_handles: list[Var] = list(y_vars)
        else:
            x_handles = []
            for j, y_var in enumerate(y_vars):
                lb, ub = y_bounds.scalar(j)
                tag = f"{prefix}.l{i}n{j}"
                relaxed = mask is not None and bool(mask[j])
                n_before = model.num_vars
                if rows is not None:
                    emit = relu_triangle_rows if relaxed else relu_exact_rows
                    x_handles.append(emit(model, rows, y_var, lb, ub, name=tag))
                else:
                    build = encode_relu_triangle if relaxed else encode_relu_exact
                    x_handles.append(build(model, y_var, lb, ub, name=tag))
                # Unstable big-M neurons create (x, z); everything else
                # creates x only — so the indicator exists iff two vars
                # were appended, and it directly follows x.
                z_index = n_before + 1 if model.num_vars - n_before == 2 else None
                enc.relu_vars[(i, j)] = (y_var.index, x_handles[-1].index, z_index)
        if rows is not None:
            rows.flush(model, name=f"{prefix}.l{i}.relu")
        enc.y.append(list(y_vars))
        enc.x.append(x_handles)
        current = x_handles
    return enc
