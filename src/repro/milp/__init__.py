"""Mixed-integer linear programming modeling layer and solvers.

This package is the repository's substitute for Gurobi.  It provides a
small but complete modeling API (:class:`Var`, :class:`LinExpr`,
:class:`Constraint`, :class:`Model`) together with two interchangeable
solving backends:

* :mod:`repro.milp.scipy_backend` — compiles a model to
  ``scipy.optimize.milp`` / ``scipy.optimize.linprog`` (HiGHS), the
  default and fastest backend.
* :mod:`repro.milp.branch_bound` — a pure-Python branch-and-bound MILP
  solver built on LP relaxations, usable with either HiGHS LPs or the
  dense simplex implementation in :mod:`repro.milp.simplex`.

Both backends share one result contract
(:func:`repro.milp.solution.finalize_user_sense`): objectives are
reported in the user's sense — including incumbents of time/node-limited
solves — and ``SolveResult.bound`` always carries a sound dual bound.
Constraint matrices export sparse (``Model.to_standard_form(sparse=True)``,
CSR from COO triplets) on the HiGHS paths, dense for the simplex; multi-
objective batches reuse one export via ``Model.solve_many`` everywhere.

Typical usage::

    from repro.milp import Model

    m = Model("example")
    x = m.add_var(lb=0.0, ub=10.0, name="x")
    z = m.add_var(vtype="binary", name="z")
    m.add_constr(x + 4 * z <= 8)
    m.set_objective(x + z, sense="max")
    result = m.solve()
    assert result.is_optimal
    print(result[x], result[z])
"""

from __future__ import annotations

from repro.milp.expr import LinExpr, Var, VType, as_expr
from repro.milp.model import Constraint, ConstraintBlock, Model, Sense
from repro.milp.solution import SolveResult, SolveStatus
from repro.milp.backend import (
    BackendSpec,
    Capability,
    available_backends,
    backend_capabilities,
    find_backend,
    get_backend,
    register_backend,
)
from repro.milp.session import SolverSession, open_session

__all__ = [
    "Var",
    "VType",
    "LinExpr",
    "as_expr",
    "Constraint",
    "ConstraintBlock",
    "Model",
    "Sense",
    "SolveResult",
    "SolveStatus",
    "get_backend",
    "available_backends",
    "register_backend",
    "find_backend",
    "backend_capabilities",
    "BackendSpec",
    "Capability",
    "SolverSession",
    "open_session",
]
