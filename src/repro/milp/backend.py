"""Capability-based backend registry for the MILP solver layer.

Backends are registered as :class:`BackendSpec` entries keyed by name,
each declaring a set of :class:`Capability` flags (what the solver —
and its :class:`~repro.milp.session.SolverSession` — can do) and the
variants it accepts after a ``:`` in the name.  This mirrors the
:mod:`repro.bounds.propagator` registry: :func:`register_backend` is the
third-party entry point, :func:`get_backend` resolves names (and passes
instances through), and :func:`find_backend` walks the registry in
registration order to give a *deterministic* fallback when a required
capability is unavailable on the preferred backend.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.milp.branch_bound import BranchBoundBackend
from repro.milp.scipy_backend import ScipyBackend


class Capability(enum.Flag):
    """What a backend (and its solver sessions) supports.

    Attributes:
        MIP: Integrality constraints (binaries / integers).
        SPARSE: Consumes ``to_standard_form(sparse=True)`` CSR matrices
            without densifying.
        WARM_START: Sessions reuse a simplex basis across solves
            (phase-2 / dual-simplex re-entry).
        INCREMENTAL_ROWS: Sessions accept appended rows and variable
            bound changes without a standard-form re-export.
        BATCH_OBJECTIVES: Multi-objective solves share one export.
    """

    NONE = 0
    MIP = enum.auto()
    SPARSE = enum.auto()
    WARM_START = enum.auto()
    INCREMENTAL_ROWS = enum.auto()
    BATCH_OBJECTIVES = enum.auto()


@dataclass(frozen=True)
class BackendSpec:
    """One registry entry: a named backend factory plus its capabilities.

    Attributes:
        name: Registry key (the part before ``:`` in backend strings).
        factory: Callable ``variant -> backend instance`` (``variant`` is
            ``None`` when the plain name was requested).
        capabilities: Flags of the variant-less backend.
        variants: Accepted ``:variant`` suffixes, in preference order
            (:func:`find_backend` probes them in this order).
        variant_capabilities: Per-variant capability overrides; variants
            absent here inherit ``capabilities``.
    """

    name: str
    factory: Callable[[str | None], object]
    capabilities: Capability
    variants: tuple[str, ...] = ()
    variant_capabilities: Mapping[str, Capability] = field(default_factory=dict)

    def caps_for(self, variant: str | None) -> Capability:
        """Capability set of ``name[:variant]``."""
        if variant:
            return self.variant_capabilities.get(variant, self.capabilities)
        return self.capabilities


#: Insertion-ordered registry; registration order IS the fallback order.
_REGISTRY: dict[str, BackendSpec] = {}


def register_backend(spec: BackendSpec) -> BackendSpec:
    """Register ``spec`` under ``spec.name`` (last write wins).

    Third-party solvers plug in here: the factory must return an object
    with ``solve(model, time_limit=None, mip_gap=None) -> SolveResult``;
    declaring :attr:`Capability.INCREMENTAL_ROWS` additionally requires
    an ``open_session(model, ...)`` method (see
    :class:`~repro.milp.session.SolverSession`).
    """
    _REGISTRY[spec.name] = spec
    return spec


def available_backends() -> list[str]:
    """Sorted base names accepted by :func:`get_backend`."""
    return sorted(_REGISTRY)


def backend_spec(name: str) -> BackendSpec:
    """Look up the :class:`BackendSpec` for a base name."""
    try:
        return _REGISTRY[name]
    except KeyError as exc:
        raise ValueError(
            f"unknown backend {name!r}; available: {available_backends()}"
        ) from exc


def _split_name(name: str) -> tuple[BackendSpec, str | None]:
    base, _, variant = name.partition(":")
    spec = backend_spec(base)
    if variant and variant not in spec.variants:
        supported = ", ".join(spec.variants) if spec.variants else "none"
        raise ValueError(
            f"backend {base!r} does not support variant {variant!r} "
            f"(supported: {supported})"
        )
    return spec, variant or None


def backend_capabilities(name: str) -> Capability:
    """Capability flags of ``"base[:variant]"`` (validates the variant)."""
    spec, variant = _split_name(name)
    return spec.caps_for(variant)


def get_backend(name: "str | object" = "scipy") -> object:
    """Resolve a backend: a registry name or an instance (passed through).

    Args:
        name: ``"base"`` or ``"base:variant"`` — e.g. ``"scipy"``,
            ``"highs"``, ``"python"``, ``"python:simplex"``,
            ``"python:simplex-warm"`` — or an already-constructed
            backend object, returned unchanged.

    Raises:
        ValueError: Unknown base name, or a ``:variant`` suffix the
            backend does not support (``"scipy:simplex"`` is an error,
            not a silently ignored suffix).
    """
    if not isinstance(name, str):
        return name
    spec, variant = _split_name(name)
    return spec.factory(variant)


def find_backend(required: Capability) -> str:
    """First registered backend name supporting every ``required`` flag.

    The registry is walked in registration order, probing each entry's
    variant-less capability set and then its variants in declared order,
    so the fallback is deterministic: the same capability query always
    resolves to the same ``"base[:variant]"`` string.

    Raises:
        ValueError: No registered backend supports the combination.
    """
    for spec in _REGISTRY.values():
        if required & spec.capabilities == required:
            return spec.name
        for variant in spec.variants:
            if required & spec.caps_for(variant) == required:
                return f"{spec.name}:{variant}"
    raise ValueError(
        f"no registered backend supports {required!r}; "
        f"registered: {available_backends()}"
    )


def _make_python(variant: str | None) -> BranchBoundBackend:
    if variant == "simplex-warm":
        return BranchBoundBackend(lp_solver="simplex", warm_start=True)
    return BranchBoundBackend(lp_solver=variant or "highs")


_SCIPY_CAPS = (
    Capability.MIP
    | Capability.SPARSE
    | Capability.INCREMENTAL_ROWS
    | Capability.BATCH_OBJECTIVES
)

_SIMPLEX_CAPS = (
    Capability.MIP | Capability.INCREMENTAL_ROWS | Capability.BATCH_OBJECTIVES
)

register_backend(
    BackendSpec(
        name="scipy",
        factory=lambda variant: ScipyBackend(),
        capabilities=_SCIPY_CAPS,
    )
)
# A real registry entry (not a dict-alias of "scipy"): same factory
# today, but its own capability set that can diverge from scipy's.
register_backend(
    BackendSpec(
        name="highs",
        factory=lambda variant: ScipyBackend(),
        capabilities=_SCIPY_CAPS,
    )
)
register_backend(
    BackendSpec(
        name="python",
        factory=_make_python,
        capabilities=_SCIPY_CAPS,  # default variant relaxes via HiGHS
        variants=("highs", "simplex", "simplex-warm"),
        variant_capabilities={
            "simplex": _SIMPLEX_CAPS,
            "simplex-warm": _SIMPLEX_CAPS | Capability.WARM_START,
        },
    )
)
