"""Backend registry: maps backend names to solver implementations."""

from __future__ import annotations

from repro.milp.branch_bound import BranchBoundBackend
from repro.milp.scipy_backend import ScipyBackend

_BACKENDS = {
    "scipy": ScipyBackend,
    "highs": ScipyBackend,
    "python": BranchBoundBackend,
}


def available_backends() -> list[str]:
    """Names accepted by :func:`get_backend`."""
    return sorted(_BACKENDS)


def get_backend(name: str = "scipy"):
    """Instantiate a solving backend by name.

    Args:
        name: ``"scipy"``/``"highs"`` for the HiGHS-based backend, or
            ``"python"`` for the pure branch-and-bound solver.  The
            suffix ``":simplex"`` on ``"python"`` selects the built-in
            dense simplex for LP relaxations (e.g. ``"python:simplex"``).
    """
    base, _, variant = name.partition(":")
    try:
        cls = _BACKENDS[base]
    except KeyError as exc:
        raise ValueError(
            f"unknown backend {name!r}; available: {available_backends()}"
        ) from exc
    if cls is BranchBoundBackend and variant:
        return cls(lp_solver=variant)
    return cls()
