"""A pure-Python branch-and-bound MILP solver over LP relaxations.

This backend demonstrates that the certification pipeline does not depend
on any specific commercial solver: given the standard form exported by
:class:`repro.milp.model.Model`, it performs best-first branch-and-bound,
solving LP relaxations either with scipy's HiGHS ``linprog`` (default,
``lp_solver="highs"``) or with the repository's own dense simplex
(``lp_solver="simplex"``).

Branching is most-fractional; node selection is best-bound; integrality
of "binary"/"integer" columns is enforced by bound tightening.
"""

from __future__ import annotations

import heapq
import itertools
import math
import time
from dataclasses import dataclass, field

import numpy as np
import scipy.optimize as sopt

from repro.milp import simplex
from repro.milp.solution import SolveResult, SolveStatus, finalize_user_sense

from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.milp.expr import LinExpr, Var
    from repro.milp.model import Model
    from repro.milp.session import SolverSession

_INT_TOL = 1e-6


@dataclass(order=True)
class _Node:
    """A branch-and-bound node ordered by its LP relaxation bound."""

    bound: float
    seq: int
    lo: np.ndarray = field(compare=False)
    hi: np.ndarray = field(compare=False)
    # Parent relaxation's final basis; warm-starts this node's LP when
    # the solver runs with a PreparedLp (dual-feasible re-entry: the
    # matrix is unchanged, only the branching bounds tightened).
    basis: list | None = field(compare=False, default=None)


class BranchBoundBackend:
    """Best-first branch-and-bound MILP solver.

    Args:
        lp_solver: ``"highs"`` to relax with scipy linprog (sparse
            constraint matrices), ``"simplex"`` to use
            :mod:`repro.milp.simplex` (fully self-contained, dense).
        max_nodes: Safety cap on explored nodes.
        warm_start: Solve node relaxations on a shared
            :class:`~repro.milp.simplex.PreparedLp`, warm-starting each
            child from its parent's basis (``lp_solver="simplex"``
            only).  Off by default: results are equal either way, this
            only trades pivots.
    """

    name = "python"

    def __init__(
        self,
        lp_solver: str = "highs",
        max_nodes: int = 200000,
        warm_start: bool = False,
    ) -> None:
        if lp_solver not in ("highs", "simplex"):
            raise ValueError(f"unknown lp_solver {lp_solver!r}")
        if warm_start and lp_solver != "simplex":
            raise ValueError("warm_start requires lp_solver='simplex'")
        self.lp_solver = lp_solver
        self.max_nodes = max_nodes
        self.warm_start = warm_start

    # -- public API ---------------------------------------------------------

    def solve(
        self,
        model: "Model",
        time_limit: float | None = None,
        mip_gap: float | None = None,
    ) -> SolveResult:
        """Solve ``model``; see :meth:`repro.milp.model.Model.solve`."""
        c, a_ub, b_ub, a_eq, b_eq, bounds, integrality = model.to_standard_form(
            sparse=self.lp_solver == "highs"
        )
        result = self._solve_std(
            c, a_ub, b_ub, a_eq, b_eq, bounds, integrality, time_limit, mip_gap
        )
        return finalize_user_sense(
            result, model.objective_sense, model.objective.constant
        )

    def solve_objectives(
        self,
        model: "Model",
        objectives: 'Sequence[tuple["LinExpr | Var", str]]',
        time_limit: float | None = None,
    ) -> list[SolveResult]:
        """Multi-objective fast path: export matrices once, swap ``c``.

        Mirrors :meth:`ScipyBackend.solve_objectives` so Algorithm 1's
        per-neuron batches avoid one standard-form export per objective
        on this backend as well.  With ``warm_start`` the objectives
        additionally share one :class:`~repro.milp.simplex.PreparedLp`
        and each root relaxation re-enters from the previous objective's
        final basis (the constraints are identical — only ``c`` moves).
        """
        _, a_ub, b_ub, a_eq, b_eq, bounds, integrality = model.to_standard_form(
            sparse=self.lp_solver == "highs"
        )
        prepared = (
            simplex.PreparedLp(a_ub, b_ub, a_eq, b_eq, bounds)
            if self.warm_start
            else None
        )
        results = []
        warm = None
        for expr, sense in objectives:
            c, expr = model.objective_vector(expr, sense)
            sink: dict = {}
            res = self._solve_std(
                c, a_ub, b_ub, a_eq, b_eq, bounds, integrality, time_limit, None,
                prepared=prepared, warm_basis=warm, basis_sink=sink,
            )
            warm = sink.get("root", warm)
            results.append(finalize_user_sense(res, sense, expr.constant))
        return results

    def open_session(
        self,
        model: "Model",
        relu_info: object = None,
        warm_start: bool = False,
    ) -> "SolverSession":
        """Open an incremental :class:`~repro.milp.session.SolverSession`.

        With ``lp_solver="simplex"`` and warm starting requested (here or
        at construction) the session is the *native* one: a shared
        :class:`~repro.milp.simplex.PreparedLp` plus basis reuse across
        solves.  Otherwise it is the cached-export re-solve session.
        """
        from repro.milp.session import SolverSession, WarmStartSession

        if (warm_start or self.warm_start) and self.lp_solver == "simplex":
            backend = (
                self
                if self.warm_start
                else BranchBoundBackend(
                    lp_solver="simplex",
                    max_nodes=self.max_nodes,
                    warm_start=True,
                )
            )
            return WarmStartSession(backend, model, relu_info=relu_info)
        return SolverSession(
            self, model, sparse=self.lp_solver == "highs", relu_info=relu_info
        )

    # -- internals ------------------------------------------------------------

    def _solve_std(
        self,
        c: np.ndarray,
        a_ub: object,
        b_ub: np.ndarray,
        a_eq: object,
        b_eq: np.ndarray,
        bounds: list[tuple[float, float]],
        integrality: np.ndarray,
        time_limit: float | None,
        mip_gap: float | None,
        prepared: "simplex.PreparedLp | None" = None,
        warm_basis: "list[int] | None" = None,
        basis_sink: dict | None = None,
    ) -> SolveResult:
        """Run branch-and-bound on a minimization-sense standard form."""
        t0 = time.perf_counter()
        if prepared is None and self.warm_start:
            prepared = simplex.PreparedLp(a_ub, b_ub, a_eq, b_eq, bounds)
        result = self._branch_and_bound(
            c, a_ub, b_ub, a_eq, b_eq, bounds, integrality, time_limit, mip_gap,
            prepared=prepared, warm_basis=warm_basis, basis_sink=basis_sink,
        )
        result.solve_time = time.perf_counter() - t0
        result.backend = f"{self.name}/{self.lp_solver}"
        return result

    def _solve_relaxation(
        self,
        c: np.ndarray,
        a_ub: object,
        b_ub: np.ndarray,
        a_eq: object,
        b_eq: np.ndarray,
        lo: np.ndarray,
        hi: np.ndarray,
        prepared: "simplex.PreparedLp | None" = None,
        basis: "list[int] | None" = None,
    ) -> tuple[SolveStatus, float, np.ndarray, "list[int] | None", int]:
        """LP-relax with the configured engine.

        Returns ``(status, obj, x, basis, iterations)``; ``basis`` is a
        warm-start handle for child nodes (``None`` outside the prepared
        simplex path).
        """
        if prepared is not None:
            lp = prepared.solve(c, lo, hi, basis=basis)
            if lp is not None:
                return lp.status, lp.objective, lp.x, lp.basis, lp.iterations
        bounds = list(zip(lo, hi))
        if self.lp_solver == "highs":
            res = sopt.linprog(
                c=c,
                A_ub=a_ub if a_ub.shape[0] else None,
                b_ub=b_ub if a_ub.shape[0] else None,
                A_eq=a_eq if a_eq.shape[0] else None,
                b_eq=b_eq if a_eq.shape[0] else None,
                bounds=bounds,
                method="highs",
            )
            status = {
                0: SolveStatus.OPTIMAL,
                1: SolveStatus.ITERATION_LIMIT,
                2: SolveStatus.INFEASIBLE,
                3: SolveStatus.UNBOUNDED,
            }.get(res.status, SolveStatus.ERROR)
            x = np.asarray(res.x) if res.x is not None else np.empty(0)
            obj = float(res.fun) if res.fun is not None else math.nan
            return status, obj, x, None, 0
        lp = simplex.solve_lp(c, a_ub, b_ub, a_eq, b_eq, bounds)
        return lp.status, lp.objective, lp.x, None, lp.iterations

    def _branch_and_bound(
        self,
        c: np.ndarray,
        a_ub: object,
        b_ub: np.ndarray,
        a_eq: object,
        b_eq: np.ndarray,
        bounds: list[tuple[float, float]],
        integrality: np.ndarray,
        time_limit: float | None,
        mip_gap: float | None,
        prepared: "simplex.PreparedLp | None" = None,
        warm_basis: "list[int] | None" = None,
        basis_sink: dict | None = None,
    ) -> SolveResult:
        int_cols = np.flatnonzero(integrality)
        lo0 = np.array([b[0] for b in bounds], dtype=float)
        hi0 = np.array([b[1] for b in bounds], dtype=float)

        status, obj, x, root_basis, lp_iters = self._solve_relaxation(
            c, a_ub, b_ub, a_eq, b_eq, lo0, hi0,
            prepared=prepared, basis=warm_basis,
        )
        if basis_sink is not None and root_basis is not None:
            basis_sink["root"] = root_basis
        if status is not SolveStatus.OPTIMAL:
            return SolveResult(
                status=status,
                message="root relaxation not optimal",
                iterations=lp_iters,
            )
        if int_cols.size == 0:
            return SolveResult(
                status=SolveStatus.OPTIMAL, objective=obj, values=x, bound=obj,
                iterations=lp_iters,
            )

        seq = itertools.count()
        heap: list[_Node] = [_Node(obj, next(seq), lo0, hi0, basis=root_basis)]
        incumbent_obj = math.inf
        incumbent_x: np.ndarray | None = None
        nodes_explored = 0
        deadline = None if time_limit is None else time.perf_counter() + time_limit

        while heap:
            if deadline is not None and time.perf_counter() > deadline:
                return self._finish(
                    incumbent_obj,
                    incumbent_x,
                    nodes_explored,
                    SolveStatus.TIME_LIMIT,
                    heap,
                    lp_iters,
                )
            if nodes_explored >= self.max_nodes:
                return self._finish(
                    incumbent_obj,
                    incumbent_x,
                    nodes_explored,
                    SolveStatus.ITERATION_LIMIT,
                    heap,
                    lp_iters,
                )
            node = heapq.heappop(heap)
            if mip_gap is not None and incumbent_x is not None:
                # Best-first order makes the popped node's bound THE
                # best open bound right now — no heap scan needed.  The
                # gap is checked on every pop (not only after incumbent
                # updates), so a slowly-improving bound also terminates.
                gap = abs(incumbent_obj - node.bound) / max(1.0, abs(incumbent_obj))
                if gap <= mip_gap:
                    heapq.heappush(heap, node)  # keep the bound sound
                    break
            if node.bound >= incumbent_obj - 1e-12:
                continue  # pruned by bound
            status, obj, x, node_basis, iters = self._solve_relaxation(
                c, a_ub, b_ub, a_eq, b_eq, node.lo, node.hi,
                prepared=prepared, basis=node.basis,
            )
            lp_iters += iters
            nodes_explored += 1
            if status is not SolveStatus.OPTIMAL or obj >= incumbent_obj - 1e-12:
                continue
            frac_col = self._most_fractional(x, int_cols)
            if frac_col is None:
                incumbent_obj = obj
                incumbent_x = x
                if mip_gap is not None and heap:
                    best_bound = heap[0].bound  # heap is ordered by bound
                    gap = abs(incumbent_obj - best_bound) / max(1.0, abs(incumbent_obj))
                    if gap <= mip_gap:
                        break
                continue
            val = x[frac_col]
            lo_child = node.lo.copy()
            hi_child = node.hi.copy()
            hi_child[frac_col] = math.floor(val)
            if lo_child[frac_col] <= hi_child[frac_col]:
                heapq.heappush(
                    heap, _Node(obj, next(seq), lo_child, hi_child, basis=node_basis)
                )
            lo_child2 = node.lo.copy()
            hi_child2 = node.hi.copy()
            lo_child2[frac_col] = math.ceil(val)
            if lo_child2[frac_col] <= hi_child2[frac_col]:
                heapq.heappush(
                    heap,
                    _Node(obj, next(seq), lo_child2, hi_child2, basis=node_basis),
                )

        return self._finish(
            incumbent_obj, incumbent_x, nodes_explored, SolveStatus.INFEASIBLE,
            heap, lp_iters,
        )

    @staticmethod
    def _most_fractional(x: np.ndarray, int_cols: np.ndarray) -> int | None:
        """Column with fractional part closest to 0.5, or None if integral."""
        if int_cols.size == 0:
            return None
        vals = x[int_cols]
        frac_dist = np.abs(vals - np.round(vals))  # distance from nearest int
        best = int(np.argmax(frac_dist))
        if frac_dist[best] <= _INT_TOL:
            return None
        return int(int_cols[best])

    @staticmethod
    def _finish(
        obj: float,
        x: "np.ndarray | None",
        nodes: int,
        fail_status: SolveStatus,
        heap: "list[_Node]",
        lp_iters: int = 0,
    ) -> SolveResult:
        """Wrap up: report the incumbent if any, else the failure status.

        The sound dual bound is the minimum over the open nodes' LP
        bounds (the heap is ordered by bound, so that is the heap head),
        capped by the incumbent itself: when the search space is
        exhausted — or every open node is dominated — the incumbent is
        the optimum.  Interrupted solves (time/node limits, MIP-gap
        early exit) therefore still report a finite, sound ``bound``.
        """
        best_open = heap[0].bound if heap else math.inf
        if x is not None:
            status = (
                SolveStatus.OPTIMAL
                if fail_status is SolveStatus.INFEASIBLE
                else fail_status
            )
            return SolveResult(
                status=status,
                objective=obj,
                values=x,
                nodes=nodes,
                bound=min(obj, best_open),
                iterations=lp_iters,
            )
        bound = best_open if math.isfinite(best_open) else math.nan
        return SolveResult(
            status=fail_status, nodes=nodes, bound=bound, iterations=lp_iters
        )
