"""Decision variables and affine expressions for the MILP modeling layer.

The expression system is deliberately small: every quantity that appears
in a model is an *affine* expression ``sum_i c_i * x_i + const``.  The
:class:`LinExpr` class stores the coefficients sparsely, keyed by
variable index, which keeps encoding of large twin-network models cheap.
"""

from __future__ import annotations

import enum
import math
from typing import TYPE_CHECKING, Iterable, Mapping, Union

from repro.tol import near_zero

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.milp.model import Constraint

Number = Union[int, float]


class VType(enum.Enum):
    """Type of a decision variable."""

    CONTINUOUS = "continuous"
    BINARY = "binary"
    INTEGER = "integer"

    @classmethod
    def coerce(cls, value: "VType | str") -> "VType":
        """Accept either a :class:`VType` or its string name/value."""
        if isinstance(value, cls):
            return value
        key = str(value).strip().lower()
        aliases = {
            "c": cls.CONTINUOUS,
            "cont": cls.CONTINUOUS,
            "continuous": cls.CONTINUOUS,
            "b": cls.BINARY,
            "bin": cls.BINARY,
            "binary": cls.BINARY,
            "i": cls.INTEGER,
            "int": cls.INTEGER,
            "integer": cls.INTEGER,
        }
        try:
            return aliases[key]
        except KeyError as exc:
            raise ValueError(f"unknown variable type: {value!r}") from exc


class Var:
    """A single decision variable owned by a :class:`~repro.milp.model.Model`.

    Variables support the usual arithmetic operators and comparison
    operators, which build :class:`LinExpr` and
    :class:`~repro.milp.model.Constraint` objects respectively.

    Attributes:
        index: Position of the variable in its model's column order.
        name: Human-readable identifier (unique within the model).
        lb: Lower bound (may be ``-inf``).
        ub: Upper bound (may be ``+inf``).
        vtype: Continuous / binary / integer.
    """

    __slots__ = ("index", "name", "lb", "ub", "vtype", "_model_id")

    def __init__(
        self,
        index: int,
        name: str,
        lb: float,
        ub: float,
        vtype: VType,
        model_id: int,
    ) -> None:
        if lb > ub:
            raise ValueError(f"variable {name!r}: lb {lb} exceeds ub {ub}")
        self.index = index
        self.name = name
        self.lb = float(lb)
        self.ub = float(ub)
        self.vtype = vtype
        self._model_id = model_id

    # -- arithmetic ------------------------------------------------------

    def to_expr(self) -> "LinExpr":
        """Return this variable as a one-term affine expression."""
        return LinExpr({self.index: 1.0}, 0.0, _vars={self.index: self})

    def __add__(self, other: "Var | LinExpr | Number") -> "LinExpr":
        return self.to_expr() + other

    def __radd__(self, other: "Var | LinExpr | Number") -> "LinExpr":
        return self.to_expr() + other

    def __sub__(self, other: "Var | LinExpr | Number") -> "LinExpr":
        return self.to_expr() - other

    def __rsub__(self, other: "Var | LinExpr | Number") -> "LinExpr":
        return (-self.to_expr()) + other

    def __mul__(self, coef: Number) -> "LinExpr":
        return self.to_expr() * coef

    def __rmul__(self, coef: Number) -> "LinExpr":
        return self.to_expr() * coef

    def __truediv__(self, denom: Number) -> "LinExpr":
        return self.to_expr() / denom

    def __neg__(self) -> "LinExpr":
        return self.to_expr() * -1.0

    def __pos__(self) -> "LinExpr":
        return self.to_expr()

    # -- comparisons build constraints ----------------------------------

    def __le__(self, other: "Var | LinExpr | Number") -> "Constraint":  # noqa: D105 - builds a Constraint
        return self.to_expr() <= other

    def __ge__(self, other: "Var | LinExpr | Number") -> "Constraint":  # noqa: D105
        return self.to_expr() >= other

    def __eq__(self, other: object) -> "Constraint":  # type: ignore[override]  # noqa: D105 - builds a Constraint, not a bool
        return self.to_expr() == other

    def __hash__(self) -> int:
        return hash((self._model_id, self.index))

    def __repr__(self) -> str:
        return f"Var({self.name}, [{self.lb}, {self.ub}], {self.vtype.value})"


def as_expr(handle: "Var | LinExpr | Number") -> "LinExpr":
    """Coerce a handle (``Var``, ``LinExpr`` or number) to a :class:`LinExpr`.

    Encoders hand out mixed ``Var``/``LinExpr`` handles (a post-activation
    neuron is a variable, an output distance may be a two-term
    expression); every consumer that builds objectives or constraints
    from them needs this exact coercion.  A ``Var`` is wrapped via
    :meth:`Var.to_expr`, an expression passes through unchanged, and a
    number becomes a constant expression.
    """
    if isinstance(handle, Var):
        return handle.to_expr()
    return LinExpr._as_expr(handle)


class LinExpr:
    """A sparse affine expression ``sum coef[i] * var[i] + constant``.

    Instances are immutable from the caller's perspective: all operators
    return new expressions.  Internal construction reuses dictionaries
    when safe.
    """

    __slots__ = ("coeffs", "constant", "_vars")

    def __init__(
        self,
        coeffs: Mapping[int, float] | None = None,
        constant: float = 0.0,
        _vars: Mapping[int, Var] | None = None,
    ) -> None:
        self.coeffs: dict[int, float] = dict(coeffs or {})
        self.constant = float(constant)
        # Index -> Var mapping so expressions stay self-describing even
        # when combined across helper functions.
        self._vars: dict[int, Var] = dict(_vars or {})

    # -- construction helpers -------------------------------------------

    @classmethod
    def constant_expr(cls, value: Number) -> "LinExpr":
        """An expression with no variables."""
        return cls({}, float(value))

    @classmethod
    def weighted_sum(
        cls,
        variables: Iterable[Var],
        weights: Iterable[Number],
        constant: Number = 0.0,
    ) -> "LinExpr":
        """Build ``sum w_j * v_j + constant`` in one pass.

        This is the hot path used by the network encoders; it avoids the
        quadratic blow-up of repeated ``+`` on growing expressions.
        """
        coeffs: dict[int, float] = {}
        vars_map: dict[int, Var] = {}
        for var, weight in zip(variables, weights):
            w = float(weight)
            # repro-lint: ignore[RPR001] — structural sparsity pruning: only exactly-zero weights may be dropped; a tolerance here would change the model
            if w == 0.0:
                continue
            idx = var.index
            if idx in coeffs:
                coeffs[idx] += w
            else:
                coeffs[idx] = w
                vars_map[idx] = var
        return cls(coeffs, float(constant), _vars=vars_map)

    def copy(self) -> "LinExpr":
        """Return an independent copy of this expression."""
        return LinExpr(dict(self.coeffs), self.constant, _vars=dict(self._vars))

    # -- inspection ------------------------------------------------------

    def variables(self) -> list[Var]:
        """Variables with a non-zero coefficient, in index order."""
        return [self._vars[i] for i in sorted(self.coeffs) if i in self._vars]

    def coefficient(self, var: Var) -> float:
        """Coefficient of ``var`` (0 if absent)."""
        return self.coeffs.get(var.index, 0.0)

    def is_constant(self) -> bool:
        """True when the expression has no (numerically relevant) variable terms.

        Tolerance-aware: coefficients below the repo-wide jitter budget
        (:data:`repro.tol.ATOL`) — e.g. residues of catastrophic
        cancellation in ``a - a`` chains — count as absent.
        """
        return all(near_zero(c) for c in self.coeffs.values())

    def __len__(self) -> int:
        return len(self.coeffs)

    # -- arithmetic ------------------------------------------------------

    @staticmethod
    def _as_expr(other: "Var | LinExpr | Number") -> "LinExpr":
        if isinstance(other, LinExpr):
            return other
        if isinstance(other, Var):
            return other.to_expr()
        if isinstance(other, (int, float)):
            if math.isnan(other):
                raise ValueError("NaN is not a valid expression constant")
            return LinExpr.constant_expr(other)
        raise TypeError(f"cannot interpret {other!r} as a linear expression")

    def __add__(self, other: "Var | LinExpr | Number") -> "LinExpr":
        rhs = self._as_expr(other)
        coeffs = dict(self.coeffs)
        vars_map = dict(self._vars)
        for idx, coef in rhs.coeffs.items():
            coeffs[idx] = coeffs.get(idx, 0.0) + coef
            if idx not in vars_map and idx in rhs._vars:
                vars_map[idx] = rhs._vars[idx]
        return LinExpr(coeffs, self.constant + rhs.constant, _vars=vars_map)

    def __radd__(self, other: "Var | LinExpr | Number") -> "LinExpr":
        return self.__add__(other)

    def __sub__(self, other: "Var | LinExpr | Number") -> "LinExpr":
        return self.__add__(self._as_expr(other) * -1.0)

    def __rsub__(self, other: "Var | LinExpr | Number") -> "LinExpr":
        return (self * -1.0).__add__(other)

    def __mul__(self, coef: Number) -> "LinExpr":
        if not isinstance(coef, (int, float)):
            raise TypeError("expressions may only be scaled by numbers")
        c = float(coef)
        return LinExpr(
            {i: v * c for i, v in self.coeffs.items()},
            self.constant * c,
            _vars=dict(self._vars),
        )

    def __rmul__(self, coef: Number) -> "LinExpr":
        return self.__mul__(coef)

    def __truediv__(self, denom: Number) -> "LinExpr":
        if denom == 0:
            raise ZeroDivisionError("division of expression by zero")
        return self.__mul__(1.0 / float(denom))

    def __neg__(self) -> "LinExpr":
        return self.__mul__(-1.0)

    def __pos__(self) -> "LinExpr":
        return self

    # -- comparison -> Constraint ---------------------------------------

    def __le__(self, other: "Var | LinExpr | Number") -> "Constraint":
        from repro.milp.model import Constraint, Sense

        return Constraint._from_sides(self, self._as_expr(other), Sense.LE)

    def __ge__(self, other: "Var | LinExpr | Number") -> "Constraint":
        from repro.milp.model import Constraint, Sense

        return Constraint._from_sides(self, self._as_expr(other), Sense.GE)

    def __eq__(self, other: object) -> "Constraint":  # type: ignore[override]  # noqa: D105 - builds a Constraint, not a bool
        from repro.milp.model import Constraint, Sense

        return Constraint._from_sides(self, self._as_expr(other), Sense.EQ)

    def __hash__(self) -> int:  # expressions are not hashable by value
        return id(self)

    # -- evaluation ------------------------------------------------------

    def value(self, assignment: Mapping[int, float]) -> float:
        """Evaluate the expression under ``{var_index: value}``."""
        total = self.constant
        for idx, coef in self.coeffs.items():
            total += coef * assignment[idx]
        return total

    def __repr__(self) -> str:
        parts = []
        for idx in sorted(self.coeffs):
            coef = self.coeffs[idx]
            name = self._vars[idx].name if idx in self._vars else f"x{idx}"
            parts.append(f"{coef:+g}*{name}")
        if self.constant or not parts:
            parts.append(f"{self.constant:+g}")
        return " ".join(parts)
