"""The :class:`Model` container: variables, constraints, objective, solve."""

from __future__ import annotations

import enum
import itertools
import math
from typing import Iterable, Sequence

import numpy as np

from repro.milp.expr import LinExpr, Number, Var, VType
from repro.milp.solution import SolveResult, SolveStatus

_model_counter = itertools.count()


class Sense(enum.Enum):
    """Constraint sense."""

    LE = "<="
    GE = ">="
    EQ = "=="


class Constraint:
    """A linear constraint ``expr (<=|>=|==) 0`` in normalized form.

    Stored internally as ``lhs_expr sense rhs_const`` with the constant
    moved to the right-hand side, i.e. ``sum c_i x_i  sense  rhs``.
    """

    __slots__ = ("expr", "sense", "rhs", "name")

    def __init__(self, expr: LinExpr, sense: Sense, rhs: float, name: str = "") -> None:
        self.expr = expr
        self.sense = sense
        self.rhs = float(rhs)
        self.name = name

    @classmethod
    def _from_sides(cls, lhs: LinExpr, rhs: LinExpr, sense: Sense) -> "Constraint":
        diff = lhs - rhs
        const = diff.constant
        diff.constant = 0.0
        return cls(diff, sense, -const)

    def violation(self, assignment) -> float:
        """Amount by which the constraint is violated (0 when satisfied)."""
        lhs = self.expr.value(assignment)
        if self.sense is Sense.LE:
            return max(0.0, lhs - self.rhs)
        if self.sense is Sense.GE:
            return max(0.0, self.rhs - lhs)
        return abs(lhs - self.rhs)

    def __repr__(self) -> str:
        label = f"[{self.name}] " if self.name else ""
        return f"{label}{self.expr!r} {self.sense.value} {self.rhs:g}"


class Model:
    """A mixed-integer linear program under construction.

    The model owns its variables; expressions and constraints reference
    them by index.  Solving delegates to a pluggable backend (HiGHS via
    scipy by default, or the pure-Python branch-and-bound solver).
    """

    def __init__(self, name: str = "model") -> None:
        self.name = name
        self._id = next(_model_counter)
        self.variables: list[Var] = []
        self.constraints: list[Constraint] = []
        self.objective: LinExpr = LinExpr.constant_expr(0.0)
        self.objective_sense: str = "min"
        self._names: set[str] = set()

    # -- variables -------------------------------------------------------

    def add_var(
        self,
        lb: float = 0.0,
        ub: float = math.inf,
        name: str | None = None,
        vtype: VType | str = VType.CONTINUOUS,
    ) -> Var:
        """Create and register a new decision variable.

        Args:
            lb: Lower bound; use ``-math.inf`` for a free variable.
            ub: Upper bound.
            name: Optional unique name; auto-generated when omitted.
            vtype: ``"continuous"``, ``"binary"`` or ``"integer"``.

        Returns:
            The new :class:`Var`.
        """
        vtype = VType.coerce(vtype)
        if vtype is VType.BINARY:
            lb = max(0.0, lb)
            ub = min(1.0, ub)
        index = len(self.variables)
        if name is None:
            name = f"v{index}"
        if name in self._names:
            name = f"{name}#{index}"
        self._names.add(name)
        var = Var(index, name, lb, ub, vtype, self._id)
        self.variables.append(var)
        return var

    def add_vars(
        self,
        count: int,
        lb: float = 0.0,
        ub: float = math.inf,
        prefix: str = "v",
        vtype: VType | str = VType.CONTINUOUS,
    ) -> list[Var]:
        """Create ``count`` variables sharing bounds and type."""
        return [
            self.add_var(lb=lb, ub=ub, name=f"{prefix}[{j}]", vtype=vtype)
            for j in range(count)
        ]

    @property
    def num_vars(self) -> int:
        """Number of variables in the model."""
        return len(self.variables)

    @property
    def num_binary(self) -> int:
        """Number of binary/integer variables."""
        return sum(1 for v in self.variables if v.vtype is not VType.CONTINUOUS)

    # -- constraints ------------------------------------------------------

    def add_constr(self, constraint: Constraint, name: str = "") -> Constraint:
        """Register a constraint built via expression comparisons."""
        if not isinstance(constraint, Constraint):
            raise TypeError(
                "add_constr expects a Constraint (use <=, >= or == on expressions)"
            )
        if name:
            constraint.name = name
        self.constraints.append(constraint)
        return constraint

    def add_constrs(self, constraints: Iterable[Constraint]) -> list[Constraint]:
        """Register several constraints at once."""
        return [self.add_constr(c) for c in constraints]

    @property
    def num_constrs(self) -> int:
        """Number of registered linear constraints."""
        return len(self.constraints)

    # -- objective --------------------------------------------------------

    def set_objective(self, expr: LinExpr | Var | Number, sense: str = "min") -> None:
        """Set the objective function and its direction.

        Args:
            expr: Affine objective.
            sense: ``"min"`` or ``"max"``.
        """
        if sense not in ("min", "max"):
            raise ValueError(f"objective sense must be 'min' or 'max', got {sense!r}")
        self.objective = LinExpr._as_expr(expr)
        self.objective_sense = sense

    # -- matrix form -------------------------------------------------------

    def objective_vector(
        self, expr: "LinExpr | Var", sense: str
    ) -> tuple[np.ndarray, LinExpr]:
        """Minimization-sense dense objective vector for ``expr``.

        Shared by the backends' multi-objective fast paths so objective
        assembly (Var coercion, max-sense negation, sense validation)
        cannot drift between them.

        Returns:
            ``(c, expr)`` where ``c`` is negated for ``sense == "max"``
            and ``expr`` is the coerced :class:`LinExpr` (its
            ``constant`` still has to be re-applied to results, which
            :func:`~repro.milp.solution.finalize_user_sense` does).
        """
        if sense not in ("min", "max"):
            raise ValueError(f"bad sense {sense!r}")
        expr = LinExpr._as_expr(expr)
        c = np.zeros(self.num_vars)
        for idx, coef in expr.coeffs.items():
            c[idx] = coef
        if sense == "max":
            c = -c
        return c, expr

    def to_standard_form(self, sparse: bool = False):
        """Export ``(c, A_ub, b_ub, A_eq, b_eq, bounds, integrality)``.

        The objective vector ``c`` is always stated for *minimization*;
        callers must negate the optimum when ``objective_sense == 'max'``
        (the backends do this).

        Args:
            sparse: When True, ``A_ub``/``A_eq`` are assembled directly
                as ``scipy.sparse.csr_matrix`` from COO triplets — no
                dense ``(rows, n)`` intermediate is ever allocated.
                Encoded networks have a few non-zeros per row, so this
                is the fast path for anything beyond toy models; the
                scipy backend uses it by default.  The dense export
                remains for the self-contained simplex solver.
        """
        n = self.num_vars
        c = np.zeros(n)
        for idx, coef in self.objective.coeffs.items():
            c[idx] = coef
        if self.objective_sense == "max":
            c = -c

        ub_rows: list[tuple[dict[int, float], float]] = []
        eq_rows: list[tuple[dict[int, float], float]] = []
        for con in self.constraints:
            if con.sense is Sense.LE:
                ub_rows.append((con.expr.coeffs, con.rhs))
            elif con.sense is Sense.GE:
                neg = {i: -v for i, v in con.expr.coeffs.items()}
                ub_rows.append((neg, -con.rhs))
            else:
                eq_rows.append((con.expr.coeffs, con.rhs))

        if sparse:
            import scipy.sparse as sp

            def build(rows):
                data: list[float] = []
                row_idx: list[int] = []
                col_idx: list[int] = []
                vec = np.zeros(len(rows))
                for r, (coeffs, rhs) in enumerate(rows):
                    vec[r] = rhs
                    for idx, coef in coeffs.items():
                        row_idx.append(r)
                        col_idx.append(idx)
                        data.append(coef)
                mat = sp.coo_matrix(
                    (data, (row_idx, col_idx)), shape=(len(rows), n)
                ).tocsr()
                return mat, vec

        else:

            def build(rows):
                mat = np.zeros((len(rows), n))
                vec = np.zeros(len(rows))
                for r, (coeffs, rhs) in enumerate(rows):
                    for idx, coef in coeffs.items():
                        mat[r, idx] = coef
                    vec[r] = rhs
                return mat, vec

        a_ub, b_ub = build(ub_rows)
        a_eq, b_eq = build(eq_rows)
        bounds = [(v.lb, v.ub) for v in self.variables]
        integrality = np.array(
            [0 if v.vtype is VType.CONTINUOUS else 1 for v in self.variables],
            dtype=int,
        )
        return c, a_ub, b_ub, a_eq, b_eq, bounds, integrality

    # -- solving ------------------------------------------------------------

    def solve(
        self,
        backend: str = "scipy",
        time_limit: float | None = None,
        mip_gap: float | None = None,
    ) -> SolveResult:
        """Solve the model with the requested backend.

        Args:
            backend: ``"scipy"`` (HiGHS) or ``"python"`` (own
                branch-and-bound over HiGHS/simplex LP relaxations).
            time_limit: Optional wall-clock limit in seconds.
            mip_gap: Optional relative MIP gap termination tolerance.

        Returns:
            A :class:`~repro.milp.solution.SolveResult`.
        """
        from repro.milp.backend import get_backend

        return get_backend(backend).solve(self, time_limit=time_limit, mip_gap=mip_gap)

    def solve_many(
        self,
        objectives: Sequence[tuple[LinExpr | Var, str]],
        backend: str = "scipy",
        time_limit: float | None = None,
    ) -> list[SolveResult]:
        """Solve the same constraint system under several objectives.

        The constraint matrices are exported once and reused, which is
        the hot path of Algorithm 1 (four objectives per neuron over one
        sub-network encoding).

        Args:
            objectives: Pairs ``(expression, "min"|"max")``.
            backend: Backend name.  Both built-in backends implement
                ``solve_objectives`` (export once, swap only ``c``);
                third-party backends without it fall back to repeated
                solves with the model's objective restored afterwards.
            time_limit: Per-solve time limit.

        Returns:
            One :class:`SolveResult` per objective, in order.
        """
        from repro.milp.backend import get_backend

        solver = get_backend(backend)
        if hasattr(solver, "solve_objectives"):
            return solver.solve_objectives(self, objectives, time_limit=time_limit)
        results = []
        saved = (self.objective, self.objective_sense)
        try:
            for expr, sense in objectives:
                self.set_objective(expr, sense=sense)
                results.append(solver.solve(self, time_limit=time_limit))
        finally:
            self.objective, self.objective_sense = saved
        return results

    def relaxed(self) -> "Model":
        """Return a copy with all integrality requirements dropped."""
        clone = Model(f"{self.name}_relaxed")
        for var in self.variables:
            clone.add_var(lb=var.lb, ub=var.ub, name=var.name, vtype=VType.CONTINUOUS)
        clone.constraints = [
            Constraint(c.expr.copy(), c.sense, c.rhs, c.name) for c in self.constraints
        ]
        clone.objective = self.objective.copy()
        clone.objective_sense = self.objective_sense
        return clone

    # -- validation ----------------------------------------------------------

    def check_feasible(self, values: Sequence[float], tol: float = 1e-6) -> bool:
        """Check a full assignment against bounds and all constraints."""
        if len(values) != self.num_vars:
            raise ValueError("assignment length does not match variable count")
        assignment = {i: float(v) for i, v in enumerate(values)}
        for var in self.variables:
            val = assignment[var.index]
            if val < var.lb - tol or val > var.ub + tol:
                return False
            if var.vtype is not VType.CONTINUOUS and abs(val - round(val)) > tol:
                return False
        return all(con.violation(assignment) <= tol for con in self.constraints)

    def __repr__(self) -> str:
        return (
            f"Model({self.name!r}, vars={self.num_vars}, "
            f"int={self.num_binary}, constrs={self.num_constrs})"
        )
