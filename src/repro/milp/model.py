"""The :class:`Model` container: variables, constraints, objective, solve."""

from __future__ import annotations

import enum
import itertools
import math
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.milp.session import SolverSession

import numpy as np

from repro import _sanitize
from repro.milp.expr import LinExpr, Number, Var, VType
from repro.milp.solution import SolveResult, SolveStatus

_model_counter = itertools.count()


class Sense(enum.Enum):
    """Constraint sense."""

    LE = "<="
    GE = ">="
    EQ = "=="


#: Compact per-row sense codes used inside :class:`ConstraintBlock`.
_SENSE_LE, _SENSE_GE, _SENSE_EQ = 0, 1, 2


class Constraint:
    """A linear constraint ``expr (<=|>=|==) 0`` in normalized form.

    Stored internally as ``lhs_expr sense rhs_const`` with the constant
    moved to the right-hand side, i.e. ``sum c_i x_i  sense  rhs``.
    """

    __slots__ = ("expr", "sense", "rhs", "name")

    def __init__(self, expr: LinExpr, sense: Sense, rhs: float, name: str = "") -> None:
        self.expr = expr
        self.sense = sense
        self.rhs = float(rhs)
        self.name = name

    @classmethod
    def _from_sides(cls, lhs: LinExpr, rhs: LinExpr, sense: Sense) -> "Constraint":
        diff = lhs - rhs
        const = diff.constant
        diff.constant = 0.0
        return cls(diff, sense, -const)

    def violation(self, assignment: "Mapping[int, float]") -> float:
        """Amount by which the constraint is violated (0 when satisfied)."""
        lhs = self.expr.value(assignment)
        if self.sense is Sense.LE:
            return max(0.0, lhs - self.rhs)
        if self.sense is Sense.GE:
            return max(0.0, self.rhs - lhs)
        return abs(lhs - self.rhs)

    def __repr__(self) -> str:
        label = f"[{self.name}] " if self.name else ""
        return f"{label}{self.expr!r} {self.sense.value} {self.rhs:g}"


_SENSE_CODES = {Sense.LE: _SENSE_LE, Sense.GE: _SENSE_GE, Sense.EQ: _SENSE_EQ}


class ConstraintBlock:
    """A batch of linear rows stored as COO triplets over variable indices.

    This is the array-native counterpart of a list of :class:`Constraint`
    objects: ``k`` rows are held as parallel numpy arrays instead of one
    coefficient dict per row, so whole affine layers can be appended (and
    later exported to standard form) without any per-coefficient Python
    work.  Rows are normalized at construction: ``>=`` rows are negated
    into ``<=`` form, so only ``is_eq`` distinguishes row kinds.

    Attributes:
        data: Coefficient values, one per non-zero entry.
        row: Local row index (``0..num_rows-1``) per entry.
        col: Global variable index per entry.
        is_eq: Per-row flag; True for ``==`` rows, False for ``<=`` rows.
        rhs: Per-row right-hand side (already negated for former ``>=``).
        name: Optional block label for debugging.
    """

    __slots__ = ("data", "row", "col", "is_eq", "rhs", "name")

    def __init__(
        self,
        data: np.ndarray,
        row: np.ndarray,
        col: np.ndarray,
        is_eq: np.ndarray,
        rhs: np.ndarray,
        name: str = "",
    ) -> None:
        # Copy on ingest (RPR002): the block owns its arrays outright,
        # so neither a caller mutating its triplets afterwards nor the
        # sense normalization in add_linear_rows (which negates block-
        # owned entries in place) can alias foreign memory — the same
        # hazard class as the PR-1 ``Box.__post_init__`` bug.
        self.data = np.array(data, dtype=float, copy=True)
        self.row = np.array(row, dtype=np.int64, copy=True)
        self.col = np.array(col, dtype=np.int64, copy=True)
        self.is_eq = np.array(is_eq, dtype=bool, copy=True)
        self.rhs = np.array(rhs, dtype=float, copy=True)
        self.name = name
        if not (self.data.shape == self.row.shape == self.col.shape):
            raise ValueError("COO triplet arrays must have matching lengths")
        if self.is_eq.shape != self.rhs.shape:
            raise ValueError("is_eq and rhs must have one entry per row")

    @property
    def num_rows(self) -> int:
        """Number of rows in the block."""
        return int(self.rhs.shape[0])

    @property
    def num_entries(self) -> int:
        """Number of stored coefficients."""
        return int(self.data.shape[0])

    def copy(self) -> "ConstraintBlock":
        """Independent copy (the constructor's copy-on-ingest duplicates)."""
        return ConstraintBlock(
            self.data, self.row, self.col, self.is_eq, self.rhs, self.name
        )

    def activities(self, values: np.ndarray) -> np.ndarray:
        """Row activities ``A @ values`` (duplicate entries summed)."""
        acc = np.zeros(self.num_rows)
        np.add.at(acc, self.row, self.data * values[self.col])
        return acc

    def __repr__(self) -> str:
        label = f"[{self.name}] " if self.name else ""
        return (
            f"{label}ConstraintBlock(rows={self.num_rows}, "
            f"nnz={self.num_entries}, eq={int(self.is_eq.sum())})"
        )


class Model:
    """A mixed-integer linear program under construction.

    The model owns its variables; expressions and constraints reference
    them by index.  Constraints come in two interchangeable forms:
    per-row :class:`Constraint` objects built with ``<=``/``>=``/``==``
    on expressions, and :class:`ConstraintBlock` batches appended
    array-natively via :meth:`add_linear_rows` (the encoders' fast
    path).  Solving delegates to a pluggable backend (HiGHS via scipy by
    default, or the pure-Python branch-and-bound solver).
    """

    def __init__(self, name: str = "model") -> None:
        self.name = name
        self._id = next(_model_counter)
        self.variables: list[Var] = []
        self.constraints: list[Constraint] = []
        self._blocks: list[ConstraintBlock] = []
        self.objective: LinExpr = LinExpr.constant_expr(0.0)
        self.objective_sense: str = "min"
        self._names: set[str] = set()

    # -- variables -------------------------------------------------------

    def add_var(
        self,
        lb: float = 0.0,
        ub: float = math.inf,
        name: str | None = None,
        vtype: VType | str = VType.CONTINUOUS,
    ) -> Var:
        """Create and register a new decision variable.

        Args:
            lb: Lower bound; use ``-math.inf`` for a free variable.
            ub: Upper bound.
            name: Optional unique name; auto-generated when omitted.
            vtype: ``"continuous"``, ``"binary"`` or ``"integer"``.

        Returns:
            The new :class:`Var`.
        """
        vtype = VType.coerce(vtype)
        if vtype is VType.BINARY:
            lb = max(0.0, lb)
            ub = min(1.0, ub)
        index = len(self.variables)
        if name is None:
            name = f"v{index}"
        if name in self._names:
            name = f"{name}#{index}"
        self._names.add(name)
        var = Var(index, name, lb, ub, vtype, self._id)
        self.variables.append(var)
        return var

    def add_vars(
        self,
        count: int,
        lb: float = 0.0,
        ub: float = math.inf,
        prefix: str = "v",
        vtype: VType | str = VType.CONTINUOUS,
    ) -> list[Var]:
        """Create ``count`` variables sharing bounds and type."""
        return [
            self.add_var(lb=lb, ub=ub, name=f"{prefix}[{j}]", vtype=vtype)
            for j in range(count)
        ]

    def add_vars_array(
        self,
        count: int,
        lb: float | np.ndarray = 0.0,
        ub: float | np.ndarray = math.inf,
        prefix: str = "v",
        vtype: VType | str = VType.CONTINUOUS,
    ) -> list[Var]:
        """Create ``count`` variables in one call with per-element bounds.

        Unlike :meth:`add_vars`, the bounds may be arrays (one entry per
        variable), which is how the encoders append a whole layer of
        input/pre-activation variables at once.

        Args:
            count: Number of variables to create.
            lb: Scalar or length-``count`` array of lower bounds.
            ub: Scalar or length-``count`` array of upper bounds.
            prefix: Names become ``f"{prefix}[{j}]"``.
            vtype: Shared variable type.

        Returns:
            The new variables, in index order.
        """
        lbs = np.broadcast_to(np.asarray(lb, dtype=float), (count,))
        ubs = np.broadcast_to(np.asarray(ub, dtype=float), (count,))
        return [
            self.add_var(
                lb=float(lbs[j]), ub=float(ubs[j]),
                name=f"{prefix}[{j}]", vtype=vtype,
            )
            for j in range(count)
        ]

    @property
    def num_vars(self) -> int:
        """Number of variables in the model."""
        return len(self.variables)

    @property
    def num_binary(self) -> int:
        """Number of binary/integer variables."""
        return sum(1 for v in self.variables if v.vtype is not VType.CONTINUOUS)

    # -- constraints ------------------------------------------------------

    def add_constr(self, constraint: Constraint, name: str = "") -> Constraint:
        """Register a constraint built via expression comparisons."""
        if not isinstance(constraint, Constraint):
            raise TypeError(
                "add_constr expects a Constraint (use <=, >= or == on expressions)"
            )
        if name:
            constraint.name = name
        self.constraints.append(constraint)
        return constraint

    def add_constrs(self, constraints: Iterable[Constraint]) -> list[Constraint]:
        """Register several constraints at once."""
        return [self.add_constr(c) for c in constraints]

    def add_linear_rows(
        self,
        coeffs: object,
        senses: "Sense | str | Sequence[Sense | str] | np.ndarray",
        rhs: "float | Sequence[float] | np.ndarray",
        name: str = "",
    ) -> ConstraintBlock:
        """Append a whole block of linear rows in one array-native call.

        This is the vectorized counterpart of repeated :meth:`add_constr`
        calls: the rows are stored as COO triplets and flow into
        :meth:`to_standard_form` by concatenation, never materializing a
        per-row coefficient dict.  The network encoders use it to append
        one affine layer (``y - W x = b``) per call.

        Args:
            coeffs: One of
                * a dense ``(k, num_vars)`` array,
                * a scipy sparse matrix of that shape,
                * COO triplets ``(data, (row, col))`` with ``row`` local
                  to this block (``0..k-1``) and ``col`` global variable
                  indices.  Duplicate ``(row, col)`` entries are summed.
            senses: A single sense for every row or a length-``k``
                sequence; each entry a :class:`Sense` or one of
                ``"<="``, ``">="``, ``"=="``.
            rhs: Scalar or length-``k`` right-hand-side array.  For
                triplet input at least one of ``rhs``/``senses`` must be
                a length-``k`` sequence — the row count is taken from
                it, never inferred from the triplets (all-zero trailing
                rows would silently vanish).
            name: Optional block label.

        Returns:
            The registered :class:`ConstraintBlock` (rows normalized:
            ``>=`` rows are stored negated as ``<=``).
        """
        n = self.num_vars
        if isinstance(coeffs, tuple):
            data, (row, col) = coeffs
            # No copies here: ConstraintBlock.__init__ copies on ingest,
            # so the caller's triplet arrays are never aliased.
            data = np.asarray(data, dtype=float)
            row = np.asarray(row, dtype=np.int64)
            col = np.asarray(col, dtype=np.int64)
            num_rows = self._block_row_count(senses, rhs, row)
        elif hasattr(coeffs, "tocoo"):
            if int(coeffs.shape[1]) != n:
                raise ValueError(
                    f"coefficient block has {coeffs.shape[1]} columns, "
                    f"model has {n} variables"
                )
            coo = coeffs.tocoo()
            # tocoo() may share the caller's data array; the block's
            # copy-on-ingest constructor below makes that harmless.
            data = np.asarray(coo.data, dtype=float)
            row = np.asarray(coo.row, dtype=np.int64)
            col = np.asarray(coo.col, dtype=np.int64)
            num_rows = int(coeffs.shape[0])
        else:
            dense = np.asarray(coeffs, dtype=float)
            if dense.ndim != 2:
                raise ValueError("dense coefficient block must be 2-D")
            if dense.shape[1] != n:
                raise ValueError(
                    f"coefficient block has {dense.shape[1]} columns, "
                    f"model has {n} variables"
                )
            r, c = np.nonzero(dense)
            data = dense[r, c]
            row = r.astype(np.int64)
            col = c.astype(np.int64)
            num_rows = int(dense.shape[0])
        if data.shape != row.shape or data.shape != col.shape:
            raise ValueError("COO triplet arrays must have matching lengths")
        if row.size:
            if row.min() < 0 or row.max() >= num_rows:
                raise ValueError("block row index out of range")
            if col.min() < 0 or col.max() >= n:
                raise ValueError("block column index exceeds num_vars")
        if not np.isfinite(data).all():
            raise ValueError("block coefficients must be finite")

        sense_codes = self._coerce_senses(senses, num_rows)
        rhs_arr = np.array(
            np.broadcast_to(np.asarray(rhs, dtype=float), (num_rows,))
        )
        if not np.isfinite(rhs_arr).all():
            raise ValueError("block right-hand sides must be finite")

        block = ConstraintBlock(
            data, row, col, sense_codes == _SENSE_EQ, rhs_arr, name
        )
        # Normalize >= rows to <= form on the block's own (copied)
        # arrays — the caller's inputs are already out of reach.
        ge_rows = sense_codes == _SENSE_GE
        if ge_rows.any():
            flip = ge_rows[block.row]
            block.data[flip] = -block.data[flip]
            block.rhs[ge_rows] = -block.rhs[ge_rows]
        self._blocks.append(block)
        return block

    @staticmethod
    def _block_row_count(senses: object, rhs: object, row: np.ndarray) -> int:
        """Row count of a triplet block, from the rhs/senses length.

        Inferring it from ``row.max() + 1`` would silently drop trailing
        rows whose coefficients are all zero (``0 <= rhs`` rows, which
        can encode infeasibility), so a length-bearing ``rhs`` or
        ``senses`` is required for triplet input.
        """
        for candidate in (rhs, senses):
            if isinstance(candidate, np.ndarray):
                return int(candidate.shape[0])
            if isinstance(candidate, (list, tuple)):
                return len(candidate)
        raise ValueError(
            "COO-triplet blocks need the row count: pass rhs (or senses) "
            "as a length-k sequence, not scalars"
        )

    @staticmethod
    def _coerce_senses(
        senses: "Sense | str | Sequence[Sense | str] | np.ndarray",
        num_rows: int,
    ) -> np.ndarray:
        """Normalize senses to an int code array (0 LE, 1 GE, 2 EQ)."""

        def code(s: "Sense | str") -> int:
            if not isinstance(s, Sense):
                s = Sense(str(s))
            return _SENSE_CODES[s]

        if isinstance(senses, (Sense, str)):
            return np.full(num_rows, code(senses), dtype=np.int8)
        arr = np.fromiter((code(s) for s in senses), dtype=np.int8)
        if arr.shape[0] != num_rows:
            raise ValueError(
                f"got {arr.shape[0]} senses for {num_rows} block rows"
            )
        return arr

    @property
    def num_constrs(self) -> int:
        """Number of linear constraints (per-row plus block rows)."""
        return len(self.constraints) + sum(b.num_rows for b in self._blocks)

    @property
    def blocks(self) -> list[ConstraintBlock]:
        """Registered constraint blocks, in insertion order."""
        return self._blocks

    # -- objective --------------------------------------------------------

    def set_objective(self, expr: LinExpr | Var | Number, sense: str = "min") -> None:
        """Set the objective function and its direction.

        Args:
            expr: Affine objective.
            sense: ``"min"`` or ``"max"``.
        """
        if sense not in ("min", "max"):
            raise ValueError(f"objective sense must be 'min' or 'max', got {sense!r}")
        self.objective = LinExpr._as_expr(expr)
        self.objective_sense = sense

    # -- matrix form -------------------------------------------------------

    def objective_vector(
        self, expr: "LinExpr | Var", sense: str
    ) -> tuple[np.ndarray, LinExpr]:
        """Minimization-sense dense objective vector for ``expr``.

        Shared by the backends' multi-objective fast paths so objective
        assembly (Var coercion, max-sense negation, sense validation)
        cannot drift between them.

        Returns:
            ``(c, expr)`` where ``c`` is negated for ``sense == "max"``
            and ``expr`` is the coerced :class:`LinExpr` (its
            ``constant`` still has to be re-applied to results, which
            :func:`~repro.milp.solution.finalize_user_sense` does).
        """
        if sense not in ("min", "max"):
            raise ValueError(f"bad sense {sense!r}")
        expr = LinExpr._as_expr(expr)
        c = np.zeros(self.num_vars)
        for idx, coef in expr.coeffs.items():
            c[idx] = coef
        if sense == "max":
            c = -c
        return c, expr

    def to_standard_form(self, sparse: bool = False) -> tuple[
        np.ndarray,
        object,
        np.ndarray,
        object,
        np.ndarray,
        list[tuple[float, float]],
        np.ndarray,
    ]:
        """Export ``(c, A_ub, b_ub, A_eq, b_eq, bounds, integrality)``.

        The objective vector ``c`` is always stated for *minimization*;
        callers must negate the optimum when ``objective_sense == 'max'``
        (the backends do this).

        Row order: per-row :class:`Constraint` objects first (insertion
        order), then :class:`ConstraintBlock` rows (block insertion
        order).  Mathematically the order is irrelevant; it is fixed so
        repeated exports of one model are reproducible.

        Args:
            sparse: When True, ``A_ub``/``A_eq`` are assembled directly
                as ``scipy.sparse.csr_matrix`` from COO triplets — no
                dense ``(rows, n)`` intermediate is ever allocated.
                Blocks appended via :meth:`add_linear_rows` flow in by
                triplet concatenation without any per-row Python walk.
                Encoded networks have a few non-zeros per row, so this
                is the fast path for anything beyond toy models; the
                scipy backend uses it by default.  The dense export
                remains for the self-contained simplex solver.
        """
        n = self.num_vars
        c = np.zeros(n)
        for idx, coef in self.objective.coeffs.items():
            c[idx] = coef
        if self.objective_sense == "max":
            c = -c

        ub_rows: list[tuple[dict[int, float], float]] = []
        eq_rows: list[tuple[dict[int, float], float]] = []
        for con in self.constraints:
            if con.sense is Sense.LE:
                ub_rows.append((con.expr.coeffs, con.rhs))
            elif con.sense is Sense.GE:
                neg = {i: -v for i, v in con.expr.coeffs.items()}
                ub_rows.append((neg, -con.rhs))
            else:
                eq_rows.append((con.expr.coeffs, con.rhs))

        # Per-block row offsets into the final ub/eq matrices.  Block
        # rows keep their relative order; ``rank`` maps a block-local
        # row to its position among that block's ub (or eq) rows.
        num_ub, num_eq = len(ub_rows), len(eq_rows)
        placements = []
        for blk in self._blocks:
            ub_rank = np.cumsum(~blk.is_eq) - 1
            eq_rank = np.cumsum(blk.is_eq) - 1
            placements.append((blk, num_ub, num_eq, ub_rank, eq_rank))
            num_ub += int((~blk.is_eq).sum())
            num_eq += int(blk.is_eq.sum())

        def block_parts(
            eq_side: bool,
        ) -> list[tuple[np.ndarray, np.ndarray, np.ndarray, int, np.ndarray]]:
            """Triplets and rhs scatter for every block, one side."""
            parts: list[
                tuple[np.ndarray, np.ndarray, np.ndarray, int, np.ndarray]
            ] = []
            for blk, ub_off, eq_off, ub_rank, eq_rank in placements:
                row_sel = blk.is_eq if eq_side else ~blk.is_eq
                if not row_sel.any():
                    continue
                offset = eq_off if eq_side else ub_off
                rank = eq_rank if eq_side else ub_rank
                entry_sel = row_sel[blk.row]
                parts.append(
                    (
                        blk.data[entry_sel],
                        offset + rank[blk.row[entry_sel]],
                        blk.col[entry_sel],
                        offset,
                        blk.rhs[row_sel],
                    )
                )
            return parts

        if sparse:
            import scipy.sparse as sp

            def build(
                rows: list[tuple[dict[int, float], float]],
                total: int,
                eq_side: bool,
            ) -> tuple[object, np.ndarray]:
                data: list[float] = []
                row_idx: list[int] = []
                col_idx: list[int] = []
                vec = np.zeros(total)
                for r, (coeffs, rhs) in enumerate(rows):
                    vec[r] = rhs
                    for idx, coef in coeffs.items():
                        row_idx.append(r)
                        col_idx.append(idx)
                        data.append(coef)
                datas = [np.asarray(data, dtype=float)]
                rows_i = [np.asarray(row_idx, dtype=np.int64)]
                cols_i = [np.asarray(col_idx, dtype=np.int64)]
                for bdata, brow, bcol, offset, brhs in block_parts(eq_side):
                    datas.append(bdata)
                    rows_i.append(brow)
                    cols_i.append(bcol)
                    vec[offset : offset + brhs.shape[0]] = brhs
                mat = sp.coo_matrix(
                    (
                        np.concatenate(datas),
                        (np.concatenate(rows_i), np.concatenate(cols_i)),
                    ),
                    shape=(total, n),
                ).tocsr()
                return mat, vec

        else:

            def build(
                rows: list[tuple[dict[int, float], float]],
                total: int,
                eq_side: bool,
            ) -> tuple[object, np.ndarray]:
                mat = np.zeros((total, n))
                vec = np.zeros(total)
                for r, (coeffs, rhs) in enumerate(rows):
                    for idx, coef in coeffs.items():
                        mat[r, idx] = coef
                    vec[r] = rhs
                for bdata, brow, bcol, offset, brhs in block_parts(eq_side):
                    np.add.at(mat, (brow, bcol), bdata)
                    vec[offset : offset + brhs.shape[0]] = brhs
                return mat, vec

        a_ub, b_ub = build(ub_rows, num_ub, eq_side=False)
        a_eq, b_eq = build(eq_rows, num_eq, eq_side=True)
        bounds = [(v.lb, v.ub) for v in self.variables]
        integrality = np.array(
            [0 if v.vtype is VType.CONTINUOUS else 1 for v in self.variables],
            dtype=int,
        )
        if _sanitize.ENABLED:
            # Variable *bounds* may be ±inf by design; every exported
            # coefficient and right-hand side must be finite.
            _sanitize.check_finite(
                "Model.to_standard_form",
                c=c,
                a_ub=a_ub.data if sparse else a_ub,
                b_ub=b_ub,
                a_eq=a_eq.data if sparse else a_eq,
                b_eq=b_eq,
            )
        return c, a_ub, b_ub, a_eq, b_eq, bounds, integrality

    # -- solving ------------------------------------------------------------

    def solve(
        self,
        backend: str = "scipy",
        time_limit: float | None = None,
        mip_gap: float | None = None,
    ) -> SolveResult:
        """Solve the model with the requested backend.

        Args:
            backend: ``"scipy"`` (HiGHS) or ``"python"`` (own
                branch-and-bound over HiGHS/simplex LP relaxations).
            time_limit: Optional wall-clock limit in seconds.
            mip_gap: Optional relative MIP gap termination tolerance.

        Returns:
            A :class:`~repro.milp.solution.SolveResult`.
        """
        from repro.milp.backend import get_backend

        return get_backend(backend).solve(self, time_limit=time_limit, mip_gap=mip_gap)

    def solve_many(
        self,
        objectives: Sequence[tuple[LinExpr | Var, str]],
        backend: str = "scipy",
        time_limit: float | None = None,
    ) -> list[SolveResult]:
        """Solve the same constraint system under several objectives.

        The constraint matrices are exported once and reused, which is
        the hot path of Algorithm 1 (four objectives per neuron over one
        sub-network encoding).

        Args:
            objectives: Pairs ``(expression, "min"|"max")``.
            backend: Backend name.  Both built-in backends implement
                ``solve_objectives`` (export once, swap only ``c``);
                third-party backends without it fall back to repeated
                solves with the model's objective restored afterwards.
            time_limit: Per-solve time limit.

        Returns:
            One :class:`SolveResult` per objective, in order.
        """
        from repro.milp.backend import get_backend

        solver = get_backend(backend)
        if hasattr(solver, "solve_objectives"):
            return solver.solve_objectives(self, objectives, time_limit=time_limit)
        results = []
        saved = (self.objective, self.objective_sense)
        try:
            for expr, sense in objectives:
                self.set_objective(expr, sense=sense)
                results.append(solver.solve(self, time_limit=time_limit))
        finally:
            self.objective, self.objective_sense = saved
        return results

    def open_session(
        self,
        backend: str = "scipy",
        relu_info: object = None,
        warm_start: bool = False,
    ) -> "SolverSession":
        """Open an incremental :class:`~repro.milp.session.SolverSession`.

        The standard form is exported once; the session then supports
        bound tightening, appended rows, objective swaps and ReLU phase
        fixes with re-solves that skip the export (and, with
        ``warm_start`` on the ``python:simplex`` backend, reuse the
        previous simplex basis).  See :func:`repro.milp.session.open_session`.
        """
        from repro.milp.session import open_session

        return open_session(
            self, backend=backend, relu_info=relu_info, warm_start=warm_start
        )

    def relaxed(self) -> "Model":
        """Return a copy with all integrality requirements dropped."""
        clone = Model(f"{self.name}_relaxed")
        for var in self.variables:
            clone.add_var(lb=var.lb, ub=var.ub, name=var.name, vtype=VType.CONTINUOUS)
        clone.constraints = [
            Constraint(c.expr.copy(), c.sense, c.rhs, c.name) for c in self.constraints
        ]
        clone._blocks = [b.copy() for b in self._blocks]
        clone.objective = self.objective.copy()
        clone.objective_sense = self.objective_sense
        return clone

    # -- validation ----------------------------------------------------------

    def check_feasible(self, values: Sequence[float], tol: float = 1e-6) -> bool:
        """Check a full assignment against bounds and all constraints."""
        if len(values) != self.num_vars:
            raise ValueError("assignment length does not match variable count")
        assignment = {i: float(v) for i, v in enumerate(values)}
        for var in self.variables:
            val = assignment[var.index]
            if val < var.lb - tol or val > var.ub + tol:
                return False
            if var.vtype is not VType.CONTINUOUS and abs(val - round(val)) > tol:
                return False
        if not all(con.violation(assignment) <= tol for con in self.constraints):
            return False
        arr = np.asarray(values, dtype=float)
        for blk in self._blocks:
            act = blk.activities(arr)
            eq = blk.is_eq
            if eq.any() and np.abs(act[eq] - blk.rhs[eq]).max() > tol:
                return False
            le = ~eq
            if le.any() and (act[le] - blk.rhs[le]).max() > tol:
                return False
        return True

    def __repr__(self) -> str:
        return (
            f"Model({self.name!r}, vars={self.num_vars}, "
            f"int={self.num_binary}, constrs={self.num_constrs})"
        )
