"""Backend that compiles models to scipy's HiGHS LP/MILP solvers."""

from __future__ import annotations

import time

import numpy as np
import scipy.optimize as sopt
import scipy.sparse as sparse

from repro import _faults
from repro.milp.solution import SolveResult, SolveStatus, finalize_user_sense

from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.milp.expr import LinExpr, Var
    from repro.milp.model import Model
    from repro.milp.session import SolverSession

_MILP_STATUS = {
    0: SolveStatus.OPTIMAL,
    1: SolveStatus.ITERATION_LIMIT,
    2: SolveStatus.INFEASIBLE,
    3: SolveStatus.UNBOUNDED,
    4: SolveStatus.ERROR,
}

_LINPROG_STATUS = {
    0: SolveStatus.OPTIMAL,
    1: SolveStatus.ITERATION_LIMIT,
    2: SolveStatus.INFEASIBLE,
    3: SolveStatus.UNBOUNDED,
    4: SolveStatus.ERROR,
}


def _as_csr(a: object) -> "sparse.csr_matrix":
    """Accept a dense array or any scipy sparse matrix; return CSR."""
    if sparse.issparse(a):
        return a.tocsr()
    return sparse.csr_matrix(a)


class ScipyBackend:
    """Solve models with ``scipy.optimize.milp``/``linprog`` (HiGHS).

    Pure LPs are routed to ``linprog`` which avoids the MILP layer's
    presolve overhead; anything with integrality uses ``milp``.
    Constraint matrices are exported sparse (CSR, assembled from COO
    triplets) so no dense ``(rows, n)`` intermediate is built per solve.
    """

    name = "scipy"

    def solve(
        self,
        model: "Model",
        time_limit: float | None = None,
        mip_gap: float | None = None,
    ) -> SolveResult:
        """Solve ``model`` and return a harmonized :class:`SolveResult`."""
        c, a_ub, b_ub, a_eq, b_eq, bounds, integrality = model.to_standard_form(
            sparse=True
        )
        result = self._solve_std(
            c, a_ub, b_ub, a_eq, b_eq, bounds, integrality, time_limit, mip_gap
        )
        return finalize_user_sense(
            result, model.objective_sense, model.objective.constant
        )

    def solve_objectives(
        self,
        model: "Model",
        objectives: 'Sequence[tuple["LinExpr | Var", str]]',
        time_limit: float | None = None,
    ) -> list[SolveResult]:
        """Multi-objective fast path: export matrices once, swap ``c``.

        Args:
            model: The model whose constraints are shared.
            objectives: Pairs ``(expression, "min"|"max")``.
            time_limit: Per-solve limit in seconds.
        """
        _, a_ub, b_ub, a_eq, b_eq, bounds, integrality = model.to_standard_form(
            sparse=True
        )
        results = []
        for expr, sense in objectives:
            c, expr = model.objective_vector(expr, sense)
            res = self._solve_std(
                c, a_ub, b_ub, a_eq, b_eq, bounds, integrality, time_limit, None
            )
            results.append(finalize_user_sense(res, sense, expr.constant))
        return results

    def open_session(
        self,
        model: "Model",
        relu_info: object = None,
        warm_start: bool = False,
    ) -> "SolverSession":
        """Open a cached-export :class:`~repro.milp.session.SolverSession`.

        The standard form is exported (sparse) exactly once; incremental
        bound changes and appended rows mutate the cached arrays and
        every :meth:`~repro.milp.session.SolverSession.solve` re-runs
        HiGHS on them.  ``warm_start`` is accepted for signature parity
        and ignored — HiGHS is re-entered cold (no basis handoff).
        """
        from repro.milp.session import SolverSession

        return SolverSession(self, model, sparse=True, relu_info=relu_info)

    def _solve_std(
        self,
        c: np.ndarray,
        a_ub: object,
        b_ub: np.ndarray,
        a_eq: object,
        b_eq: np.ndarray,
        bounds: list[tuple[float, float]],
        integrality: np.ndarray,
        time_limit: float | None,
        mip_gap: float | None,
    ) -> SolveResult:
        """Dispatch a minimization-sense standard form to milp/linprog."""
        if _faults.ENABLED:
            _faults.fault_point("scipy.solve")
        t0 = time.perf_counter()
        if integrality.any():
            result = self._solve_milp(
                c, a_ub, b_ub, a_eq, b_eq, bounds, integrality, time_limit, mip_gap
            )
        else:
            result = self._solve_lp(c, a_ub, b_ub, a_eq, b_eq, bounds, time_limit)
        result.solve_time = time.perf_counter() - t0
        result.backend = self.name
        return result

    @staticmethod
    def _solve_milp(
        c: np.ndarray,
        a_ub: object,
        b_ub: np.ndarray,
        a_eq: object,
        b_eq: np.ndarray,
        bounds: list[tuple[float, float]],
        integrality: np.ndarray,
        time_limit: float | None,
        mip_gap: float | None,
    ) -> SolveResult:
        constraints = []
        if a_ub.shape[0]:
            constraints.append(sopt.LinearConstraint(_as_csr(a_ub), -np.inf, b_ub))
        if a_eq.shape[0]:
            constraints.append(sopt.LinearConstraint(_as_csr(a_eq), b_eq, b_eq))
        lo = np.array([b[0] for b in bounds])
        hi = np.array([b[1] for b in bounds])
        options: dict = {"presolve": True}
        if time_limit is not None:
            options["time_limit"] = float(time_limit)
        if mip_gap is not None:
            options["mip_rel_gap"] = float(mip_gap)
        res = sopt.milp(
            c=c,
            constraints=constraints,
            integrality=integrality,
            bounds=sopt.Bounds(lo, hi),
            options=options,
        )
        status = _MILP_STATUS.get(res.status, SolveStatus.ERROR)
        if status is SolveStatus.ITERATION_LIMIT and time_limit is not None:
            status = SolveStatus.TIME_LIMIT
        values = np.asarray(res.x) if res.x is not None else np.empty(0)
        objective = float(res.fun) if res.fun is not None else float("nan")
        dual = getattr(res, "mip_dual_bound", None)
        if dual is not None:
            bound = float(dual)
        elif status is SolveStatus.OPTIMAL:
            bound = objective
        else:
            # A primal objective of an interrupted solve is NOT a sound
            # dual bound; report "no bound" rather than an unsound one.
            bound = float("nan")
        return SolveResult(
            status=status,
            objective=objective,
            values=values,
            nodes=int(getattr(res, "mip_node_count", 0) or 0),
            message=str(res.message),
            bound=bound,
        )

    @staticmethod
    def _solve_lp(
        c: np.ndarray,
        a_ub: object,
        b_ub: np.ndarray,
        a_eq: object,
        b_eq: np.ndarray,
        bounds: list[tuple[float, float]],
        time_limit: float | None,
    ) -> SolveResult:
        options: dict = {"presolve": True}
        if time_limit is not None:
            options["time_limit"] = float(time_limit)
        res = sopt.linprog(
            c=c,
            A_ub=_as_csr(a_ub) if a_ub.shape[0] else None,
            b_ub=b_ub if a_ub.shape[0] else None,
            A_eq=_as_csr(a_eq) if a_eq.shape[0] else None,
            b_eq=b_eq if a_eq.shape[0] else None,
            bounds=bounds,
            method="highs",
            options=options,
        )
        status = _LINPROG_STATUS.get(res.status, SolveStatus.ERROR)
        # HiGHS reports one "limit reached" code for both wall-clock and
        # iteration limits; mirror `_solve_milp` so pure-LP sub-problems
        # report TIME_LIMIT when a time limit was actually requested
        # (global_cert's sound dual-bound fallback keys off this).
        if status is SolveStatus.ITERATION_LIMIT and time_limit is not None:
            status = SolveStatus.TIME_LIMIT
        values = np.asarray(res.x) if res.x is not None else np.empty(0)
        objective = float(res.fun) if res.fun is not None else float("nan")
        # Only a proven-optimal LP objective doubles as a sound dual
        # bound; an interrupted solve's primal value does not (callers
        # like global_cert treat any finite `bound` as certified).
        bound = objective if status is SolveStatus.OPTIMAL else float("nan")
        return SolveResult(
            status=status,
            objective=objective,
            values=values,
            message=str(res.message),
            bound=bound,
        )
