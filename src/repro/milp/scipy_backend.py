"""Backend that compiles models to scipy's HiGHS LP/MILP solvers."""

from __future__ import annotations

import time

import numpy as np
import scipy.optimize as sopt
import scipy.sparse as sparse

from repro.milp.solution import SolveResult, SolveStatus

_MILP_STATUS = {
    0: SolveStatus.OPTIMAL,
    1: SolveStatus.ITERATION_LIMIT,
    2: SolveStatus.INFEASIBLE,
    3: SolveStatus.UNBOUNDED,
    4: SolveStatus.ERROR,
}

_LINPROG_STATUS = {
    0: SolveStatus.OPTIMAL,
    1: SolveStatus.ITERATION_LIMIT,
    2: SolveStatus.INFEASIBLE,
    3: SolveStatus.UNBOUNDED,
    4: SolveStatus.ERROR,
}


class ScipyBackend:
    """Solve models with ``scipy.optimize.milp``/``linprog`` (HiGHS).

    Pure LPs are routed to ``linprog`` which avoids the MILP layer's
    presolve overhead; anything with integrality uses ``milp``.
    """

    name = "scipy"

    def solve(self, model, time_limit=None, mip_gap=None) -> SolveResult:
        """Solve ``model`` and return a harmonized :class:`SolveResult`."""
        c, a_ub, b_ub, a_eq, b_eq, bounds, integrality = model.to_standard_form()
        t0 = time.perf_counter()
        if integrality.any():
            result = self._solve_milp(
                c, a_ub, b_ub, a_eq, b_eq, bounds, integrality, time_limit, mip_gap
            )
        else:
            result = self._solve_lp(c, a_ub, b_ub, a_eq, b_eq, bounds, time_limit)
        result.solve_time = time.perf_counter() - t0
        result.backend = self.name
        # The bound transform applies whenever a finite dual bound exists
        # (time-limited MILPs included), not only on proven optimality.
        if model.objective_sense == "max":
            if result.is_optimal:
                result.objective = -result.objective
            result.bound = -result.bound
        if result.is_optimal:
            result.objective += model.objective.constant
        result.bound += model.objective.constant
        return result

    def solve_objectives(self, model, objectives, time_limit=None) -> list[SolveResult]:
        """Multi-objective fast path: export matrices once, swap ``c``.

        Args:
            model: The model whose constraints are shared.
            objectives: Pairs ``(expression, "min"|"max")``.
            time_limit: Per-solve limit in seconds.
        """
        _, a_ub, b_ub, a_eq, b_eq, bounds, integrality = model.to_standard_form()
        n = model.num_vars
        results = []
        for expr, sense in objectives:
            from repro.milp.expr import LinExpr, Var

            expr = expr.to_expr() if isinstance(expr, Var) else expr
            c = np.zeros(n)
            for idx, coef in expr.coeffs.items():
                c[idx] = coef
            if sense == "max":
                c = -c
            elif sense != "min":
                raise ValueError(f"bad sense {sense!r}")
            t0 = time.perf_counter()
            if integrality.any():
                res = self._solve_milp(
                    c, a_ub, b_ub, a_eq, b_eq, bounds, integrality, time_limit, None
                )
            else:
                res = self._solve_lp(c, a_ub, b_ub, a_eq, b_eq, bounds, time_limit)
            res.solve_time = time.perf_counter() - t0
            res.backend = self.name
            if sense == "max":
                if res.is_optimal:
                    res.objective = -res.objective
                res.bound = -res.bound
            if res.is_optimal:
                res.objective += expr.constant
            res.bound += expr.constant
            results.append(res)
        return results

    @staticmethod
    def _solve_milp(
        c, a_ub, b_ub, a_eq, b_eq, bounds, integrality, time_limit, mip_gap
    ) -> SolveResult:
        constraints = []
        if a_ub.shape[0]:
            constraints.append(
                sopt.LinearConstraint(sparse.csr_matrix(a_ub), -np.inf, b_ub)
            )
        if a_eq.shape[0]:
            constraints.append(
                sopt.LinearConstraint(sparse.csr_matrix(a_eq), b_eq, b_eq)
            )
        lo = np.array([b[0] for b in bounds])
        hi = np.array([b[1] for b in bounds])
        options: dict = {"presolve": True}
        if time_limit is not None:
            options["time_limit"] = float(time_limit)
        if mip_gap is not None:
            options["mip_rel_gap"] = float(mip_gap)
        res = sopt.milp(
            c=c,
            constraints=constraints,
            integrality=integrality,
            bounds=sopt.Bounds(lo, hi),
            options=options,
        )
        status = _MILP_STATUS.get(res.status, SolveStatus.ERROR)
        if status is SolveStatus.ITERATION_LIMIT and time_limit is not None:
            status = SolveStatus.TIME_LIMIT
        values = np.asarray(res.x) if res.x is not None else np.empty(0)
        objective = float(res.fun) if res.fun is not None else float("nan")
        dual = getattr(res, "mip_dual_bound", None)
        bound = float(dual) if dual is not None else objective
        return SolveResult(
            status=status,
            objective=objective,
            values=values,
            nodes=int(getattr(res, "mip_node_count", 0) or 0),
            message=str(res.message),
            bound=bound,
        )

    @staticmethod
    def _solve_lp(c, a_ub, b_ub, a_eq, b_eq, bounds, time_limit) -> SolveResult:
        options: dict = {"presolve": True}
        if time_limit is not None:
            options["time_limit"] = float(time_limit)
        res = sopt.linprog(
            c=c,
            A_ub=sparse.csr_matrix(a_ub) if a_ub.shape[0] else None,
            b_ub=b_ub if a_ub.shape[0] else None,
            A_eq=sparse.csr_matrix(a_eq) if a_eq.shape[0] else None,
            b_eq=b_eq if a_eq.shape[0] else None,
            bounds=bounds,
            method="highs",
            options=options,
        )
        status = _LINPROG_STATUS.get(res.status, SolveStatus.ERROR)
        values = np.asarray(res.x) if res.x is not None else np.empty(0)
        objective = float(res.fun) if res.fun is not None else float("nan")
        return SolveResult(
            status=status,
            objective=objective,
            values=values,
            message=str(res.message),
            bound=objective,
        )
