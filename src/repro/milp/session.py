"""Incremental solver sessions: one export, many modified re-solves.

A :class:`SolverSession` snapshots a :class:`~repro.milp.model.Model`'s
standard form once and then answers a *sequence* of solves under
incremental modifications — tightened variable bounds, appended rows,
swapped objectives, fixed ReLU phases — without ever re-exporting (and,
on the native simplex backend, without re-running phase 1: the previous
basis re-enters phase 2 directly, or through the dual simplex after
bound tightening).  This is the machinery behind warm-started split
leaves and the neuron-splitting tier.

Two implementations share the public API:

* :class:`SolverSession` — the cached-export re-solve shim.  Works on
  any backend exposing ``_solve_std`` (scipy/HiGHS, python B&B): the
  cached matrices are mutated and handed back to the solver cold.
* :class:`WarmStartSession` — native on ``python:simplex``: a shared
  :class:`~repro.milp.simplex.PreparedLp` plus basis carried across
  solves (and across branch-and-bound nodes for MILPs).

Sessions are *snapshots*: changes made to the model after the session
was opened are not seen.  Appended rows are permanent for the session's
lifetime (there is no row deletion); phase fixes on neurons that carry a
binary indicator are released by re-fixing with ``phase=None``.
"""

from __future__ import annotations

import math
import time
from typing import Iterable, Sequence

import numpy as np

from repro import _faults, _sanitize
from repro.milp import simplex
from repro.milp.expr import LinExpr, Var
from repro.milp.model import _SENSE_EQ, _SENSE_GE, Model
from repro.milp.solution import SolveResult, SolveStatus, finalize_user_sense

__all__ = ["SolverSession", "WarmStartSession", "open_session", "solve_objectives"]


def _parse_le_rows(
    coeffs: object,
    senses: object,
    rhs: object,
    n: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Normalize appended rows to pure ``<=`` COO form.

    Accepts the same shapes as :meth:`Model.add_linear_rows` (dense
    ``(k, n)`` array, scipy sparse matrix, or COO triplets).  ``>=``
    rows are negated; ``==`` rows become a ``<=`` / ``>=`` *pair* so the
    session only ever appends inequality rows (which is what keeps an
    old simplex basis extendable — each new row gets a basic slack).

    Returns:
        ``(data, row, col, rhs)`` with ``row`` local to the result.
    """
    if isinstance(coeffs, tuple):
        data, (row, col) = coeffs
        data = np.array(data, dtype=float, copy=True)
        row = np.array(row, dtype=np.int64, copy=True)
        col = np.array(col, dtype=np.int64, copy=True)
        num_rows = Model._block_row_count(senses, rhs, row)
    elif hasattr(coeffs, "tocoo"):
        coo = coeffs.tocoo()
        data = np.array(coo.data, dtype=float, copy=True)
        row = np.array(coo.row, dtype=np.int64, copy=True)
        col = np.array(coo.col, dtype=np.int64, copy=True)
        num_rows = int(coeffs.shape[0])
    else:
        dense = np.asarray(coeffs, dtype=float)
        if dense.ndim != 2:
            raise ValueError("dense coefficient block must be 2-D")
        r, c = np.nonzero(dense)
        data = dense[r, c].astype(float)
        row = r.astype(np.int64)
        col = c.astype(np.int64)
        num_rows = int(dense.shape[0])
    if row.size and (col.min() < 0 or col.max() >= n):
        raise ValueError("appended row column index exceeds num_vars")
    if row.size and (row.min() < 0 or row.max() >= num_rows):
        raise ValueError("appended row index out of range")
    if not np.isfinite(data).all():
        raise ValueError("appended coefficients must be finite")
    sense_codes = Model._coerce_senses(senses, num_rows)
    rhs_arr = np.array(np.broadcast_to(np.asarray(rhs, dtype=float), (num_rows,)))
    if not np.isfinite(rhs_arr).all():
        raise ValueError("appended right-hand sides must be finite")

    ge = sense_codes == _SENSE_GE
    if ge.any():
        flip = ge[row]
        data[flip] = -data[flip]
        rhs_arr = rhs_arr.copy()
        rhs_arr[ge] = -rhs_arr[ge]
    eq = sense_codes == _SENSE_EQ
    if not eq.any():
        return data, row, col, rhs_arr
    # Duplicate each == row with flipped sign: x == b  <=>  x <= b, -x <= -b.
    order = np.argsort(row, kind="stable")
    dup_sel = eq[row]
    new_index = np.cumsum(eq) - 1 + num_rows  # extra row per eq row
    out_data = np.concatenate([data, -data[dup_sel]])
    out_row = np.concatenate([row, new_index[row[dup_sel]]])
    out_col = np.concatenate([col, col[dup_sel]])
    out_rhs = np.concatenate([rhs_arr, -rhs_arr[eq]])
    del order  # stable concat keeps original row ids intact
    return out_data, out_row, out_col, out_rhs


class SolverSession:
    """Incremental modify + re-solve over one cached standard form.

    Create via :func:`open_session`, a backend's ``open_session`` method
    or :meth:`Model.open_session`.  The session captures the model's
    export once; afterwards :meth:`set_var_bounds`, :meth:`append_rows`,
    :meth:`set_objective` and :meth:`fix_relu_phase` mutate the cached
    form and :meth:`solve` re-solves it without re-export.

    Args:
        backend: A backend instance exposing ``_solve_std``.
        model: The model to snapshot (not referenced after ``__init__``
            except for objective-vector assembly).
        sparse: Export/cached-matrix representation.
        relu_info: ``{(layer, neuron): (y_index, x_index, z_index|None)}``
            metadata enabling :meth:`fix_relu_phase` (see
            :attr:`repro.encoding.single.SingleEncoding.relu_vars`).
    """

    def __init__(
        self,
        backend: object,
        model: Model,
        sparse: bool = True,
        relu_info: object = None,
    ) -> None:
        (
            _c,
            self._a_ub,
            self._b_ub,
            self._a_eq,
            self._b_eq,
            bounds,
            self._integrality,
        ) = model.to_standard_form(sparse=sparse)
        self._backend = backend
        self._model = model
        self._sparse = sparse
        self._n = model.num_vars
        self._lo = np.array([b[0] for b in bounds], dtype=float)
        self._hi = np.array([b[1] for b in bounds], dtype=float)
        self._c = _c
        self._sense = model.objective_sense
        self._constant = model.objective.constant
        self._relu_info = dict(relu_info or {})
        self._relu_fixed: dict[tuple[int, int], str] = {}
        self._extra: list[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = []
        self._num_extra = 0
        self._cache = None  # assembled (a_ub_all, b_ub_all)
        self._closed = False

    # -- lifecycle -------------------------------------------------------

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    def close(self) -> None:
        """Release the session's cached matrices; idempotent.

        A closed session refuses further modification and solving —
        reuse after close is a bug that must fail loudly, not solve a
        stale snapshot.
        """
        if self._closed:
            return
        self._closed = True
        self._cache = None
        self._extra.clear()

    def __enter__(self) -> "SolverSession":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()

    def _require_open(self) -> None:
        if self._closed:
            raise RuntimeError("solver session is closed")

    # -- inspection ------------------------------------------------------

    @property
    def num_vars(self) -> int:
        """Variable count of the snapshot (sessions never add columns)."""
        return self._n

    @property
    def num_appended_rows(self) -> int:
        """Inequality rows appended since the session was opened."""
        return self._num_extra

    # -- incremental modification ---------------------------------------

    def _indices(self, variables: "Iterable[Var | int]") -> np.ndarray:
        idx = np.asarray(
            [v.index if isinstance(v, Var) else int(v) for v in variables],
            dtype=int,
        )
        if idx.size and (idx.min() < 0 or idx.max() >= self._n):
            raise ValueError("variable index out of range for this session")
        return idx

    def set_var_bounds(
        self,
        variables: "Iterable[Var | int]",
        lb: "float | np.ndarray",
        ub: "float | np.ndarray",
    ) -> None:
        """Replace the bounds of ``variables`` (``Var`` handles or ints).

        ``lb``/``ub`` broadcast.  ``lb > ub`` is allowed and makes the
        next :meth:`solve` report infeasibility (the neuron-split /
        branching convention), except on the native warm session where
        structure must be preserved: bounds must keep their finiteness
        pattern there (tightening always does).
        """
        self._require_open()
        idx = self._indices(variables)
        self._lo[idx] = np.broadcast_to(np.asarray(lb, dtype=float), idx.shape)
        self._hi[idx] = np.broadcast_to(np.asarray(ub, dtype=float), idx.shape)

    def append_rows(self, coeffs: object, senses: object, rhs: object) -> int:
        """Append linear rows to the cached form (no re-export).

        Accepts :meth:`Model.add_linear_rows` shapes; ``==`` rows are
        stored as a ``<=`` pair.  Appended rows are permanent for the
        session's lifetime.

        Returns:
            The number of (normalized, ``<=``) rows actually appended.
        """
        self._require_open()
        data, row, col, rhs_arr = _parse_le_rows(coeffs, senses, rhs, self._n)
        self._extra.append((data, row, col, rhs_arr))
        self._num_extra += rhs_arr.shape[0]
        self._cache = None
        self._on_rows_appended(data, row, col, rhs_arr)
        return int(rhs_arr.shape[0])

    def _on_rows_appended(
        self,
        data: np.ndarray,
        row: np.ndarray,
        col: np.ndarray,
        rhs: np.ndarray,
    ) -> None:
        """Hook for subclasses tracking extra per-row state."""

    def set_objective(self, expr: LinExpr | Var, sense: str = "min") -> None:
        """Swap the objective (same semantics as :meth:`Model.solve_many`)."""
        self._require_open()
        c, expr = self._model.objective_vector(expr, sense)
        self._c = c
        self._sense = sense
        self._constant = expr.constant

    def fix_relu_phase(self, layer: int, neuron: int, phase: str | None) -> None:
        """Fix (or release) the phase of one encoded ReLU neuron.

        The building block of the neuron-splitting tier: branching on an
        unstable neuron solves the subproblem with the neuron pinned
        *active* (``x = y >= 0``) and pinned *inactive* (``x = 0``,
        ``y <= 0``); the true extremum is the best of the two.

        For neurons encoded with a big-M binary indicator the fix is the
        indicator's bounds (``z = 1`` active / ``z = 0`` inactive) —
        fully reversible with ``phase=None``.  For neurons without an
        indicator (stable or triangle-relaxed) the fix appends sign rows
        (active: ``-y <= 0`` and ``x - y <= 0``; inactive: ``y <= 0``
        and ``x <= 0``), which also *tightens* a relaxed neuron to the
        exact branch; appended rows cannot be retracted, so such fixes
        are one-way.

        Args:
            layer: Layer index of the neuron (as in the encoder's
                ``relu_vars`` keys).
            neuron: Neuron index within the layer.
            phase: ``"active"``, ``"inactive"``, or ``None`` to release
                an indicator-based fix.
        """
        key = (layer, neuron)
        try:
            y_idx, x_idx, z_idx = self._relu_info[key]
        except KeyError:
            raise ValueError(
                f"no ReLU metadata for neuron {key}; open the session with "
                "relu_info (e.g. SingleEncoding.relu_vars)"
            ) from None
        if phase is None:
            if self._relu_fixed.get(key) is None:
                return
            if z_idx is None:
                raise ValueError(
                    f"phase fix on neuron {key} used appended rows (no "
                    "binary indicator) and cannot be released"
                )
            self.set_var_bounds([z_idx], 0.0, 1.0)
            del self._relu_fixed[key]
            return
        if phase not in ("active", "inactive"):
            raise ValueError(f"unknown ReLU phase {phase!r}")
        previous = self._relu_fixed.get(key)
        if previous == phase:
            return
        if z_idx is not None:
            value = 1.0 if phase == "active" else 0.0
            self.set_var_bounds([z_idx], value, value)
        else:
            if previous is not None:
                raise ValueError(
                    f"neuron {key} is row-fixed to {previous!r}; row-based "
                    "fixes cannot be flipped"
                )
            rows = np.zeros((2, self._n))
            if phase == "active":
                rows[0, y_idx] = -1.0  # y >= 0
                rows[1, x_idx] = 1.0  # x <= y
                rows[1, y_idx] = -1.0
            else:
                rows[0, y_idx] = 1.0  # y <= 0
                rows[1, x_idx] = 1.0  # x <= 0
            self.append_rows(rows, "<=", np.zeros(2))
        self._relu_fixed[key] = phase

    # -- solving ---------------------------------------------------------

    def _assembled(self) -> tuple[object, np.ndarray]:
        """Base + appended ub rows as one matrix/vector pair (cached)."""
        if self._cache is not None:
            return self._cache
        if not self._extra:
            self._cache = (self._a_ub, self._b_ub)
            return self._cache
        datas, rows, cols, rhss = [], [], [], []
        offset = 0
        for data, row, col, rhs in self._extra:
            datas.append(data)
            rows.append(row + offset)
            cols.append(col)
            rhss.append(rhs)
            offset += rhs.shape[0]
        b_ub = np.concatenate([self._b_ub, *rhss])
        if self._sparse:
            import scipy.sparse as sp

            extra = sp.coo_matrix(
                (np.concatenate(datas), (np.concatenate(rows), np.concatenate(cols))),
                shape=(offset, self._n),
            ).tocsr()
            a_ub = sp.vstack([self._a_ub, extra], format="csr")
        else:
            extra = np.zeros((offset, self._n))
            np.add.at(
                extra,
                (np.concatenate(rows), np.concatenate(cols)),
                np.concatenate(datas),
            )
            a_ub = np.vstack([self._a_ub, extra])
        self._cache = (a_ub, b_ub)
        return self._cache

    def _infeasible(self) -> SolveResult:
        result = SolveResult(
            status=SolveStatus.INFEASIBLE,
            backend=getattr(self._backend, "name", ""),
            message="conflicting session variable bounds",
        )
        return finalize_user_sense(result, self._sense, self._constant)

    def solve(
        self, time_limit: float | None = None, mip_gap: float | None = None
    ) -> SolveResult:
        """Solve the current state of the session.

        Equivalent (same statuses, same optima) to exporting a fresh
        model carrying all accumulated modifications — the property the
        session test-suite asserts.
        """
        self._require_open()
        if _faults.ENABLED:
            _faults.fault_point("session.solve")
        if (self._lo > self._hi).any():
            return self._infeasible()
        a_ub, b_ub = self._assembled()
        bounds = list(zip(self._lo, self._hi))
        result = self._solve_current(
            self._c, a_ub, b_ub, self._a_eq, self._b_eq, bounds,
            time_limit, mip_gap,
        )
        return finalize_user_sense(result, self._sense, self._constant)

    def _solve_current(
        self,
        c: np.ndarray,
        a_ub: object,
        b_ub: np.ndarray,
        a_eq: object,
        b_eq: np.ndarray,
        bounds: list[tuple[float, float]],
        time_limit: float | None,
        mip_gap: float | None,
    ) -> SolveResult:
        return self._backend._solve_std(
            c, a_ub, b_ub, a_eq, b_eq, bounds, self._integrality,
            time_limit, mip_gap,
        )

    def solve_objectives(
        self,
        objectives: 'Sequence[tuple["LinExpr | Var", str]]',
        time_limit: float | None = None,
    ) -> list[SolveResult]:
        """Solve the current state under several objectives, in order."""
        results = []
        for expr, sense in objectives:
            self.set_objective(expr, sense)
            results.append(self.solve(time_limit=time_limit))
        return results


class WarmStartSession(SolverSession):
    """Native incremental session on the pure-python simplex backend.

    On top of the cached export this keeps a shared
    :class:`~repro.milp.simplex.PreparedLp` (structure captured once)
    and the previous solve's basis.  Pure-LP re-solves re-enter phase 2
    from that basis — or the dual simplex when bound tightening made it
    primal infeasible — and MILP re-solves warm-start the root
    relaxation and every branch-and-bound node from its parent's basis.
    Appended rows extend both the prepared structure (new basic slack
    per row, keeping the basis dual feasible) and the cached arrays.
    """

    def __init__(
        self, backend: object, model: Model, relu_info: object = None
    ) -> None:
        super().__init__(backend, model, sparse=False, relu_info=relu_info)
        self._prepared = simplex.PreparedLp(
            self._a_ub, self._b_ub, self._a_eq, self._b_eq,
            list(zip(self._lo, self._hi)),
        )
        self._basis: list[int] | None = None

    def close(self) -> None:
        """Release cached matrices and the carried simplex basis."""
        super().close()
        self._basis = None

    def _on_rows_appended(
        self,
        data: np.ndarray,
        row: np.ndarray,
        col: np.ndarray,
        rhs: np.ndarray,
    ) -> None:
        dense = np.zeros((rhs.shape[0], self._n))
        np.add.at(dense, (row, col), data)
        slack_cols = self._prepared.append_le_rows(dense, rhs)
        if self._basis is not None:
            self._basis = self._basis + slack_cols

    def _solve_current(
        self,
        c: np.ndarray,
        a_ub: object,
        b_ub: np.ndarray,
        a_eq: object,
        b_eq: np.ndarray,
        bounds: list[tuple[float, float]],
        time_limit: float | None,
        mip_gap: float | None,
    ) -> SolveResult:
        if _sanitize.ENABLED and self._basis is not None:
            # Re-entry contract: a carried basis must still index one
            # distinct column per prepared row, or phase-2 warm entry
            # would pivot from garbage without failing loudly.
            _sanitize.check_basis(
                self._basis, self._prepared.m, self._prepared.total_cols,
                "WarmStartSession re-entry",
            )
        if self._integrality.any():
            sink: dict = {}
            result = self._backend._solve_std(
                c, a_ub, b_ub, a_eq, b_eq, bounds, self._integrality,
                time_limit, mip_gap,
                prepared=self._prepared, warm_basis=self._basis,
                basis_sink=sink,
            )
            self._basis = sink.get("root", self._basis)
            return result
        t0 = time.perf_counter()
        lp = self._prepared.solve(c, self._lo, self._hi, basis=self._basis)
        if lp is None:  # bound-structure drift: cold fallback
            return super()._solve_current(
                c, a_ub, b_ub, a_eq, b_eq, bounds, time_limit, mip_gap
            )
        if lp.basis is not None:
            self._basis = lp.basis
        objective = lp.objective if lp.status is SolveStatus.OPTIMAL else (
            lp.objective if lp.status is SolveStatus.UNBOUNDED else math.nan
        )
        return SolveResult(
            status=lp.status,
            objective=objective,
            values=lp.x,
            backend=f"{self._backend.name}/{self._backend.lp_solver}",
            solve_time=time.perf_counter() - t0,
            iterations=lp.iterations,
            bound=objective if lp.status is SolveStatus.OPTIMAL else math.nan,
        )


def open_session(
    model: Model,
    backend: "str | object" = "scipy",
    relu_info: object = None,
    warm_start: bool = False,
) -> SolverSession:
    """Open a :class:`SolverSession` on ``model`` with a named backend.

    Args:
        model: The model to snapshot.
        backend: Registry name (``"scipy"``, ``"python:simplex"``, ...)
            or a backend instance.
        relu_info: Optional ReLU metadata enabling
            :meth:`SolverSession.fix_relu_phase`.
        warm_start: Request basis reuse across solves.  Honored by the
            ``python:simplex`` backend (which then opens its native
            :class:`WarmStartSession`); a no-op on backends without the
            :data:`~repro.milp.backend.Capability.WARM_START`
            capability — the session still caches the export.

    Raises:
        TypeError: The backend has no session support (no
            ``open_session`` method).
    """
    from repro.milp.backend import get_backend

    solver = get_backend(backend)
    opener = getattr(solver, "open_session", None)
    if opener is None:
        raise TypeError(
            f"backend {getattr(solver, 'name', solver)!r} does not support "
            "solver sessions (no open_session method)"
        )
    return opener(model, relu_info=relu_info, warm_start=warm_start)


def solve_objectives(
    model: Model,
    objectives: 'Sequence[tuple["LinExpr | Var", str]]',
    backend: "str | object" = "scipy",
    time_limit: float | None = None,
) -> list[SolveResult]:
    """Solve ``model`` under several objectives through one session.

    Session-based twin of :meth:`Model.solve_many`: one export, one
    solve per objective.  Used by the certification drivers so the
    multi-objective hot path and the incremental path cannot drift.
    Backends without session support fall back to
    :meth:`Model.solve_many` (same results, repeated exports).
    """
    try:
        session = open_session(model, backend=backend)
    except TypeError:
        return model.solve_many(objectives, backend=backend, time_limit=time_limit)
    try:
        return session.solve_objectives(objectives, time_limit=time_limit)
    finally:
        session.close()
