"""A dense two-phase primal simplex LP solver in pure numpy.

This exists so that the repository is self-contained: the branch-and-bound
MILP solver (:mod:`repro.milp.branch_bound`) can run entirely without
scipy's HiGHS if asked to.  It is a compact dense-tableau implementation
only intended for the small LPs that appear in tests and in sub-network
certification of tiny networks.  The default pipeline uses HiGHS.

Pivoting uses vectorized **Dantzig pricing** (most-negative reduced
cost) with a vectorized ratio test; after a streak of degenerate pivots
it falls back to **Bland's rule** (first negative column, smallest basis
index on ties) until progress resumes, which restores the anti-cycling
guarantee Dantzig alone lacks.  ``pricing="bland"`` forces the old
always-Bland behaviour — kept for the iteration-count benchmark tests.

The entry point :func:`solve_lp` accepts the same standard form exported
by :meth:`repro.milp.model.Model.to_standard_form`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.milp.solution import SolveStatus

_BIG = 1e15

#: Consecutive degenerate (zero-step) Dantzig pivots tolerated before
#: switching to Bland's rule; a non-degenerate pivot switches back.
_DEGENERATE_STREAK = 12


@dataclass
class LpResult:
    """Raw LP outcome of the simplex routine (minimization sense).

    ``basis`` (when set) is the final basic column set in the solver's
    internal standard-form column space; :meth:`PreparedLp.solve` accepts
    it back as a warm-start hint for a structurally identical re-solve.
    """

    status: SolveStatus
    objective: float
    x: np.ndarray
    iterations: int = 0
    basis: list[int] | None = None


def solve_lp(
    c: np.ndarray,
    a_ub: np.ndarray,
    b_ub: np.ndarray,
    a_eq: np.ndarray,
    b_eq: np.ndarray,
    bounds: list[tuple[float, float]],
    max_iter: int = 20000,
    tol: float = 1e-9,
    pricing: str = "dantzig",
) -> LpResult:
    """Minimize ``c @ x`` subject to inequality/equality rows and bounds.

    The general-bound problem is reduced to standard form
    ``min c'z s.t. Az = b, z >= 0`` by shifting finite lower bounds,
    splitting free variables, and turning finite upper bounds into rows.

    ``a_ub``/``a_eq`` may be dense arrays or scipy sparse matrices (the
    representation :meth:`Model.to_standard_form(sparse=True)` exports);
    sparse input is densified on entry since the tableau is dense anyway.

    Args:
        pricing: ``"dantzig"`` (default; most-negative reduced cost with
            Bland fallback after a degenerate streak) or ``"bland"``
            (always Bland — slower, used as the pricing baseline).

    Returns:
        An :class:`LpResult`; ``x`` has the caller's variable order and
        ``iterations`` counts the simplex pivots across both phases.
    """
    if pricing not in ("dantzig", "bland"):
        raise ValueError(f"unknown pricing rule {pricing!r}")
    # Accept either matrix representation without importing scipy.
    if hasattr(a_ub, "toarray"):
        a_ub = a_ub.toarray()
    if hasattr(a_eq, "toarray"):
        a_eq = a_eq.toarray()
    n = len(bounds)
    c = np.asarray(c, dtype=float)

    # Column mapping: each original var becomes either one shifted column
    # (finite lb) or a pair of columns (free).  ``colmap[j]`` is
    # (kind, col, shift) with kind in {"shift", "split"}.
    colmap: list[tuple[str, int, float]] = []
    num_cols = 0
    extra_ub_rows: list[tuple[int, float]] = []  # (var index, ub value)
    for j, (lb, ub) in enumerate(bounds):
        lb = -math.inf if lb is None else lb
        ub = math.inf if ub is None else ub
        if lb > ub:
            return LpResult(SolveStatus.INFEASIBLE, math.nan, np.empty(0))
        if math.isfinite(lb):
            colmap.append(("shift", num_cols, lb))
            num_cols += 1
        else:
            colmap.append(("split", num_cols, 0.0))
            num_cols += 2
        if math.isfinite(ub):
            extra_ub_rows.append((j, ub))

    def expand_row(row: np.ndarray) -> tuple[np.ndarray, float]:
        """Rewrite a row over original vars into standard-form columns.

        Returns the expanded row and the constant produced by lower-bound
        shifts (to be subtracted from the RHS).
        """
        out = np.zeros(num_cols)
        shift_const = 0.0
        for j, coef in enumerate(row):
            # repro-lint: ignore[RPR001] — structural sparsity skip: exactly-zero entries have no column image; tolerating near-zeros would drop real (if tiny) coefficients
            if coef == 0.0:
                continue
            kind, col, lb = colmap[j]
            if kind == "shift":
                out[col] = coef
                shift_const += coef * lb
            else:
                out[col] = coef
                out[col + 1] = -coef
        return out, shift_const

    rows: list[np.ndarray] = []
    rhs: list[float] = []
    row_kinds: list[str] = []  # "le" or "eq"
    for i in range(a_ub.shape[0]):
        row, shift = expand_row(a_ub[i])
        rows.append(row)
        rhs.append(b_ub[i] - shift)
        row_kinds.append("le")
    for i in range(a_eq.shape[0]):
        row, shift = expand_row(a_eq[i])
        rows.append(row)
        rhs.append(b_eq[i] - shift)
        row_kinds.append("eq")
    for j, ub in extra_ub_rows:
        unit = np.zeros(n)
        unit[j] = 1.0
        row, shift = expand_row(unit)
        rows.append(row)
        rhs.append(ub - shift)
        row_kinds.append("le")

    c_std, c_shift = expand_row(c)

    m = len(rows)
    if m == 0:
        # Bound-only problem: optimum sits at a bound determined by sign.
        x = np.zeros(n)
        for j, (lb, ub) in enumerate(bounds):
            lb = -math.inf if lb is None else lb
            ub = math.inf if ub is None else ub
            if c[j] > 0:
                if not math.isfinite(lb):
                    return LpResult(SolveStatus.UNBOUNDED, -math.inf, np.empty(0))
                x[j] = lb
            elif c[j] < 0:
                if not math.isfinite(ub):
                    return LpResult(SolveStatus.UNBOUNDED, -math.inf, np.empty(0))
                x[j] = ub
            else:
                x[j] = lb if math.isfinite(lb) else (ub if math.isfinite(ub) else 0.0)
        return LpResult(SolveStatus.OPTIMAL, float(c @ x), x)

    a = np.vstack(rows)
    b = np.asarray(rhs, dtype=float)

    # Add slacks for "le" rows.
    num_slacks = sum(1 for k in row_kinds if k == "le")
    a_full = np.hstack([a, np.zeros((m, num_slacks))])
    slack_col = num_cols
    for i, kind in enumerate(row_kinds):
        if kind == "le":
            a_full[i, slack_col] = 1.0
            slack_col += 1

    # Normalize to b >= 0 so phase-1 artificials start feasible.
    for i in range(m):
        if b[i] < 0:
            a_full[i] *= -1.0
            b[i] *= -1.0

    total_cols = a_full.shape[1]
    status, basis, tableau, iters1 = _phase1(a_full, b, max_iter, tol, pricing)
    if status is not SolveStatus.OPTIMAL:
        return LpResult(status, math.nan, np.empty(0), iterations=iters1)

    c_full = np.zeros(total_cols)
    c_full[: len(c_std)] = c_std
    status, basis, tableau, iters2 = _phase2(
        tableau, basis, c_full, total_cols, max_iter, tol, pricing
    )
    iterations = iters1 + iters2
    if status is not SolveStatus.OPTIMAL:
        return LpResult(
            status,
            math.nan if status is not SolveStatus.UNBOUNDED else -math.inf,
            np.empty(0),
            iterations=iterations,
        )

    z = np.zeros(total_cols)
    for row_idx, col in enumerate(basis):
        if col < total_cols:
            z[col] = tableau[row_idx, -1]

    # Map standard-form columns back to original variables.
    x = np.zeros(n)
    for j in range(n):
        kind, col, lb = colmap[j]
        if kind == "shift":
            x[j] = z[col] + lb
        else:
            x[j] = z[col] - z[col + 1]
    objective = float(c @ x)
    return LpResult(SolveStatus.OPTIMAL, objective, x, iterations=iterations)


def _phase1(
    a: np.ndarray, b: np.ndarray, max_iter: int, tol: float, pricing: str
) -> tuple[SolveStatus, list[int], np.ndarray, int]:
    """Find an initial basic feasible solution with artificial variables."""
    m, cols = a.shape
    tableau = np.hstack([a, np.eye(m), b.reshape(-1, 1)])
    basis = list(range(cols, cols + m))
    # Phase-1 objective: sum of artificials -> reduced-cost row.
    obj = np.zeros(cols + m + 1)
    obj[cols : cols + m] = 1.0
    for i in range(m):
        obj -= tableau[i]
    status, iters = _iterate(tableau, basis, obj, cols + m, max_iter, tol, pricing)
    if status is not SolveStatus.OPTIMAL:
        return status, basis, tableau, iters
    if -obj[-1] > 1e-7:
        return SolveStatus.INFEASIBLE, basis, tableau, iters
    # Pivot artificials out of the basis where possible.
    for row_idx, col in enumerate(basis):
        if col >= cols:
            pivot_col = next(
                (j for j in range(cols) if abs(tableau[row_idx, j]) > tol), None
            )
            if pivot_col is not None:
                _pivot(tableau, obj, basis, row_idx, pivot_col)
    keep = list(range(cols)) + [tableau.shape[1] - 1]
    tableau = tableau[:, keep]
    return SolveStatus.OPTIMAL, basis, tableau, iters


def _phase2(
    tableau: np.ndarray,
    basis: list[int],
    c_full: np.ndarray,
    cols: int,
    max_iter: int,
    tol: float,
    pricing: str,
) -> tuple[SolveStatus, list[int], np.ndarray, int]:
    """Optimize the true objective from the phase-1 basis."""
    m = tableau.shape[0]
    obj = np.zeros(cols + 1)
    obj[:cols] = c_full
    for i in range(m):
        col = basis[i]
        if col < cols and abs(obj[col]) > 0:
            obj -= obj[col] * tableau[i]
    status, iters = _iterate(tableau, basis, obj, cols, max_iter, tol, pricing)
    return status, basis, tableau, iters


def _iterate(
    tableau: np.ndarray,
    basis: list[int],
    obj: np.ndarray,
    cols: int,
    max_iter: int,
    tol: float,
    pricing: str = "dantzig",
) -> tuple[SolveStatus, int]:
    """Primal simplex iterations (shared by phases); returns pivot count.

    Entering column: vectorized Dantzig pricing (most-negative reduced
    cost), falling back to Bland's first-negative rule after
    :data:`_DEGENERATE_STREAK` consecutive zero-step pivots (and back to
    Dantzig once a pivot makes progress).  Leaving row: vectorized ratio
    test, smallest basis index among the minimal ratios (Bland's
    tie-break, which the fallback needs for its anti-cycling guarantee).
    """
    m = tableau.shape[0]
    degenerate_streak = 0
    for iteration in range(max_iter):
        reduced = obj[:cols]
        use_bland = pricing == "bland" or degenerate_streak >= _DEGENERATE_STREAK
        if use_bland:
            negative = np.flatnonzero(reduced < -tol)
            if negative.size == 0:
                return SolveStatus.OPTIMAL, iteration
            entering = int(negative[0])
        else:
            entering = int(np.argmin(reduced))
            if reduced[entering] >= -tol:
                return SolveStatus.OPTIMAL, iteration
        column = tableau[:, entering]
        eligible = column > tol
        if not eligible.any():
            return SolveStatus.UNBOUNDED, iteration
        ratios = np.full(m, math.inf)
        ratios[eligible] = tableau[eligible, -1] / column[eligible]
        min_ratio = float(ratios.min())
        ties = np.flatnonzero(ratios <= min_ratio + tol)
        leaving_row = int(ties[np.argmin(np.asarray(basis)[ties])])
        degenerate_streak = 0 if min_ratio > tol else degenerate_streak + 1
        _pivot(tableau, obj, basis, leaving_row, entering)
    return SolveStatus.ITERATION_LIMIT, max_iter


def _pivot(
    tableau: np.ndarray,
    obj: np.ndarray,
    basis: list[int],
    row: int,
    col: int,
) -> None:
    """Pivot the tableau (and objective row) on (row, col)."""
    tableau[row] /= tableau[row, col]
    for i in range(tableau.shape[0]):
        if i != row and abs(tableau[i, col]) > 0:
            tableau[i] -= tableau[i, col] * tableau[row]
    if abs(obj[col]) > 0:
        obj -= obj[col] * tableau[row]
    basis[row] = col


def _dual_iterate(
    tableau: np.ndarray,
    basis: list[int],
    obj: np.ndarray,
    cols: int,
    max_iter: int,
    tol: float,
) -> tuple[SolveStatus, int]:
    """Dual simplex: restore primal feasibility from a dual-feasible basis.

    Precondition: the reduced-cost row ``obj`` is non-negative (dual
    feasible) while some basic values ``tableau[:, -1]`` are negative.
    Leaving row: most-negative basic value; entering column: the dual
    ratio test ``min obj_j / -a_rj`` over ``a_rj < 0`` (smallest column
    index on ties), which keeps the reduced costs non-negative.  When no
    entering column exists the row proves infeasibility.
    """
    for iteration in range(max_iter):
        rhs = tableau[:, -1]
        leaving_row = int(np.argmin(rhs))
        if rhs[leaving_row] >= -tol:
            return SolveStatus.OPTIMAL, iteration
        row = tableau[leaving_row, :cols]
        eligible = row < -tol
        if not eligible.any():
            return SolveStatus.INFEASIBLE, iteration
        ratios = np.full(cols, math.inf)
        ratios[eligible] = obj[:cols][eligible] / -row[eligible]
        ties = np.flatnonzero(ratios <= float(ratios.min()) + tol)
        _pivot(tableau, obj, basis, leaving_row, int(ties[0]))
    return SolveStatus.ITERATION_LIMIT, max_iter


class PreparedLp:
    """A standard-form LP with *fixed structure*, built once, solved many.

    :func:`solve_lp` re-derives the column mapping, slack layout and
    expanded matrix on every call; ``PreparedLp`` captures them once so
    an incremental caller (a :class:`~repro.milp.session.SolverSession`,
    or warm-started branch-and-bound nodes) pays only a right-hand-side
    refresh per solve.  On top of the cached structure it supports
    **warm starts**: :meth:`solve` accepts the ``basis`` of a previous
    solve and re-enters phase 2 directly when the basis is still primal
    feasible, or runs the dual simplex when only dual feasibility
    survives (the bound-tightening case: the matrix is unchanged, so a
    parent-optimal basis stays dual feasible for any child).

    The structure is *bound-finiteness* dependent (finite lower bounds
    shift, free variables split, finite upper bounds become rows), so a
    solve whose bound pattern differs from the prepared one returns
    ``None`` and the caller must fall back to a cold :func:`solve_lp`.
    """

    def __init__(
        self,
        a_ub: object,
        b_ub: np.ndarray,
        a_eq: object,
        b_eq: np.ndarray,
        bounds: list[tuple[float, float]],
    ) -> None:
        if hasattr(a_ub, "toarray"):
            a_ub = a_ub.toarray()
        if hasattr(a_eq, "toarray"):
            a_eq = a_eq.toarray()
        self.n = len(bounds)
        a_ub = np.asarray(a_ub, dtype=float).reshape(-1, self.n)
        a_eq = np.asarray(a_eq, dtype=float).reshape(-1, self.n)
        lo = np.array(
            [-math.inf if b[0] is None else float(b[0]) for b in bounds]
        )
        hi = np.array(
            [math.inf if b[1] is None else float(b[1]) for b in bounds]
        )
        self._lb_finite = np.isfinite(lo)
        self._ub_finite = np.isfinite(hi)
        # Column layout: one shifted column per finite-lb var, a +/- pair
        # per free var (same layout solve_lp derives per call).
        width = np.where(self._lb_finite, 1, 2)
        self._col_of = np.concatenate(([0], np.cumsum(width)[:-1])).astype(int)
        self.num_var_cols = int(width.sum())
        self._ub_row_vars = np.flatnonzero(self._ub_finite)

        unit = np.zeros((self._ub_row_vars.size, self.n))
        unit[np.arange(self._ub_row_vars.size), self._ub_row_vars] = 1.0
        # Original-variable-space rows: ub rows, eq rows, bound rows.
        self._a_orig = np.vstack([a_ub, a_eq, unit])
        self._m_ub = int(a_ub.shape[0])
        self._m_eq = int(a_eq.shape[0])
        self._b_const = np.concatenate(
            [
                np.asarray(b_ub, dtype=float),
                np.asarray(b_eq, dtype=float),
                np.zeros(self._ub_row_vars.size),  # rhs is hi[j] per solve
            ]
        )
        self._row_is_le = np.concatenate(
            [
                np.ones(self._m_ub, dtype=bool),
                np.zeros(self._m_eq, dtype=bool),
                np.ones(self._ub_row_vars.size, dtype=bool),
            ]
        )
        self._rebuild_full()

    # -- structure -------------------------------------------------------

    @property
    def m(self) -> int:
        """Total row count (ub + eq + bound rows + appended rows)."""
        return int(self._a_orig.shape[0])

    def _rebuild_full(self) -> None:
        """(Re)build the expanded matrix with slack columns."""
        a_exp = np.zeros((self.m, self.num_var_cols))
        a_exp[:, self._col_of] = self._a_orig
        split = ~self._lb_finite
        if split.any():
            a_exp[:, self._col_of[split] + 1] = -self._a_orig[:, split]
        le_rows = np.flatnonzero(self._row_is_le)
        slacks = np.zeros((self.m, le_rows.size))
        slacks[le_rows, np.arange(le_rows.size)] = 1.0
        self._a_full = np.hstack([a_exp, slacks])
        self._slack_col_of_row = np.full(self.m, -1, dtype=int)
        self._slack_col_of_row[le_rows] = self.num_var_cols + np.arange(
            le_rows.size
        )
        self.total_cols = self._a_full.shape[1]

    def append_le_rows(self, rows: np.ndarray, rhs: np.ndarray) -> list[int]:
        """Append ``rows @ x <= rhs`` (original variable space) in place.

        New rows get fresh slack columns *after* every existing column,
        so previously returned bases remain valid; extending such a
        basis with the returned slack columns (one per new row, basic in
        its own row) yields a dual-feasible warm start for the grown
        system — the cutting-plane re-entry.

        Returns:
            The new rows' slack column indices, in row order.
        """
        rows = np.asarray(rows, dtype=float).reshape(-1, self.n)
        rhs = np.asarray(rhs, dtype=float).reshape(-1)
        if rows.shape[0] != rhs.shape[0]:
            raise ValueError("appended rows/rhs length mismatch")
        self._a_orig = np.vstack([self._a_orig, rows])
        self._b_const = np.concatenate([self._b_const, rhs])
        self._row_is_le = np.concatenate(
            [self._row_is_le, np.ones(rows.shape[0], dtype=bool)]
        )
        self._rebuild_full()
        return [int(self._slack_col_of_row[i]) for i in range(self.m - rows.shape[0], self.m)]

    # -- solving ---------------------------------------------------------

    def solve(
        self,
        c: np.ndarray,
        lo: np.ndarray,
        hi: np.ndarray,
        basis: list[int] | None = None,
        max_iter: int = 20000,
        tol: float = 1e-9,
        pricing: str = "dantzig",
    ) -> LpResult | None:
        """Minimize ``c @ x`` under the prepared rows and ``[lo, hi]``.

        Returns ``None`` when the bound-finiteness pattern differs from
        the prepared structure (the caller must cold-solve) — by design
        bound *tightening* never changes the pattern.  With a ``basis``
        the solve warm-starts; without one (or when the basis is stale /
        singular) it runs the usual two phases on the cached structure.
        """
        lo = np.asarray(lo, dtype=float)
        hi = np.asarray(hi, dtype=float)
        if (
            self.m == 0
            or not np.array_equal(np.isfinite(lo), self._lb_finite)
            or not np.array_equal(np.isfinite(hi), self._ub_finite)
        ):
            return None
        if (lo > hi).any():
            return LpResult(SolveStatus.INFEASIBLE, math.nan, np.empty(0))
        lo_shift = np.where(self._lb_finite, lo, 0.0)
        b = self._b_const.copy()
        b[self._m_ub + self._m_eq : self._m_ub + self._m_eq + self._ub_row_vars.size] = hi[
            self._ub_row_vars
        ]
        b -= self._a_orig @ lo_shift
        c = np.asarray(c, dtype=float)
        c_exp = np.zeros(self.total_cols)
        c_exp[self._col_of] = c
        split = ~self._lb_finite
        if split.any():
            c_exp[self._col_of[split] + 1] = -c[split]

        if basis is not None and len(basis) == self.m and all(
            0 <= col < self.total_cols for col in basis
        ):
            result = self._warm(c_exp, b, list(basis), c, lo, max_iter, tol, pricing)
            if result is not None:
                return result
        return self._cold(c_exp, b, c, lo, max_iter, tol, pricing)

    def _warm(
        self,
        c_exp: np.ndarray,
        b: np.ndarray,
        basis: list[int],
        c: np.ndarray,
        lo: np.ndarray,
        max_iter: int,
        tol: float,
        pricing: str,
    ) -> "LpResult | None":
        """Re-enter from a previous basis; ``None`` -> fall back cold."""
        try:
            tableau = np.linalg.solve(
                self._a_full[:, basis],
                np.hstack([self._a_full, b.reshape(-1, 1)]),
            )
        except np.linalg.LinAlgError:
            return None
        obj = np.zeros(self.total_cols + 1)
        obj[: self.total_cols] = c_exp
        for i, col in enumerate(basis):
            if abs(obj[col]) > 0:
                obj -= obj[col] * tableau[i]
        dual_iters = 0
        if (tableau[:, -1] < -tol).any():
            if (obj[: self.total_cols] < -tol).any():
                return None  # neither primal nor dual feasible
            status, dual_iters = _dual_iterate(
                tableau, basis, obj, self.total_cols, max_iter, tol
            )
            if status is SolveStatus.INFEASIBLE:
                return LpResult(
                    SolveStatus.INFEASIBLE, math.nan, np.empty(0),
                    iterations=dual_iters,
                )
            if status is not SolveStatus.OPTIMAL:
                return None  # dual cycling/limit: retry from scratch
        status, iters = _iterate(
            tableau, basis, obj, self.total_cols, max_iter, tol, pricing
        )
        iterations = dual_iters + iters
        if status is not SolveStatus.OPTIMAL:
            return LpResult(
                status,
                math.nan if status is not SolveStatus.UNBOUNDED else -math.inf,
                np.empty(0),
                iterations=iterations,
            )
        return self._extract(tableau, basis, c, lo, iterations)

    def _cold(
        self,
        c_exp: np.ndarray,
        b: np.ndarray,
        c: np.ndarray,
        lo: np.ndarray,
        max_iter: int,
        tol: float,
        pricing: str,
    ) -> LpResult:
        """Two-phase solve on the cached structure (no basis hint)."""
        a = self._a_full.copy()
        b = b.copy()
        neg = b < 0
        a[neg] *= -1.0
        b[neg] *= -1.0
        status, basis, tableau, iters1 = _phase1(a, b, max_iter, tol, pricing)
        if status is not SolveStatus.OPTIMAL:
            return LpResult(status, math.nan, np.empty(0), iterations=iters1)
        c_full = np.zeros(self.total_cols)
        c_full[: c_exp.shape[0]] = c_exp
        status, basis, tableau, iters2 = _phase2(
            tableau, basis, c_full, self.total_cols, max_iter, tol, pricing
        )
        iterations = iters1 + iters2
        if status is not SolveStatus.OPTIMAL:
            return LpResult(
                status,
                math.nan if status is not SolveStatus.UNBOUNDED else -math.inf,
                np.empty(0),
                iterations=iterations,
            )
        return self._extract(tableau, basis, c, lo, iterations)

    def _extract(
        self,
        tableau: np.ndarray,
        basis: list[int],
        c: np.ndarray,
        lo: np.ndarray,
        iterations: int,
    ) -> LpResult:
        """Read the optimum out of a final tableau, in caller space."""
        z = np.zeros(self.total_cols)
        for row_idx, col in enumerate(basis):
            if col < self.total_cols:
                z[col] = tableau[row_idx, -1]
        x = z[self._col_of].copy()
        split = ~self._lb_finite
        if split.any():
            x[split] -= z[self._col_of[split] + 1]
        x[self._lb_finite] += lo[self._lb_finite]
        reusable = all(col < self.total_cols for col in basis)
        return LpResult(
            SolveStatus.OPTIMAL,
            float(c @ x),
            x,
            iterations=iterations,
            basis=list(basis) if reusable else None,
        )
