"""Solve results and status codes shared by every MILP backend."""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

import numpy as np


class SolveStatus(enum.Enum):
    """Outcome of a solve call, harmonized across backends."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    TIME_LIMIT = "time_limit"
    ITERATION_LIMIT = "iteration_limit"
    ERROR = "error"


@dataclass
class SolveResult:
    """Solution returned by a backend.

    Attributes:
        status: Harmonized solver status.
        objective: Objective value in the *user's* sense (max problems
            report the maximum, not the negated minimum).
        values: Array of variable values in column order (empty when no
            incumbent exists).
        backend: Name of the backend that produced the result.
        solve_time: Wall-clock seconds spent inside the backend.
        nodes: Branch-and-bound nodes explored (0 for pure LPs).
        iterations: Simplex pivots spent on this solve, summed over all
            LP relaxations (0 for backends that do not report it).
        message: Backend-specific diagnostic text.
    """

    status: SolveStatus
    objective: float = float("nan")
    values: np.ndarray = field(default_factory=lambda: np.empty(0))
    backend: str = ""
    solve_time: float = 0.0
    nodes: int = 0
    iterations: int = 0
    message: str = ""
    # Sound objective bound: for MILPs solved to a gap, the incumbent
    # `objective` may under-shoot the true optimum; `bound` is always on
    # the safe side (>= true max for maximization, <= true min for
    # minimization).  Equals `objective` for LPs and gap-free solves.
    bound: float = float("nan")

    @property
    def is_optimal(self) -> bool:
        """True when the solver proved optimality."""
        return self.status is SolveStatus.OPTIMAL

    def __getitem__(self, var: object) -> float:
        """Value of a :class:`~repro.milp.expr.Var` or expression."""
        from repro.milp.expr import LinExpr, Var

        if self.values.size == 0:
            raise ValueError(f"no solution available (status={self.status.value})")
        if isinstance(var, Var):
            return float(self.values[var.index])
        if isinstance(var, LinExpr):
            total = var.constant
            for idx, coef in var.coeffs.items():
                total += coef * self.values[idx]
            return float(total)
        raise TypeError(f"cannot index solution with {var!r}")

    def sound_bound(self) -> float | None:
        """Sound objective bound of this solve, or ``None`` when unusable.

        "Sound" means on the safe side of the true optimum in the user's
        sense: an over-estimate for maximization, an under-estimate for
        minimization.  Preference order:

        1. the dual ``bound`` — valid even for gap/time/node-limited
           MILPs (the solver proved no solution can beat it);
        2. the incumbent ``objective``, but only for a *proven-optimal*
           solve — the best solution found before a time limit is NOT a
           sound bound on the extremal side and is never returned here.

        Certification code must use this (never a raw time-limited
        ``objective``) whenever a solve may have hit a resource limit.
        """
        if math.isfinite(self.bound):
            return float(self.bound)
        if self.is_optimal and math.isfinite(self.objective):
            return float(self.objective)
        return None

    def require_optimal(self) -> "SolveResult":
        """Return self, raising if the solve did not reach optimality."""
        if not self.is_optimal:
            raise RuntimeError(
                f"solve failed: status={self.status.value} ({self.message})"
            )
        return self


def finalize_user_sense(
    result: SolveResult, sense: str, constant: float
) -> SolveResult:
    """Translate a raw minimization-sense result into the user's sense.

    Every backend internally minimizes; this single transform guarantees
    identical result semantics across backends (the contract stated on
    :class:`SolveResult`): whenever a finite incumbent objective exists —
    proven optimal *or* the best solution found before a time/node limit
    — it is reported in the user's sense with the objective constant
    re-applied.  The dual ``bound`` is transformed whenever finite, so
    time-limited max-sense solves still carry a sound upper bound.

    Args:
        result: Backend result, objective/bound in minimization sense.
        sense: The user's objective sense, ``"min"`` or ``"max"``.
        constant: The affine objective's constant term.

    Returns:
        ``result``, mutated in place.
    """
    if sense == "max":
        result.objective = -result.objective  # nan-safe: -nan is nan
        result.bound = -result.bound
    if math.isfinite(result.objective):
        result.objective += constant
    if math.isfinite(result.bound):
        result.bound += constant
    return result
