"""Minimal-yet-complete neural network substrate (numpy only).

This package replaces the paper's TensorFlow dependency.  It supports the
layer types the paper certifies — fully-connected, convolutional, average
pooling, flatten, and affine normalization, each with an optional ReLU —
with batched forward inference, reverse-mode autodiff, training loops
(SGD/Adam, MSE/cross-entropy), and (de)serialization.

The certification pipeline consumes networks through
:meth:`repro.nn.network.Network.to_affine_layers`, which materializes the
model as a chain of affine transforms ``y = W x + b`` with per-layer ReLU
flags — exactly the form assumed in §II-A of the paper.
"""

from repro.nn.affine import AffineLayer, merge_affine_chain
from repro.nn.layers import AvgPool2D, Conv2D, Dense, Flatten, Layer, Normalize
from repro.nn.lipschitz import (
    linf_gain_upper_bound,
    make_row_norm_projector,
    project_row_norms,
)
from repro.nn.losses import Loss, MeanSquaredError, SoftmaxCrossEntropy
from repro.nn.network import Network
from repro.nn.optimizers import SGD, Adam, Optimizer
from repro.nn.serialize import load_network, save_network
from repro.nn.train import TrainConfig, TrainHistory, train

__all__ = [
    "Layer",
    "Dense",
    "Conv2D",
    "AvgPool2D",
    "Flatten",
    "Normalize",
    "Network",
    "AffineLayer",
    "merge_affine_chain",
    "Loss",
    "MeanSquaredError",
    "SoftmaxCrossEntropy",
    "Optimizer",
    "SGD",
    "Adam",
    "train",
    "TrainConfig",
    "TrainHistory",
    "save_network",
    "load_network",
    "project_row_norms",
    "make_row_norm_projector",
    "linf_gain_upper_bound",
]
