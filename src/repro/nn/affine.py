"""Canonical affine-chain form of a network.

The certifier, the interval propagators and the MILP encoders all consume
networks in the paper's §II-A normal form: a sequence of layers, each a
dense affine transform over flattened vectors with an optional ReLU,

    y(i) = W(i) x(i-1) + b(i),     x(i) = relu(y(i)) or y(i).

:class:`AffineLayer` is that normal form; :func:`merge_affine_chain`
collapses consecutive purely-linear stages (Flatten, AvgPool, Normalize,
linear Conv/Dense with no ReLU) so that every remaining layer boundary is
a genuine nonlinearity — this keeps the twin-network MILPs as small as
possible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class AffineLayer:
    """One normal-form layer ``y = weight @ x + bias`` (+ optional ReLU).

    Attributes:
        weight: ``(m_out, m_in)`` matrix.
        bias: ``(m_out,)`` vector.
        relu: Whether a ReLU follows.
        name: Optional provenance label (e.g. ``"conv1+pool"``).
    """

    weight: np.ndarray
    bias: np.ndarray
    relu: bool
    name: str = ""

    def __post_init__(self) -> None:
        self.weight = np.asarray(self.weight, dtype=float)
        self.bias = np.asarray(self.bias, dtype=float)
        if self.weight.ndim != 2:
            raise ValueError("AffineLayer weight must be a matrix")
        if self.bias.shape != (self.weight.shape[0],):
            raise ValueError(
                f"bias shape {self.bias.shape} does not match weight rows "
                f"{self.weight.shape[0]}"
            )

    @property
    def in_dim(self) -> int:
        """Input dimension."""
        return self.weight.shape[1]

    @property
    def out_dim(self) -> int:
        """Output dimension."""
        return self.weight.shape[0]

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Apply the layer to flat sample(s); last axis is features."""
        y = x @ self.weight.T + self.bias
        return np.maximum(y, 0.0) if self.relu else y

    def pre_activation(self, x: np.ndarray) -> np.ndarray:
        """Linear part only."""
        return x @ self.weight.T + self.bias


def merge_affine_chain(layers: list[AffineLayer]) -> list[AffineLayer]:
    """Collapse consecutive layers with no intervening ReLU.

    ``W2 (W1 x + b1) + b2 = (W2 W1) x + (W2 b1 + b2)`` — exact, so the
    merged chain computes the identical function with fewer (and only
    ReLU-separated) stages.

    Returns:
        A new list; inputs are not mutated.
    """
    merged: list[AffineLayer] = []
    for layer in layers:
        if merged and not merged[-1].relu:
            prev = merged.pop()
            combined = AffineLayer(
                weight=layer.weight @ prev.weight,
                bias=layer.weight @ prev.bias + layer.bias,
                relu=layer.relu,
                name=f"{prev.name}+{layer.name}".strip("+"),
            )
            merged.append(combined)
        else:
            merged.append(
                AffineLayer(layer.weight.copy(), layer.bias.copy(), layer.relu, layer.name)
            )
    return merged


def affine_chain_forward(layers: list[AffineLayer], x: np.ndarray) -> np.ndarray:
    """Run flat sample(s) through an affine chain."""
    out = np.asarray(x, dtype=float)
    for layer in layers:
        out = layer.forward(out)
    return out


def chain_dims(layers: list[AffineLayer]) -> list[int]:
    """[m0, m1, ..., mn] dimensions along the chain, validating joints."""
    if not layers:
        raise ValueError("empty affine chain")
    dims = [layers[0].in_dim]
    for i, layer in enumerate(layers):
        if layer.in_dim != dims[-1]:
            raise ValueError(
                f"layer {i} expects {layer.in_dim} inputs but receives {dims[-1]}"
            )
        dims.append(layer.out_dim)
    return dims
