"""Layer zoo: Dense, Conv2D, AvgPool2D, Flatten, Normalize.

Every layer follows the paper's §II-A model: a linear transformation
``y = W x + b`` optionally followed by an element-wise ReLU.  Layers are
batched (leading axis is the batch) and implement reverse-mode autodiff
via ``backward``.  Layers also know how to materialize themselves as a
dense affine map over flattened inputs (``as_affine``), which is what the
MILP encoders and interval propagators consume.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

Shape = tuple[int, ...]


def _relu(y: np.ndarray) -> np.ndarray:
    return np.maximum(y, 0.0)


class Layer:
    """Base class for all layers.

    Subclasses implement ``_linear_forward`` / ``_linear_backward`` for
    the affine part; ReLU handling is shared here.

    Attributes:
        relu: Whether an element-wise ReLU follows the linear transform.
    """

    def __init__(self, relu: bool = False) -> None:
        self.relu = bool(relu)
        self._cache_y: np.ndarray | None = None

    # -- shape plumbing ----------------------------------------------------

    def output_shape(self, input_shape: Shape) -> Shape:
        """Shape of one output sample for a given input sample shape."""
        raise NotImplementedError

    # -- inference -----------------------------------------------------------

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Apply the layer to a batch ``x`` (leading axis = batch)."""
        y = self._linear_forward(x)
        if training:
            self._cache_y = y
        return _relu(y) if self.relu else y

    def pre_activation(self, x: np.ndarray) -> np.ndarray:
        """Linear output ``y = W x + b`` without the ReLU."""
        return self._linear_forward(x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Back-propagate ``dL/d(output)`` to ``dL/d(input)``.

        Must be called after ``forward(..., training=True)``; parameter
        gradients are accumulated into ``self.grads``.
        """
        if self.relu:
            if self._cache_y is None:
                raise RuntimeError("backward called before forward(training=True)")
            grad_out = grad_out * (self._cache_y > 0)
        return self._linear_backward(grad_out)

    # -- parameters ------------------------------------------------------------

    @property
    def params(self) -> dict[str, np.ndarray]:
        """Trainable parameter arrays by name (may be empty)."""
        return {}

    @property
    def grads(self) -> dict[str, np.ndarray]:
        """Parameter gradients matching :attr:`params` keys."""
        return {}

    # -- affine materialization ---------------------------------------------------

    def as_affine(self, input_shape: Shape) -> tuple[np.ndarray, np.ndarray]:
        """Dense ``(W, b)`` with ``flat_out = W @ flat_in + b``.

        Flattening is C-order over the sample shape (batch excluded).
        """
        raise NotImplementedError

    # -- internals ---------------------------------------------------------------

    def _linear_forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _linear_backward(self, grad_y: np.ndarray) -> np.ndarray:
        raise NotImplementedError


class Dense(Layer):
    """Fully-connected layer ``y = x @ W.T + b``.

    Args:
        in_features: Input dimension.
        out_features: Output dimension.
        relu: Apply ReLU after the affine map.
        rng: Generator used for He-uniform initialization.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        relu: bool = False,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(relu)
        rng = rng or np.random.default_rng()
        limit = math.sqrt(6.0 / in_features)
        self.weight = rng.uniform(-limit, limit, size=(out_features, in_features))
        self.bias = np.zeros(out_features)
        self._grad_w = np.zeros_like(self.weight)
        self._grad_b = np.zeros_like(self.bias)
        self._cache_x: np.ndarray | None = None

    def output_shape(self, input_shape: Shape) -> Shape:
        expected = (self.weight.shape[1],)
        if tuple(input_shape) != expected:
            raise ValueError(
                f"Dense expects input shape {expected}, got {tuple(input_shape)}"
            )
        return (self.weight.shape[0],)

    def _linear_forward(self, x: np.ndarray) -> np.ndarray:
        self._cache_x = x
        return x @ self.weight.T + self.bias

    def _linear_backward(self, grad_y: np.ndarray) -> np.ndarray:
        if self._cache_x is None:
            raise RuntimeError("backward called before forward")
        self._grad_w[...] = grad_y.T @ self._cache_x
        self._grad_b[...] = grad_y.sum(axis=0)
        return grad_y @ self.weight

    @property
    def params(self) -> dict[str, np.ndarray]:
        return {"weight": self.weight, "bias": self.bias}

    @property
    def grads(self) -> dict[str, np.ndarray]:
        return {"weight": self._grad_w, "bias": self._grad_b}

    def as_affine(self, input_shape: Shape) -> tuple[np.ndarray, np.ndarray]:
        self.output_shape(input_shape)
        return self.weight.copy(), self.bias.copy()


class Conv2D(Layer):
    """2-D convolution (NCHW layout, 'valid' or integer zero padding).

    Args:
        in_channels: Input channel count.
        out_channels: Number of filters.
        kernel_size: Square kernel edge or ``(kh, kw)``.
        stride: Step between applications.
        padding: Symmetric zero padding.
        relu: Apply ReLU after convolution.
        rng: Generator for He-uniform initialization.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int | tuple[int, int] = 3,
        stride: int = 1,
        padding: int = 0,
        relu: bool = False,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(relu)
        if isinstance(kernel_size, int):
            kernel_size = (kernel_size, kernel_size)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = int(stride)
        self.padding = int(padding)
        rng = rng or np.random.default_rng()
        fan_in = in_channels * kernel_size[0] * kernel_size[1]
        limit = math.sqrt(6.0 / fan_in)
        self.weight = rng.uniform(
            -limit, limit, size=(out_channels, in_channels, *kernel_size)
        )
        self.bias = np.zeros(out_channels)
        self._grad_w = np.zeros_like(self.weight)
        self._grad_b = np.zeros_like(self.bias)
        self._cache_cols: np.ndarray | None = None
        self._cache_in_shape: Shape | None = None

    # -- geometry -------------------------------------------------------------

    def output_shape(self, input_shape: Shape) -> Shape:
        c, h, w = input_shape
        if c != self.in_channels:
            raise ValueError(
                f"Conv2D expects {self.in_channels} channels, got {c}"
            )
        kh, kw = self.kernel_size
        oh = (h + 2 * self.padding - kh) // self.stride + 1
        ow = (w + 2 * self.padding - kw) // self.stride + 1
        if oh <= 0 or ow <= 0:
            raise ValueError(f"kernel {self.kernel_size} too large for input {input_shape}")
        return (self.out_channels, oh, ow)

    def _im2col(self, x: np.ndarray) -> np.ndarray:
        """(N, C, H, W) -> (N, oh*ow, C*kh*kw) patch matrix."""
        n, c, h, w = x.shape
        kh, kw = self.kernel_size
        p, s = self.padding, self.stride
        if p:
            x = np.pad(x, ((0, 0), (0, 0), (p, p), (p, p)))
        oh = (h + 2 * p - kh) // s + 1
        ow = (w + 2 * p - kw) // s + 1
        windows = np.lib.stride_tricks.sliding_window_view(x, (kh, kw), axis=(2, 3))
        windows = windows[:, :, ::s, ::s, :, :]  # (N, C, oh, ow, kh, kw)
        cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(n, oh * ow, c * kh * kw)
        return cols

    def _linear_forward(self, x: np.ndarray) -> np.ndarray:
        n = x.shape[0]
        _, oh, ow = self.output_shape(x.shape[1:])
        cols = self._im2col(x)
        self._cache_cols = cols
        self._cache_in_shape = x.shape
        w_mat = self.weight.reshape(self.out_channels, -1)
        out = cols @ w_mat.T + self.bias  # (N, oh*ow, out_ch)
        return out.transpose(0, 2, 1).reshape(n, self.out_channels, oh, ow)

    def _linear_backward(self, grad_y: np.ndarray) -> np.ndarray:
        if self._cache_cols is None or self._cache_in_shape is None:
            raise RuntimeError("backward called before forward")
        n, _, oh, ow = grad_y.shape
        g = grad_y.reshape(n, self.out_channels, oh * ow).transpose(0, 2, 1)
        w_mat = self.weight.reshape(self.out_channels, -1)
        self._grad_w[...] = (
            np.einsum("npo,npk->ok", g, self._cache_cols).reshape(self.weight.shape)
        )
        self._grad_b[...] = g.sum(axis=(0, 1))
        grad_cols = g @ w_mat  # (N, oh*ow, C*kh*kw)
        return self._col2im(grad_cols)

    def _col2im(self, grad_cols: np.ndarray) -> np.ndarray:
        """Scatter-add column gradients back to the (padded) input."""
        n, c, h, w = self._cache_in_shape
        kh, kw = self.kernel_size
        p, s = self.padding, self.stride
        hp, wp = h + 2 * p, w + 2 * p
        oh = (hp - kh) // s + 1
        ow = (wp - kw) // s + 1
        grad_x = np.zeros((n, c, hp, wp))
        patches = grad_cols.reshape(n, oh, ow, c, kh, kw)
        for i in range(oh):
            for j in range(ow):
                grad_x[:, :, i * s : i * s + kh, j * s : j * s + kw] += patches[
                    :, i, j
                ]
        if p:
            grad_x = grad_x[:, :, p:-p, p:-p]
        return grad_x

    @property
    def params(self) -> dict[str, np.ndarray]:
        return {"weight": self.weight, "bias": self.bias}

    @property
    def grads(self) -> dict[str, np.ndarray]:
        return {"weight": self._grad_w, "bias": self._grad_b}

    def as_affine(self, input_shape: Shape) -> tuple[np.ndarray, np.ndarray]:
        """Materialize the convolution as a dense matrix over flat input."""
        c, h, w = input_shape
        out_shape = self.output_shape(input_shape)
        m_in = c * h * w
        m_out = int(np.prod(out_shape))
        big_w = np.zeros((m_out, m_in))
        big_b = np.zeros(m_out)
        # Drive the forward pass with basis vectors channel-batched for
        # clarity over speed; certification networks are small.
        eye = np.eye(m_in)
        basis = eye.reshape(m_in, c, h, w)
        zero = np.zeros((1, c, h, w))
        response = self.pre_activation(basis)  # (m_in, *out_shape)
        offset = self.pre_activation(zero)[0]
        big_b[...] = offset.reshape(-1)
        big_w[...] = (response.reshape(m_in, m_out) - big_b).T
        return big_w, big_b


class AvgPool2D(Layer):
    """Average pooling with square window and matching stride."""

    def __init__(self, pool_size: int = 2, relu: bool = False) -> None:
        super().__init__(relu)
        self.pool_size = int(pool_size)
        self._cache_in_shape: Shape | None = None

    def output_shape(self, input_shape: Shape) -> Shape:
        c, h, w = input_shape
        k = self.pool_size
        if h % k or w % k:
            raise ValueError(
                f"AvgPool2D({k}) requires dims divisible by {k}, got {input_shape}"
            )
        return (c, h // k, w // k)

    def _linear_forward(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        k = self.pool_size
        self._cache_in_shape = x.shape
        return x.reshape(n, c, h // k, k, w // k, k).mean(axis=(3, 5))

    def _linear_backward(self, grad_y: np.ndarray) -> np.ndarray:
        if self._cache_in_shape is None:
            raise RuntimeError("backward called before forward")
        n, c, h, w = self._cache_in_shape
        k = self.pool_size
        grad = grad_y / (k * k)
        grad = np.repeat(np.repeat(grad, k, axis=2), k, axis=3)
        return grad

    def as_affine(self, input_shape: Shape) -> tuple[np.ndarray, np.ndarray]:
        c, h, w = input_shape
        out_shape = self.output_shape(input_shape)
        m_in = c * h * w
        m_out = int(np.prod(out_shape))
        k = self.pool_size
        big_w = np.zeros((m_out, m_in))
        in_idx = np.arange(m_in).reshape(c, h, w)
        out_idx = np.arange(m_out).reshape(out_shape)
        for ci in range(c):
            for oi in range(out_shape[1]):
                for oj in range(out_shape[2]):
                    block = in_idx[ci, oi * k : (oi + 1) * k, oj * k : (oj + 1) * k]
                    big_w[out_idx[ci, oi, oj], block.reshape(-1)] = 1.0 / (k * k)
        return big_w, np.zeros(m_out)


class Flatten(Layer):
    """Reshape (C, H, W) samples to flat vectors; identity affine map."""

    def __init__(self) -> None:
        super().__init__(relu=False)
        self._cache_in_shape: Shape | None = None

    def output_shape(self, input_shape: Shape) -> Shape:
        return (int(np.prod(input_shape)),)

    def _linear_forward(self, x: np.ndarray) -> np.ndarray:
        self._cache_in_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def _linear_backward(self, grad_y: np.ndarray) -> np.ndarray:
        if self._cache_in_shape is None:
            raise RuntimeError("backward called before forward")
        return grad_y.reshape(self._cache_in_shape)

    def as_affine(self, input_shape: Shape) -> tuple[np.ndarray, np.ndarray]:
        m = int(np.prod(input_shape))
        return np.eye(m), np.zeros(m)


class Normalize(Layer):
    """Fixed element-wise affine map ``y = scale * x + shift``.

    Used to fold dataset standardization into the network so the
    certified input domain is stated in raw units.  ``scale``/``shift``
    broadcast against the sample shape.
    """

    def __init__(
        self,
        scale: float | Sequence[float] | np.ndarray,
        shift: float | Sequence[float] | np.ndarray = 0.0,
        relu: bool = False,
    ) -> None:
        super().__init__(relu)
        self.scale = np.asarray(scale, dtype=float)
        self.shift = np.asarray(shift, dtype=float)

    def output_shape(self, input_shape: Shape) -> Shape:
        np.broadcast_shapes(tuple(input_shape), self.scale.shape, self.shift.shape)
        return tuple(input_shape)

    def _linear_forward(self, x: np.ndarray) -> np.ndarray:
        return x * self.scale + self.shift

    def _linear_backward(self, grad_y: np.ndarray) -> np.ndarray:
        return grad_y * self.scale

    def as_affine(self, input_shape: Shape) -> tuple[np.ndarray, np.ndarray]:
        m = int(np.prod(input_shape))
        scale_flat = np.broadcast_to(self.scale, input_shape).reshape(-1)
        shift_flat = np.broadcast_to(self.shift, input_shape).reshape(-1)
        return np.diag(scale_flat), shift_flat.copy()
