"""Lipschitz control: hard row-norm caps and L∞ gain estimation.

The certified global robustness of a ReLU network is at best
``ε ≈ δ · L`` where ``L`` is the network's global L∞→L∞ Lipschitz
constant, itself bounded by the product of per-layer induced ∞-norms
(maximum row L1 norm).  A network can therefore only receive a *tight*
global certificate if it was trained with its layer norms under control
— which is what :func:`make_row_norm_projector` enforces: after every
optimizer step, any Dense row (or Conv output-channel kernel) whose L1
norm exceeds its cap is rescaled onto the cap.

This is the projected-gradient analogue of spectral normalization,
specialized to the ∞-norm that L∞ robustness certification composes.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.nn.layers import Conv2D, Dense
from repro.nn.network import Network


def project_row_norms(network: Network, caps: Sequence[float]) -> None:
    """Clip each parametric layer's rows onto its L1-norm cap, in place.

    Args:
        network: Model to project.
        caps: One cap per *parametric* layer (Dense/Conv2D), in order.
    """
    parametric = [l for l in network.layers if isinstance(l, (Dense, Conv2D))]
    if len(caps) != len(parametric):
        raise ValueError(
            f"{len(caps)} caps given for {len(parametric)} parametric layers"
        )
    for cap, layer in zip(caps, parametric):
        if cap <= 0:
            raise ValueError("caps must be positive")
        if isinstance(layer, Dense):
            norms = np.abs(layer.weight).sum(axis=1)
            scale = np.minimum(1.0, cap / np.maximum(norms, 1e-12))
            layer.weight *= scale[:, None]
        else:
            flat = np.abs(layer.weight).sum(axis=(1, 2, 3))
            scale = np.minimum(1.0, cap / np.maximum(flat, 1e-12))
            layer.weight *= scale[:, None, None, None]


def make_row_norm_projector(caps: Sequence[float]) -> Callable[[Network], None]:
    """A ``post_step`` hook for :func:`repro.nn.train.train`."""
    caps = list(caps)

    def hook(network: Network) -> None:
        project_row_norms(network, caps)

    return hook


def linf_gain_upper_bound(network: Network) -> float:
    """Product of per-layer induced ∞-norms (a global Lipschitz bound).

    For the normal-form chain this bounds ``‖F(x̂) − F(x)‖∞ ≤ L·‖x̂−x‖∞``
    over the whole input space; ``δ · L`` is the coarsest sound global
    robustness bound and a quick feasibility check before certifying.
    """
    gain = 1.0
    for layer in network.to_affine_layers():
        gain *= float(np.abs(layer.weight).sum(axis=1).max())
    return gain
