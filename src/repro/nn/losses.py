"""Training losses with analytic gradients."""

from __future__ import annotations

import numpy as np


class Loss:
    """Interface: ``value`` and ``gradient`` w.r.t. predictions."""

    def value(self, pred: np.ndarray, target: np.ndarray) -> float:
        """Scalar loss averaged over the batch."""
        raise NotImplementedError

    def gradient(self, pred: np.ndarray, target: np.ndarray) -> np.ndarray:
        """dL/dpred, same shape as ``pred``."""
        raise NotImplementedError


class MeanSquaredError(Loss):
    """0.5 * mean over batch of squared error (regression tasks)."""

    def value(self, pred: np.ndarray, target: np.ndarray) -> float:
        diff = pred - target
        return float(0.5 * np.mean(np.sum(diff * diff, axis=tuple(range(1, diff.ndim)))))

    def gradient(self, pred: np.ndarray, target: np.ndarray) -> np.ndarray:
        return (pred - target) / pred.shape[0]


class SoftmaxCrossEntropy(Loss):
    """Softmax + cross-entropy over integer class labels.

    ``target`` is an int array of shape ``(N,)``; ``pred`` are logits of
    shape ``(N, num_classes)``.
    """

    @staticmethod
    def _softmax(logits: np.ndarray) -> np.ndarray:
        z = logits - logits.max(axis=1, keepdims=True)
        e = np.exp(z)
        return e / e.sum(axis=1, keepdims=True)

    def value(self, pred: np.ndarray, target: np.ndarray) -> float:
        probs = self._softmax(pred)
        n = pred.shape[0]
        picked = probs[np.arange(n), target.astype(int)]
        return float(-np.mean(np.log(np.clip(picked, 1e-12, None))))

    def gradient(self, pred: np.ndarray, target: np.ndarray) -> np.ndarray:
        probs = self._softmax(pred)
        n = pred.shape[0]
        grad = probs
        grad[np.arange(n), target.astype(int)] -= 1.0
        return grad / n

    @staticmethod
    def accuracy(pred: np.ndarray, target: np.ndarray) -> float:
        """Top-1 accuracy of logits against integer labels."""
        return float(np.mean(pred.argmax(axis=1) == target.astype(int)))
