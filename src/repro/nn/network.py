"""Sequential network container with autodiff and affine export."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn.affine import AffineLayer, merge_affine_chain
from repro.nn.layers import Layer, Shape


class Network:
    """A feed-forward network: an input shape plus a list of layers.

    Args:
        input_shape: Shape of one input sample, e.g. ``(7,)`` for tabular
            data or ``(1, 14, 14)`` for single-channel images.
        layers: Layers applied in order.

    Example::

        net = Network((2,), [Dense(2, 2, relu=True, rng=rng),
                             Dense(2, 1, relu=True, rng=rng)])
        y = net.forward(np.zeros((5, 2)))
    """

    def __init__(self, input_shape: Shape | int, layers: Sequence[Layer]) -> None:
        if isinstance(input_shape, int):
            input_shape = (input_shape,)
        self.input_shape: Shape = tuple(int(d) for d in input_shape)
        self.layers: list[Layer] = list(layers)
        # Validate the chain once up front; this also caches shapes.
        self.layer_shapes: list[Shape] = [self.input_shape]
        for layer in self.layers:
            self.layer_shapes.append(layer.output_shape(self.layer_shapes[-1]))

    # -- basic facts --------------------------------------------------------

    @property
    def output_shape(self) -> Shape:
        """Shape of one output sample."""
        return self.layer_shapes[-1]

    @property
    def input_dim(self) -> int:
        """Flattened input dimension (m0 in the paper)."""
        return int(np.prod(self.input_shape))

    @property
    def output_dim(self) -> int:
        """Flattened output dimension (mn in the paper)."""
        return int(np.prod(self.output_shape))

    def num_hidden_neurons(self) -> int:
        """Total ReLU neurons — the 'Neurons' column of Table I."""
        total = 0
        for layer, shape in zip(self.layers, self.layer_shapes[1:]):
            if layer.relu:
                total += int(np.prod(shape))
        return total

    # -- inference -------------------------------------------------------------

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Run a batch through the network.

        Args:
            x: Batch shaped ``(N, *input_shape)`` — or ``(N, input_dim)``
                flat, which is reshaped automatically.
            training: Cache intermediates for :meth:`backward`.
        """
        x = np.asarray(x, dtype=float)
        if x.shape[1:] != self.input_shape:
            x = x.reshape(x.shape[0], *self.input_shape)
        for layer in self.layers:
            x = layer.forward(x, training=training)
        return x

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Single-sample convenience: accepts and returns unbatched data."""
        x = np.asarray(x, dtype=float)
        return self.forward(x[None])[0]

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Back-propagate output gradients to input gradients."""
        grad = grad_out
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def input_gradient(self, x: np.ndarray, output_weights: np.ndarray) -> np.ndarray:
        """Gradient of ``output_weights @ F(x)`` w.r.t. ``x`` (batched).

        Used by the FGSM/PGD attacks.  ``output_weights`` has shape
        ``(output_dim,)`` and selects/combines output coordinates.
        """
        x = np.asarray(x, dtype=float)
        batched = x.ndim > len(self.input_shape)
        xb = x if batched else x[None]
        out = self.forward(xb, training=True)
        grad_out = np.broadcast_to(
            np.asarray(output_weights, dtype=float).reshape(self.output_shape),
            out.shape,
        ).copy()
        grad_in = self.backward(grad_out)
        return grad_in if batched else grad_in[0]

    # -- parameters -----------------------------------------------------------------

    def parameters(self) -> list[tuple[Layer, str, np.ndarray]]:
        """All trainable arrays as (layer, name, array) triples."""
        out = []
        for layer in self.layers:
            for name, arr in layer.params.items():
                out.append((layer, name, arr))
        return out

    def num_parameters(self) -> int:
        """Total number of trainable scalars."""
        return sum(arr.size for _, _, arr in self.parameters())

    # -- export to certification form --------------------------------------------------

    def to_affine_layers(self, compact: bool = True) -> list[AffineLayer]:
        """Materialize the network as a chain of :class:`AffineLayer`.

        Args:
            compact: Merge consecutive ReLU-free stages (exact rewrite).

        Returns:
            The normal-form chain consumed by bounds/encoding/certify.
        """
        chain: list[AffineLayer] = []
        shape = self.input_shape
        for k, layer in enumerate(self.layers):
            weight, bias = layer.as_affine(shape)
            chain.append(
                AffineLayer(weight, bias, layer.relu, name=type(layer).__name__.lower() + str(k))
            )
            shape = layer.output_shape(shape)
        return merge_affine_chain(chain) if compact else chain

    def __repr__(self) -> str:
        inner = ", ".join(type(l).__name__ for l in self.layers)
        return f"Network({self.input_shape} -> {self.output_shape}: {inner})"

def as_affine_chain(network: "Network | Sequence[AffineLayer]") -> list[AffineLayer]:
    """Normal-form chain of a :class:`Network`, or the given chain as a list.

    The shared entry point for every certifier/propagator that accepts
    "a network or its affine chain".
    """
    if isinstance(network, Network):
        return network.to_affine_layers()
    return list(network)
