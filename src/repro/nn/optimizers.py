"""Parameter-update rules: SGD with momentum, Adam."""

from __future__ import annotations

import numpy as np


class Optimizer:
    """Interface: ``step(params_and_grads)`` updates arrays in place."""

    def step(self, params_and_grads: list[tuple[np.ndarray, np.ndarray]]) -> None:
        """Apply one update. Each tuple is (parameter array, gradient)."""
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with classical momentum.

    Args:
        lr: Learning rate.
        momentum: Momentum factor in [0, 1).
        weight_decay: L2 coefficient applied to parameters.
    """

    def __init__(self, lr: float = 0.01, momentum: float = 0.0, weight_decay: float = 0.0) -> None:
        self.lr = float(lr)
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self._velocity: dict[int, np.ndarray] = {}

    def step(self, params_and_grads) -> None:
        for param, grad in params_and_grads:
            g = grad
            if self.weight_decay:
                g = g + self.weight_decay * param
            if self.momentum:
                vel = self._velocity.setdefault(id(param), np.zeros_like(param))
                vel *= self.momentum
                vel -= self.lr * g
                param += vel
            else:
                param -= self.lr * g


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction and decoupled weight decay.

    Args:
        lr: Step size.
        beta1: First-moment decay.
        beta2: Second-moment decay.
        eps: Numerical stabilizer.
        weight_decay: AdamW-style decoupled L2 shrinkage.  Besides its
            regularization role, weight decay directly reduces the
            network's global Lipschitz constant, which tightens every
            global-robustness bound certified on the trained model.
    """

    def __init__(
        self,
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        self.lr = float(lr)
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._m: dict[int, np.ndarray] = {}
        self._v: dict[int, np.ndarray] = {}
        self._t = 0

    def step(self, params_and_grads) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1**self._t
        bias2 = 1.0 - b2**self._t
        for param, grad in params_and_grads:
            m = self._m.setdefault(id(param), np.zeros_like(param))
            v = self._v.setdefault(id(param), np.zeros_like(param))
            m *= b1
            m += (1 - b1) * grad
            v *= b2
            v += (1 - b2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            if self.weight_decay:
                param *= 1.0 - self.lr * self.weight_decay
            param -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
