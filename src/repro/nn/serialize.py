"""Save/load networks to a single ``.npz`` archive.

The archive stores a JSON architecture description plus one array entry
per parameter, so models survive across sessions without pickling code.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.nn.layers import AvgPool2D, Conv2D, Dense, Flatten, Normalize
from repro.nn.network import Network

_LAYER_TAGS = {
    Dense: "dense",
    Conv2D: "conv2d",
    AvgPool2D: "avgpool2d",
    Flatten: "flatten",
    Normalize: "normalize",
}


def _describe(layer) -> dict:
    """Architecture record for one layer (no weights)."""
    tag = _LAYER_TAGS[type(layer)]
    spec: dict = {"type": tag, "relu": layer.relu}
    if isinstance(layer, Dense):
        spec["in_features"] = layer.weight.shape[1]
        spec["out_features"] = layer.weight.shape[0]
    elif isinstance(layer, Conv2D):
        spec.update(
            in_channels=layer.in_channels,
            out_channels=layer.out_channels,
            kernel_size=list(layer.kernel_size),
            stride=layer.stride,
            padding=layer.padding,
        )
    elif isinstance(layer, AvgPool2D):
        spec["pool_size"] = layer.pool_size
    return spec


def save_network(network: Network, path: str | Path) -> None:
    """Write ``network`` to ``path`` (``.npz``)."""
    arch = {
        "input_shape": list(network.input_shape),
        "layers": [_describe(layer) for layer in network.layers],
    }
    arrays: dict[str, np.ndarray] = {"architecture": np.frombuffer(
        json.dumps(arch).encode(), dtype=np.uint8
    )}
    for k, layer in enumerate(network.layers):
        if isinstance(layer, Normalize):
            arrays[f"layer{k}.scale"] = layer.scale
            arrays[f"layer{k}.shift"] = layer.shift
        else:
            for name, arr in layer.params.items():
                arrays[f"layer{k}.{name}"] = arr
    np.savez(Path(path), **arrays)


def load_network(path: str | Path) -> Network:
    """Reconstruct a network written by :func:`save_network`."""
    with np.load(Path(path)) as data:
        arch = json.loads(bytes(data["architecture"]).decode())
        layers = []
        for k, spec in enumerate(arch["layers"]):
            tag = spec["type"]
            relu = bool(spec["relu"])
            if tag == "dense":
                layer = Dense(spec["in_features"], spec["out_features"], relu=relu)
                layer.weight[...] = data[f"layer{k}.weight"]
                layer.bias[...] = data[f"layer{k}.bias"]
            elif tag == "conv2d":
                layer = Conv2D(
                    spec["in_channels"],
                    spec["out_channels"],
                    kernel_size=tuple(spec["kernel_size"]),
                    stride=spec["stride"],
                    padding=spec["padding"],
                    relu=relu,
                )
                layer.weight[...] = data[f"layer{k}.weight"]
                layer.bias[...] = data[f"layer{k}.bias"]
            elif tag == "avgpool2d":
                layer = AvgPool2D(spec["pool_size"], relu=relu)
            elif tag == "flatten":
                layer = Flatten()
            elif tag == "normalize":
                layer = Normalize(
                    scale=data[f"layer{k}.scale"],
                    shift=data[f"layer{k}.shift"],
                    relu=relu,
                )
            else:
                raise ValueError(f"unknown layer tag {tag!r} in {path}")
            layers.append(layer)
    return Network(tuple(arch["input_shape"]), layers)
