"""Mini-batch training loop shared by all experiments."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.losses import Loss, MeanSquaredError
from repro.nn.network import Network
from repro.nn.optimizers import Adam, Optimizer


@dataclass
class TrainConfig:
    """Hyper-parameters for :func:`train`.

    Attributes:
        epochs: Number of passes over the data.
        batch_size: Mini-batch size.
        shuffle: Reshuffle data each epoch.
        seed: RNG seed for shuffling.
        verbose: Print one line per ``log_every`` epochs.
        log_every: Logging period in epochs.
    """

    epochs: int = 50
    batch_size: int = 32
    shuffle: bool = True
    seed: int = 0
    verbose: bool = False
    log_every: int = 10


@dataclass
class TrainHistory:
    """Per-epoch training trace."""

    losses: list[float] = field(default_factory=list)
    val_losses: list[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        """Training loss of the last epoch."""
        return self.losses[-1] if self.losses else float("nan")


def train(
    network: Network,
    x: np.ndarray,
    y: np.ndarray,
    loss: Loss | None = None,
    optimizer: Optimizer | None = None,
    config: TrainConfig | None = None,
    x_val: np.ndarray | None = None,
    y_val: np.ndarray | None = None,
    post_step=None,
) -> TrainHistory:
    """Train ``network`` in place on ``(x, y)``.

    Args:
        network: Model to train (updated in place).
        x: Inputs ``(N, *input_shape)``.
        y: Targets (regression arrays or integer class labels).
        loss: Defaults to :class:`MeanSquaredError`.
        optimizer: Defaults to :class:`Adam` with lr=1e-3.
        config: Loop hyper-parameters.
        x_val / y_val: Optional held-out split, evaluated per epoch.
        post_step: Optional callback ``f(network)`` invoked after every
            optimizer step — the hook used for constraint projections
            such as Lipschitz (row-norm) capping.

    Returns:
        The :class:`TrainHistory` of epoch losses.
    """
    loss = loss or MeanSquaredError()
    optimizer = optimizer or Adam()
    config = config or TrainConfig()
    rng = np.random.default_rng(config.seed)
    n = x.shape[0]
    history = TrainHistory()

    for epoch in range(config.epochs):
        order = rng.permutation(n) if config.shuffle else np.arange(n)
        epoch_loss = 0.0
        batches = 0
        for start in range(0, n, config.batch_size):
            idx = order[start : start + config.batch_size]
            xb, yb = x[idx], y[idx]
            pred = network.forward(xb, training=True)
            epoch_loss += loss.value(pred, yb)
            batches += 1
            network.backward(loss.gradient(pred, yb))
            updates = [
                (arr, layer.grads[name]) for layer, name, arr in network.parameters()
            ]
            optimizer.step(updates)
            if post_step is not None:
                post_step(network)
        history.losses.append(epoch_loss / max(1, batches))
        if x_val is not None and y_val is not None:
            val_pred = network.forward(x_val)
            history.val_losses.append(loss.value(val_pred, y_val))
        if config.verbose and (epoch % config.log_every == 0 or epoch == config.epochs - 1):
            msg = f"epoch {epoch:4d}  loss {history.losses[-1]:.5f}"
            if history.val_losses:
                msg += f"  val {history.val_losses[-1]:.5f}"
            print(msg)
    return history
