"""Runtime engine: parallel batch execution of certification queries.

Certification workloads decompose into many *independent* solver-bound
queries — one local certificate per data sample, one global certificate
per model, four small LP/MILPs per neuron inside Algorithm 1's ND loop.
This package fans those queries across worker processes:

* :class:`~repro.runtime.batch.BatchCertifier` — executes a list of
  declarative :class:`~repro.runtime.batch.CertificationQuery` objects
  on a ``ProcessPoolExecutor`` with deterministic result ordering,
  progress callbacks and per-query failure capture.
* :func:`~repro.runtime.batch.parallel_solve_many` — the lower-level
  fan-out used by :class:`~repro.certify.global_cert.GlobalRobustnessCertifier`
  when ``CertifierConfig.workers > 1``: chunks a model's objective list
  across processes (export-once semantics are preserved inside each
  worker via the backends' ``solve_objectives`` fast path).
"""

from repro.runtime.batch import (
    DEFAULT_GLOBAL_TIME_LIMIT,
    BatchCertifier,
    BatchResult,
    CertificationQuery,
    global_query,
    local_queries,
    parallel_solve_many,
)

__all__ = [
    "DEFAULT_GLOBAL_TIME_LIMIT",
    "BatchCertifier",
    "BatchResult",
    "CertificationQuery",
    "global_query",
    "local_queries",
    "parallel_solve_many",
]
