"""Runtime engine: parallel batch execution of certification queries.

Certification workloads decompose into many *independent* solver-bound
queries — one local certificate per data sample, one global certificate
per model, four small LP/MILPs per neuron inside Algorithm 1's ND loop.
This package fans those queries across worker processes:

* :class:`~repro.runtime.batch.BatchCertifier` — executes a list of
  declarative :class:`~repro.runtime.batch.CertificationQuery` objects
  on a ``ProcessPoolExecutor`` with deterministic result ordering,
  progress callbacks and per-query failure capture.
* :func:`~repro.runtime.batch.parallel_solve_many` — the lower-level
  fan-out used by :class:`~repro.certify.global_cert.GlobalRobustnessCertifier`
  when ``CertifierConfig.workers > 1``: chunks a model's objective list
  across processes (export-once semantics are preserved inside each
  worker via the backends' ``solve_objectives`` fast path).
* :mod:`~repro.runtime.retry` / :mod:`~repro.runtime.faults` — the
  fault-tolerance substrate: :class:`~repro.runtime.retry.RetryPolicy`
  (transient-vs-permanent triage, deterministic backoff, per-batch
  retry budget) and the deterministic fault-injection subsystem
  (seeded :class:`~repro.runtime.faults.FaultPlan` schedules /
  ``REPRO_FAULTS``) that chaos-tests the whole tier pipeline.
"""

from repro.runtime.batch import (
    DEFAULT_GLOBAL_TIME_LIMIT,
    BatchCertifier,
    BatchResult,
    CertificationQuery,
    global_query,
    local_queries,
    parallel_solve_many,
)
from repro.runtime.faults import FaultPlan, FaultSpec, InjectedFault
from repro.runtime.retry import RetryPolicy

__all__ = [
    "DEFAULT_GLOBAL_TIME_LIMIT",
    "BatchCertifier",
    "BatchResult",
    "CertificationQuery",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "RetryPolicy",
    "global_query",
    "local_queries",
    "parallel_solve_many",
]
