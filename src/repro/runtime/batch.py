"""The batch certification engine: queries, results, process fan-out.

Everything submitted to a worker must be picklable; queries therefore
carry the *normal-form* network (a list of
:class:`~repro.nn.affine.AffineLayer`, plain arrays) and primitive
parameters instead of live solver objects.  Certification functions are
imported lazily inside the worker so forked processes pay the import
cost once and the package has no circular imports.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import signal
import time
import traceback
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    as_completed,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Sequence

#: Exceptions meaning "the process pool itself is unusable" (cannot
#: fork/spawn, or a worker died mid-batch) — distinct from a query
#: failure, which workers capture per query.  The supervisor salvages
#: every already-completed result and re-dispatches (or runs inline)
#: only the unfinished queries.
_POOL_FAILURES = (OSError, PermissionError, BrokenProcessPool)

import numpy as np

from repro import _faults
from repro.bounds.interval import Box
from repro.bounds.propagator import LayerBounds
from repro.nn.affine import AffineLayer
from repro.runtime.retry import RetryPolicy

#: Query kinds understood by :func:`_execute_query`.
QUERY_KINDS = ("local-exact", "local-nd", "local-lpr", "global", "global-exact")

#: Default per-MILP time limit (seconds) for global queries — matches
#: ``CertifierConfig.milp_time_limit`` and the CLI.  A timed-out solve
#: still contributes its sound dual bound, so the safeguard never costs
#: soundness, only tightness.
DEFAULT_GLOBAL_TIME_LIMIT = 30.0

#: Progress callback signature: ``(completed_count, total, result)``.
ProgressFn = Callable[[int, int, "BatchResult"], None]

#: Zero state of :attr:`BatchCertifier.fault_stats`.
_FAULT_STATS_ZERO = {
    "retries": 0,
    "degraded": 0,
    "timeouts": 0,
    "workers_killed": 0,
    "pool_rebuilds": 0,
}


@dataclass
class CertificationQuery:
    """One independent certification problem, described declaratively.

    Attributes:
        kind: One of :data:`QUERY_KINDS`.  ``local-*`` kinds certify
            robustness around ``center``; ``global`` runs Algorithm 1
            over ``domain``; ``global-exact`` the exact twin MILP.
        layers: Normal-form network (picklable plain arrays).
        delta: L∞ perturbation bound δ.
        center: The sample for local kinds (ignored for global kinds).
        domain: Input domain; required for global kinds, optional clip
            for local kinds.
        window: ND window ``W`` (``local-nd`` / ``global``).
        refine_count: Neurons refined per sub-network (``global`` only).
        backend: MILP/LP backend name.
        time_limit: Per-MILP time limit in seconds.  For global kinds
            ``None`` means "use the engine default"
            (:data:`DEFAULT_GLOBAL_TIME_LIMIT`, 30 s) — it does NOT
            disable the safeguard.  Pass ``math.inf`` for an explicitly
            unlimited solve; non-positive values are rejected.  Split
            queries differ: there it is the *shared whole-run* deadline
            and ``None`` stays unlimited, matching the monolithic exact
            certifiers whose verdicts the split tier must reproduce.
            Local kinds follow the split convention too: ``None`` stays
            unlimited (exact-verdict parity), a set limit caps each
            objective solve.
        epsilon: Optional target variation bound.  When set, the
            presolve tier runs first: if symbolic bounds prove (or the
            attack gap refutes) ``ε ≤ epsilon``, the query is answered
            with a ``method="presolve"`` certificate and no MILP is
            built.  Undecided queries fall through to the usual solver
            path, whose certificates are bit-identical to a run without
            presolve.
        bounds: Bound propagator seeding the MILP tier's big-M ranges.
            ``None`` (default) resolves per tier — ``"ibp"`` for the
            monolithic MILP (keeps historic results bit-identical),
            ``"symbolic"`` for the split tier's per-subdomain bounds;
            an explicit name is honored everywhere.
        presolve: Disable the presolve tier (``False``) even when an
            ``epsilon`` target is present.
        split: Replace the monolithic MILP tier with the input-splitting
            branch-and-bound tier (:mod:`repro.certify.splitting`) for
            queries the presolve tier leaves undecided.  Requires an
            ``epsilon`` target and kind ``local-exact`` or
            ``global-exact``.  For split queries ``time_limit`` is the
            *shared* deadline of the whole query (bounding + leaf MILPs)
            rather than a per-MILP limit, and ``None`` stays unlimited.
        max_domains: Split tier: budget on evaluated subdomains
            (``None`` = the :class:`~repro.certify.splitting.SplitConfig`
            default).
        split_depth: Split tier: bisection depth at which subdomains
            drop to MILP leaves (``None`` = config default).
        split_workers: Split tier: process count for solving leaf MILPs
            concurrently.  Leave ``None``: the engine grants its own
            worker budget when the split query runs inline (a batch of
            one), and keeps leaves serial when many queries already fan
            out across the pool.
        warm_start: Split tier: solve all MILP leaves through one shared
            warm :class:`~repro.milp.session.SolverSession` over the
            root encoding (serial; overrides ``split_workers``).  Same
            verdicts, fewer simplex pivots per leaf.
        shared_bounds: Engine-managed cache slot: a pre-computed
            :class:`~repro.bounds.propagator.LayerBounds` for this
            query's input box, shared across the batch by
            :class:`BatchCertifier`.  Callers normally leave it unset.
        tag: Caller label echoed on the result (e.g. a sample id).
    """

    kind: str
    layers: list[AffineLayer]
    delta: float
    center: np.ndarray | None = None
    domain: Box | None = None
    window: int = 2
    refine_count: int = 0
    backend: str = "scipy"
    time_limit: float | None = None
    epsilon: float | None = None
    bounds: str | None = None
    presolve: bool = True
    split: bool = False
    max_domains: int | None = None
    split_depth: int | None = None
    split_workers: int | None = None
    warm_start: bool = False
    shared_bounds: LayerBounds | None = None
    tag: str = ""

    def __post_init__(self) -> None:
        if self.kind not in QUERY_KINDS:
            raise ValueError(
                f"unknown query kind {self.kind!r}; expected one of {QUERY_KINDS}"
            )
        if self.time_limit is not None and not self.time_limit > 0:
            # `not > 0` (rather than `<= 0`) also rejects NaN, which
            # would otherwise reach the solver and silently disable the
            # MILP safeguard.
            raise ValueError(
                "time_limit must be positive seconds (None = engine default, "
                "math.inf = unlimited)"
            )
        if self.epsilon is not None and not self.epsilon > 0:
            # Same NaN-proof comparison as time_limit.
            raise ValueError("epsilon must be a positive variation target")
        if self.center is not None:
            self.center = np.asarray(self.center, dtype=float).reshape(-1)
        if self.kind.startswith("local") and self.center is None:
            raise ValueError(f"{self.kind!r} query needs a center sample")
        if self.kind.startswith("global") and self.domain is None:
            raise ValueError(f"{self.kind!r} query needs an input domain")
        if self.split:
            if self.epsilon is None:
                raise ValueError(
                    "split queries need an epsilon target to decide"
                )
            if self.kind not in ("local-exact", "global-exact"):
                raise ValueError(
                    "split tier replaces the exact MILP tier only "
                    f"(kind 'local-exact' or 'global-exact', got {self.kind!r})"
                )

    def presolve_input_box(self) -> Box:
        """The input box the presolve tier propagates bounds over."""
        if self.kind.startswith("local"):
            from repro.certify.presolve import perturbation_ball

            return perturbation_ball(self.center, self.delta, self.domain)
        return self.domain

    def wants_presolve(self) -> bool:
        """Whether the presolve tier applies to this query."""
        return self.epsilon is not None and self.presolve

    def effective_bounds(self) -> str:
        """The bound propagator actually used by this query's solver tier.

        An explicit choice always wins; the ``None`` default resolves
        to ``"ibp"`` for the monolithic MILP tier and ``"symbolic"``
        for the split tier (whose whole point is tight per-subdomain
        bounds).
        """
        if self.bounds is not None:
            return self.bounds
        return "symbolic" if self.split else "ibp"

    def effective_time_limit(self) -> float | None:
        """The per-MILP limit actually applied to a global query.

        ``None`` on the query resolves to the 30 s engine default (the
        MILP safeguard must not silently disappear just because the
        caller didn't pick a number); ``math.inf`` resolves to ``None``
        for the solver, i.e. genuinely unlimited.
        """
        if self.time_limit is None:
            return DEFAULT_GLOBAL_TIME_LIMIT
        if math.isinf(self.time_limit):
            return None
        return float(self.time_limit)


@dataclass
class BatchResult:
    """Outcome of one query: a certificate or a captured failure.

    Attributes:
        index: Position of the query in the submitted sequence (results
            are returned sorted by this, regardless of completion order).
        tag: The query's caller label.
        certificate: The certificate object on success, else ``None``.
        error: Formatted traceback on failure, else ``None``.
        detail: Structured extras.  On a *permanent* failure: the record
            of what the worker's broad exception handler swallowed —
            ``error_type`` (qualified exception class), ``error_message``
            (``str(exc)``) and ``traceback`` (the formatted stack).  The
            retrying execution paths add ``attempts`` (total attempts
            made); a degraded answer adds ``degraded=True`` and the
            ``reason`` the compute was abandoned.  ``None`` for results
            answered without the retry engine (e.g. bulk presolve).
        elapsed: Wall-clock seconds spent inside the worker.
    """

    index: int
    tag: str = ""
    certificate: object | None = None
    error: str | None = None
    detail: "dict[str, object] | None" = None
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        """True when the query produced a certificate."""
        return self.error is None

    @property
    def degraded(self) -> bool:
        """True for a sound bounds-only fallback answer (see ``detail``).

        Degraded results are *successes* (``ok`` is true): the
        certificate carries finite sound bounds and
        ``verdict="undecided"`` — never an error, never an unsound
        verdict — but the solver tier never finished for this query.
        """
        return bool(self.detail and self.detail.get("degraded"))


def _try_presolve(query: CertificationQuery):
    """Run the bounds-only tier; a certificate, or None to fall through."""
    from repro.certify.presolve import presolve_global, presolve_local

    if query.kind.startswith("local"):
        return presolve_local(
            query.layers, query.center, query.delta, query.epsilon,
            domain=query.domain, layer_bounds=query.shared_bounds,
        )
    return presolve_global(
        query.layers, query.domain, query.delta, query.epsilon,
        layer_bounds=query.shared_bounds,
    )


def _run_split(query: CertificationQuery):
    """Run the input-splitting tier for an undecided ε-query."""
    from repro.certify import SplitConfig, certify_global_split, certify_local_split

    # `time_limit=None` stays unlimited — parity with the monolithic
    # `certify_local_exact`/`certify_exact_global` verdicts this tier
    # must reproduce; a set limit is the shared whole-run deadline.
    time_limit = query.time_limit
    if time_limit is not None and math.isinf(time_limit):
        time_limit = None
    config = SplitConfig(
        backend=query.backend,
        bounds=query.effective_bounds(),
        time_limit=time_limit,
        leaf_workers=query.split_workers,
        warm_start=query.warm_start,
    )
    if query.max_domains is not None:
        config.max_domains = query.max_domains
    if query.split_depth is not None:
        config.max_depth = query.split_depth
    if query.kind == "local-exact":
        return certify_local_split(
            query.layers, query.center, query.delta, query.epsilon,
            domain=query.domain, config=config,
        )
    return certify_global_split(
        query.layers, query.domain, query.delta, query.epsilon, config=config
    )


def _execute_query(query: CertificationQuery):
    """Dispatch one query: presolve tier first, then the solver tier."""
    from repro.certify import (
        CertifierConfig,
        GlobalRobustnessCertifier,
        certify_exact_global,
        certify_local_exact,
        certify_local_lpr,
        certify_local_nd,
    )

    if query.wants_presolve():
        cert = _try_presolve(query)
        if cert is not None:
            return cert

    if query.split:
        return _run_split(query)

    # Local kinds share the split tier's convention: `time_limit=None`
    # stays genuinely unlimited (exact-verdict parity), a set limit caps
    # each objective solve, `inf` is spelled-out unlimited.
    local_limit = query.time_limit
    if local_limit is not None and math.isinf(local_limit):
        local_limit = None
    if query.kind == "local-exact":
        return certify_local_exact(
            query.layers, query.center, query.delta,
            domain=query.domain, backend=query.backend, bounds=query.effective_bounds(),
            time_limit=local_limit,
        )
    if query.kind == "local-nd":
        return certify_local_nd(
            query.layers, query.center, query.delta,
            window=query.window, domain=query.domain, backend=query.backend,
            bounds=query.effective_bounds(), time_limit=local_limit,
        )
    if query.kind == "local-lpr":
        return certify_local_lpr(
            query.layers, query.center, query.delta,
            domain=query.domain, backend=query.backend, bounds=query.effective_bounds(),
            time_limit=local_limit,
        )
    if query.kind == "global":
        # The CLI's algorithm-1 knobs (window, refine, backend, limit)
        # plumb through 1:1; time_limit=None keeps the 30 s safeguard.
        config = CertifierConfig(
            window=query.window,
            refine_count=query.refine_count,
            backend=query.backend,
            bounds=query.effective_bounds(),
            milp_time_limit=query.effective_time_limit(),
        )
        return GlobalRobustnessCertifier(query.layers, config).certify(
            query.domain, query.delta
        )
    # "global-exact" — validated in CertificationQuery.__post_init__.
    return certify_exact_global(
        query.layers, query.domain, query.delta,
        backend=query.backend, time_limit=query.effective_time_limit(),
        bounds=query.effective_bounds(),
    )


#: Start-notification sink installed by :func:`_pool_init` in supervised
#: worker processes: ``(query index, worker pid)`` markers let the
#: parent's watchdog know *which* worker owns a query and since when.
#: ``None`` outside supervised pools (serial runs, plain pools).
_START_SINK = None


def _pool_init(sink, plan) -> None:
    """Worker initializer for supervised pools.

    Wires the start-marker sink and installs a *fresh* copy of the
    parent's fault plan, so every worker replays its own deterministic
    fault schedule from hit 1 regardless of the multiprocessing start
    method (fork would otherwise inherit the parent's hit counters).
    """
    global _START_SINK
    _START_SINK = sink
    if plan is not None:
        _faults.install(plan.fresh())


def _run_one(payload: tuple[int, CertificationQuery]) -> BatchResult:
    """Worker entry point: never raises, captures failures per query."""
    index, query = payload
    t0 = time.perf_counter()
    sink = _START_SINK
    if sink is not None:
        # Before any work (and any fault point): a crash after this
        # marker is attributable to this query, and the watchdog clock
        # for it starts at parent receipt time.
        sink.put((index, os.getpid()))
    try:
        if _faults.ENABLED:
            _faults.fault_point("batch.worker")
        cert = _execute_query(query)
        return BatchResult(
            index=index, tag=query.tag, certificate=cert,
            elapsed=time.perf_counter() - t0,
        )
    # repro-lint: ignore[RPR005] — swallows *any* per-query failure (bad dims, solver errors, encoding bugs) so one bad query cannot sink the batch; everything swallowed is surfaced verbatim in BatchResult.error/.detail
    except Exception as exc:
        cls = type(exc)
        return BatchResult(
            index=index, tag=query.tag, error=traceback.format_exc(),
            detail={
                "error_type": f"{cls.__module__}.{cls.__qualname__}",
                "error_message": str(exc),
                "traceback": traceback.format_exc(),
            },
            elapsed=time.perf_counter() - t0,
        )


# -- graceful degradation -----------------------------------------------------


def _degraded_certificate(query: CertificationQuery, bounds: str):
    """A sound bounds-only certificate for a query whose solve was lost.

    One bound propagation over the query's own input box — exactly the
    presolve tier's proving side, so the bounds are finite and sound
    over-approximations whatever the solver tier would have returned.
    The verdict is always ``"undecided"``: even when the bounds would
    decide the ε target, degradation never claims a decision the
    (possibly tighter) solver tier was asked for.
    """
    from repro.bounds.propagator import get_propagator
    from repro.certify.presolve import variation_from_reference
    from repro.certify.results import GlobalCertificate, LocalCertificate
    from repro.nn.affine import affine_chain_forward

    t0 = time.perf_counter()
    local = query.kind.startswith("local")
    box = query.presolve_input_box()
    layer_bounds = query.shared_bounds
    if layer_bounds is None:
        delta = None if local else query.delta
        layer_bounds = get_propagator(bounds).propagate(query.layers, box, delta)
    detail = {
        "verdict": "undecided",
        "degraded": True,
        "bounds": layer_bounds.method,
    }
    if query.epsilon is not None:
        detail["epsilon"] = float(query.epsilon)
    if local:
        out = layer_bounds.output
        base = affine_chain_forward(query.layers, query.center)
        return LocalCertificate(
            center=query.center,
            delta=float(query.delta),
            epsilons=variation_from_reference(out.lo, out.hi, base),
            output_lo=out.lo.copy(),
            output_hi=out.hi.copy(),
            method="degraded",
            exact=False,
            solve_time=time.perf_counter() - t0,
            detail=detail,
        )
    return GlobalCertificate(
        delta=float(query.delta),
        epsilons=layer_bounds.output_variation_bounds(),
        method="degraded",
        exact=False,
        solve_time=time.perf_counter() - t0,
        detail=detail,
    )


def _degraded_result(
    index: int, query: CertificationQuery, reason: str, attempts: int
) -> BatchResult:
    """Resolve an abandoned query to a sound ``degraded`` answer.

    Tries the symbolic propagator first (tight), plain IBP second
    (simpler, nearly unbreakable).  Only if *both* bound engines fail —
    which means the query itself is broken, not the compute — does the
    query surface as an ordinary error result.
    """
    t0 = time.perf_counter()
    error = None
    for bounds in ("symbolic", "ibp"):
        try:
            cert = _degraded_certificate(query, bounds)
        # repro-lint: ignore[RPR005] — degradation is the last resort: any bound-propagation failure falls through to the looser engine, and the final failure is surfaced verbatim as a normal error result below
        except Exception as exc:
            cls = type(exc)
            error = (f"{cls.__module__}.{cls.__qualname__}", traceback.format_exc())
            continue
        return BatchResult(
            index=index, tag=query.tag, certificate=cert,
            detail={"degraded": True, "reason": reason, "attempts": attempts},
            elapsed=time.perf_counter() - t0,
        )
    error_type, stack = error
    return BatchResult(
        index=index, tag=query.tag, error=stack,
        detail={
            "error_type": error_type,
            "error_message": f"degradation failed after: {reason}",
            "traceback": stack,
            "attempts": attempts,
        },
        elapsed=time.perf_counter() - t0,
    )


class BatchCertifier:
    """Fan independent certification queries across worker processes.

    Results come back in *submission order* whatever the completion
    order, failures are captured per query (``BatchResult.error``), and
    an optional progress callback fires in the parent process as each
    query completes.

    Example::

        engine = BatchCertifier(max_workers=4)
        queries = local_queries(net, samples, delta=0.01, method="exact")
        results = engine.run(queries, progress=lambda k, n, r:
                             print(f"{k}/{n} {r.tag}"))
        eps = [r.certificate.epsilon for r in results if r.ok]

    Args:
        max_workers: Process count; defaults to ``os.cpu_count()``
            (capped by the batch size).  ``1`` executes inline — same
            semantics, no processes — which is also the automatic
            fallback when the platform cannot fork worker processes.
        bulk_presolve: Screen the whole submission with one batched
            presolve pass per query group *before* any worker dispatch
            (default on).  Queries the pass decides never reach the
            pool; undecided ones skip the (now redundant) scalar
            presolve in their worker.  Per-query certificates are
            bit-identical to the scalar presolve tier's, so turning
            this off changes scheduling only, never results.
        retry: :class:`~repro.runtime.retry.RetryPolicy` for transient
            per-query failures (worker deaths, broken pools, injected
            chaos faults).  ``None`` uses the default policy.  A query
            that exhausts its attempts (or the batch's retry budget)
            resolves to a sound *degraded* answer — finite bounds,
            ``verdict="undecided"``, ``detail["degraded"]=True`` —
            never an error.  Permanent failures (bad inputs, real
            bugs) are never retried and surface as error results
            exactly as before.
        query_timeout: Optional *hard* per-query wall-clock limit in
            seconds, enforced by a parent-side watchdog that SIGKILLs
            the worker running an overdue query and rebuilds the pool.
            Unlike ``CertificationQuery.time_limit`` (a cooperative
            solver budget), this bounds the query even when a native
            solve wedges.  Timed-out queries degrade (or retry, with
            ``RetryPolicy(retry_timeouts=True)``).  Pool mode only:
            inline execution (``max_workers=1``) has no process to
            kill.

    Attributes:
        bounds_cache_info: After :meth:`run`, a dict with the shared
            bound-propagation cache stats of that batch:
            ``{"entries": repeated (network, input-box) pairs computed
            once in the parent, "shared": queries served from an
            already-computed entry}``.  Pairs occurring only once are
            propagated inside the workers (in parallel) instead.
        presolve_stats: After :meth:`run`, the bulk-presolve prefilter
            stats: ``{"groups": batched presolve calls made,
            "queries": queries screened by them, "answered": queries
            they decided (certified or refuted) without any dispatch}``.
        fault_stats: After :meth:`run`, that batch's fault-tolerance
            counters: ``retries`` (re-dispatched attempts),
            ``degraded`` (queries resolved by graceful degradation),
            ``timeouts`` (hard-timeout expirations), ``workers_killed``
            (stuck workers SIGKILLed by the watchdog) and
            ``pool_rebuilds`` (broken pools replaced mid-batch).
    """

    def __init__(
        self,
        max_workers: int | None = None,
        bulk_presolve: bool = True,
        retry: RetryPolicy | None = None,
        query_timeout: float | None = None,
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if query_timeout is not None and not query_timeout > 0:
            # `not > 0` also rejects NaN (same idiom as CertificationQuery).
            raise ValueError("query_timeout must be positive seconds or None")
        self.max_workers = max_workers
        self.bulk_presolve = bulk_presolve
        self.retry = RetryPolicy() if retry is None else retry
        self.query_timeout = query_timeout
        self.bounds_cache_info: dict[str, int] = {"entries": 0, "shared": 0}
        self.presolve_stats: dict[str, int] = {
            "groups": 0, "queries": 0, "answered": 0,
        }
        self.fault_stats: dict[str, int] = dict(_FAULT_STATS_ZERO)
        self._retry_budget = 0

    def _attach_shared_bounds(self, queries: list[CertificationQuery]) -> None:
        """Compute one LayerBounds per repeated (network, input-box) pair.

        Presolve-eligible queries that share the same normal-form
        network object and the same propagation inputs (box bytes, and
        delta for global kinds) receive the same pre-computed
        :class:`LayerBounds`, so the batch propagates each such pair
        exactly once instead of once per query inside the workers.
        Pairs that occur only once are deliberately left to the workers:
        precomputing them here would serialize otherwise-parallel work
        in the submitting process (and pickle the bounds into the pool)
        with nothing to share.
        """
        from repro.bounds.propagator import get_propagator

        self.bounds_cache_info = {"entries": 0, "shared": 0}
        eligible: list[tuple[CertificationQuery, tuple, Box]] = []
        counts: dict[tuple, int] = {}
        for query in queries:
            if not query.wants_presolve() or query.shared_bounds is not None:
                continue
            box = query.presolve_input_box()
            delta = None if query.kind.startswith("local") else query.delta
            key = (id(query.layers), box.lo.tobytes(), box.hi.tobytes(), delta)
            eligible.append((query, key, box))
            counts[key] = counts.get(key, 0) + 1

        cache: dict[tuple, LayerBounds] = {}
        for query, key, box in eligible:
            if counts[key] < 2:
                continue
            if key in cache:
                self.bounds_cache_info["shared"] += 1
            else:
                delta = None if query.kind.startswith("local") else query.delta
                cache[key] = get_propagator("symbolic").propagate(
                    query.layers, box, delta
                )
                self.bounds_cache_info["entries"] += 1
            query.shared_bounds = cache[key]

    def _bulk_presolve(
        self, queries: list[CertificationQuery]
    ) -> dict[int, BatchResult]:
        """Screen the submission with one batched presolve pass per group.

        Presolve-eligible queries sharing a network object, kind family
        (local / global) and domain form a *group*; every group of two
        or more is decided in the submitting process by
        :func:`~repro.certify.presolve.presolve_many` — one batched
        bound propagation plus one corner-vectorized attack over the
        whole group, per-query bit-identical to the scalar presolve the
        workers would have run.  Undecided members get
        ``presolve=False``: the tier already ran for them, a worker
        re-run could only reproduce the same ``None``.  Singleton
        groups stay with the workers (batching one query buys nothing
        and would serialize otherwise-parallel propagation here).

        Returns the answered queries as ``{index: BatchResult}``; each
        carries its group's per-query share of the batched pass time.
        """
        from repro.certify.presolve import presolve_many

        self.presolve_stats = {"groups": 0, "queries": 0, "answered": 0}
        if not self.bulk_presolve:
            return {}
        groups: dict[tuple, list[int]] = {}
        for i, query in enumerate(queries):
            if not query.wants_presolve() or query.shared_bounds is not None:
                continue
            family = "local" if query.kind.startswith("local") else "global"
            domain = query.domain
            domain_key = (
                None if domain is None
                else (domain.lo.tobytes(), domain.hi.tobytes())
            )
            key = (family, id(query.layers), domain_key)
            groups.setdefault(key, []).append(i)

        answered: dict[int, BatchResult] = {}
        for (family, _, _), members in groups.items():
            if len(members) < 2:
                continue
            first = queries[members[0]]
            deltas = np.array([queries[i].delta for i in members], dtype=float)
            epsilons = np.array(
                [queries[i].epsilon for i in members], dtype=float
            )
            t0 = time.perf_counter()
            try:
                if family == "local":
                    certs = presolve_many(
                        first.layers, "local",
                        centers=np.stack(
                            [queries[i].center for i in members]
                        ),
                        domain=first.domain, deltas=deltas, epsilons=epsilons,
                    )
                else:
                    certs = presolve_many(
                        first.layers, "global",
                        domain=first.domain, deltas=deltas, epsilons=epsilons,
                    )
            # repro-lint: ignore[RPR005] — a failing batched pass must not sink the submission; the group silently falls back to per-query scalar presolve in the workers, whose per-query error capture reports whatever is actually wrong
            except Exception:
                continue
            share = (time.perf_counter() - t0) / len(members)
            self.presolve_stats["groups"] += 1
            self.presolve_stats["queries"] += len(members)
            for i, cert in zip(members, certs):
                queries[i].presolve = False  # tier already ran for this query
                if cert is not None:
                    answered[i] = BatchResult(
                        index=i, tag=queries[i].tag, certificate=cert,
                        elapsed=share,
                    )
                    self.presolve_stats["answered"] += 1
        return answered

    def run(
        self,
        queries: Sequence[CertificationQuery],
        progress: ProgressFn | None = None,
    ) -> list[BatchResult]:
        """Execute all queries; return one :class:`BatchResult` each.

        The bulk-presolve prefilter runs first (see ``bulk_presolve``);
        only the queries it leaves unanswered are dispatched to worker
        processes.

        Args:
            queries: Independent queries; order defines result order.
            progress: Optional ``(done, total, result)`` callback invoked
                in the submitting process after each completion.
        """
        queries = list(queries)
        total = len(queries)
        self.fault_stats = dict(_FAULT_STATS_ZERO)
        if total == 0:
            return []
        results: list[BatchResult | None] = [None] * total
        done = 0
        for index, result in sorted(self._bulk_presolve(queries).items()):
            results[index] = result
            done += 1
            if progress is not None:
                progress(done, total, result)
        pending = [(i, q) for i, q in enumerate(queries) if results[i] is None]
        self._attach_shared_bounds([q for _, q in pending])
        if not pending:
            return [r for r in results if r is not None]
        workers = self.max_workers or os.cpu_count() or 1
        workers = min(workers, len(pending))
        self._retry_budget = self.retry.batch_budget(len(pending))
        if workers == 1:
            if (
                len(pending) == 1
                and pending[0][1].split
                and pending[0][1].split_workers is None
            ):
                # A batch of one split query runs inline; hand the
                # engine's process budget to its leaf MILPs instead so
                # the pool still does the parallel work.
                pending[0][1].split_workers = (
                    self.max_workers or os.cpu_count() or 1
                )
            dispatched = self._run_serial(pending, total, done, progress)
        else:
            supervisor = _PoolSupervisor(self, workers, total, done, progress)
            dispatched = supervisor.run(pending)
        for result in dispatched:
            results[result.index] = result
        return [r for r in results if r is not None]  # every slot filled

    def _run_serial(self, pending, total, done, progress) -> list[BatchResult]:
        """Inline execution with the same retry/degradation semantics."""
        results = []
        for index, query in pending:
            result = self._attempt_serial(index, query)
            results.append(result)
            done += 1
            if progress is not None:
                progress(done, total, result)
        return results

    def _attempt_serial(
        self, index: int, query: CertificationQuery, prior_attempts: int = 0
    ) -> BatchResult:
        """Run one query inline under the retry policy until resolved.

        Transient failures retry with backoff while attempts and the
        batch budget last, then degrade; permanent failures surface
        immediately as error results.  ``prior_attempts`` carries over
        attempts a pool already charged before falling back inline.
        """
        attempt = prior_attempts
        while True:
            attempt += 1
            result = _run_one((index, query))
            if result.error is None:
                break
            error_type = str((result.detail or {}).get("error_type", ""))
            if self.retry.classify_name(error_type) != "transient":
                break
            if attempt >= self.retry.max_attempts or self._retry_budget <= 0:
                self.fault_stats["degraded"] += 1
                result = _degraded_result(index, query, error_type, attempt)
                break
            self._retry_budget -= 1
            self.fault_stats["retries"] += 1
            time.sleep(self.retry.delay(attempt, index))
        detail = dict(result.detail or {})
        detail.setdefault("attempts", attempt)
        result.detail = detail
        return result


class _PoolSupervisor:
    """One :meth:`BatchCertifier.run`'s process-pool lifecycle.

    The naive ``submit-all / as_completed`` loop it replaces had two
    production-fatal behaviors: a single worker death broke the pool
    and *discarded every completed result* (the whole batch re-ran
    serially), and a wedged native solve stalled the batch forever
    because ``time_limit`` is cooperative.  The supervisor instead:

    * salvages every completed future when the pool breaks, rebuilds
      the pool (up to ``RetryPolicy.max_pool_rebuilds`` times) and
      re-dispatches only the unfinished queries;
    * retries transient per-query failures under the engine's
      :class:`~repro.runtime.retry.RetryPolicy` with deterministic
      backoff and the shared batch budget;
    * enforces ``query_timeout`` as a *hard* wall-clock limit: workers
      report ``(query, pid)`` start markers through a
      ``multiprocessing.SimpleQueue``, and a watchdog SIGKILLs any
      worker whose query is overdue (the broken pool is then rebuilt
      and the timed-out query degrades);
    * when the pool cannot be (re)built at all, finishes the remaining
      queries inline — completed pool results are still kept.

    Queries resolve exactly once each (progress fires exactly once per
    query, monotonically), to a successful result, a permanent error
    result, or a sound degraded answer.
    """

    #: Event-loop tick: bounds watchdog latency and backoff sleep.
    _POLL_SECONDS = 0.05

    def __init__(self, engine, workers, total, done, progress) -> None:
        self.engine = engine
        self.policy: RetryPolicy = engine.retry
        self.workers = workers
        self.query_timeout = engine.query_timeout
        self.stats = engine.fault_stats
        self.total = total
        self.completed = done
        self.progress = progress
        self.pool = None
        self.sink = None
        self.broken = False
        self.rebuilds = 0
        self.queries: dict[int, CertificationQuery] = {}
        self.attempts: dict[int, int] = {}
        self.waiting: dict[int, float] = {}  # index -> earliest dispatch stamp
        self.futures: dict = {}              # Future -> index
        self.running: dict[int, tuple[int, float]] = {}  # index -> (pid, since)
        self.timed_out: set[int] = set()
        self.finals: dict[int, BatchResult] = {}

    def run(self, pending) -> list[BatchResult]:
        """Resolve every pending query; results sorted by index."""
        self.queries = dict(pending)
        self.attempts = {i: 0 for i in self.queries}
        self.waiting = {i: 0.0 for i in self.queries}
        try:
            while len(self.finals) < len(self.queries):
                if not self._step():
                    self._serial_fallback()
                    break
        finally:
            self._teardown_pool()
        return [self.finals[i] for i in sorted(self.finals)]

    def _step(self) -> bool:
        """One event-loop tick; False when no pool can be (re)built."""
        now = time.perf_counter()
        ready = sorted(i for i, stamp in self.waiting.items() if stamp <= now)
        if ready and not self.broken:
            if not self._ensure_pool():
                return False
            for index in ready:
                if self.broken:
                    break  # pool died at submit; rebuild next tick
                self._dispatch(index)
        self._wait_events()
        self._drain_starts()
        self._collect_done()
        self._watchdog()
        if self.broken and not self.futures:
            # Every in-flight future has resolved against the broken
            # pool (salvaged or requeued); safe to replace it now.
            self._teardown_pool()
        return True

    def _ensure_pool(self) -> bool:
        if self.pool is not None:
            return True
        if self.rebuilds > self.policy.max_pool_rebuilds:
            return False
        try:
            self.sink = multiprocessing.SimpleQueue()
            self.pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_pool_init,
                initargs=(self.sink, _faults.active_plan()),
            )
        except _POOL_FAILURES:
            # Sandboxes without fork support and similar: stay correct,
            # run inline (the caller falls back via _serial_fallback).
            self.pool = None
            return False
        return True

    def _dispatch(self, index: int) -> None:
        query = self.queries[index]
        self.attempts[index] += 1
        del self.waiting[index]
        try:
            if _faults.ENABLED:
                _faults.fault_point("batch.dispatch")
            future = self.pool.submit(_run_one, (index, query))
        except _faults.InjectedFault as exc:
            self._transient(index, str(exc))
        except _POOL_FAILURES:
            # The pool was already unusable; the query never ran, so
            # requeue it uncharged.
            self.broken = True
            self.attempts[index] -= 1
            self.waiting[index] = 0.0
        else:
            self.futures[future] = index

    def _wait_events(self) -> None:
        if self.futures:
            wait(
                list(self.futures),
                timeout=self._POLL_SECONDS,
                return_when=FIRST_COMPLETED,
            )
        elif self.waiting and not self.broken:
            # Nothing in flight: sleep toward the earliest backoff wake.
            pause = min(self.waiting.values()) - time.perf_counter()
            if pause > 0:
                time.sleep(min(pause, self._POLL_SECONDS))

    def _drain_starts(self) -> None:
        sink = self.sink
        if sink is None:
            return
        inflight = set(self.futures.values())
        try:
            while not sink.empty():
                index, pid = sink.get()
                if index in inflight:
                    # Stamped with parent receipt time: one clock for
                    # the watchdog, no cross-process skew.
                    self.running[index] = (pid, time.perf_counter())
        except (OSError, EOFError):
            pass  # sink pipe died with its pool; markers just go stale

    def _collect_done(self) -> None:
        for future in [f for f in self.futures if f.done()]:
            index = self.futures.pop(future)
            started = self.running.pop(index, None)
            was_timed_out = index in self.timed_out
            self.timed_out.discard(index)
            try:
                result = future.result()
            except _faults.InjectedFault as exc:
                self._transient(index, str(exc))
                continue
            except _POOL_FAILURES:
                self.broken = True
                if was_timed_out:
                    self._timeout(index)
                elif started is None:
                    # Never reached a worker — an innocent victim of
                    # whatever broke the pool.  Requeue uncharged.
                    self.attempts[index] -= 1
                    self.waiting[index] = 0.0
                else:
                    self._transient(index, "worker process died mid-query")
                continue
            if result.error is None:
                self._finalize(self._stamped(result, index))
                continue
            error_type = str((result.detail or {}).get("error_type", ""))
            if self.policy.classify_name(error_type) == "transient":
                self._transient(index, error_type)
            else:
                self._finalize(self._stamped(result, index))

    def _watchdog(self) -> None:
        if self.query_timeout is None:
            return
        now = time.perf_counter()
        for index, (pid, since) in self.running.items():
            if index in self.timed_out or now - since <= self.query_timeout:
                continue
            # SIGKILL is deliberate: a wedged native solve ignores
            # cooperative signals.  The kill breaks the pool; the
            # normal salvage/rebuild path cleans up after it.
            self.timed_out.add(index)
            self.stats["workers_killed"] += 1
            self.broken = True
            try:
                os.kill(pid, signal.SIGKILL)
            except (ProcessLookupError, PermissionError):
                pass  # worker already gone; the broken pool surfaces it

    def _transient(self, index: int, reason: str) -> None:
        """Retry a transiently failed query, or degrade it soundly."""
        attempt = self.attempts[index]
        if attempt < self.policy.max_attempts and self.engine._retry_budget > 0:
            self.engine._retry_budget -= 1
            self.stats["retries"] += 1
            self.waiting[index] = (
                time.perf_counter() + self.policy.delay(attempt, index)
            )
            return
        self.stats["degraded"] += 1
        self._finalize(
            _degraded_result(index, self.queries[index], reason, attempt)
        )

    def _timeout(self, index: int) -> None:
        """Resolve a query whose worker the watchdog had to kill."""
        self.stats["timeouts"] += 1
        if self.policy.retry_timeouts:
            self._transient(index, "hard query timeout")
            return
        self.stats["degraded"] += 1
        self._finalize(_degraded_result(
            index, self.queries[index],
            f"hard timeout: no result within {self.query_timeout:.6g}s",
            self.attempts[index],
        ))

    def _serial_fallback(self) -> None:
        """Finish everything undispatched inline; keep pool results."""
        for index in sorted(self.waiting):
            del self.waiting[index]
            self._finalize(self.engine._attempt_serial(
                index, self.queries[index], self.attempts[index]
            ))

    def _finalize(self, result: BatchResult) -> None:
        self.finals[result.index] = result
        self.completed += 1
        if self.progress is not None:
            self.progress(self.completed, self.total, result)

    def _stamped(self, result: BatchResult, index: int) -> BatchResult:
        detail = dict(result.detail or {})
        detail["attempts"] = self.attempts[index]
        result.detail = detail
        return result

    def _teardown_pool(self) -> None:
        pool, self.pool = self.pool, None
        sink, self.sink = self.sink, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)
        if sink is not None:
            sink.close()
        self.running.clear()
        if self.broken:
            self.broken = False
            self.rebuilds += 1
            self.stats["pool_rebuilds"] += 1


# -- query builders ----------------------------------------------------------


def _normal_form(network) -> list[AffineLayer]:
    from repro.nn.network import as_affine_chain

    return as_affine_chain(network)


def local_queries(
    network,
    centers: np.ndarray | Sequence[np.ndarray],
    delta: float,
    method: str = "exact",
    domain: Box | None = None,
    backend: str = "scipy",
    window: int = 1,
    epsilon: float | None = None,
    bounds: str | None = None,
    presolve: bool = True,
    split: bool = False,
    max_domains: int | None = None,
    split_depth: int | None = None,
    warm_start: bool = False,
    time_limit: float | None = None,
    tag_prefix: str = "sample",
) -> list[CertificationQuery]:
    """Per-sample local certification queries (one per row of ``centers``).

    Args:
        network: A :class:`~repro.nn.network.Network` or affine chain.
        centers: Samples, shape ``(k, input_dim)`` (or an iterable of
            flat samples).
        delta: Perturbation radius.
        method: ``"exact"``, ``"nd"`` or ``"lpr"``.
        domain: Optional domain box intersected with each δ-ball.
        backend: Solver backend for every query.
        window: ND window (``method="nd"`` only).
        epsilon: Optional variation target enabling the presolve tier.
        bounds: Bound propagator for the MILP tier (``"ibp"`` /
            ``"symbolic"``).
        presolve: Allow the presolve tier when ``epsilon`` is set.
        split: Use the input-splitting tier instead of the monolithic
            MILP for presolve-undecided queries (``method="exact"``
            only; needs ``epsilon``).
        max_domains / split_depth: Split-tier knobs (``None`` = config
            defaults).
        warm_start: Split tier: one shared warm solver session for all
            MILP leaves (serial) instead of per-leaf fresh models.
        time_limit: Per-query time limit; for split queries the shared
            deadline of the whole branch-and-bound run.
        tag_prefix: Result tags become ``f"{tag_prefix}[{i}]"``.
    """
    if method not in ("exact", "nd", "lpr"):
        raise ValueError(f"unknown local method {method!r}")
    if split and method != "exact":
        raise ValueError("split applies to method='exact' queries only")
    layers = _normal_form(network)
    return [
        CertificationQuery(
            kind=f"local-{method}",
            layers=layers,
            delta=float(delta),
            center=np.asarray(center, dtype=float).reshape(-1),
            domain=domain,
            window=window,
            backend=backend,
            epsilon=epsilon,
            bounds=bounds,
            presolve=presolve,
            split=split,
            max_domains=max_domains,
            split_depth=split_depth,
            warm_start=warm_start,
            time_limit=time_limit,
            tag=f"{tag_prefix}[{i}]",
        )
        for i, center in enumerate(np.atleast_2d(np.asarray(centers, dtype=float)))
    ]


def global_query(
    network,
    domain: Box,
    delta: float,
    window: int = 2,
    refine_count: int = 0,
    backend: str = "scipy",
    time_limit: float | None = None,
    exact: bool = False,
    epsilon: float | None = None,
    bounds: str | None = None,
    presolve: bool = True,
    split: bool = False,
    max_domains: int | None = None,
    split_depth: int | None = None,
    warm_start: bool = False,
    tag: str = "global",
) -> CertificationQuery:
    """One global certification query (Algorithm 1, or the exact MILP).

    ``time_limit=None`` (the default) applies the engine's 30 s per-MILP
    safeguard; pass ``math.inf`` to disable it explicitly.  An
    ``epsilon`` target enables the bounds-only presolve tier;
    ``split=True`` (requires ``exact=True`` and ``epsilon``) decides
    undecided queries with the input-splitting tier, for which
    ``time_limit`` is the shared deadline of the whole run and
    ``warm_start=True`` solves the MILP leaves through one shared warm
    solver session.
    """
    if split and not exact:
        raise ValueError("split applies to exact global queries only")
    return CertificationQuery(
        kind="global-exact" if exact else "global",
        layers=_normal_form(network),
        delta=float(delta),
        domain=domain,
        window=window,
        refine_count=refine_count,
        backend=backend,
        time_limit=time_limit,
        epsilon=epsilon,
        bounds=bounds,
        presolve=presolve,
        split=split,
        max_domains=max_domains,
        split_depth=split_depth,
        warm_start=warm_start,
        tag=tag,
    )


# -- objective-level fan-out --------------------------------------------------


def _solve_chunk(payload):
    """Worker: solve a contiguous chunk of objectives on a shared model."""
    model, objectives, backend, time_limit = payload
    if _faults.ENABLED:
        _faults.fault_point("solve.chunk")
    return model.solve_many(objectives, backend=backend, time_limit=time_limit)


def parallel_solve_many(
    model,
    objectives,
    backend: str = "scipy",
    time_limit: float | None = None,
    max_workers: int | None = None,
):
    """``Model.solve_many`` fanned across processes, order-preserving.

    The objective list is split into one contiguous chunk per worker;
    each worker pickles the model once and runs the backend's
    export-once ``solve_objectives`` fast path on its chunk, so the
    per-objective cost stays identical to the serial path.  This is the
    engine behind ``CertifierConfig.workers`` — Algorithm 1's four
    min/max LPs per neuron of a layer are independent and fan perfectly.

    Args:
        model: The shared :class:`~repro.milp.model.Model`.
        objectives: Pairs ``(expression, "min"|"max")``.
        backend: Backend name.
        time_limit: Per-solve time limit in seconds.
        max_workers: Process count; ``None`` uses ``os.cpu_count()``.

    Returns:
        One :class:`~repro.milp.solution.SolveResult` per objective, in
        input order — bit-identical to the serial ``solve_many``.
    """
    objectives = list(objectives)
    workers = max_workers or os.cpu_count() or 1
    workers = min(workers, len(objectives))
    if workers <= 1 or len(objectives) <= 1:
        return model.solve_many(objectives, backend=backend, time_limit=time_limit)
    chunk = math.ceil(len(objectives) / workers)
    chunks = [objectives[k : k + chunk] for k in range(0, len(objectives), chunk)]
    parts: list[list | None] = [None] * len(chunks)
    try:
        with ProcessPoolExecutor(max_workers=len(chunks)) as pool:
            futures = {
                pool.submit(_solve_chunk, (model, part, backend, time_limit)): k
                for k, part in enumerate(chunks)
            }
            for future in as_completed(futures):
                try:
                    parts[futures[future]] = future.result()
                except _POOL_FAILURES + (_faults.InjectedFault,):
                    # Salvage: keep every chunk that finished; only
                    # this one re-solves inline below.
                    continue
    except _POOL_FAILURES:
        pass  # pool never came up; unfinished chunks re-solve inline
    for k, part in enumerate(parts):
        if part is None:
            parts[k] = model.solve_many(
                chunks[k], backend=backend, time_limit=time_limit
            )
    return [result for part in parts for result in part]
