"""Public fault-injection API — see :mod:`repro._faults` for the engine.

The implementation lives at the package root so the mypy-strict solver
modules (``repro.milp.*``) can weave in fault points without importing
the runtime package; this facade is the import users and tests should
reach for::

    from repro.runtime import faults

    with faults.injected(faults.FaultPlan.parse("batch.worker:raise@2")):
        results = BatchCertifier().run(queries)

One sharp edge: the zero-overhead fast-path flag ``ENABLED`` is module
state on :mod:`repro._faults`.  Hook sites must read it off that module
object (``_faults.ENABLED``); re-exporting the bare name here would
freeze its value at import time, so it is deliberately *not* in
``__all__``.

Fault-point catalog (all per-process, all zero-cost when disabled):

========================  ===================================================
point                     hook site
========================  ===================================================
``batch.dispatch``        ``BatchCertifier`` supervisor, before each submit
``batch.worker``          ``runtime.batch._run_one``, per query attempt
``solve.chunk``           ``runtime.batch._solve_chunk`` objective chunks
``session.solve``         ``milp.session.SolverSession.solve``
``scipy.solve``           ``milp.scipy_backend.ScipyBackend`` standard solve
``split.leaf``            ``certify.splitting._leaf_worker`` leaf MILPs
========================  ===================================================
"""

from repro._faults import (
    CRASH_EXIT_CODE,
    DEFAULT_HANG_SECONDS,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    active_plan,
    clear,
    fault_point,
    in_worker_process,
    injected,
    install,
)

__all__ = [
    "CRASH_EXIT_CODE",
    "DEFAULT_HANG_SECONDS",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "active_plan",
    "clear",
    "fault_point",
    "in_worker_process",
    "injected",
    "install",
]
