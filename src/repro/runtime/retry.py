"""Retry policy: transient-vs-permanent triage and deterministic backoff.

A certification batch meets two very different kinds of failure.  A
*permanent* one — bad center dimensions, an unknown backend, a genuine
encoding bug — will fail identically on every attempt; retrying only
burns the batch's time, so those surface immediately as error results.
A *transient* one — a worker killed by the OS, a broken pool, an
injected chaos fault, a timeout — is expected to succeed on a clean
re-dispatch, so the engine retries it under this module's policy:
capped exponential backoff with deterministic jitter (same seed, same
schedule — chaos runs replay bit-identically) and a per-batch retry
budget that bounds the total extra work whatever the failure pattern.

Classification works on exception *instances* in the submitting
process and on qualified class names for failures that crossed a
process boundary as :class:`~repro.runtime.batch.BatchResult` detail
records.
"""

from __future__ import annotations

from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

from repro._faults import InjectedFault

__all__ = ["RetryPolicy", "TRANSIENT_ERROR_NAMES"]

#: Exception class names (bare, matched against the last component of
#: the qualified ``error_type``) treated as transient.  OSError
#: subclasses cover worker/IPC deaths; MemoryError is transient because
#: a re-dispatch lands on a fresh worker with a clean heap.
TRANSIENT_ERROR_NAMES = frozenset({
    "BrokenPipeError",
    "BrokenProcessPool",
    "ConnectionError",
    "ConnectionResetError",
    "EOFError",
    "InjectedFault",
    "InterruptedError",
    "MemoryError",
    "OSError",
    "PermissionError",
    "TimeoutError",
})

#: Exception types treated as transient when caught live (parent side).
TRANSIENT_ERROR_TYPES = (
    OSError,
    EOFError,
    MemoryError,
    TimeoutError,
    BrokenProcessPool,
    InjectedFault,
)

_MASK64 = (1 << 64) - 1


def _unit(seed: int, key: int, attempt: int) -> float:
    """Deterministic hash of ``(seed, key, attempt)`` into ``[0, 1)``.

    A splitmix64-style finalizer: cheap, stateless, and stable across
    processes and Python versions (unlike ``hash()``), so a retry
    schedule replays exactly from its seed.
    """
    x = (
        seed * 0x9E3779B97F4A7C15
        + key * 0xBF58476D1CE4E5B9
        + (attempt + 1) * 0x94D049BB133111EB
    ) & _MASK64
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & _MASK64
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & _MASK64
    x ^= x >> 31
    return x / 2.0**64


@dataclass(frozen=True)
class RetryPolicy:
    """How the batch engine retries transient per-query failures.

    Attributes:
        max_attempts: Total attempts per query (first try included).
        budget: Batch-wide cap on retries; ``None`` resolves to
            ``max(8, 2 * batch_size)`` via :meth:`batch_budget`.  When
            the budget is exhausted, further transient failures degrade
            immediately instead of retrying.
        base_delay: Backoff before the second attempt (seconds).
        max_delay: Cap on any single backoff delay.
        multiplier: Exponential growth factor per attempt.
        jitter: Fraction of the delay randomized away (``0.5`` draws
            uniformly from ``[0.5 * d, d]``); deterministic in
            ``(seed, query index, attempt)``.
        seed: Jitter seed.
        retry_timeouts: Whether a hard-timeout kill counts as transient
            (retry) rather than final (degrade).  Off by default: a
            query that once blew its wall-clock budget usually will
            again, and the degraded answer is already sound.
        max_pool_rebuilds: How many times one ``run()`` may replace a
            broken process pool before falling back to in-process
            execution for whatever is still unfinished.
    """

    max_attempts: int = 3
    budget: int | None = None
    base_delay: float = 0.05
    max_delay: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.5
    seed: int = 0
    retry_timeouts: bool = False
    max_pool_rebuilds: int = 8

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.budget is not None and self.budget < 0:
            raise ValueError("budget must be >= 0 (None = engine default)")
        if not self.base_delay >= 0 or not self.max_delay >= 0:
            raise ValueError("backoff delays must be >= 0 seconds")
        if not self.multiplier >= 1:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be a fraction in [0, 1]")
        if self.max_pool_rebuilds < 0:
            raise ValueError("max_pool_rebuilds must be >= 0")

    def classify_name(self, qualname: str) -> str:
        """``"transient"`` or ``"permanent"`` for a qualified class name."""
        name = qualname.rsplit(".", 1)[-1]
        return "transient" if name in TRANSIENT_ERROR_NAMES else "permanent"

    def classify(self, exc: BaseException) -> str:
        """``"transient"`` or ``"permanent"`` for a live exception."""
        return (
            "transient"
            if isinstance(exc, TRANSIENT_ERROR_TYPES)
            else "permanent"
        )

    def delay(self, attempt: int, key: int = 0) -> float:
        """Backoff (seconds) before attempt ``attempt + 1`` of query ``key``.

        Capped exponential in the number of attempts already made, with
        deterministic jitter pulling each delay into
        ``[(1 - jitter) * d, d]`` so a thundering herd of retried
        queries de-synchronizes the same way on every run.
        """
        base = min(
            self.max_delay,
            self.base_delay * self.multiplier ** max(0, attempt - 1),
        )
        if self.jitter <= 0:
            return base
        return base * (1.0 - self.jitter * _unit(self.seed, key, attempt))

    def batch_budget(self, batch_size: int) -> int:
        """The retry budget for a batch of ``batch_size`` queries."""
        if self.budget is not None:
            return self.budget
        return max(8, 2 * batch_size)
