"""Shared tolerance-aware float comparisons.

Every numeric comparison in the pipeline that is *tolerance-sensitive* —
i.e. whose correct answer survives floating-point jitter — must go
through these helpers instead of bare ``==``/``!=`` (lint rule RPR001).
Structural exact-zero checks (sparsity pruning, division guards) stay
exact and carry an inline ``# repro-lint: ignore[RPR001]`` waiver with a
written reason instead.

Two deliberately small primitives:

* :func:`near_zero` — ``|x| <= atol`` element-wise; scalar in, bool out.
* :func:`close` — symmetric absolute+relative closeness, the scalar/array
  analogue of ``math.isclose`` with repo-wide defaults.

The defaults (``ATOL``/``RTOL``) match the ``1e-9`` jitter budget already
used by :class:`repro.bounds.interval.Box` validation and the simplex
pivot tolerance scale, so callers normally pass no tolerance at all.
"""

from __future__ import annotations

from typing import Any

import numpy as np

#: Default absolute tolerance (the repo-wide float-jitter budget).
ATOL: float = 1e-9

#: Default relative tolerance for :func:`close`.
RTOL: float = 1e-9


def near_zero(x: "float | np.ndarray", atol: float = ATOL) -> Any:
    """``|x| <= atol``, element-wise for arrays.

    Returns a python ``bool`` for scalar input and a boolean array for
    array input.

    Args:
        x: Scalar or array to test.
        atol: Absolute tolerance (must be ``>= 0``).
    """
    if atol < 0.0:
        raise ValueError(f"atol must be non-negative, got {atol}")
    result = np.abs(x) <= atol
    if np.ndim(result) == 0:
        return bool(result)
    return result


def close(
    a: "float | np.ndarray",
    b: "float | np.ndarray",
    rtol: float = RTOL,
    atol: float = ATOL,
) -> Any:
    """Symmetric tolerance-aware equality ``|a - b| <= atol + rtol*scale``.

    The scale is ``max(|a|, |b|)`` (symmetric, unlike ``np.isclose``
    whose default compares against ``|b|`` only), so ``close(a, b) ==
    close(b, a)`` always holds.  Infinities compare close only to an
    equal infinity; NaN is never close to anything.

    Returns a python ``bool`` for scalar input and a boolean array for
    array input.
    """
    if rtol < 0.0 or atol < 0.0:
        raise ValueError(f"tolerances must be non-negative, got rtol={rtol} atol={atol}")
    a_arr = np.asarray(a, dtype=float)
    b_arr = np.asarray(b, dtype=float)
    with np.errstate(invalid="ignore"):
        scale = np.maximum(np.abs(a_arr), np.abs(b_arr))
        finite = np.isfinite(a_arr) & np.isfinite(b_arr)
        # Exact match is the definition of closeness for ±inf operands.
        same_inf = a_arr == b_arr
        diff_ok = np.abs(a_arr - b_arr) <= atol + rtol * scale
    result = np.where(finite, diff_ok, same_inf)
    if np.ndim(a) == 0 and np.ndim(b) == 0:
        return bool(result)
    return result
