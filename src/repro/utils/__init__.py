"""Shared utilities: timing, table formatting, RNG plumbing."""

from repro.utils.tables import format_table
from repro.utils.timing import Timer

__all__ = ["Timer", "format_table"]
