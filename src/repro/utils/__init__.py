"""Shared utilities: timing, table formatting, RNG plumbing."""

from __future__ import annotations

from repro.utils.tables import format_table
from repro.utils.timing import Deadline, Timer

__all__ = ["Deadline", "Timer", "format_table"]
