"""Plain-text table rendering for benchmark reports."""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned monospace table.

    Args:
        headers: Column names.
        rows: Row cells (converted with ``str``).
        title: Optional heading line.

    Returns:
        The rendered multi-line string.
    """
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
