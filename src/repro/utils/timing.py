"""Wall-clock timing helper."""

from __future__ import annotations

import time


class Timer:
    """Context-manager stopwatch.

    Example::

        with Timer() as t:
            work()
        print(t.elapsed)
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start: float | None = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        if self._start is not None:
            self.elapsed = time.perf_counter() - self._start


class Deadline:
    """Monotonic time budget — the shared deadline helper (lint RPR004).

    Deadline arithmetic must never touch ``time.time``: the wall clock
    jumps under NTP slew/DST, which can expire a 30-second solver budget
    instantly or never.  This wraps ``time.perf_counter`` behind the
    three operations deadline code actually needs.

    ``seconds=None`` means "no deadline": :meth:`expired` is always
    False and :meth:`remaining` is ``None``.

    Example::

        deadline = Deadline(30.0)
        while not deadline.expired():
            work(budget=deadline.remaining())
    """

    __slots__ = ("_expiry",)

    def __init__(self, seconds: float | None) -> None:
        self._expiry = (
            None if seconds is None else time.perf_counter() + float(seconds)
        )

    @classmethod
    def at(cls, expiry: float | None) -> "Deadline":
        """Wrap an absolute ``time.perf_counter`` stamp (or None)."""
        deadline = cls(None)
        deadline._expiry = None if expiry is None else float(expiry)
        return deadline

    @property
    def expiry(self) -> float | None:
        """Absolute ``time.perf_counter`` expiry stamp (None = unbounded)."""
        return self._expiry

    def remaining(self) -> float | None:
        """Seconds left (clamped at 0.0), or None when unbounded."""
        if self._expiry is None:
            return None
        return max(0.0, self._expiry - time.perf_counter())

    def expired(self) -> bool:
        """Whether the budget is exhausted."""
        return self._expiry is not None and time.perf_counter() > self._expiry

    def __repr__(self) -> str:
        if self._expiry is None:
            return "Deadline(unbounded)"
        return f"Deadline(remaining={self.remaining():.3f}s)"
