"""Wall-clock timing helper."""

from __future__ import annotations

import time


class Timer:
    """Context-manager stopwatch.

    Example::

        with Timer() as t:
            work()
        print(t.elapsed)
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start: float | None = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        if self._start is not None:
            self.elapsed = time.perf_counter() - self._start
