"""Model zoo: the trained networks of Table I (and the case-study CNN).

The paper evaluates 8 DNNs — five Auto MPG regressors (2 FC hidden
layers, 8..64 hidden neurons) and three digit classifiers (1..3 conv
layers + 1 FC hidden layer).  This module trains equivalents on the
synthetic datasets with fixed seeds and caches them under
``.models/`` so benchmarks and tests reuse identical weights.

Scale note: the paper's MNIST nets have 1.4k–5.8k hidden neurons and are
certified in hours on a workstation.  To keep the full benchmark suite
runnable in CI, the zoo's conv nets use a 14×14 canvas and reduced
channel counts (hundreds of hidden neurons); the certification code
paths (conv→affine materialization, per-neuron LP, refinement) are
identical, only wall-clock scale differs.  See EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.data import load_auto_mpg, load_digits, train_test_split
from repro.nn import (
    AvgPool2D,
    Conv2D,
    Dense,
    Flatten,
    Network,
    TrainConfig,
    load_network,
    save_network,
    train,
)
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.optimizers import Adam

DEFAULT_CACHE = Path(__file__).resolve().parents[2] / ".models"


@dataclass
class ZooEntry:
    """A Table I row: the trained network plus its metadata.

    Attributes:
        id: DNN id (1..8, matching Table I).
        network: Trained model.
        dataset: ``"auto_mpg"`` or ``"digits"``.
        delta: The perturbation bound the paper certifies this net at.
        description: Architecture summary string.
    """

    id: int
    network: Network
    dataset: str
    delta: float
    description: str

    @property
    def hidden_neurons(self) -> int:
        """Table I's 'Neurons' column."""
        return self.network.num_hidden_neurons()


# Auto MPG DNN-1..5: two FC hidden layers with these total hidden sizes.
AUTOMPG_HIDDEN = {1: 8, 2: 12, 3: 16, 4: 32, 5: 64}

# Digit DNN-6..8: number of conv layers (channel ramp) before the FC layer.
DIGIT_CONVS = {6: (4,), 7: (4, 8), 8: (4, 8, 8)}


def _automgp_layers(total_hidden: int, rng: np.random.Generator):
    h1 = total_hidden // 2
    h2 = total_hidden - h1
    return [
        Dense(7, h1, relu=True, rng=rng),
        Dense(h1, h2, relu=True, rng=rng),
        Dense(h2, 1, rng=rng),
    ]


def automgp_network(dnn_id: int, seed: int = 0, epochs: int = 80) -> Network:
    """Train an Auto MPG regressor matching Table I row ``dnn_id``."""
    if dnn_id not in AUTOMPG_HIDDEN:
        raise ValueError(f"Auto MPG ids are 1..5, got {dnn_id}")
    rng = np.random.default_rng(seed + dnn_id)
    x, y = load_auto_mpg(400, seed=seed)
    x_tr, y_tr, x_te, y_te = train_test_split(x, y, seed=seed)
    net = Network((7,), _automgp_layers(AUTOMPG_HIDDEN[dnn_id], rng))
    train(
        net,
        x_tr,
        y_tr,
        config=TrainConfig(epochs=epochs, batch_size=32, seed=seed),
        x_val=x_te,
        y_val=y_te,
    )
    return net


def digit_network(
    dnn_id: int, seed: int = 0, epochs: int = 25, image_size: int = 14
) -> Network:
    """Train a digit classifier matching Table I row ``dnn_id``."""
    if dnn_id not in DIGIT_CONVS:
        raise ValueError(f"digit ids are 6..8, got {dnn_id}")
    rng = np.random.default_rng(seed + dnn_id)
    x, y = load_digits(1500, size=image_size, seed=seed)
    x_tr, y_tr, x_te, y_te = train_test_split(x, y, seed=seed)

    layers = []
    in_ch = 1
    h = w = image_size
    for out_ch in DIGIT_CONVS[dnn_id]:
        layers.append(Conv2D(in_ch, out_ch, kernel_size=3, relu=True, rng=rng))
        h -= 2
        w -= 2
        if h % 2 == 0 and w % 2 == 0 and min(h, w) >= 6:
            layers.append(AvgPool2D(2))
            h //= 2
            w //= 2
        in_ch = out_ch
    layers.append(Flatten())
    layers.append(Dense(in_ch * h * w, 32, relu=True, rng=rng))
    layers.append(Dense(32, 10, rng=rng))
    net = Network((1, image_size, image_size), layers)

    train(
        net,
        x_tr,
        y_tr,
        loss=SoftmaxCrossEntropy(),
        optimizer=Adam(lr=2e-3),
        config=TrainConfig(epochs=epochs, batch_size=64, seed=seed),
    )
    acc = SoftmaxCrossEntropy.accuracy(net.forward(x_te), y_te)
    if acc < 0.5:
        raise RuntimeError(f"digit net {dnn_id} trained poorly (acc={acc:.2f})")
    return net


def get_network(
    dnn_id: int,
    cache_dir: str | Path | None = None,
    seed: int = 0,
    image_size: int = 14,
) -> ZooEntry:
    """Fetch a Table I network, training and caching it on first use.

    Args:
        dnn_id: 1..8 as in Table I.
        cache_dir: Where ``.npz`` snapshots live (default ``.models/``).
        seed: Training seed (part of the cache key).
        image_size: Canvas edge for the digit networks (6..8); smaller
            values shrink the conv layers for faster certification runs.

    Returns:
        The :class:`ZooEntry`.
    """
    cache = Path(cache_dir) if cache_dir is not None else DEFAULT_CACHE
    cache.mkdir(parents=True, exist_ok=True)
    suffix = f"_s{image_size}" if dnn_id in DIGIT_CONVS and image_size != 14 else ""
    path = cache / f"dnn{dnn_id}_seed{seed}{suffix}.npz"

    if dnn_id in AUTOMPG_HIDDEN:
        dataset, delta = "auto_mpg", 0.001
        describe = f"FC 7-{AUTOMPG_HIDDEN[dnn_id] // 2}-{AUTOMPG_HIDDEN[dnn_id] - AUTOMPG_HIDDEN[dnn_id] // 2}-1"
        builder = lambda: automgp_network(dnn_id, seed=seed)  # noqa: E731
    elif dnn_id in DIGIT_CONVS:
        dataset, delta = "digits", 2.0 / 255.0
        describe = f"Conv×{len(DIGIT_CONVS[dnn_id])} + FC 32-10"
        builder = lambda: digit_network(dnn_id, seed=seed, image_size=image_size)  # noqa: E731
    else:
        raise ValueError(f"unknown DNN id {dnn_id}")

    if path.exists():
        network = load_network(path)
    else:
        network = builder()
        save_network(network, path)
    return ZooEntry(dnn_id, network, dataset, delta, describe)
