"""Call graph: import resolution, ctor params, candidate sets, edges."""

import ast
import textwrap

from tools.analysis.callgraph import build_call_graph, module_name_of


def graph_of(*files):
    return build_call_graph(
        [(relpath, ast.parse(textwrap.dedent(src))) for relpath, src in files]
    )


def first_call(src, name=None):
    tree = ast.parse(textwrap.dedent(src))
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            func = node.func
            label = func.attr if isinstance(func, ast.Attribute) else getattr(
                func, "id", None
            )
            if name is None or label == name:
                return node
    raise AssertionError("no matching call")


class TestModuleNames:
    def test_src_prefix_stripped(self):
        assert module_name_of("src/repro/milp/session.py") == "repro.milp.session"

    def test_tests_keep_prefix(self):
        assert (
            module_name_of("tests/milp/test_session.py")
            == "tests.milp.test_session"
        )

    def test_init_names_package(self):
        assert module_name_of("src/repro/milp/__init__.py") == "repro.milp"


class TestResolution:
    def test_local_function(self):
        graph = graph_of(
            ("src/pkg/a.py", "def helper(lo, hi):\n    pass\n")
        )
        info = graph.resolve_name("pkg.a", "helper")
        assert info is not None
        assert info.params == ["lo", "hi"]
        assert info.qualname == "pkg.a:helper"

    def test_from_import(self):
        graph = graph_of(
            ("src/pkg/a.py", "def helper(lo, hi):\n    pass\n"),
            ("src/pkg/b.py", "from pkg.a import helper\n"),
        )
        info = graph.resolve_name("pkg.b", "helper")
        assert info is not None and info.module == "pkg.a"

    def test_from_import_alias(self):
        graph = graph_of(
            ("src/pkg/a.py", "def helper(lo, hi):\n    pass\n"),
            ("src/pkg/b.py", "from pkg.a import helper as h\n"),
        )
        assert graph.resolve_name("pkg.b", "h") is not None
        assert graph.resolve_name("pkg.b", "helper") is None

    def test_module_alias_attribute_call(self):
        graph = graph_of(
            ("src/pkg/a.py", "def helper(lo, hi):\n    pass\n"),
            ("src/pkg/b.py", "import pkg.a as mod\n\nmod.helper(1, 2)\n"),
        )
        call = first_call("mod.helper(1, 2)")
        resolved = graph.resolve_call(call, "pkg.b")
        assert len(resolved) == 1
        assert resolved[0].qualname == "pkg.a:helper"

    def test_bare_method_yields_candidate_set(self):
        graph = graph_of(
            (
                "src/pkg/a.py",
                "class A:\n    def solve(self, time_limit=None):\n        pass\n",
            ),
            (
                "src/pkg/b.py",
                "class B:\n    def solve(self, budget=None):\n        pass\n",
            ),
        )
        call = first_call("obj.solve()")
        resolved = graph.resolve_call(call, "pkg.a")
        assert {info.qualname for info in resolved} == {
            "pkg.a:A.solve",
            "pkg.b:B.solve",
        }

    def test_unknown_external_call_is_empty(self):
        graph = graph_of(("src/pkg/a.py", "x = 1\n"))
        assert graph.resolve_call(first_call("np.clip(x, 0, 1)"), "pkg.a") == []


class TestConstructors:
    def test_explicit_init_params_strip_self(self):
        graph = graph_of(
            (
                "src/pkg/a.py",
                "class Box:\n    def __init__(self, lo, hi):\n        pass\n",
            )
        )
        info = graph.resolve_name("pkg.a", "Box")
        assert info is not None and info.is_ctor
        assert info.params == ["lo", "hi"]

    def test_dataclass_fields_are_ctor_params(self):
        graph = graph_of(
            (
                "src/pkg/a.py",
                "from dataclasses import dataclass\n\n"
                "@dataclass\n"
                "class Box:\n"
                "    lo: object\n"
                "    hi: object\n",
            )
        )
        info = graph.resolve_name("pkg.a", "Box")
        assert info is not None and info.is_ctor
        assert info.params == ["lo", "hi"]
        assert info.param_index("hi") == 1

    def test_plain_class_without_init_is_opaque(self):
        graph = graph_of(("src/pkg/a.py", "class Opaque:\n    pass\n"))
        assert graph.resolve_name("pkg.a", "Opaque") is None


class TestEdges:
    def test_name_call_edge(self):
        graph = graph_of(
            (
                "src/pkg/a.py",
                "def callee():\n"
                "    pass\n"
                "\n"
                "def caller():\n"
                "    callee()\n",
            )
        )
        assert graph.callees("pkg.a:caller") == {"pkg.a:callee"}

    def test_cross_module_edge(self):
        graph = graph_of(
            ("src/pkg/a.py", "def callee():\n    pass\n"),
            (
                "src/pkg/b.py",
                "from pkg.a import callee\n"
                "\n"
                "def caller():\n"
                "    callee()\n",
            ),
        )
        assert graph.callees("pkg.b:caller") == {"pkg.a:callee"}

    def test_methods_indexed_with_class_prefix(self):
        graph = graph_of(
            (
                "src/pkg/a.py",
                "class C:\n    def method(self, lo):\n        pass\n",
            )
        )
        assert "pkg.a:C.method" in graph.functions
        assert graph.functions["pkg.a:C.method"].params == ["lo"]
