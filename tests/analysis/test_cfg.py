"""CFG builder: shape, dominators, path queries, finally tracking."""

import ast
import textwrap

from tools.analysis.cfg import ENTRY, EXIT, build_cfg


def cfg_of(src):
    tree = ast.parse(textwrap.dedent(src))
    return build_cfg(tree.body[0]), tree.body[0]


def node_at(cfg, fn, lineno):
    """Node index of the statement starting on ``lineno`` of the def."""
    for stmt in ast.walk(fn):
        if isinstance(stmt, ast.stmt) and stmt.lineno == lineno:
            index = cfg.node_for(stmt)
            if index is not None:
                return index
    raise AssertionError(f"no CFG node at line {lineno}")


class TestShape:
    def test_straight_line(self):
        cfg, _ = cfg_of(
            """
            def f():
                a = 1
                b = 2
                return b
            """
        )
        # ENTRY, EXIT, 3 statements.
        assert len(cfg.nodes) == 5
        assert cfg.nodes[ENTRY].preds == set()
        assert cfg.nodes[EXIT].succs == set()
        # Single chain: every interior node has one succ.
        interior = [n for n in cfg.nodes if n.index not in (ENTRY, EXIT)]
        assert all(len(n.succs) == 1 for n in interior)

    def test_if_produces_branch_and_join(self):
        cfg, fn = cfg_of(
            """
            def f(x):
                if x:
                    a = 1
                else:
                    a = 2
                return a
            """
        )
        header = node_at(cfg, fn, 3)
        assert len(cfg.nodes[header].succs) == 2
        ret = node_at(cfg, fn, 7)
        assert len(cfg.nodes[ret].preds) == 2

    def test_if_without_else_falls_through(self):
        cfg, fn = cfg_of(
            """
            def f(x):
                if x:
                    a = 1
                return x
            """
        )
        header = node_at(cfg, fn, 3)
        ret = node_at(cfg, fn, 5)
        assert ret in cfg.nodes[header].succs  # false edge skips the body

    def test_while_has_back_edge_and_exit(self):
        cfg, fn = cfg_of(
            """
            def f(x):
                while x:
                    x = x - 1
                return x
            """
        )
        header = node_at(cfg, fn, 3)
        body = node_at(cfg, fn, 4)
        assert header in cfg.nodes[body].succs  # back edge
        ret = node_at(cfg, fn, 5)
        assert ret in cfg.nodes[header].succs  # loop-exit edge

    def test_break_jumps_past_loop(self):
        cfg, fn = cfg_of(
            """
            def f(xs):
                for x in xs:
                    if x:
                        break
                return xs
            """
        )
        brk = node_at(cfg, fn, 5)
        ret = node_at(cfg, fn, 6)
        assert ret in cfg.nodes[brk].succs

    def test_continue_jumps_to_header(self):
        cfg, fn = cfg_of(
            """
            def f(xs):
                for x in xs:
                    if x:
                        continue
                    y = x
                return xs
            """
        )
        header = node_at(cfg, fn, 3)
        cont = node_at(cfg, fn, 5)
        assert cfg.nodes[cont].succs == {header}

    def test_return_goes_straight_to_exit(self):
        cfg, fn = cfg_of(
            """
            def f(x):
                if x:
                    return 1
                return 2
            """
        )
        early = node_at(cfg, fn, 4)
        assert cfg.nodes[early].succs == {EXIT}

    def test_try_body_edges_into_handler(self):
        cfg, fn = cfg_of(
            """
            def f():
                try:
                    a = risky()
                    b = more()
                except ValueError:
                    c = 1
                return 0
            """
        )
        a = node_at(cfg, fn, 4)
        b = node_at(cfg, fn, 5)
        handler = node_at(cfg, fn, 7)
        # The exception may fire at any body statement.
        assert handler in cfg.nodes[a].succs
        assert handler in cfg.nodes[b].succs

    def test_finally_nodes_tracked(self):
        cfg, fn = cfg_of(
            """
            def f():
                try:
                    a = risky()
                finally:
                    cleanup()
            """
        )
        cleanup = node_at(cfg, fn, 6)
        assert cleanup in cfg.finally_nodes()
        assert node_at(cfg, fn, 4) not in cfg.finally_nodes()


class TestDominators:
    def test_entry_dominates_everything(self):
        cfg, _ = cfg_of(
            """
            def f(x):
                if x:
                    a = 1
                return x
            """
        )
        doms = cfg.dominators()
        assert all(
            ENTRY in doms[n.index] for n in cfg.nodes if doms.get(n.index)
        )

    def test_branch_does_not_dominate_join(self):
        cfg, fn = cfg_of(
            """
            def f(x):
                if x:
                    a = 1
                else:
                    a = 2
                return a
            """
        )
        doms = cfg.dominators()
        then_node = node_at(cfg, fn, 4)
        join = node_at(cfg, fn, 7)
        header = node_at(cfg, fn, 3)
        assert then_node not in doms[join]
        assert header in doms[join]

    def test_gate_before_call_dominates_it(self):
        cfg, fn = cfg_of(
            """
            def f():
                gate = check()
                use()
            """
        )
        doms = cfg.dominators()
        assert node_at(cfg, fn, 3) in doms[node_at(cfg, fn, 4)]


class TestReachesExitAvoiding:
    def test_unavoidable_close_blocks_exit(self):
        cfg, fn = cfg_of(
            """
            def f():
                s = make()
                s.use()
                s.close()
            """
        )
        creation = node_at(cfg, fn, 3)
        close = node_at(cfg, fn, 5)
        assert not cfg.reaches_exit_avoiding(creation, {close})

    def test_early_return_leaks_past_close(self):
        cfg, fn = cfg_of(
            """
            def f(x):
                s = make()
                if x:
                    return None
                s.close()
            """
        )
        creation = node_at(cfg, fn, 3)
        close = node_at(cfg, fn, 6)
        assert cfg.reaches_exit_avoiding(creation, {close})

    def test_close_on_both_branches_blocks_exit(self):
        cfg, fn = cfg_of(
            """
            def f(x):
                s = make()
                if x:
                    s.close()
                else:
                    s.close()
                return x
            """
        )
        creation = node_at(cfg, fn, 3)
        closes = {node_at(cfg, fn, 5), node_at(cfg, fn, 7)}
        assert not cfg.reaches_exit_avoiding(creation, closes)
