"""Dataflow engine: taint semantics, joins, reaching definitions."""

import ast
import textwrap

from tools.analysis.cfg import build_cfg
from tools.analysis.dataflow import (
    ReachingDefinitions,
    expr_taint,
    join,
    run_forward,
    transfer_taint,
)

LO = frozenset({"lo"})
HI = frozenset({"hi"})


def attr_taint(attr):
    if attr in {"lo", "lower", "lb"}:
        return LO
    if attr in {"hi", "upper", "ub"}:
        return HI
    return frozenset()


def taint_of(expr_src, env, through_ops=False):
    expr = ast.parse(expr_src, mode="eval").body
    return expr_taint(expr, env, attr_taint, through_ops=through_ops)


class TestPureCarrierTaint:
    def test_name_lookup(self):
        assert taint_of("x", {"x": LO}) == LO

    def test_attribute_seeds_direction(self):
        assert taint_of("box.lo", {}) == LO
        assert taint_of("rec.y.hi", {}) == HI

    def test_copy_and_asarray_carry(self):
        env = {"x": LO}
        assert taint_of("x.copy()", env) == LO
        assert taint_of("np.asarray(x)", env) == LO
        assert taint_of("box.hi.copy()", {}) == HI

    def test_subscript_carries(self):
        assert taint_of("xs[0]", {"xs": HI}) == HI

    def test_min_max_union(self):
        env = {"a": LO, "b": LO, "c": HI}
        assert taint_of("np.maximum(a, b)", env) == LO
        # Mixing directions yields mixed (inert) taint.
        assert taint_of("np.minimum(a, c)", env) == LO | HI

    def test_arithmetic_drops_taint(self):
        env = {"lo": LO, "hi": HI}
        assert taint_of("hi - lo", env) == frozenset()  # width
        assert taint_of("(lo + hi) / 2", env) == frozenset()  # midpoint
        assert taint_of("-hi", env) == frozenset()  # negation flips roles

    def test_unknown_call_drops_taint(self):
        assert taint_of("transform(x)", {"x": LO}) == frozenset()

    def test_tuple_unions(self):
        env = {"a": LO, "b": HI}
        assert taint_of("(a, b)", env) == LO | HI


class TestMentionsTaint:
    def test_survives_arithmetic(self):
        env = {"deadline": frozenset({"deadline"})}
        assert "deadline" in taint_of(
            "deadline - elapsed", env, through_ops=True
        )

    def test_survives_calls(self):
        env = {"deadline": frozenset({"deadline"})}
        assert "deadline" in taint_of(
            "max(0.0, deadline - t0)", env, through_ops=True
        )

    def test_absent_name_is_clean(self):
        env = {"deadline": frozenset({"deadline"})}
        assert taint_of("other - 1", env, through_ops=True) == frozenset()


def states_for(src, seed, through_ops=False):
    tree = ast.parse(textwrap.dedent(src))
    fn = tree.body[0]
    cfg = build_cfg(fn)

    def transfer(stmt, env):
        return transfer_taint(stmt, env, attr_taint, through_ops)

    return cfg, fn, run_forward(cfg, seed, transfer)


def env_at_line(cfg, fn, states, lineno):
    for stmt in ast.walk(fn):
        if isinstance(stmt, ast.stmt) and stmt.lineno == lineno:
            index = cfg.node_for(stmt)
            if index is not None and index in states:
                return states[index]
    raise AssertionError(f"no analyzed node at line {lineno}")


class TestTransfer:
    def test_assignment_propagates(self):
        cfg, fn, states = states_for(
            """
            def f(box):
                a = box.lo
                b = a.copy()
                use(b)
            """,
            {},
        )
        env = env_at_line(cfg, fn, states, 5)
        assert env["a"] == LO
        assert env["b"] == LO

    def test_parallel_unpack_keeps_directions_separate(self):
        cfg, fn, states = states_for(
            """
            def f(box):
                a, b = box.lo, box.hi
                use(a, b)
            """,
            {},
        )
        env = env_at_line(cfg, fn, states, 4)
        assert env["a"] == LO
        assert env["b"] == HI

    def test_branch_join_unions(self):
        cfg, fn, states = states_for(
            """
            def f(box, flag):
                if flag:
                    v = box.lo
                else:
                    v = box.hi
                use(v)
            """,
            {},
        )
        env = env_at_line(cfg, fn, states, 7)
        assert env["v"] == LO | HI  # mixed at the join

    def test_reassignment_kills_old_taint(self):
        cfg, fn, states = states_for(
            """
            def f(box):
                v = box.lo
                v = box.hi
                use(v)
            """,
            {},
        )
        assert env_at_line(cfg, fn, states, 5)["v"] == HI

    def test_loop_fixpoint_terminates_and_unions(self):
        cfg, fn, states = states_for(
            """
            def f(box, xs):
                v = box.lo
                for x in xs:
                    v = box.hi
                use(v)
            """,
            {},
        )
        assert env_at_line(cfg, fn, states, 6)["v"] == LO | HI

    def test_for_target_inherits_iter_taint(self):
        cfg, fn, states = states_for(
            """
            def f(lows):
                for v in lows:
                    use(v)
            """,
            {"lows": LO},
        )
        assert env_at_line(cfg, fn, states, 4)["v"] == LO

    def test_augassign_keeps_direction(self):
        cfg, fn, states = states_for(
            """
            def f(box):
                v = box.lo
                v += 0.5
                use(v)
            """,
            {},
        )
        assert env_at_line(cfg, fn, states, 5)["v"] == LO


class TestJoin:
    def test_pointwise_union(self):
        merged = join([{"a": LO}, {"a": HI, "b": LO}])
        assert merged == {"a": LO | HI, "b": LO}

    def test_empty(self):
        assert join([]) == {}


class TestReachingDefinitions:
    def test_single_def_reaches_use(self):
        tree = ast.parse(
            textwrap.dedent(
                """
                def f():
                    a = 1
                    b = a
                    return b
                """
            )
        )
        fn = tree.body[0]
        cfg = build_cfg(fn)
        states = ReachingDefinitions(cfg).run()
        use = env_at_line(cfg, fn, states, 4)
        a_def = cfg.node_for(fn.body[0])
        assert use["a"] == frozenset({a_def})

    def test_branches_both_reach_join(self):
        tree = ast.parse(
            textwrap.dedent(
                """
                def f(x):
                    if x:
                        a = 1
                    else:
                        a = 2
                    return a
                """
            )
        )
        fn = tree.body[0]
        cfg = build_cfg(fn)
        states = ReachingDefinitions(cfg).run()
        ret = env_at_line(cfg, fn, states, 7)
        assert len(ret["a"]) == 2

    def test_redefinition_kills(self):
        tree = ast.parse(
            textwrap.dedent(
                """
                def f():
                    a = 1
                    a = 2
                    return a
                """
            )
        )
        fn = tree.body[0]
        cfg = build_cfg(fn)
        states = ReachingDefinitions(cfg).run()
        ret = env_at_line(cfg, fn, states, 5)
        assert ret["a"] == frozenset({cfg.node_for(fn.body[1])})
