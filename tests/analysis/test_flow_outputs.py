"""Emitters, diff gating, and the shrink-only baseline contract."""

import json

import pytest

from tools.analysis import Diagnostic, lint_source
from tools.analysis.baseline import (
    UNREVIEWED,
    Baseline,
    BaselineEntry,
    load_baseline,
    write_baseline,
)
from tools.analysis.diffmode import filter_to_changed, parse_unified_diff
from tools.analysis.output import (
    SARIF_VERSION,
    TOOL_NAME,
    to_json_dict,
    to_sarif_dict,
)
from tools.analysis.__main__ import main

LEAKY = (
    "def leaky(model):\n"
    "    session = open_session(model)\n"
    "    return session.solve()\n"
)
LEAKY_PATH = "src/repro/runtime/example.py"


def leaky_diags():
    return lint_source(LEAKY, LEAKY_PATH, LEAKY_PATH, flow=True)


class TestSarif:
    def test_findings_become_results(self):
        diags = leaky_diags()
        assert diags  # RPR103
        log = to_sarif_dict(diags)
        assert log["version"] == SARIF_VERSION
        (run,) = log["runs"]
        assert run["tool"]["driver"]["name"] == TOOL_NAME
        (result,) = run["results"]
        assert result["ruleId"] == "RPR103"
        location = result["locations"][0]
        physical = location["physicalLocation"]
        assert physical["artifactLocation"]["uri"] == LEAKY_PATH
        assert physical["region"]["startLine"] == 2
        assert (
            location["logicalLocations"][0]["fullyQualifiedName"] == "leaky"
        )

    def test_rule_catalog_covers_node_and_flow_tiers(self):
        ids = {
            rule["id"]
            for rule in to_sarif_dict([])["runs"][0]["tool"]["driver"]["rules"]
        }
        assert {"RPR000", "RPR001", "RPR101", "RPR105"} <= ids

    def test_empty_run_is_valid(self):
        log = to_sarif_dict([])
        assert log["runs"][0]["results"] == []


class TestJsonReport:
    def test_flat_findings(self):
        report = to_json_dict(leaky_diags())
        assert report["tool"] == TOOL_NAME
        assert report["count"] == 1
        (finding,) = report["findings"]
        assert finding["rule"] == "RPR103"
        assert finding["path"] == LEAKY_PATH
        assert finding["symbol"] == "leaky"

    def test_round_trips_through_json(self):
        assert json.loads(json.dumps(to_json_dict(leaky_diags())))


DIFF = """\
diff --git a/src/repro/a.py b/src/repro/a.py
--- a/src/repro/a.py
+++ b/src/repro/a.py
@@ -10,2 +12,3 @@ def f():
+x = 1
+y = 2
+z = 3
@@ -30 +40 @@ def g():
+w = 4
diff --git a/src/old.py b/src/old.py
--- a/src/old.py
+++ /dev/null
@@ -1,5 +0,0 @@
-gone = True
"""


class TestDiffMode:
    def test_hunk_parsing(self):
        changed = parse_unified_diff(DIFF)
        assert changed["src/repro/a.py"] == {12, 13, 14, 40}
        assert "src/old.py" not in changed  # deleted files have no new side

    def test_count_defaults_to_one(self):
        changed = parse_unified_diff(
            "+++ b/f.py\n@@ -1 +7 @@\n+line\n"
        )
        assert changed["f.py"] == {7}

    def test_filter_keeps_only_changed_lines(self):
        on_changed = Diagnostic("src/repro/a.py", 12, "RPR001", "m")
        off_changed = Diagnostic("src/repro/a.py", 99, "RPR001", "m")
        other_file = Diagnostic("src/repro/b.py", 12, "RPR001", "m")
        kept = filter_to_changed(
            [on_changed, off_changed, other_file], parse_unified_diff(DIFF)
        )
        assert kept == [on_changed]


class TestBaseline:
    ENTRY = BaselineEntry(
        "RPR103", LEAKY_PATH, "leaky", "verified intentional: test double"
    )

    def test_matching_entry_suppresses(self):
        baseline = Baseline(path="b.json", entries=[self.ENTRY])
        kept, extra = baseline.apply(leaky_diags())
        assert kept == []
        assert extra == []

    def test_unlisted_finding_is_kept(self):
        baseline = Baseline(path="b.json", entries=[])
        kept, extra = baseline.apply(leaky_diags())
        assert [d.code for d in kept] == ["RPR103"]
        assert extra == []

    def test_stale_entry_fails_shrink_only(self):
        stale = BaselineEntry("RPR102", "src/gone.py", "f", "old reason")
        baseline = Baseline(path="b.json", entries=[stale])
        kept, extra = baseline.apply([])
        assert kept == []
        assert [d.code for d in extra] == ["RPR000"]
        assert "shrink-only" in extra[0].message

    def test_non_flow_codes_never_suppressed(self):
        diag = Diagnostic(LEAKY_PATH, 3, "RPR001", "m", symbol="leaky")
        entry = BaselineEntry("RPR001", LEAKY_PATH, "leaky", "nope")
        # Loader rejects non-flow rules; even a hand-built entry is inert.
        baseline = Baseline(path="b.json", entries=[entry])
        kept, _extra = baseline.apply([diag])
        assert kept == [diag]

    def test_missing_file_is_empty(self, tmp_path):
        baseline = load_baseline(str(tmp_path / "nope.json"))
        assert baseline.entries == []
        assert baseline.problems == []

    def test_loader_rejects_unreviewed_reasons(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text(
            json.dumps(
                {
                    "entries": [
                        {
                            "rule": "RPR103",
                            "path": LEAKY_PATH,
                            "symbol": "leaky",
                            "reason": UNREVIEWED,
                        }
                    ]
                }
            )
        )
        baseline = load_baseline(str(path))
        assert [p.code for p in baseline.problems] == ["RPR000"]
        assert "reason" in baseline.problems[0].message

    def test_loader_rejects_non_flow_rule(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text(
            json.dumps(
                {"entries": [{"rule": "RPR001", "path": "x.py", "reason": "r"}]}
            )
        )
        baseline = load_baseline(str(path))
        assert [p.code for p in baseline.problems] == ["RPR000"]

    def test_write_stamps_new_entries_unreviewed(self, tmp_path):
        path = str(tmp_path / "b.json")
        count = write_baseline(leaky_diags(), path)
        assert count == 1
        data = json.loads(open(path).read())
        (entry,) = data["entries"]
        assert entry["reason"] == UNREVIEWED
        # ... which the loader then refuses, closing the loop.
        assert load_baseline(path).problems

    def test_write_preserves_reviewed_reasons(self, tmp_path):
        path = str(tmp_path / "b.json")
        previous = Baseline(path=path, entries=[self.ENTRY])
        write_baseline(leaky_diags(), path, previous=previous)
        (entry,) = json.loads(open(path).read())["entries"]
        assert entry["reason"] == self.ENTRY.reason

    def test_committed_baseline_is_valid(self):
        baseline = load_baseline()
        assert baseline.problems == []


class TestCli:
    def write_module(self, tmp_path, body):
        pkg = tmp_path / "src" / "repro" / "runtime"
        pkg.mkdir(parents=True)
        target = pkg / "example.py"
        target.write_text(body)
        return target

    def test_clean_run_exits_zero(self, tmp_path, capsys, monkeypatch):
        self.write_module(tmp_path, "x = 1\n")
        monkeypatch.chdir(tmp_path)
        assert main(["--flow", "src"]) == 0
        assert "lint: clean" in capsys.readouterr().out

    def test_findings_exit_one_and_emit_reports(
        self, tmp_path, capsys, monkeypatch
    ):
        self.write_module(tmp_path, LEAKY)
        monkeypatch.chdir(tmp_path)
        sarif = tmp_path / "out.sarif"
        report = tmp_path / "out.json"
        status = main(
            ["--flow", "src", "--sarif", str(sarif), "--json", str(report)]
        )
        assert status == 1
        assert "RPR103" in capsys.readouterr().out
        assert json.loads(sarif.read_text())["runs"][0]["results"]
        assert json.loads(report.read_text())["count"] == 1

    def test_write_baseline_then_reviewed_reason_gates_clean(
        self, tmp_path, capsys, monkeypatch
    ):
        self.write_module(tmp_path, LEAKY)
        monkeypatch.chdir(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert (
            main(
                [
                    "--flow",
                    "src",
                    "--baseline",
                    str(baseline),
                    "--write-baseline",
                ]
            )
            == 0
        )
        # Fresh entries are UNREVIEWED: the gate still fails.
        assert (
            main(["--flow", "src", "--baseline", str(baseline)]) == 1
        )
        data = json.loads(baseline.read_text())
        data["entries"][0]["reason"] = "verified intentional: fixture"
        baseline.write_text(json.dumps(data))
        capsys.readouterr()
        assert main(["--flow", "src", "--baseline", str(baseline)]) == 0
        assert "lint: clean" in capsys.readouterr().out

    def test_diff_gate_filters_to_changed_lines(
        self, tmp_path, capsys, monkeypatch
    ):
        self.write_module(tmp_path, LEAKY)
        monkeypatch.chdir(tmp_path)
        monkeypatch.setattr(
            "tools.analysis.__main__.changed_lines",
            lambda ref: {"src/repro/runtime/example.py": {99}},
        )
        assert main(["--flow", "src", "--diff", "origin/main"]) == 0

    def test_diff_unavailable_falls_back_to_full(
        self, tmp_path, capsys, monkeypatch
    ):
        self.write_module(tmp_path, LEAKY)
        monkeypatch.chdir(tmp_path)

        def boom(ref):
            raise RuntimeError("unknown ref")

        monkeypatch.setattr("tools.analysis.__main__.changed_lines", boom)
        assert main(["--flow", "src", "--diff", "origin/nope"]) == 1
        assert "--diff unavailable" in capsys.readouterr().err


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
