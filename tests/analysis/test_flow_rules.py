"""Flow rules RPR101–105: must-flag / must-pass fixtures, waivers, profiles."""

import pytest

from tools.analysis import ENGINE_CODE, lint_source, lint_sources
from tools.analysis.rules_flow import ALL_FLOW_RULES


def codes(diagnostics):
    return [d.code for d in diagnostics]


def lint(source, relpath="src/repro/certify/example.py"):
    return lint_source(source, relpath, relpath, flow=True)


BOX_PREAMBLE = (
    "from dataclasses import dataclass\n"
    "\n"
    "@dataclass\n"
    "class Box:\n"
    "    lo: object\n"
    "    hi: object\n"
    "\n"
    "    def __post_init__(self):\n"
    "        self.lo = self.lo.copy()\n"
    "        self.hi = self.hi.copy()\n"
    "\n"
)

# One (code, relpath, must_flag, must_pass) fixture pair per flow rule.
FLOW_FIXTURES = [
    (
        "RPR101",
        "src/repro/bounds/example.py",
        # Constructor called with the directions swapped.
        BOX_PREAMBLE + "def swapped(box):\n    return Box(box.hi, box.lo)\n",
        # Straight copy plus direction-neutral width math.
        BOX_PREAMBLE
        + "def widened(box):\n"
        + "    width = box.hi - box.lo\n"
        + "    return Box(box.lo.copy(), box.hi.copy()), width\n",
    ),
    (
        "RPR102",
        "src/repro/certify/example.py",
        # Accepts time_limit, then solves without it.
        "def run(session, time_limit=None):\n"
        "    return session.solve()\n",
        # Forwarding a *derived* value counts as threading.
        "def run(session, time_limit=None):\n"
        "    per_solve = None if time_limit is None else time_limit / 2\n"
        "    return session.solve(time_limit=per_solve)\n",
    ),
    (
        "RPR103",
        "src/repro/runtime/example.py",
        # An early return skips the close.
        "def leaky(model, flag):\n"
        "    session = open_session(model)\n"
        "    if flag:\n"
        "        return None\n"
        "    session.close()\n"
        "    return None\n",
        # finally post-dominates every path, early return included.
        "def tight(model, flag):\n"
        "    session = open_session(model)\n"
        "    try:\n"
        "        if flag:\n"
        "            return None\n"
        "        return session.solve()\n"
        "    finally:\n"
        "        session.close()\n",
    ),
    (
        "RPR104",
        "src/repro/certify/example.py",
        # warm_start=True with no capability check in sight.
        "def go(model):\n"
        "    with model.open_session(warm_start=True) as session:\n"
        "        return session.solve()\n",
        # find_backend(...) dominates the gated call.
        "def go(model):\n"
        "    backend = find_backend(Capability.MIP | Capability.WARM_START)\n"
        "    with model.open_session(backend=backend, warm_start=True) as session:\n"
        "        return session.solve()\n",
    ),
    (
        "RPR105",
        "src/repro/runtime/example.py",
        # The submitted worker mutates a module-level container.
        "RESULTS = []\n"
        "\n"
        "def worker(x):\n"
        "    RESULTS.append(x)\n"
        "    return x\n"
        "\n"
        "def run(pool, xs):\n"
        "    return list(pool.map(worker, xs))\n",
        # A pure worker: locals only.
        "def worker(x):\n"
        "    doubled = x * 2\n"
        "    return doubled\n"
        "\n"
        "def run(pool, xs):\n"
        "    return list(pool.map(worker, xs))\n",
    ),
]


class TestFlowFixtures:
    @pytest.mark.parametrize(
        "code,relpath,bad,good", FLOW_FIXTURES, ids=[f[0] for f in FLOW_FIXTURES]
    )
    def test_must_flag(self, code, relpath, bad, good):
        assert code in codes(lint(bad, relpath))

    @pytest.mark.parametrize(
        "code,relpath,bad,good", FLOW_FIXTURES, ids=[f[0] for f in FLOW_FIXTURES]
    )
    def test_must_pass(self, code, relpath, bad, good):
        assert lint(good, relpath) == []

    def test_every_flow_rule_has_a_fixture_pair(self):
        assert {f[0] for f in FLOW_FIXTURES} == {
            r.CODE for r in ALL_FLOW_RULES
        }

    def test_flow_rules_off_without_flow_flag(self):
        code, relpath, bad, _good = FLOW_FIXTURES[0]
        assert lint_source(bad, relpath, relpath, flow=False) == []


class TestBoundDirectionTaint:
    def test_keyword_sink_needs_no_resolution(self):
        src = "def f(box):\n    update(lo=box.hi)\n"
        assert "RPR101" in codes(lint(src, "src/repro/bounds/example.py"))

    def test_attribute_store_sink(self):
        src = "def f(box, other):\n    box.hi = other.lo\n"
        assert "RPR101" in codes(lint(src, "src/repro/bounds/example.py"))

    def test_cross_file_positional_resolution(self):
        producer = (
            "src/repro/bounds/prod.py",
            "def clamp(lo, hi):\n    return lo, hi\n",
            None,
        )
        consumer = (
            "src/repro/certify/cons.py",
            "from repro.bounds.prod import clamp\n"
            "\n"
            "def f(box):\n"
            "    return clamp(box.hi, box.lo)\n",
            None,
        )
        diags = lint_sources([producer, consumer], flow=True)
        assert "RPR101" in codes(diags)
        assert all(d.path != producer[0] for d in diags)

    def test_mixed_taint_never_flags(self):
        # Intersection idiom: maximum of lows, minimum of highs.
        src = (
            BOX_PREAMBLE
            + "def intersect(a, b):\n"
            + "    import numpy as np\n"
            + "    return Box(np.maximum(a.lo, b.lo), np.minimum(a.hi, b.hi))\n"
        )
        assert lint(src, "src/repro/bounds/example.py") == []

    def test_negation_idiom_not_flagged(self):
        # Lower bound of -x is -hi(x): arithmetic legitimately crosses.
        src = BOX_PREAMBLE + "def negate(b):\n    return Box(-b.hi, -b.lo)\n"
        assert lint(src, "src/repro/bounds/example.py") == []

    def test_out_of_scope_path_exempt(self):
        src = BOX_PREAMBLE + "def swapped(box):\n    return Box(box.hi, box.lo)\n"
        assert lint(src, "src/repro/milp/example.py") == []


class TestDeadlineThreading:
    def test_name_call_to_deadline_taking_function(self):
        src = (
            "def inner(x, deadline=None):\n"
            "    return x\n"
            "\n"
            "def outer(x, deadline=None):\n"
            "    return inner(x)\n"
        )
        assert "RPR102" in codes(lint(src))

    def test_forwarding_to_name_call_passes(self):
        src = (
            "def inner(x, deadline=None):\n"
            "    return x\n"
            "\n"
            "def outer(x, deadline=None):\n"
            "    return inner(x, deadline=deadline)\n"
        )
        assert lint(src) == []

    def test_resolved_callee_without_deadline_param_is_skipped(self):
        src = (
            "def helper(x):\n"
            "    return x\n"
            "\n"
            "def outer(x, deadline=None):\n"
            "    return helper(x)\n"
        )
        assert lint(src) == []

    def test_functions_without_deadline_params_unconstrained(self):
        assert lint("def f(session):\n    return session.solve()\n") == []


class TestResourceLifecycle:
    def test_never_closed(self):
        src = (
            "def leaky(model):\n"
            "    session = open_session(model)\n"
            "    return session.solve()\n"
        )
        diags = lint(src, "src/repro/runtime/example.py")
        assert codes(diags) == ["RPR103"]
        assert "never closed" in diags[0].message

    def test_with_statement_passes(self):
        src = (
            "def tight(model):\n"
            "    with open_session(model) as session:\n"
            "        return session.solve()\n"
        )
        assert lint(src, "src/repro/runtime/example.py") == []

    def test_ownership_escape_via_return_passes(self):
        src = (
            "def factory(model):\n"
            "    session = open_session(model)\n"
            "    return session\n"
        )
        assert lint(src, "src/repro/runtime/example.py") == []

    def test_ownership_escape_via_attribute_store_passes(self):
        src = (
            "def attach(self, model):\n"
            "    session = open_session(model)\n"
            "    self.session = session\n"
        )
        assert lint(src, "src/repro/runtime/example.py") == []

    def test_close_on_every_branch_passes(self):
        src = (
            "def forked(model, flag):\n"
            "    session = open_session(model)\n"
            "    if flag:\n"
            "        session.close()\n"
            "    else:\n"
            "        session.shutdown()\n"
            "    return flag\n"
        )
        assert lint(src, "src/repro/runtime/example.py") == []

    def test_pool_types_are_tracked_too(self):
        src = (
            "def fan_out(jobs):\n"
            "    pool = ProcessPoolExecutor(max_workers=2)\n"
            "    return list(pool.map(len, jobs))\n"
        )
        assert "RPR103" in codes(lint(src, "src/repro/runtime/example.py"))


class TestCapabilityGating:
    def test_fix_relu_phase_needs_gate(self):
        src = (
            "def pin(session):\n"
            "    session.fix_relu_phase(0, 1, 'active')\n"
        )
        assert "RPR104" in codes(lint(src, "src/repro/certify/example.py"))

    def test_gate_on_one_branch_does_not_dominate(self):
        src = (
            "def go(model, flag):\n"
            "    if flag:\n"
            "        backend = find_backend(required)\n"
            "    with model.open_session(warm_start=True) as session:\n"
            "        return session.solve()\n"
        )
        assert "RPR104" in codes(lint(src, "src/repro/certify/example.py"))

    def test_milp_internals_exempt(self):
        src = (
            "def go(model):\n"
            "    with model.open_session(warm_start=True) as session:\n"
            "        return session.solve()\n"
        )
        assert lint(src, "src/repro/milp/example.py") == []


class TestWorkerPurity:
    def test_global_write(self):
        src = (
            "COUNT = 0\n"
            "\n"
            "def worker(x):\n"
            "    global COUNT\n"
            "    COUNT = COUNT + 1\n"
            "    return x\n"
            "\n"
            "def run(pool, xs):\n"
            "    return list(pool.map(worker, xs))\n"
        )
        assert "RPR105" in codes(lint(src, "src/repro/runtime/example.py"))

    def test_transitive_impurity_through_callee(self):
        src = (
            "CACHE = {}\n"
            "\n"
            "def helper(x):\n"
            "    CACHE[x] = True\n"
            "\n"
            "def worker(x):\n"
            "    helper(x)\n"
            "    return x\n"
            "\n"
            "def run(pool, xs):\n"
            "    return list(pool.map(worker, xs))\n"
        )
        assert "RPR105" in codes(lint(src, "src/repro/runtime/example.py"))

    def test_local_shadowing_is_pure(self):
        src = (
            "CACHE = {}\n"
            "\n"
            "def worker(x):\n"
            "    CACHE = {}\n"
            "    CACHE[x] = True\n"
            "    return CACHE\n"
            "\n"
            "def run(pool, xs):\n"
            "    return list(pool.map(worker, xs))\n"
        )
        assert lint(src, "src/repro/runtime/example.py") == []

    def test_unresolved_worker_is_skipped(self):
        src = (
            "def run(pool, fns, xs):\n"
            "    return list(pool.map(fns[0], xs))\n"
        )
        assert lint(src, "src/repro/runtime/example.py") == []


class TestFlowWaivers:
    WAIVED = (
        "def run(session, time_limit=None):\n"
        "    # repro-lint: ignore[RPR102] — budget enforced by the caller's deadline loop\n"
        "    return session.solve()\n"
    )

    def test_flow_waiver_round_trip(self):
        assert lint(self.WAIVED) == []

    def test_removing_the_waiver_reintroduces_the_diagnostic(self):
        stripped = "\n".join(
            line for line in self.WAIVED.splitlines() if "repro-lint" not in line
        )
        assert "RPR102" in codes(lint(stripped))

    def test_stale_flow_waiver_is_an_error(self):
        src = (
            "def run(session, time_limit=None):\n"
            "    # repro-lint: ignore[RPR102] — nothing to suppress\n"
            "    return session.solve(time_limit=time_limit)\n"
        )
        diags = lint(src)
        assert codes(diags) == [ENGINE_CODE]
        assert "stale" in diags[0].message


class TestProfiles:
    def test_flow_rules_on_for_tests(self):
        code, _relpath, bad, _good = FLOW_FIXTURES[1]  # RPR102
        relpath = "tests/certify/test_example.py"
        assert code in codes(lint(bad, relpath))

    def test_per_node_exemptions_for_tests(self):
        src = "def f(x):\n    return x == 0.0\n"
        relpath = "tests/certify/test_example.py"
        assert lint_source(src, relpath, relpath) == []
        assert "RPR001" in codes(lint_source(src, "src/repro/a.py", "src/repro/a.py"))

    def test_diagnostics_carry_enclosing_symbol(self):
        src = (
            "class Runner:\n"
            "    def run(self, session, time_limit=None):\n"
            "        return session.solve()\n"
        )
        diags = lint(src)
        assert [d.symbol for d in diags] == ["Runner.run"]
