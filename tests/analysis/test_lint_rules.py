"""Lint pack: must-flag / must-pass fixtures per rule, waivers, meta-lint."""

import subprocess
import sys

import pytest

from tools.analysis import (
    ENGINE_CODE,
    FLOW_CODES,
    KNOWN_CODES,
    NODE_CODES,
    lint_paths,
    lint_source,
)
from tools.analysis.rules import ALL_RULES


def codes(diagnostics):
    return [d.code for d in diagnostics]


def lint(source, relpath="src/repro/example.py"):
    return lint_source(source, relpath, relpath)


# One (code, relpath, must_flag, must_pass) fixture pair per rule.
RULE_FIXTURES = [
    (
        "RPR001",
        "src/repro/certify/example.py",
        "def f(x):\n    return x == 0.0\n",
        "from repro.tol import near_zero\n\ndef f(x):\n    return near_zero(x)\n",
    ),
    (
        "RPR002",
        "src/repro/bounds/example.py",
        "class Box:\n"
        "    def __init__(self, lo):\n"
        "        self.lo = lo\n",
        "import numpy as np\n\n"
        "class Box:\n"
        "    def __init__(self, lo):\n"
        "        self.lo = np.array(lo, copy=True)\n",
    ),
    (
        "RPR003",
        "src/repro/certify/example.py",
        "from repro.milp.scipy_backend import ScipyBackend\n",
        "from repro.milp.backend import get_backend\n\nbackend = get_backend('scipy')\n",
    ),
    (
        "RPR004",
        "src/repro/runtime/example.py",
        "import time\n\ndeadline = time.time() + 5\n",
        "import time\n\nstart = time.perf_counter()\n",
    ),
    (
        "RPR005",
        "src/repro/runtime/example.py",
        "try:\n    risky()\nexcept Exception:\n    pass\n",
        "try:\n    risky()\nexcept ValueError:\n    pass\n",
    ),
    (
        "RPR006",
        "src/repro/bounds/example.py",
        "import numpy as np\n\nlo = np.zeros(3, dtype=np.float32)\n",
        "import numpy as np\n\nlo = np.zeros(3, dtype=float)\n",
    ),
]


class TestRuleFixtures:
    @pytest.mark.parametrize(
        "code,relpath,bad,good", RULE_FIXTURES, ids=[f[0] for f in RULE_FIXTURES]
    )
    def test_must_flag(self, code, relpath, bad, good):
        assert code in codes(lint(bad, relpath))

    @pytest.mark.parametrize(
        "code,relpath,bad,good", RULE_FIXTURES, ids=[f[0] for f in RULE_FIXTURES]
    )
    def test_must_pass(self, code, relpath, bad, good):
        assert lint(good, relpath) == []

    def test_every_rule_has_a_fixture_pair(self):
        assert {f[0] for f in RULE_FIXTURES} == {r.CODE for r in ALL_RULES}

    def test_rule_codes_unique_and_known(self):
        rule_codes = [r.CODE for r in ALL_RULES]
        assert len(rule_codes) == len(set(rule_codes))
        assert set(rule_codes) == set(NODE_CODES)
        assert NODE_CODES | FLOW_CODES | {ENGINE_CODE} == KNOWN_CODES
        assert not NODE_CODES & FLOW_CODES


class TestRuleScoping:
    def test_rpr001_constraint_builder_exempt(self):
        src = "model.add_constr(x == 0.0)\nmodel.add_constraint(y == 1.0)\n"
        assert lint(src) == []

    def test_rpr001_signed_literal(self):
        assert "RPR001" in codes(lint("ok = x != -0.0\n"))

    def test_rpr002_scalar_annotated_param_exempt(self):
        src = (
            "class ConstraintBlock:\n"
            "    def __init__(self, name: str):\n"
            "        self.name = name\n"
        )
        assert lint(src) == []

    def test_rpr002_dataclass_without_post_init(self):
        src = (
            "from dataclasses import dataclass\n\n"
            "@dataclass\n"
            "class Box:\n"
            "    lo: object\n"
        )
        assert "RPR002" in codes(lint(src, "src/repro/bounds/example.py"))

    @pytest.mark.parametrize("cls", ["BatchedBox", "BatchedLayerBounds"])
    def test_rpr002_covers_batched_containers(self, cls):
        # The batched (Q, n) stacks alias caller arrays just as silently
        # as the scalar containers the rule was written for.
        src = (
            f"class {cls}:\n"
            "    def __init__(self, lo):\n"
            "        self.lo = lo\n"
        )
        assert "RPR002" in codes(lint(src, "src/repro/bounds/example.py"))

    def test_rpr003_allowed_inside_milp(self):
        src = "from repro.milp.scipy_backend import ScipyBackend\n"
        assert lint(src, "src/repro/milp/backend.py") == []

    def test_rpr004_from_import(self):
        assert "RPR004" in codes(lint("from time import time\n"))

    def test_rpr005_tuple_with_broad_member(self):
        src = "try:\n    risky()\nexcept (ValueError, Exception):\n    pass\n"
        assert "RPR005" in codes(lint(src))

    def test_rpr006_out_of_scope_path_exempt(self):
        src = "import numpy as np\n\nlo = np.float32(1.0)\n"
        assert lint(src, "src/repro/runtime/example.py") == []

    def test_rpr006_astype(self):
        src = "x = y.astype('float32')\n"
        assert "RPR006" in codes(lint(src, "src/repro/encoding/example.py"))


WAIVED = (
    "def f(x):\n"
    "    # repro-lint: ignore[RPR001] — structural exact-zero check, audited\n"
    "    return x == 0.0\n"
)


class TestWaivers:
    def test_round_trip_standalone_comment(self):
        assert lint(WAIVED) == []

    def test_round_trip_trailing_comment(self):
        src = (
            "def f(x):\n"
            "    return x == 0.0  # repro-lint: ignore[RPR001] — audited\n"
        )
        assert lint(src) == []

    def test_removing_the_waiver_reintroduces_the_diagnostic(self):
        # The acceptance property: a waiver-less hit makes lint non-zero.
        stripped = "\n".join(
            line for line in WAIVED.splitlines() if "repro-lint" not in line
        )
        assert "RPR001" in codes(lint(stripped))

    def test_waiver_without_reason_is_an_error(self):
        src = (
            "def f(x):\n"
            "    # repro-lint: ignore[RPR001]\n"
            "    return x == 0.0\n"
        )
        diags = lint(src)
        assert ENGINE_CODE in codes(diags)
        assert any("reason" in d.message for d in diags)

    def test_stale_waiver_is_an_error(self):
        src = "# repro-lint: ignore[RPR001] — nothing here to suppress\nx = 1\n"
        diags = lint(src)
        assert codes(diags) == [ENGINE_CODE]
        assert "stale" in diags[0].message

    def test_unknown_code_is_an_error(self):
        src = (
            "def f(x):\n"
            "    # repro-lint: ignore[RPR999] — no such rule\n"
            "    return x == 0.0\n"
        )
        diags = lint(src)
        assert ENGINE_CODE in codes(diags)
        assert any("unknown" in d.message for d in diags)

    def test_waiver_only_covers_its_own_line(self):
        src = (
            "def f(x):\n"
            "    # repro-lint: ignore[RPR001] — covers next line only\n"
            "    a = x == 0.0\n"
            "    b = x == 1.0\n"
            "    return a or b\n"
        )
        diags = lint(src)
        assert codes(diags) == ["RPR001"]
        assert diags[0].line == 4

    def test_docstring_mention_is_not_a_waiver(self):
        src = '"""Docs: use `# repro-lint: ignore[RPR001] — why` to waive."""\n'
        assert lint(src) == []

    def test_multi_code_waiver(self):
        src = (
            "import numpy as np\n"
            "# repro-lint: ignore[RPR001, RPR006] — fixture exercising both\n"
            "x = np.float32(1.0) == 0.0\n"
        )
        assert lint(src, "src/repro/bounds/example.py") == []


class TestSatelliteRegressions:
    """Reverting any satellite fix must make the lint exit non-zero."""

    def test_expr_waiver_is_load_bearing(self):
        with open("src/repro/milp/expr.py", encoding="utf-8") as handle:
            source = handle.read()
        reverted = "\n".join(
            line
            for line in source.splitlines()
            if "repro-lint: ignore[RPR001]" not in line
        )
        relpath = "src/repro/milp/expr.py"
        assert "RPR001" in codes(lint_source(reverted, relpath, relpath))

    def test_layerbounds_copy_fix_is_load_bearing(self):
        with open("src/repro/bounds/propagator.py", encoding="utf-8") as handle:
            source = handle.read()
        # Reverting the RPR002 satellite fix = deleting __post_init__.
        reverted = source.replace("def __post_init__", "def _disabled_post_init")
        relpath = "src/repro/bounds/propagator.py"
        assert "RPR002" in codes(lint_source(reverted, relpath, relpath))

    def test_batched_copy_guard_is_load_bearing(self):
        # Same revert probe for the batched containers: deleting their
        # defensive-copy __post_init__ must trip RPR002.
        with open("src/repro/bounds/batched.py", encoding="utf-8") as handle:
            source = handle.read()
        reverted = source.replace("def __post_init__", "def _disabled_post_init")
        relpath = "src/repro/bounds/batched.py"
        assert "RPR002" in codes(lint_source(reverted, relpath, relpath))

    def test_registry_fix_is_load_bearing(self):
        # The pre-fix import shape of tests/milp/test_backend_registry.py.
        # Test paths now carry the relaxed profile (RPR003 exempt there),
        # so the property is asserted on a src path instead.
        src = "from repro.milp import scipy_backend\n"
        relpath = "src/repro/certify/example.py"
        assert "RPR003" in codes(lint_source(src, relpath, relpath))
        # ... and the relaxed test profile really is relaxed.
        test_relpath = "tests/milp/test_backend_registry.py"
        assert lint_source(src, test_relpath, test_relpath) == []

    def test_batch_waiver_is_load_bearing(self):
        with open("src/repro/runtime/batch.py", encoding="utf-8") as handle:
            source = handle.read()
        reverted = "\n".join(
            line
            for line in source.splitlines()
            if "repro-lint: ignore[RPR005]" not in line
        )
        relpath = "src/repro/runtime/batch.py"
        assert "RPR005" in codes(lint_source(reverted, relpath, relpath))


class TestMetaLint:
    def test_src_and_benchmarks_are_clean(self):
        # The CI gate, in-process: the shipped tree lints clean, and (by
        # the stale-waiver rule) every committed waiver suppresses at
        # least one diagnostic.
        assert lint_paths(["src", "benchmarks"]) == []

    def test_cli_exit_codes(self, tmp_path):
        clean = subprocess.run(
            [sys.executable, "-m", "tools.analysis", "src", "benchmarks"],
            capture_output=True, text=True,
        )
        assert clean.returncode == 0, clean.stdout + clean.stderr
        bad = tmp_path / "bad.py"
        bad.write_text("x = 1.0 == y\n")
        dirty = subprocess.run(
            [sys.executable, "-m", "tools.analysis", str(bad)],
            capture_output=True, text=True,
        )
        assert dirty.returncode == 1
        assert "RPR001" in dirty.stdout

    def test_cli_list_rules(self):
        result = subprocess.run(
            [sys.executable, "-m", "tools.analysis", "--list-rules"],
            capture_output=True, text=True,
        )
        assert result.returncode == 0
        for rule in ALL_RULES:
            assert rule.CODE in result.stdout

    def test_syntax_error_reported_not_raised(self):
        diags = lint("def broken(:\n")
        assert codes(diags) == [ENGINE_CODE]
        assert "parse" in diags[0].message
