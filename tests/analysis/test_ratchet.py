"""Strict-typing ratchet: no-shrink gate + annotation completeness."""

import subprocess
import sys

import pytest

from tools.analysis import ratchet


class TestNoShrink:
    def test_committed_config_contains_the_baseline(self):
        assert ratchet.check_no_shrink() == []

    def test_baseline_entries_are_present_verbatim(self):
        modules = set(ratchet.load_modules())
        for entry in sorted(ratchet.BASELINE):
            assert entry in modules

    def test_shrunk_config_is_rejected(self, tmp_path):
        kept = [m for m in ratchet.load_modules() if m != "repro/milp"]
        cfg = tmp_path / "ratchet.cfg"
        cfg.write_text("\n".join(kept) + "\n")
        missing = ratchet.check_no_shrink(str(cfg))
        assert missing == ["repro/milp"]
        problems = ratchet.run(config_path=str(cfg))
        assert any("shrank" in p.message for p in problems)

    def test_config_parsing_skips_comments_and_blanks(self, tmp_path):
        cfg = tmp_path / "ratchet.cfg"
        cfg.write_text("# comment\n\nrepro/milp/   # trailing\nrepro/bounds\n")
        assert ratchet.load_modules(str(cfg)) == ["repro/milp", "repro/bounds"]


class TestAnnotations:
    def test_ratcheted_tree_is_fully_annotated(self):
        assert ratchet.check_annotations() == []

    def test_unannotated_def_is_flagged(self, tmp_path):
        pkg = tmp_path / "repro" / "milp"
        pkg.mkdir(parents=True)
        (pkg / "mod.py").write_text(
            "from __future__ import annotations\n\ndef f(x):\n    return x\n"
        )
        cfg = tmp_path / "ratchet.cfg"
        cfg.write_text("repro/milp\n")
        problems = ratchet.check_annotations(str(tmp_path), str(cfg))
        assert len(problems) == 1
        assert "unannotated x, return" in problems[0].message

    def test_missing_future_import_is_flagged(self, tmp_path):
        pkg = tmp_path / "repro" / "milp"
        pkg.mkdir(parents=True)
        (pkg / "mod.py").write_text("def f(x: int) -> int:\n    return x\n")
        cfg = tmp_path / "ratchet.cfg"
        cfg.write_text("repro/milp\n")
        problems = ratchet.check_annotations(str(tmp_path), str(cfg))
        assert any("__future__" in p.message for p in problems)

    def test_missing_entry_path_raises(self, tmp_path):
        cfg = tmp_path / "ratchet.cfg"
        cfg.write_text("repro/no_such_module\n")
        with pytest.raises(FileNotFoundError):
            ratchet.check_annotations("src", str(cfg))


def test_cli_ratchet_mode_green():
    result = subprocess.run(
        [sys.executable, "-m", "tools.analysis", "--ratchet"],
        capture_output=True, text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "ratchet: ok" in result.stdout
