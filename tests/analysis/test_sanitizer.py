"""REPRO_SANITIZE contracts: per-contract violation tests + hook wiring."""

import numpy as np
import pytest

from repro import _sanitize
from repro._sanitize import (
    SanitizerError,
    check_basis,
    check_containment,
    check_finite,
    check_tiling,
    sanitizing,
)


class TestSwitch:
    def test_off_by_default_in_tests(self):
        # The tier-1 suite runs without REPRO_SANITIZE; the sanitized CI
        # step flips it.  Either way `sanitizing` must restore the state.
        before = _sanitize.ENABLED
        with sanitizing(True):
            assert _sanitize.ENABLED
        with sanitizing(False):
            assert not _sanitize.ENABLED
        assert _sanitize.ENABLED == before

    def test_restores_on_exception(self):
        before = _sanitize.ENABLED
        with pytest.raises(RuntimeError):
            with sanitizing(not before):
                raise RuntimeError("boom")
        assert _sanitize.ENABLED == before

    def test_error_is_assertion_subclass(self):
        assert issubclass(SanitizerError, AssertionError)


class TestContainment:
    def test_contained_passes(self):
        check_containment(
            np.array([0.1]), np.array([0.9]),
            np.array([0.0]), np.array([1.0]), "ok",
        )

    def test_escape_below_fails(self):
        with pytest.raises(SanitizerError, match="containment"):
            check_containment(
                np.array([-0.5]), np.array([0.9]),
                np.array([0.0]), np.array([1.0]), "below",
            )

    def test_escape_above_fails(self):
        with pytest.raises(SanitizerError, match="escapes"):
            check_containment(
                np.array([0.1]), np.array([2.0]),
                np.array([0.0]), np.array([1.0]), "above",
            )

    def test_tolerance_absorbs_roundoff(self):
        check_containment(
            np.array([-1e-12]), np.array([1.0 + 1e-12]),
            np.array([0.0]), np.array([1.0]), "jitter",
        )


class TestFinite:
    def test_finite_passes(self):
        check_finite("ok", c=np.ones(3), rhs=np.zeros(2), skipped=None)

    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
    def test_nonfinite_fails(self, bad):
        with pytest.raises(SanitizerError, match="finite"):
            check_finite("bad", c=np.array([1.0, bad]))

    def test_named_array_reported(self):
        with pytest.raises(SanitizerError, match="b_ub"):
            check_finite("bad", c=np.ones(2), b_ub=np.array([np.nan]))


class TestTiling:
    ROOT = (np.zeros(2), np.ones(2))

    def test_exact_tiling_passes(self):
        halves = [
            (np.array([0.0, 0.0]), np.array([0.5, 1.0])),
            (np.array([0.5, 0.0]), np.array([1.0, 1.0])),
        ]
        check_tiling(*self.ROOT, halves, "halves")

    def test_gap_fails(self):
        with pytest.raises(SanitizerError, match="cover"):
            check_tiling(
                *self.ROOT,
                [(np.array([0.0, 0.0]), np.array([0.5, 1.0]))],
                "gapped",
            )

    def test_escape_fails(self):
        with pytest.raises(SanitizerError, match="escapes"):
            check_tiling(
                *self.ROOT,
                [(np.array([0.0, 0.0]), np.array([1.5, 1.0]))],
                "escaped",
            )

    def test_empty_fails(self):
        with pytest.raises(SanitizerError, match="no terminal boxes"):
            check_tiling(*self.ROOT, [], "empty")

    def test_degenerate_root_dimension(self):
        root_lo, root_hi = np.array([0.0, 0.5]), np.array([1.0, 0.5])
        halves = [
            (np.array([0.0, 0.5]), np.array([0.5, 0.5])),
            (np.array([0.5, 0.5]), np.array([1.0, 0.5])),
        ]
        check_tiling(root_lo, root_hi, halves, "degenerate")


class TestBasis:
    def test_valid_basis_passes(self):
        check_basis([0, 2, 5], num_rows=3, num_cols=6, what="ok")
        check_basis(None, num_rows=3, num_cols=6, what="none is fine")

    def test_wrong_length_fails(self):
        with pytest.raises(SanitizerError, match="entries"):
            check_basis([0, 1], num_rows=3, num_cols=6, what="short")

    def test_out_of_range_fails(self):
        with pytest.raises(SanitizerError, match="column range"):
            check_basis([0, 1, 6], num_rows=3, num_cols=6, what="oob")

    def test_duplicate_fails(self):
        with pytest.raises(SanitizerError, match="duplicate"):
            check_basis([0, 1, 1], num_rows=3, num_cols=6, what="dup")


# -- hook-site integration ----------------------------------------------------


def small_chain(seed=0, depth=3):
    from repro.nn.affine import AffineLayer

    rng = np.random.default_rng(seed)
    dims = [3] + [4] * (depth - 1) + [2]
    return [
        AffineLayer(
            rng.standard_normal((dims[i + 1], dims[i])) / np.sqrt(dims[i]),
            0.2 * rng.standard_normal(dims[i + 1]),
            relu=i < depth - 1,
        )
        for i in range(depth)
    ]


class TestHookSites:
    def test_symbolic_containment_hook_passes_on_sound_engine(self):
        from repro.bounds import Box, get_propagator

        layers = small_chain()
        with sanitizing():
            bounds = get_propagator("symbolic").propagate(
                layers, Box.uniform(3, 0.0, 1.0), 0.05
            )
        assert bounds.method == "symbolic"

    def test_standard_form_finite_hook_catches_poisoned_block(self):
        from repro.milp import Model

        model = Model("poisoned")
        x = model.add_var(lb=0.0, ub=1.0)
        y = model.add_var(lb=0.0, ub=1.0)
        block = model.add_linear_rows(
            np.array([[1.0, 2.0]]), "<=", np.array([1.0])
        )
        # Simulate an encoding bug: corrupt the block *after* ingestion
        # validation (the sanitizer is the last line of defense).
        block.data[0] = np.inf
        model.set_objective(x + y, "min")
        with sanitizing():
            with pytest.raises(SanitizerError, match="finite"):
                model.to_standard_form()
        # Off-mode: no check, the poisoned export goes through.
        with sanitizing(False):
            model.to_standard_form()

    def test_split_tiling_hook_passes_on_real_run(self):
        from repro.bounds import Box
        from repro.certify import SplitConfig, certify_local_split

        layers = small_chain(seed=3)
        with sanitizing():
            cert = certify_local_split(
                layers,
                np.array([0.4, 0.6, 0.5]),
                0.05,
                1e6,
                domain=Box.uniform(3, 0.0, 1.0),
                config=SplitConfig(max_depth=2),
            )
        assert cert.verdict == "certified"

    def test_warm_session_basis_hook_catches_corruption(self):
        from repro.milp import Model, open_session

        model = Model("warm")
        x = model.add_var(lb=0.0, ub=2.0)
        y = model.add_var(lb=0.0, ub=2.0)
        model.add_constr(x + y <= 2.0)
        model.set_objective(x + y, "max")
        session = open_session(
            model, backend="python:simplex", warm_start=True
        )
        assert session.solve().is_optimal  # seeds a basis
        assert session._basis is not None
        session._basis = list(session._basis) + [0]  # corrupt: wrong length
        with sanitizing():
            with pytest.raises(SanitizerError, match="warm-basis"):
                session.solve()

    def test_warm_session_passes_clean_under_sanitizer(self):
        from repro.milp import Model, open_session

        model = Model("warm-ok")
        x = model.add_var(lb=0.0, ub=2.0)
        y = model.add_var(lb=0.0, ub=2.0)
        model.add_constr(x + y <= 2.0)
        model.set_objective(x + y, "max")
        with sanitizing():
            with open_session(
                model, backend="python:simplex", warm_start=True
            ) as session:
                first = session.solve()
                session.set_var_bounds([x, y], 0.0, 0.5)
                second = session.solve()
        assert first.is_optimal and second.is_optimal
        assert second.objective == pytest.approx(1.0)
