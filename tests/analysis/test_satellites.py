"""Satellite fixes: repro.tol, Deadline, defensive copies, failure detail."""

import math
import time

import numpy as np
import pytest

from repro.tol import ATOL, close, near_zero
from repro.utils import Deadline


class TestNearZero:
    def test_scalar(self):
        assert near_zero(0.0)
        assert near_zero(ATOL / 2)
        assert not near_zero(1e-3)
        assert isinstance(near_zero(0.0), bool)

    def test_array(self):
        result = near_zero(np.array([0.0, 1e-12, 1.0]))
        assert result.tolist() == [True, True, False]

    def test_custom_atol(self):
        assert near_zero(0.5, atol=1.0)
        assert not near_zero(0.5, atol=0.1)

    def test_nan_and_inf_are_not_zero(self):
        assert not near_zero(float("nan"))
        assert not near_zero(float("inf"))


class TestClose:
    def test_symmetric_relative_scale(self):
        big = 1e12
        assert close(big, big * (1 + 1e-12))
        assert close(big * (1 + 1e-12), big)  # unlike a one-sided isclose
        assert not close(big, big * (1 + 1e-6))

    def test_infinities(self):
        assert close(math.inf, math.inf)
        assert close(-math.inf, -math.inf)
        assert not close(math.inf, -math.inf)
        assert not close(math.inf, 1e300)

    def test_nan_is_never_close(self):
        assert not close(math.nan, math.nan)
        assert not close(math.nan, 0.0)

    def test_array(self):
        result = close(
            np.array([1.0, math.inf, math.nan]),
            np.array([1.0 + 1e-12, math.inf, math.nan]),
        )
        assert result.tolist() == [True, True, False]


class TestDeadline:
    def test_unlimited(self):
        deadline = Deadline(None)
        assert deadline.remaining() is None
        assert not deadline.expired()

    def test_counts_down_monotonically(self):
        deadline = Deadline(30.0)
        first = deadline.remaining()
        time.sleep(0.01)
        second = deadline.remaining()
        assert 0 < second < first <= 30.0
        assert not deadline.expired()

    def test_expiry(self):
        deadline = Deadline(0.0)
        assert deadline.expired()
        assert deadline.remaining() == 0.0  # clamped, never negative

    def test_at_classmethod(self):
        deadline = Deadline(5.0)
        clone = Deadline.at(deadline.expiry)
        assert clone.expiry == deadline.expiry
        assert Deadline(None).expiry is None


class TestDefensiveCopies:
    def test_box_does_not_alias_caller_arrays(self):
        from repro.bounds import Box

        lo, hi = np.zeros(3), np.ones(3)
        box = Box(lo, hi)
        lo[0] = -5.0
        hi[0] = 5.0
        assert box.lo[0] == 0.0 and box.hi[0] == 1.0

    def test_layerbounds_does_not_alias_caller_lists(self):
        from repro.bounds import Box
        from repro.bounds.propagator import LayerBounds

        y = [Box(np.zeros(2), np.ones(2))]
        x = [Box(np.zeros(2), np.ones(2))]
        bounds = LayerBounds(input_box=Box(np.zeros(1), np.ones(1)), y=y, x=x)
        y.append(Box(np.zeros(2), np.ones(2)))
        x.clear()
        assert bounds.num_layers == 1
        assert len(bounds.x) == 1

    def test_constraint_block_does_not_alias_caller_arrays(self):
        from repro.milp.model import ConstraintBlock

        data = np.array([1.0, 2.0])
        row = np.array([0, 0])
        col = np.array([0, 1])
        is_eq = np.array([False])
        rhs = np.array([3.0])
        block = ConstraintBlock(data, row, col, is_eq, rhs, "b")
        data[0] = 99.0
        rhs[0] = -1.0
        assert block.data[0] == 1.0
        assert block.rhs[0] == 3.0

    def test_constraint_block_copy_is_independent(self):
        from repro.milp.model import ConstraintBlock

        block = ConstraintBlock(
            np.array([1.0]), np.array([0]), np.array([0]),
            np.array([True]), np.array([2.0]), "b",
        )
        clone = block.copy()
        clone.data[0] = -1.0
        clone.rhs[0] = 0.0
        assert block.data[0] == 1.0 and block.rhs[0] == 2.0

    def test_constraint_block_validates_triplet_shapes(self):
        from repro.milp.model import ConstraintBlock

        with pytest.raises(ValueError):
            ConstraintBlock(
                np.array([1.0, 2.0]), np.array([0]), np.array([0, 1]),
                np.array([False]), np.array([3.0]), "b",
            )
        with pytest.raises(ValueError):
            ConstraintBlock(
                np.array([1.0]), np.array([0]), np.array([0]),
                np.array([False, True]), np.array([3.0]), "b",
            )


class TestBatchFailureDetail:
    def make_failing_query(self):
        from repro.nn.affine import AffineLayer
        from repro.runtime import CertificationQuery

        layers = [AffineLayer(np.ones((2, 3)), np.zeros(2), relu=False)]
        # Center dimension mismatch: blows up inside the worker.
        return CertificationQuery(
            kind="local-exact", layers=layers, delta=0.1,
            center=np.zeros(5), tag="broken",
        )

    def test_detail_captures_type_message_traceback(self):
        from repro.runtime.batch import _run_one

        result = _run_one((0, self.make_failing_query()))
        assert not result.ok
        assert result.certificate is None
        assert result.detail is not None
        assert set(result.detail) == {"error_type", "error_message", "traceback"}
        # The qualified class name of what the broad handler swallowed.
        assert "." in result.detail["error_type"]
        assert result.detail["traceback"] == result.error
        assert "Traceback" in result.detail["traceback"]

    def test_detail_none_on_success(self):
        from repro.bounds import Box
        from repro.nn.affine import AffineLayer
        from repro.runtime import CertificationQuery
        from repro.runtime.batch import _run_one

        layers = [AffineLayer(np.ones((2, 3)), np.zeros(2), relu=False)]
        query = CertificationQuery(
            kind="local-exact", layers=layers, delta=0.05,
            center=np.full(3, 0.5), domain=Box.uniform(3, 0.0, 1.0),
        )
        result = _run_one((0, query))
        assert result.ok, result.error
        assert result.detail is None
