"""FGSM / PGD attack behaviour."""

import numpy as np
import pytest

from repro.attack import fgsm, pgd, variation_pgd
from repro.nn import Dense, Network


@pytest.fixture()
def net():
    rng = np.random.default_rng(0)
    return Network((4,), [Dense(4, 8, relu=True, rng=rng), Dense(8, 1, rng=rng)])


@pytest.fixture()
def rng():
    return np.random.default_rng(1)


class TestFgsm:
    def test_stays_in_ball(self, net, rng):
        x = rng.uniform(0, 1, 4)
        adv = fgsm(net, x, np.ones(1), epsilon=0.1)
        assert np.all(np.abs(adv - x) <= 0.1 + 1e-12)

    def test_clipping(self, net, rng):
        x = rng.uniform(0, 0.05, 4)
        adv = fgsm(net, x, np.ones(1), epsilon=0.2, clip_lo=0.0, clip_hi=1.0)
        assert np.all(adv >= 0.0) and np.all(adv <= 1.0)

    def test_increases_output(self, net, rng):
        # On average FGSM(+1) should not decrease the targeted output.
        wins = 0
        for _ in range(20):
            x = rng.uniform(0, 1, 4)
            adv = fgsm(net, x, np.ones(1), epsilon=0.05, sign=+1.0)
            if net.predict(adv)[0] >= net.predict(x)[0] - 1e-9:
                wins += 1
        assert wins >= 15

    def test_sign_flips_direction(self, net, rng):
        x = rng.uniform(0, 1, 4)
        up = fgsm(net, x, np.ones(1), epsilon=0.05, sign=+1.0)
        down = fgsm(net, x, np.ones(1), epsilon=0.05, sign=-1.0)
        assert net.predict(up)[0] >= net.predict(down)[0] - 1e-9


class TestPgd:
    def test_stays_in_ball_and_domain(self, net, rng):
        x = rng.uniform(0, 1, 4)
        adv = pgd(net, x, np.ones(1), epsilon=0.1, steps=10, clip_lo=0.0, clip_hi=1.0, rng=rng)
        assert np.all(np.abs(adv - x) <= 0.1 + 1e-12)
        assert np.all(adv >= 0.0) and np.all(adv <= 1.0)

    def test_beats_or_matches_fgsm_mostly(self, net, rng):
        """Multi-step PGD should usually find at least as good an ascent."""
        better = 0
        for trial in range(15):
            x = rng.uniform(0, 1, 4)
            f = fgsm(net, x, np.ones(1), epsilon=0.1)
            p = pgd(net, x, np.ones(1), epsilon=0.1, steps=25, rng=rng, random_start=False)
            if net.predict(p)[0] >= net.predict(f)[0] - 1e-6:
                better += 1
        assert better >= 10

    def test_zero_steps_is_projection_only(self, net, rng):
        x = rng.uniform(0, 1, 4)
        adv = pgd(net, x, np.ones(1), epsilon=0.1, steps=0, rng=rng, random_start=False)
        assert np.allclose(adv, x)


class TestVariationPgd:
    def test_variation_nonnegative_and_consistent(self, net, rng):
        x = rng.uniform(0, 1, 4)
        adv, var = variation_pgd(net, x, 0, delta=0.1, steps=15, rng=rng)
        assert var >= 0.0
        achieved = abs(net.predict(adv)[0] - net.predict(x)[0])
        assert achieved == pytest.approx(var, abs=1e-9)

    def test_ball_constraint(self, net, rng):
        x = rng.uniform(0, 1, 4)
        adv, _ = variation_pgd(net, x, 0, delta=0.05, steps=15, rng=rng)
        assert np.all(np.abs(adv - x) <= 0.05 + 1e-12)

    def test_restarts_do_not_hurt(self, net, rng):
        x = rng.uniform(0, 1, 4)
        _, single = variation_pgd(net, x, 0, delta=0.1, steps=15, rng=np.random.default_rng(3))
        _, multi = variation_pgd(
            net, x, 0, delta=0.1, steps=15, rng=np.random.default_rng(3), restarts=3
        )
        assert multi >= single - 1e-6

    def test_larger_delta_finds_larger_variation(self, net, rng):
        x = rng.uniform(0, 1, 4)
        _, small = variation_pgd(net, x, 0, delta=0.01, steps=20, rng=rng)
        _, large = variation_pgd(net, x, 0, delta=0.2, steps=20, rng=rng)
        assert large >= small - 1e-9
