"""Batched propagation: bit-identity with the scalar path (unit + property).

The load-bearing contract of :mod:`repro.bounds.batched` is not mere
closeness — every row of a batched result must be **bitwise equal** to
running the scalar propagator on that row's box.  These tests pin that
contract for every registered engine, for the loop fallback third-party
propagators get, and for the ``REPRO_SANITIZE=1`` batch-row agreement
check that guards native batched implementations at runtime.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import _sanitize
from repro.bounds import (
    BatchedBox,
    BatchedLayerBounds,
    Box,
    as_batched_box,
    as_batched_delta,
    available_propagators,
    get_propagator,
    propagate_many,
)
from repro.nn.affine import AffineLayer


def random_chain(rng, depth=3, width=5, in_dim=4, out_dim=2):
    dims = [in_dim] + [width] * (depth - 1) + [out_dim]
    return [
        AffineLayer(
            rng.standard_normal((dims[i + 1], dims[i])),
            0.3 * rng.standard_normal(dims[i + 1]),
            relu=i < depth - 1,
        )
        for i in range(depth)
    ]


def random_stack(rng, queries, dim):
    center = rng.standard_normal((queries, dim))
    radius = np.abs(rng.standard_normal((queries, dim))) + 0.05
    return BatchedBox(center - radius, center + radius)


def assert_rows_bit_identical(batched, scalar_rows):
    """Every lo/hi array of every layer must be bitwise equal per row."""
    assert batched.num_layers == len(scalar_rows[0].y)
    for q, scalar in enumerate(scalar_rows):
        row = batched.row(q)
        for t in range(batched.num_layers):
            np.testing.assert_array_equal(row.y[t].lo, scalar.y[t].lo)
            np.testing.assert_array_equal(row.y[t].hi, scalar.y[t].hi)
            np.testing.assert_array_equal(row.x[t].lo, scalar.x[t].lo)
            np.testing.assert_array_equal(row.x[t].hi, scalar.x[t].hi)
        if scalar.dy is not None:
            assert row.dy is not None and row.dx is not None
            for t in range(batched.num_layers):
                np.testing.assert_array_equal(row.dy[t].lo, scalar.dy[t].lo)
                np.testing.assert_array_equal(row.dy[t].hi, scalar.dy[t].hi)
                np.testing.assert_array_equal(row.dx[t].lo, scalar.dx[t].lo)
                np.testing.assert_array_equal(row.dx[t].hi, scalar.dx[t].hi)


class TestBatchedBox:
    def test_ctor_copies_caller_arrays(self):
        lo = np.zeros((2, 3))
        hi = np.ones((2, 3))
        stack = BatchedBox(lo, hi)
        lo[0, 0] = -100.0
        hi[0, 0] = 100.0
        assert stack.lo[0, 0] == 0.0
        assert stack.hi[0, 0] == 1.0

    def test_ctor_rejects_inverted_rows(self):
        lo = np.zeros((3, 2))
        hi = np.ones((3, 2))
        hi[1, 0] = -1.0
        with pytest.raises(ValueError, match=r"\[1\]"):
            BatchedBox(lo, hi)

    def test_row_matches_from_boxes(self):
        rng = np.random.default_rng(0)
        boxes = [
            Box(c - r, c + r)
            for c, r in zip(
                rng.standard_normal((4, 3)),
                np.abs(rng.standard_normal((4, 3))) + 0.1,
            )
        ]
        stack = BatchedBox.from_boxes(boxes)
        for q, box in enumerate(boxes):
            row = stack.row(q)
            np.testing.assert_array_equal(row.lo, box.lo)
            np.testing.assert_array_equal(row.hi, box.hi)

    def test_affine_rows_match_scalar(self):
        rng = np.random.default_rng(1)
        stack = random_stack(rng, 6, 4)
        weight = rng.standard_normal((3, 4))
        bias = rng.standard_normal(3)
        out = stack.affine(weight, bias)
        for q in range(6):
            scalar = stack.row(q).affine(weight, bias)
            np.testing.assert_array_equal(out.lo[q], scalar.lo)
            np.testing.assert_array_equal(out.hi[q], scalar.hi)


class TestBatchedLayerBoundsContainer:
    def test_post_init_copies_layer_lists(self):
        rng = np.random.default_rng(2)
        layers = random_chain(rng)
        stack = random_stack(rng, 3, 4)
        bounds = propagate_many("ibp", layers, stack)
        y = list(bounds.y)
        y_list_arg = bounds.y
        y_list_arg.append("sentinel")  # mutating our reference ...
        fresh = propagate_many("ibp", layers, stack)
        assert len(fresh.y) == len(y)  # ... never leaks into new results

    def test_stack_roundtrips_scalar_rows(self):
        rng = np.random.default_rng(3)
        layers = random_chain(rng)
        stack = random_stack(rng, 5, 4)
        scalar_rows = [
            get_propagator("symbolic").propagate(layers, stack.row(q))
            for q in range(5)
        ]
        restacked = BatchedLayerBounds.stack(scalar_rows)
        assert_rows_bit_identical(restacked, scalar_rows)


class TestPropagateManyBitIdentity:
    @pytest.mark.parametrize("name", available_propagators())
    @given(seed=st.integers(0, 2**20), queries=st.integers(1, 7))
    @settings(max_examples=15, deadline=None)
    def test_rows_match_scalar_loop(self, name, seed, queries):
        rng = np.random.default_rng(seed)
        layers = random_chain(rng)
        stack = random_stack(rng, queries, 4)
        # twin-ibp refuses delta-less propagation; exercise all deltas
        # the engine accepts.
        delta_specs = [0.1, rng.uniform(0.01, 0.5, size=queries)]
        if name != "twin-ibp":
            delta_specs.append(None)
        for deltas in delta_specs:
            batched = propagate_many(name, layers, stack, deltas)
            scalar_rows = [
                get_propagator(name).propagate(
                    layers,
                    stack.row(q),
                    None if deltas is None else float(np.ravel(deltas)[0])
                    if np.size(deltas) == 1
                    else float(np.ravel(deltas)[q]),
                )
                for q in range(queries)
            ]
            assert_rows_bit_identical(batched, scalar_rows)
            assert batched.method == scalar_rows[0].method

    def test_box_delta_and_box_list_inputs(self):
        rng = np.random.default_rng(7)
        layers = random_chain(rng)
        boxes = [random_stack(rng, 1, 4).row(0) for _ in range(4)]
        delta_box = Box.uniform(4, -0.05, 0.05)
        batched = propagate_many("symbolic", layers, boxes, delta_box)
        for q, box in enumerate(boxes):
            scalar = get_propagator("symbolic").propagate(layers, box, delta_box)
            assert_rows_bit_identical(
                BatchedLayerBounds.stack([scalar]), [scalar]
            )
            row = batched.row(q)
            for t in range(batched.num_layers):
                np.testing.assert_array_equal(row.y[t].lo, scalar.y[t].lo)
                np.testing.assert_array_equal(row.dy[t].hi, scalar.dy[t].hi)

    def test_fallback_loop_for_unbatched_engine(self):
        class LoopOnly:
            """Third-party engine: scalar propagate only."""

            name = "loop-only-test"

            def propagate(self, layers, box, delta=None):
                return get_propagator("ibp").propagate(layers, box, delta)

        rng = np.random.default_rng(8)
        layers = random_chain(rng)
        stack = random_stack(rng, 4, 4)
        batched = propagate_many(LoopOnly(), layers, stack)
        scalar_rows = [
            get_propagator("ibp").propagate(layers, stack.row(q))
            for q in range(4)
        ]
        assert_rows_bit_identical(batched, scalar_rows)


class TestBatchRowSanitizer:
    def test_native_batched_engines_pass_under_sanitizer(self):
        rng = np.random.default_rng(9)
        layers = random_chain(rng)
        stack = random_stack(rng, 5, 4)
        with _sanitize.sanitizing():
            for name in available_propagators():
                deltas = None if name != "twin-ibp" else 0.1
                propagate_many(name, layers, stack, deltas)

    def test_divergent_native_batch_is_caught(self):
        class Corrupt:
            """Native batched path that silently diverges on one row."""

            name = "corrupt-batch-test"

            def propagate(self, layers, box, delta=None):
                return get_propagator("ibp").propagate(layers, box, delta)

            def propagate_many(self, layers, boxes, deltas=None):
                rows = [
                    self.propagate(layers, boxes.row(q))
                    for q in range(boxes.num_queries)
                ]
                from repro.bounds import BatchedLayerBounds

                result = BatchedLayerBounds.stack(rows)
                result.y[-1].lo[:, 0] -= 0.5  # off-by-a-bit everywhere
                return result

        rng = np.random.default_rng(10)
        layers = random_chain(rng)
        stack = random_stack(rng, 4, 4)
        with _sanitize.sanitizing():
            with pytest.raises(_sanitize.SanitizerError, match="batch-row"):
                propagate_many(Corrupt(), layers, stack)

    def test_coercion_helpers_roundtrip(self):
        rng = np.random.default_rng(11)
        stack = random_stack(rng, 3, 4)
        assert as_batched_box(stack) is stack
        single = as_batched_box(stack.row(0))
        assert single.num_queries == 1
        assert as_batched_delta(None, 3, 4) is None
        per_query = as_batched_delta(np.array([0.1, 0.2, 0.3]), 3, 4)
        assert per_query.num_queries == 3
        np.testing.assert_array_equal(per_query.hi[1], np.full(4, 0.2))
