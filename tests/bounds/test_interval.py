"""Box arithmetic unit tests."""

import numpy as np
import pytest

from repro.bounds import Box


class TestBoxBasics:
    def test_construction(self):
        box = Box(np.array([0.0, -1.0]), np.array([1.0, 1.0]))
        assert box.dim == 2
        assert np.allclose(box.center, [0.5, 0.0])
        assert np.allclose(box.radius, [0.5, 1.0])

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            Box(np.array([1.0]), np.array([0.0]))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            Box(np.zeros(2), np.zeros(3))

    def test_construction_does_not_alias_caller_arrays(self):
        """Regression: float64 input used to be adopted as-is, so the
        tiny-inversion rectification (and any later in-place tightening)
        silently mutated the caller's arrays."""
        lo = np.array([0.0, 1.0 + 1e-12])  # coordinate 1 slightly inverted
        hi = np.array([1.0, 1.0])
        lo_before, hi_before = lo.copy(), hi.copy()
        box = Box(lo, hi)
        # The caller's data is untouched by the in-place rectify...
        np.testing.assert_array_equal(lo, lo_before)
        np.testing.assert_array_equal(hi, hi_before)
        # ...the box owns independent storage...
        assert box.lo is not lo and box.hi is not hi
        assert not np.shares_memory(box.lo, lo)
        assert not np.shares_memory(box.hi, hi)
        # ...and the inversion was rectified inside the box only.
        assert box.lo[1] <= box.hi[1]

    def test_mutating_box_leaves_caller_untouched(self):
        """Range tables tighten boxes in place; the caller's arrays must
        never see those writes."""
        lo = np.zeros(3)
        hi = np.ones(3)
        box = Box(lo, hi)
        box.lo[0] = 0.25
        box.hi[2] = 0.75
        assert lo[0] == 0.0 and hi[2] == 1.0

    def test_from_center(self):
        box = Box.from_center(np.array([1.0, 2.0]), 0.5)
        assert np.allclose(box.lo, [0.5, 1.5])
        assert np.allclose(box.hi, [1.5, 2.5])

    def test_uniform_and_point(self):
        assert np.allclose(Box.uniform(3, -1, 1).width(), 2.0)
        pt = Box.point(np.array([1.0, 2.0]))
        assert np.allclose(pt.width(), 0.0)

    def test_contains(self):
        box = Box.uniform(2, 0.0, 1.0)
        assert box.contains(np.array([0.5, 0.5]))
        assert not box.contains(np.array([1.5, 0.5]))

    def test_sample_inside(self):
        rng = np.random.default_rng(0)
        box = Box(np.array([-1.0, 2.0]), np.array([0.0, 3.0]))
        samples = box.sample(rng, 50)
        assert samples.shape == (50, 2)
        for s in samples:
            assert box.contains(s)

    def test_scalar(self):
        box = Box(np.array([1.0, 2.0]), np.array([3.0, 4.0]))
        assert box.scalar(1) == (2.0, 4.0)

    def test_getitem(self):
        box = Box(np.array([0.0, 1.0, 2.0]), np.array([1.0, 2.0, 3.0]))
        sub = box[1]
        assert sub.dim == 1
        assert sub.scalar(0) == (1.0, 2.0)


class TestBoxArithmetic:
    def test_affine_soundness_random(self):
        rng = np.random.default_rng(1)
        for _ in range(30):
            box = Box(rng.uniform(-2, 0, 3), rng.uniform(0, 2, 3))
            w = rng.standard_normal((2, 3))
            b = rng.standard_normal(2)
            image = box.affine(w, b)
            for _ in range(20):
                x = box.sample(rng)[0]
                y = w @ x + b
                assert image.contains(y, tol=1e-8)

    def test_affine_tightness_1d(self):
        # For a single row the interval image is exact.
        box = Box(np.array([-1.0, 0.0]), np.array([1.0, 2.0]))
        image = box.affine(np.array([[1.0, -1.0]]), np.array([0.0]))
        assert image.scalar(0) == (-3.0, 1.0)

    def test_relu(self):
        box = Box(np.array([-2.0, 1.0]), np.array([-1.0, 3.0]))
        relu = box.relu()
        assert relu.scalar(0) == (0.0, 0.0)
        assert relu.scalar(1) == (1.0, 3.0)

    def test_intersect(self):
        a = Box.uniform(1, 0.0, 2.0)
        b = Box.uniform(1, 1.0, 3.0)
        assert a.intersect(b).scalar(0) == (1.0, 2.0)

    def test_intersect_empty_raises(self):
        a = Box.uniform(1, 0.0, 1.0)
        b = Box.uniform(1, 2.0, 3.0)
        with pytest.raises(ValueError):
            a.intersect(b)

    def test_union_hull(self):
        a = Box.uniform(1, 0.0, 1.0)
        b = Box.uniform(1, 2.0, 3.0)
        assert a.union_hull(b).scalar(0) == (0.0, 3.0)

    def test_add_sub(self):
        a = Box.uniform(1, 1.0, 2.0)
        b = Box.uniform(1, -0.5, 0.5)
        assert (a + b).scalar(0) == (0.5, 2.5)
        assert (a - b).scalar(0) == (0.5, 2.5)

    def test_expand(self):
        box = Box.uniform(2, 0.0, 1.0).expand(0.5)
        assert box.scalar(0) == (-0.5, 1.5)
