"""IBP and twin-IBP soundness (unit + property tests)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bounds import Box, propagate_box, propagate_twin_box, relu_distance_interval
from repro.bounds.ranges import RangeTable
from repro.nn.affine import AffineLayer, affine_chain_forward


def random_chain(rng, depth=2, width=4, in_dim=3, out_dim=2):
    """Random ReLU affine chain for soundness fuzzing."""
    dims = [in_dim] + [width] * (depth - 1) + [out_dim]
    layers = []
    for i in range(depth):
        layers.append(
            AffineLayer(
                rng.standard_normal((dims[i + 1], dims[i])),
                0.3 * rng.standard_normal(dims[i + 1]),
                relu=i < depth - 1,
            )
        )
    return layers


class TestIbp:
    def test_contains_sampled_outputs(self):
        rng = np.random.default_rng(0)
        for trial in range(20):
            layers = random_chain(rng, depth=3)
            box = Box.uniform(3, -1.0, 1.0)
            out_box = propagate_box(layers, box)
            for _ in range(50):
                x = box.sample(rng)[0]
                assert out_box.contains(affine_chain_forward(layers, x), tol=1e-7)

    def test_collect_pre_activations(self):
        rng = np.random.default_rng(1)
        layers = random_chain(rng, depth=3)
        box = Box.uniform(3, -1.0, 1.0)
        out, pre = propagate_box(layers, box, collect=True)
        assert len(pre) == 3
        assert pre[-1].dim == out.dim

    def test_point_box_is_exact(self):
        rng = np.random.default_rng(2)
        layers = random_chain(rng)
        x = rng.standard_normal(3)
        out = propagate_box(layers, Box.point(x))
        assert np.allclose(out.lo, out.hi)
        assert np.allclose(out.lo, affine_chain_forward(layers, x))


class TestReluDistanceInterval:
    @given(
        st.floats(-5, 5),
        st.floats(0, 3),
        st.floats(-3, 0),
        st.floats(0, 3),
    )
    @settings(max_examples=200, deadline=None)
    def test_pointwise_soundness(self, y, spread, dy_lo, dy_hi):
        """For any concrete y and Δy in range, Δx must lie in the interval."""
        y_box = Box(np.array([y - spread]), np.array([y + spread]))
        dy_box = Box(np.array([dy_lo]), np.array([dy_hi]))
        interval = relu_distance_interval(y_box, dy_box)
        rng = np.random.default_rng(int(abs(y * 1000)) % 2**31)
        for _ in range(10):
            yy = rng.uniform(y - spread, y + spread)
            dd = rng.uniform(dy_lo, dy_hi)
            dx = max(yy + dd, 0.0) - max(yy, 0.0)
            assert interval.lo[0] - 1e-9 <= dx <= interval.hi[0] + 1e-9

    def test_stable_active_exact(self):
        y_box = Box(np.array([1.0]), np.array([2.0]))
        dy_box = Box(np.array([-0.5]), np.array([0.5]))
        out = relu_distance_interval(y_box, dy_box)
        assert out.scalar(0) == (-0.5, 0.5)

    def test_stable_inactive_zero(self):
        y_box = Box(np.array([-3.0]), np.array([-2.0]))
        dy_box = Box(np.array([-0.5]), np.array([0.5]))
        out = relu_distance_interval(y_box, dy_box)
        assert out.scalar(0) == (0.0, 0.0)

    def test_magnitude_never_exceeds_dy(self):
        y_box = Box(np.array([-1.0]), np.array([1.0]))
        dy_box = Box(np.array([-0.3]), np.array([0.2]))
        out = relu_distance_interval(y_box, dy_box)
        assert out.lo[0] >= -0.3 - 1e-12
        assert out.hi[0] <= 0.2 + 1e-12


class TestTwinIbp:
    def test_contains_sampled_pairs(self):
        rng = np.random.default_rng(3)
        for trial in range(15):
            layers = random_chain(rng, depth=3)
            box = Box.uniform(3, -1.0, 1.0)
            delta = 0.1
            twin = propagate_twin_box(layers, box, delta)
            for _ in range(30):
                x = box.sample(rng)[0]
                dx = rng.uniform(-delta, delta, 3)
                xh = np.clip(x + dx, box.lo, box.hi)
                out = affine_chain_forward(layers, x)
                out_h = affine_chain_forward(layers, xh)
                assert twin.x[-1].contains(out, tol=1e-7)
                assert twin.output_distance.contains(out_h - out, tol=1e-7)

    def test_zero_delta_gives_zero_distance(self):
        rng = np.random.default_rng(4)
        layers = random_chain(rng)
        twin = propagate_twin_box(layers, Box.uniform(3, -1, 1), 0.0)
        assert np.allclose(twin.output_distance.lo, 0.0)
        assert np.allclose(twin.output_distance.hi, 0.0)

    def test_distance_monotone_in_delta(self):
        rng = np.random.default_rng(5)
        layers = random_chain(rng)
        box = Box.uniform(3, -1, 1)
        small = propagate_twin_box(layers, box, 0.01)
        large = propagate_twin_box(layers, box, 0.1)
        assert np.all(large.output_distance.hi >= small.output_distance.hi - 1e-12)
        assert np.all(large.output_distance.lo <= small.output_distance.lo + 1e-12)

    def test_explicit_delta_box(self):
        rng = np.random.default_rng(6)
        layers = random_chain(rng)
        box = Box.uniform(3, -1, 1)
        twin = propagate_twin_box(layers, box, Box.uniform(3, -0.05, 0.05))
        assert twin.dx[0].scalar(0) == (-0.05, 0.05)

    def test_dimension_mismatch_rejected(self):
        rng = np.random.default_rng(7)
        layers = random_chain(rng)
        with pytest.raises(ValueError):
            propagate_twin_box(layers, Box.uniform(3, -1, 1), Box.uniform(2, -0.1, 0.1))


class TestRangeTable:
    def test_from_interval_propagation(self):
        rng = np.random.default_rng(8)
        layers = random_chain(rng, depth=3)
        table = RangeTable.from_interval_propagation(
            layers, Box.uniform(3, -1, 1), 0.05
        )
        assert table.num_layers == 3
        assert table.layer(0).x.dim == 3
        assert table.layer(3).dx.dim == 2

    def test_output_variation_bound(self):
        rng = np.random.default_rng(9)
        layers = random_chain(rng, depth=2)
        table = RangeTable.from_interval_propagation(
            layers, Box.uniform(3, -1, 1), 0.05
        )
        eps = table.output_variation_bound()
        per_out = table.output_variation_bounds()
        assert eps == pytest.approx(per_out.max())
        assert eps >= 0

    def test_set_neuron_updates(self):
        rng = np.random.default_rng(10)
        layers = random_chain(rng, depth=2)
        table = RangeTable.from_interval_propagation(
            layers, Box.uniform(3, -1, 1), 0.05
        )
        table.layer(1).set_neuron(0, y=(-0.5, 0.5), dy=(-0.1, 0.1))
        assert table.layer(1).y.scalar(0) == (-0.5, 0.5)

    def test_set_neuron_invalid(self):
        rng = np.random.default_rng(11)
        layers = random_chain(rng, depth=2)
        table = RangeTable.from_interval_propagation(
            layers, Box.uniform(3, -1, 1), 0.05
        )
        with pytest.raises(ValueError):
            table.layer(1).set_neuron(0, y=(1.0, -1.0))
