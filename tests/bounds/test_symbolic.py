"""BoundPropagator protocol + symbolic propagator soundness/tightness."""

import numpy as np
import pytest

from repro.bounds import (
    Box,
    IBPPropagator,
    LayerBounds,
    RangeTable,
    SymbolicPropagator,
    available_propagators,
    get_propagator,
)
from repro.nn.affine import AffineLayer, affine_chain_forward


def random_chain(rng, depth=3, width=8, in_dim=4, out_dim=2, scale=1.0):
    """Random ReLU affine chain for soundness fuzzing."""
    dims = [in_dim] + [width] * (depth - 1) + [out_dim]
    return [
        AffineLayer(
            scale * rng.standard_normal((dims[i + 1], dims[i])) / np.sqrt(dims[i]),
            0.3 * rng.standard_normal(dims[i + 1]),
            relu=i < depth - 1,
        )
        for i in range(depth)
    ]


def assert_box_contains(outer: Box, inner: Box, tol=1e-9):
    assert np.all(inner.lo >= outer.lo - tol)
    assert np.all(inner.hi <= outer.hi + tol)


class TestRegistry:
    def test_builtin_names(self):
        assert {"ibp", "twin-ibp", "symbolic"} <= set(available_propagators())

    def test_get_by_name_and_instance(self):
        assert get_propagator("symbolic").name == "symbolic"
        custom = SymbolicPropagator()
        assert get_propagator(custom) is custom

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown bound propagator"):
            get_propagator("magic")

    def test_twin_ibp_requires_delta(self):
        rng = np.random.default_rng(0)
        layers = random_chain(rng)
        with pytest.raises(ValueError, match="delta"):
            get_propagator("twin-ibp").propagate(layers, Box.uniform(4, -1, 1))


class TestLayerBounds:
    def test_ibp_matches_legacy_propagation(self):
        from repro.bounds import propagate_box, propagate_twin_box

        rng = np.random.default_rng(1)
        layers = random_chain(rng)
        box = Box.uniform(4, -1, 1)
        bounds = get_propagator("ibp").propagate(layers, box, 0.05)
        _, legacy_pre = propagate_box(layers, box, collect=True)
        twin = propagate_twin_box(layers, box, 0.05)
        for i in range(len(layers)):
            assert np.allclose(bounds.y[i].lo, legacy_pre[i].lo)
            assert np.allclose(bounds.y[i].hi, legacy_pre[i].hi)
            assert np.allclose(bounds.dy[i].lo, twin.dy[i].lo)
            assert np.allclose(bounds.dx[i].hi, twin.dx[i + 1].hi)

    def test_value_only_has_no_distance(self):
        rng = np.random.default_rng(2)
        layers = random_chain(rng)
        bounds = get_propagator("ibp").propagate(layers, Box.uniform(4, -1, 1))
        assert not bounds.has_distance
        with pytest.raises(ValueError, match="distance"):
            bounds.output_distance
        with pytest.raises(ValueError, match="distance"):
            bounds.to_range_table()

    def test_intersect_tightest_wins(self):
        rng = np.random.default_rng(3)
        layers = random_chain(rng)
        box = Box.uniform(4, -1, 1)
        ibp = get_propagator("ibp").propagate(layers, box, 0.05)
        sym = get_propagator("symbolic").propagate(layers, box, 0.05)
        both = ibp.intersect(sym)
        for i in range(len(layers)):
            assert np.allclose(both.y[i].lo, sym.y[i].lo)
            assert np.allclose(both.y[i].hi, sym.y[i].hi)

    def test_intersect_mixed_keeps_available_distance(self):
        rng = np.random.default_rng(30)
        layers = random_chain(rng)
        box = Box.uniform(4, -1, 1)
        value_only = get_propagator("ibp").propagate(layers, box)
        twin = get_propagator("symbolic").propagate(layers, box, 0.05)
        for mixed in (value_only.intersect(twin), twin.intersect(value_only)):
            assert mixed.has_distance
            assert np.allclose(mixed.dy[0].lo, twin.dy[0].lo)
            assert np.allclose(mixed.output_distance.hi, twin.output_distance.hi)

    def test_stable_split_counts_relu_neurons_only(self):
        rng = np.random.default_rng(4)
        layers = random_chain(rng, depth=3, width=6)
        bounds = get_propagator("ibp").propagate(layers, Box.uniform(4, -1, 1))
        stable, total = bounds.stable_split(layers)
        assert total == 12  # two hidden ReLU layers of width 6
        assert 0 <= stable <= total
        assert bounds.stable_fraction(layers) == pytest.approx(stable / total)


class TestSymbolicContainment:
    """Property (a): symbolic bounds are always contained in IBP bounds."""

    def test_contained_in_ibp_value_and_distance(self):
        rng = np.random.default_rng(5)
        for trial in range(20):
            layers = random_chain(rng, depth=rng.integers(1, 5), scale=2.0)
            box = Box.uniform(4, -1, 1)
            ibp = get_propagator("ibp").propagate(layers, box, 0.1)
            sym = get_propagator("symbolic").propagate(layers, box, 0.1)
            for i in range(len(layers)):
                assert_box_contains(ibp.y[i], sym.y[i])
                assert_box_contains(ibp.x[i], sym.x[i])
                assert_box_contains(ibp.dy[i], sym.dy[i])
                assert_box_contains(ibp.dx[i], sym.dx[i])

    def test_strictly_tighter_on_deep_nets(self):
        rng = np.random.default_rng(6)
        layers = random_chain(rng, depth=4, width=16, scale=2.0)
        box = Box.uniform(4, -1, 1)
        ibp = get_propagator("ibp").propagate(layers, box, 0.1)
        sym = get_propagator("symbolic").propagate(layers, box, 0.1)
        assert sym.mean_pre_activation_width() < ibp.mean_pre_activation_width()
        dist_ibp = ibp.output_distance.width().max()
        dist_sym = sym.output_distance.width().max()
        assert dist_sym < dist_ibp

    def test_first_layer_matches_ibp_exactly(self):
        # No ReLU precedes layer 0, so backsubstitution degenerates to
        # one interval-arithmetic affine step.
        rng = np.random.default_rng(7)
        layers = random_chain(rng, depth=3)
        box = Box.uniform(4, -1, 1)
        ibp = get_propagator("ibp").propagate(layers, box, 0.05)
        sym = get_propagator("symbolic").propagate(layers, box, 0.05)
        assert np.allclose(sym.y[0].lo, ibp.y[0].lo)
        assert np.allclose(sym.y[0].hi, ibp.y[0].hi)


class TestSymbolicSoundness:
    """Property (b): forward samples and twin pairs lie inside the bounds."""

    def test_contains_forward_samples(self):
        rng = np.random.default_rng(8)
        for trial in range(10):
            layers = random_chain(rng, depth=3, scale=2.0)
            box = Box.uniform(4, -1, 1)
            sym = get_propagator("symbolic").propagate(layers, box)
            for _ in range(40):
                x = box.sample(rng)[0]
                cur = x
                for i, layer in enumerate(layers):
                    y = layer.pre_activation(cur)
                    assert sym.y[i].contains(y, tol=1e-7), f"layer {i} pre-act"
                    cur = layer.forward(cur)
                    assert sym.x[i].contains(cur, tol=1e-7), f"layer {i} post-act"

    def test_contains_twin_distance_samples(self):
        rng = np.random.default_rng(9)
        for trial in range(10):
            layers = random_chain(rng, depth=3, scale=2.0)
            box = Box.uniform(4, -1, 1)
            delta = 0.1
            sym = get_propagator("symbolic").propagate(layers, box, delta)
            for _ in range(30):
                x = box.sample(rng)[0]
                xh = np.clip(x + rng.uniform(-delta, delta, 4), box.lo, box.hi)
                cur, curh = x, xh
                for i, layer in enumerate(layers):
                    dy = layer.pre_activation(curh) - layer.pre_activation(cur)
                    assert sym.dy[i].contains(dy, tol=1e-7), f"layer {i} dy"
                    cur, curh = layer.forward(cur), layer.forward(curh)
                    assert sym.dx[i].contains(curh - cur, tol=1e-7), f"layer {i} dx"

    def test_point_box_is_exact(self):
        rng = np.random.default_rng(10)
        layers = random_chain(rng)
        x = rng.standard_normal(4)
        sym = get_propagator("symbolic").propagate(layers, Box.point(x))
        out = affine_chain_forward(layers, x)
        assert np.allclose(sym.output.lo, out, atol=1e-9)
        assert np.allclose(sym.output.hi, out, atol=1e-9)

    def test_zero_delta_gives_zero_distance(self):
        rng = np.random.default_rng(11)
        layers = random_chain(rng)
        sym = get_propagator("symbolic").propagate(layers, Box.uniform(4, -1, 1), 0.0)
        assert np.allclose(sym.output_distance.lo, 0.0)
        assert np.allclose(sym.output_distance.hi, 0.0)

    def test_non_relu_interior_layer(self):
        # Hand-built chains may carry a linear interior stage; the
        # backsubstitution must treat it as identity.
        rng = np.random.default_rng(12)
        layers = [
            AffineLayer(rng.standard_normal((5, 3)), np.zeros(5), relu=True),
            AffineLayer(rng.standard_normal((5, 5)), np.zeros(5), relu=False),
            AffineLayer(rng.standard_normal((2, 5)), np.zeros(2), relu=True),
            AffineLayer(rng.standard_normal((1, 2)), np.zeros(1), relu=False),
        ]
        box = Box.uniform(3, -1, 1)
        sym = get_propagator("symbolic").propagate(layers, box, 0.05)
        ibp = get_propagator("ibp").propagate(layers, box, 0.05)
        for i in range(len(layers)):
            assert_box_contains(ibp.y[i], sym.y[i])
            assert_box_contains(ibp.dx[i], sym.dx[i])
        for _ in range(50):
            x = box.sample(rng)[0]
            assert sym.output.contains(affine_chain_forward(layers, x), tol=1e-7)


class TestRangeTablePropagatorKnob:
    def test_symbolic_table_contained_in_ibp_table(self):
        rng = np.random.default_rng(13)
        layers = random_chain(rng, depth=4, width=10, scale=2.0)
        box = Box.uniform(4, 0, 1)
        t_ibp = RangeTable.from_interval_propagation(layers, box, 0.05)
        t_sym = RangeTable.from_interval_propagation(
            layers, box, 0.05, propagator="symbolic"
        )
        for i in range(1, len(layers) + 1):
            for attr in ("y", "dy", "x", "dx"):
                assert_box_contains(
                    getattr(t_ibp.layer(i), attr), getattr(t_sym.layer(i), attr)
                )
        assert t_sym.output_variation_bound() <= t_ibp.output_variation_bound() + 1e-12

    def test_propagator_instance_accepted(self):
        rng = np.random.default_rng(14)
        layers = random_chain(rng)
        table = RangeTable.from_interval_propagation(
            layers, Box.uniform(4, 0, 1), 0.05, propagator=IBPPropagator()
        )
        assert table.num_layers == len(layers)

    def test_to_range_table_roundtrip(self):
        rng = np.random.default_rng(15)
        layers = random_chain(rng)
        bounds = get_propagator("symbolic").propagate(
            layers, Box.uniform(4, 0, 1), 0.05
        )
        table = bounds.to_range_table()
        assert isinstance(bounds, LayerBounds)
        assert np.allclose(table.layer(1).y.lo, bounds.y[0].lo)
        # The table owns copies: mutating it must not leak back.
        table.layer(1).set_neuron(0, y=(0.0, 0.0))
        assert not np.allclose(table.layer(1).y.hi, bounds.y[0].hi) or (
            bounds.y[0].hi[0] == 0.0
        )
