"""Network decomposition and refinement selection."""

import numpy as np
import pytest

from repro.bounds import Box
from repro.bounds.ranges import RangeTable
from repro.certify.decomposition import decompose, subnetwork_ranges
from repro.certify.refinement import neuron_scores, select_refinement
from repro.nn.affine import AffineLayer, affine_chain_forward


@pytest.fixture()
def chain():
    rng = np.random.default_rng(0)
    dims = [3, 4, 4, 2]
    return [
        AffineLayer(
            rng.standard_normal((dims[i + 1], dims[i])),
            0.1 * rng.standard_normal(dims[i + 1]),
            relu=i < 2,
        )
        for i in range(3)
    ]


class TestDecompose:
    def test_window_clipping(self, chain):
        sub = decompose(chain, layer_index=1, window=5, output_relu=False)
        assert sub.depth == 1
        assert sub.input_layer_index == 0

    def test_full_depth(self, chain):
        sub = decompose(chain, layer_index=3, window=3, output_relu=False)
        assert sub.depth == 3
        assert sub.input_layer_index == 0
        assert sub.output_layer_index == 3

    def test_single_neuron_slice(self, chain):
        sub = decompose(chain, 2, 2, output_relu=True, neuron=1)
        assert sub.layers[-1].out_dim == 1
        x = np.random.default_rng(1).uniform(-1, 1, 3)
        full = affine_chain_forward(chain[:2], x)
        part = affine_chain_forward(sub.layers, x)
        assert part[0] == pytest.approx(full[1])

    def test_output_relu_stripped(self, chain):
        sub_y = decompose(chain, 2, 1, output_relu=False)
        sub_x = decompose(chain, 2, 1, output_relu=True)
        assert not sub_y.layers[-1].relu
        assert sub_x.layers[-1].relu

    def test_inner_relus_kept(self, chain):
        sub = decompose(chain, 3, 3, output_relu=False)
        assert sub.layers[0].relu
        assert sub.layers[1].relu
        assert not sub.layers[2].relu

    def test_invalid_layer_index(self, chain):
        with pytest.raises(ValueError):
            decompose(chain, 0, 1, output_relu=False)
        with pytest.raises(ValueError):
            decompose(chain, 4, 1, output_relu=False)


class TestSubnetworkRanges:
    def test_slicing(self, chain):
        table = RangeTable.from_interval_propagation(
            chain, Box.uniform(3, -1, 1), 0.05
        )
        sub = decompose(chain, 3, 2, output_relu=False)
        sub_table = subnetwork_ranges(table, sub)
        assert sub_table.num_layers == 2
        # Slice input record equals the global layer-1 post-activation.
        assert np.allclose(sub_table.layer(0).x.lo, table.layer(1).x.lo)
        assert np.allclose(sub_table.layer(2).y.hi, table.layer(3).y.hi)

    def test_neuron_restriction(self, chain):
        table = RangeTable.from_interval_propagation(
            chain, Box.uniform(3, -1, 1), 0.05
        )
        sub = decompose(chain, 2, 1, output_relu=True, neuron=2)
        sub_table = subnetwork_ranges(table, sub, neuron=2)
        assert sub_table.layer(1).y.dim == 1
        assert sub_table.layer(1).y.scalar(0) == table.layer(2).y.scalar(2)


class TestRefinementSelection:
    def test_budget_respected(self, chain):
        table = RangeTable.from_interval_propagation(
            chain, Box.uniform(3, -1, 1), 0.05
        )
        sub = decompose(chain, 3, 3, output_relu=False)
        sub_table = subnetwork_ranges(table, sub)
        for budget in (0, 1, 3, 100):
            masks = select_refinement(sub, sub_table, budget)
            total = sum(int(m.sum()) for m in masks)
            assert total <= budget
            if budget >= 8:
                # All unstable hidden neurons selected when budget allows.
                assert total >= 1

    def test_highest_scores_selected_first(self, chain):
        table = RangeTable.from_interval_propagation(
            chain, Box.uniform(3, -1, 1), 0.05
        )
        sub = decompose(chain, 3, 3, output_relu=False)
        sub_table = subnetwork_ranges(table, sub)
        masks = select_refinement(sub, sub_table, 1)
        # The single refined neuron must be an argmax of the scores.
        best = None
        for depth in (1, 2):
            scores = neuron_scores(sub_table, depth)
            for j, s in enumerate(scores):
                if best is None or s > best[0]:
                    best = (s, depth, j)
        _, depth, j = best
        assert masks[depth - 1][j]

    def test_output_layer_exclusion(self, chain):
        table = RangeTable.from_interval_propagation(
            chain, Box.uniform(3, -1, 1), 0.05
        )
        sub = decompose(chain, 2, 2, output_relu=True)
        sub_table = subnetwork_ranges(table, sub)
        masks_no = select_refinement(sub, sub_table, 100, include_output_layer=False)
        assert masks_no[-1].sum() == 0
        masks_yes = select_refinement(sub, sub_table, 100, include_output_layer=True)
        assert masks_yes[-1].sum() >= 0  # may refine output relus

    def test_stable_neurons_never_selected(self):
        # A chain whose first layer is stably active everywhere.
        layers = [
            AffineLayer(np.eye(2), np.array([10.0, 10.0]), relu=True),
            AffineLayer(np.ones((1, 2)), np.zeros(1), relu=False),
        ]
        table = RangeTable.from_interval_propagation(
            layers, Box.uniform(2, 0, 1), 0.01
        )
        sub = decompose(layers, 2, 2, output_relu=False)
        sub_table = subnetwork_ranges(table, sub)
        masks = select_refinement(sub, sub_table, 100)
        assert all(m.sum() == 0 for m in masks)
