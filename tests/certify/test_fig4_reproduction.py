"""Integration test: reproduce the paper's Fig. 4 illustrating example.

The 2-2-1 network of Fig. 1, input domain X = [-1, 1]^2, δ = 0.1,
local center x0 = [0, 0].  Expected values are read straight off Fig. 4;
entries where our pipeline is provably tighter than the figure assert
the sound ordering (exact ≤ ours ≤ paper's figure) instead of equality.
"""

import numpy as np
import pytest

from repro.bounds import Box
from repro.certify import (
    CertifierConfig,
    GlobalRobustnessCertifier,
    ReluplexStyleSolver,
    certify_exact_global,
    certify_local_exact,
    certify_local_lpr,
    certify_local_nd,
)
from repro.certify.comparisons import certify_global_btne_lpr, certify_global_btne_nd
from repro.nn.affine import AffineLayer


@pytest.fixture(scope="module")
def example():
    layers = [
        AffineLayer(np.array([[1.0, 0.5], [-0.5, 1.0]]), np.zeros(2), relu=True),
        AffineLayer(np.array([[1.0, -1.0]]), np.zeros(1), relu=True),
    ]
    return layers, Box.uniform(2, -1.0, 1.0), 0.1


class TestGlobalRows:
    def test_exact_milp(self, example):
        layers, box, delta = example
        cert = certify_exact_global(layers, box, delta)
        assert cert.epsilon == pytest.approx(0.2, abs=1e-6)
        assert cert.exact

    def test_exact_btne_encoding(self, example):
        layers, box, delta = example
        cert = certify_exact_global(layers, box, delta, encoding="btne")
        assert cert.epsilon == pytest.approx(0.2, abs=1e-6)

    def test_reluplex_style(self, example):
        layers, box, delta = example
        cert = ReluplexStyleSolver().certify(layers, box, delta)
        assert cert.epsilon == pytest.approx(0.2, abs=1e-6)
        assert cert.detail["nodes"] > 1  # actually case-split

    def test_itne_nd(self, example):
        """ITNE-ND row: Δx(1) = ±0.15, Δx(2) = ±0.3."""
        layers, box, delta = example
        cfg = CertifierConfig(window=1, refine_count=10**6)
        cert = GlobalRobustnessCertifier(layers, cfg).certify(box, delta)
        table = cert.detail["range_table"]
        assert table.layer(1).dx.lo == pytest.approx([-0.15, -0.15], abs=1e-6)
        assert table.layer(1).dx.hi == pytest.approx([0.15, 0.15], abs=1e-6)
        assert cert.epsilon == pytest.approx(0.3, abs=1e-6)

    def test_itne_lpr(self, example):
        """ITNE-LPR: ours is ≤ the paper's 0.275 and ≥ the exact 0.2."""
        layers, box, delta = example
        cfg = CertifierConfig(window=2, refine_count=0)
        cert = GlobalRobustnessCertifier(layers, cfg).certify(box, delta)
        assert 0.2 - 1e-9 <= cert.epsilon <= 0.275 + 1e-6
        # x(2) range also sandwiched: exact 1.25 <= ours <= paper 1.44.
        x2 = cert.detail["range_table"].layer(2).x
        assert 1.25 - 1e-9 <= x2.hi[0] <= 1.44 + 1e-6

    def test_btne_nd_7x_looser(self, example):
        """BTNE-ND loses all distance info: ε = 1.5 (7.5× the exact 0.2)."""
        layers, box, delta = example
        cert = certify_global_btne_nd(layers, box, delta, window=1)
        assert cert.epsilon == pytest.approx(1.5, abs=1e-6)

    def test_btne_lpr_much_looser_than_itne(self, example):
        layers, box, delta = example
        btne = certify_global_btne_lpr(layers, box, delta)
        itne = GlobalRobustnessCertifier(
            layers, CertifierConfig(window=2, refine_count=0)
        ).certify(box, delta)
        # The interleaving distance variables buy at least 3x tightness here.
        assert btne.epsilon > 3.0 * itne.epsilon
        # And both remain sound w.r.t. the exact value.
        assert btne.epsilon >= 0.2 - 1e-9
        assert itne.epsilon >= 0.2 - 1e-9


class TestLocalRows:
    def test_local_exact(self, example):
        layers, box, delta = example
        cert = certify_local_exact(layers, np.zeros(2), delta, domain=box)
        assert cert.output_lo[0] == pytest.approx(0.0, abs=1e-7)
        assert cert.output_hi[0] == pytest.approx(0.125, abs=1e-6)

    def test_local_nd(self, example):
        layers, box, delta = example
        cert = certify_local_nd(layers, np.zeros(2), delta, window=1, domain=box)
        assert cert.output_hi[0] == pytest.approx(0.15, abs=1e-6)

    def test_local_lpr(self, example):
        layers, box, delta = example
        cert = certify_local_lpr(layers, np.zeros(2), delta, domain=box)
        assert cert.output_hi[0] == pytest.approx(0.14375, abs=1e-5)

    def test_local_ordering(self, example):
        """exact <= ND, exact <= LPR (over-approximations are sound)."""
        layers, box, delta = example
        exact = certify_local_exact(layers, np.zeros(2), delta, domain=box)
        nd = certify_local_nd(layers, np.zeros(2), delta, window=1, domain=box)
        lpr = certify_local_lpr(layers, np.zeros(2), delta, domain=box)
        assert exact.output_hi[0] <= nd.output_hi[0] + 1e-9
        assert exact.output_hi[0] <= lpr.output_hi[0] + 1e-9
