"""Algorithm 1 behaviour on random and trained networks."""

import numpy as np
import pytest

from repro.bounds import Box
from repro.certify import (
    CertifierConfig,
    GlobalRobustnessCertifier,
    certify_exact_global,
    pgd_underapproximation,
)
from repro.nn import Dense, Network
from repro.nn.affine import AffineLayer, affine_chain_forward


def random_chain(rng, depth=3, width=4, in_dim=3, out_dim=2):
    dims = [in_dim] + [width] * (depth - 1) + [out_dim]
    return [
        AffineLayer(
            rng.standard_normal((dims[i + 1], dims[i])),
            0.2 * rng.standard_normal(dims[i + 1]),
            relu=i < depth - 1,
        )
        for i in range(depth)
    ]


@pytest.fixture(scope="module")
def small_net():
    rng = np.random.default_rng(42)
    return random_chain(rng, depth=3, width=4)


class TestSoundness:
    def test_dominates_exact(self, small_net):
        box = Box.uniform(3, -1, 1)
        delta = 0.05
        exact = certify_exact_global(small_net, box, delta)
        for window, refine in [(1, 0), (2, 0), (2, 4), (3, 100)]:
            cfg = CertifierConfig(window=window, refine_count=refine)
            ours = GlobalRobustnessCertifier(small_net, cfg).certify(box, delta)
            assert np.all(ours.epsilons >= exact.epsilons - 1e-7), (
                f"W={window} r={refine} produced an unsound bound"
            )

    def test_dominates_sampling(self, small_net):
        rng = np.random.default_rng(0)
        box = Box.uniform(3, -1, 1)
        delta = 0.05
        cfg = CertifierConfig(window=2, refine_count=0)
        cert = GlobalRobustnessCertifier(small_net, cfg).certify(box, delta)
        worst = np.zeros(2)
        for _ in range(500):
            x = box.sample(rng)[0]
            xh = np.clip(x + rng.uniform(-delta, delta, 3), box.lo, box.hi)
            d = np.abs(
                affine_chain_forward(small_net, xh)
                - affine_chain_forward(small_net, x)
            )
            worst = np.maximum(worst, d)
        assert np.all(cert.epsilons >= worst - 1e-9)

    def test_dominates_pgd(self):
        rng = np.random.default_rng(1)
        net = Network(
            (3,), [Dense(3, 5, relu=True, rng=rng), Dense(5, 1, rng=rng)]
        )
        box = Box.uniform(3, 0, 1)
        delta = 0.05
        cfg = CertifierConfig(window=2, refine_count=0)
        cert = GlobalRobustnessCertifier(net, cfg).certify(box, delta)
        dataset = box.sample(rng, 20)
        under = pgd_underapproximation(
            net, dataset, delta, steps=20, clip_lo=0.0, clip_hi=1.0
        )
        assert cert.epsilon >= under.epsilon - 1e-9
        assert under.method == "pgd-under"


class TestMonotonicity:
    def test_epsilon_monotone_in_delta(self, small_net):
        box = Box.uniform(3, -1, 1)
        cfg = CertifierConfig(window=2, refine_count=0)
        eps = [
            GlobalRobustnessCertifier(small_net, cfg).certify(box, d).epsilon
            for d in (0.01, 0.05, 0.1)
        ]
        assert eps[0] <= eps[1] + 1e-9 <= eps[2] + 2e-9

    def test_refinement_tightens(self, small_net):
        box = Box.uniform(3, -1, 1)
        delta = 0.05
        loose = GlobalRobustnessCertifier(
            small_net, CertifierConfig(window=2, refine_count=0)
        ).certify(box, delta)
        tight = GlobalRobustnessCertifier(
            small_net, CertifierConfig(window=2, refine_count=8)
        ).certify(box, delta)
        assert tight.epsilon <= loose.epsilon + 1e-9

    def test_window_tightens(self, small_net):
        box = Box.uniform(3, -1, 1)
        delta = 0.05
        w1 = GlobalRobustnessCertifier(
            small_net, CertifierConfig(window=1, refine_count=100)
        ).certify(box, delta)
        w3 = GlobalRobustnessCertifier(
            small_net, CertifierConfig(window=3, refine_count=100)
        ).certify(box, delta)
        assert w3.epsilon <= w1.epsilon + 1e-9

    def test_full_window_full_refine_is_exact(self, small_net):
        box = Box.uniform(3, -1, 1)
        delta = 0.05
        exact = certify_exact_global(small_net, box, delta)
        ours = GlobalRobustnessCertifier(
            small_net, CertifierConfig(window=3, refine_count=10**6)
        ).certify(box, delta)
        assert ours.epsilons == pytest.approx(exact.epsilons, abs=1e-5)


class TestBookkeeping:
    def test_certificate_fields(self, small_net):
        box = Box.uniform(3, -1, 1)
        cfg = CertifierConfig(window=2, refine_count=0)
        cert = GlobalRobustnessCertifier(small_net, cfg).certify(box, 0.05)
        assert cert.method.startswith("itne-nd-lpr")
        assert not cert.exact
        assert cert.lp_count > 0
        assert cert.milp_count == 0
        assert cert.solve_time > 0
        assert "ε" in cert.summary() or "eps" in cert.summary() or cert.summary()

    def test_refined_counts_milps(self, small_net):
        box = Box.uniform(3, -1, 1)
        cfg = CertifierConfig(window=2, refine_count=4)
        cert = GlobalRobustnessCertifier(small_net, cfg).certify(box, 0.05)
        assert cert.milp_count > 0

    def test_accepts_network_object(self):
        rng = np.random.default_rng(2)
        net = Network((2,), [Dense(2, 3, relu=True, rng=rng), Dense(3, 1, rng=rng)])
        cert = GlobalRobustnessCertifier(
            net, CertifierConfig(window=1, refine_count=0)
        ).certify(Box.uniform(2, 0, 1), 0.01)
        assert cert.epsilon >= 0

    def test_per_output_epsilons(self, small_net):
        box = Box.uniform(3, -1, 1)
        cert = GlobalRobustnessCertifier(
            small_net, CertifierConfig(window=2, refine_count=0)
        ).certify(box, 0.05)
        assert cert.epsilons.shape == (2,)
        assert cert.epsilon == pytest.approx(cert.epsilons.max())
