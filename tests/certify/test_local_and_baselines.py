"""Local robustness, Reluplex-style search, and comparison baselines."""

import numpy as np
import pytest

from repro.bounds import Box
from repro.certify import (
    ReluplexStyleSolver,
    certify_exact_global,
    certify_local_exact,
    certify_local_lpr,
    certify_local_nd,
)
from repro.certify.comparisons import certify_global_btne_lpr, certify_global_btne_nd
from repro.nn.affine import AffineLayer, affine_chain_forward


def random_chain(rng, depth=2, width=3, in_dim=2, out_dim=1):
    dims = [in_dim] + [width] * (depth - 1) + [out_dim]
    return [
        AffineLayer(
            rng.standard_normal((dims[i + 1], dims[i])),
            0.2 * rng.standard_normal(dims[i + 1]),
            relu=i < depth - 1,
        )
        for i in range(depth)
    ]


class TestLocalCertification:
    def test_exact_contains_samples(self):
        rng = np.random.default_rng(0)
        layers = random_chain(rng, depth=3)
        center = rng.uniform(-0.5, 0.5, 2)
        delta = 0.1
        cert = certify_local_exact(layers, center, delta)
        for _ in range(200):
            x = center + rng.uniform(-delta, delta, 2)
            out = affine_chain_forward(layers, x)[0]
            assert cert.output_lo[0] - 1e-7 <= out <= cert.output_hi[0] + 1e-7

    def test_epsilon_definition(self):
        rng = np.random.default_rng(1)
        layers = random_chain(rng)
        center = np.zeros(2)
        cert = certify_local_exact(layers, center, 0.05)
        base = affine_chain_forward(layers, center)
        expected = max(
            abs(cert.output_hi[0] - base[0]), abs(base[0] - cert.output_lo[0])
        )
        assert cert.epsilon == pytest.approx(expected)

    def test_domain_intersection(self):
        rng = np.random.default_rng(2)
        layers = random_chain(rng)
        domain = Box.uniform(2, 0.0, 1.0)
        cert = certify_local_exact(layers, np.zeros(2), 0.5, domain=domain)
        # Ball [-0.5, 0.5] clipped to [0, 0.5]: output range respects it.
        assert cert.method == "local-exact"

    def test_nd_window_tightens(self):
        rng = np.random.default_rng(3)
        layers = random_chain(rng, depth=3, width=4)
        center = np.zeros(2)
        w1 = certify_local_nd(layers, center, 0.2, window=1)
        w3 = certify_local_nd(layers, center, 0.2, window=3)
        assert w3.output_hi[0] <= w1.output_hi[0] + 1e-9
        assert w3.output_lo[0] >= w1.output_lo[0] - 1e-9

    def test_lpr_no_binaries_faster_but_looser(self):
        rng = np.random.default_rng(4)
        layers = random_chain(rng, depth=3, width=4)
        exact = certify_local_exact(layers, np.zeros(2), 0.2)
        lpr = certify_local_lpr(layers, np.zeros(2), 0.2)
        assert lpr.output_hi[0] >= exact.output_hi[0] - 1e-9
        assert lpr.output_lo[0] <= exact.output_lo[0] + 1e-9


class TestReluplexStyle:
    def test_matches_milp_on_random_nets(self):
        rng = np.random.default_rng(5)
        for _ in range(4):
            layers = random_chain(rng, depth=2, width=3)
            box = Box.uniform(2, -1, 1)
            milp = certify_exact_global(layers, box, 0.05)
            rlx = ReluplexStyleSolver().certify(layers, box, 0.05)
            assert rlx.epsilons == pytest.approx(milp.epsilons, abs=1e-5)

    def test_node_budget_respected(self):
        rng = np.random.default_rng(6)
        layers = random_chain(rng, depth=3, width=4)
        solver = ReluplexStyleSolver(max_nodes=3)
        with pytest.raises(RuntimeError):
            solver.certify(layers, Box.uniform(2, -1, 1), 0.1)

    def test_explores_more_nodes_on_bigger_nets(self):
        rng = np.random.default_rng(7)
        small = random_chain(rng, depth=2, width=2)
        big = random_chain(rng, depth=3, width=4)
        box = Box.uniform(2, -1, 1)
        s_small = ReluplexStyleSolver()
        s_small.certify(small, box, 0.1)
        s_big = ReluplexStyleSolver()
        s_big.certify(big, box, 0.1)
        assert s_big.nodes_explored >= s_small.nodes_explored


class TestBtneBaselines:
    def test_btne_nd_looser_than_exact(self):
        rng = np.random.default_rng(8)
        layers = random_chain(rng, depth=2)
        box = Box.uniform(2, -1, 1)
        exact = certify_exact_global(layers, box, 0.05)
        nd = certify_global_btne_nd(layers, box, 0.05)
        assert nd.epsilon >= exact.epsilon - 1e-9

    def test_btne_lpr_looser_than_exact(self):
        rng = np.random.default_rng(9)
        layers = random_chain(rng, depth=2)
        box = Box.uniform(2, -1, 1)
        exact = certify_exact_global(layers, box, 0.05)
        lpr = certify_global_btne_lpr(layers, box, 0.05)
        assert lpr.epsilon >= exact.epsilon - 1e-9

    def test_btne_nd_independent_of_delta(self):
        """The distance-info loss makes BTNE-ND's ε delta-independent."""
        rng = np.random.default_rng(10)
        layers = random_chain(rng, depth=2)
        box = Box.uniform(2, -1, 1)
        a = certify_global_btne_nd(layers, box, 0.01)
        b = certify_global_btne_nd(layers, box, 0.1)
        assert a.epsilon == pytest.approx(b.epsilon, abs=1e-7)
