"""Presolve tier: verdict soundness and agreement with the MILP answers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bounds import Box, get_propagator
from repro.certify import (
    certify_exact_global,
    certify_local_exact,
    presolve_global,
    presolve_global_many,
    presolve_local,
    presolve_local_many,
    presolve_many,
)
from repro.certify.presolve import perturbation_ball
from repro.nn.affine import AffineLayer, affine_chain_forward


def random_chain(rng, depth=2, width=5, in_dim=3, out_dim=2, scale=1.5):
    dims = [in_dim] + [width] * (depth - 1) + [out_dim]
    return [
        AffineLayer(
            scale * rng.standard_normal((dims[i + 1], dims[i])) / np.sqrt(dims[i]),
            0.2 * rng.standard_normal(dims[i + 1]),
            relu=i < depth - 1,
        )
        for i in range(depth)
    ]


@pytest.fixture(scope="module")
def setting():
    rng = np.random.default_rng(0)
    layers = random_chain(rng, depth=3)
    domain = Box.uniform(3, 0.0, 1.0)
    center = np.array([0.4, 0.6, 0.5])
    delta = 0.05
    return layers, domain, center, delta


class TestPresolveLocal:
    def test_generous_epsilon_certified(self, setting):
        layers, domain, center, delta = setting
        cert = presolve_local(layers, center, delta, epsilon=1e6, domain=domain)
        assert cert is not None
        assert cert.method == "presolve"
        assert cert.detail["verdict"] == "certified"
        assert not cert.exact
        assert cert.epsilon <= 1e6

    def test_tiny_epsilon_refuted(self, setting):
        layers, domain, center, delta = setting
        cert = presolve_local(layers, center, delta, epsilon=1e-12, domain=domain)
        assert cert is not None
        assert cert.detail["verdict"] == "refuted"
        # Refuted epsilons are attack lower bounds and must beat the target.
        assert cert.epsilon > 1e-12

    def test_undecidable_epsilon_returns_none(self):
        # Seed 19 is a net where the symbolic ball bound is measurably
        # looser than the exact optimum, leaving an undecided ε window.
        layers = random_chain(np.random.default_rng(19), depth=3)
        domain = Box.uniform(3, 0.0, 1.0)
        center = np.array([0.4, 0.6, 0.5])
        delta = 0.05
        exact = certify_local_exact(layers, center, delta, domain=domain)
        ball = perturbation_ball(center, delta, domain)
        bounds = get_propagator("symbolic").propagate(layers, ball)
        base = affine_chain_forward(layers, center)
        ub = float(
            np.max(
                np.maximum(
                    np.abs(bounds.output.hi - base), np.abs(base - bounds.output.lo)
                )
            )
        )
        if ub <= exact.epsilon + 1e-9:
            pytest.skip("symbolic bound tight on this net: no undecided window")
        epsilon = 0.5 * (exact.epsilon + ub)
        # bound cannot prove (ub > epsilon); attack cannot refute
        # (true epsilon < epsilon) — the tier must pass.
        assert presolve_local(layers, center, delta, epsilon, domain=domain) is None

    def test_verdicts_agree_with_milp(self):
        """Property (c): presolve answers match the exact MILP answers."""
        rng = np.random.default_rng(1)
        checked = 0
        for trial in range(8):
            layers = random_chain(rng, depth=int(rng.integers(2, 4)))
            domain = Box.uniform(3, 0.0, 1.0)
            center = domain.sample(rng)[0]
            delta = 0.08
            exact = certify_local_exact(layers, center, delta, domain=domain)
            for factor in (0.25, 0.9, 1.1, 4.0):
                epsilon = max(exact.epsilon * factor, 1e-9)
                cert = presolve_local(layers, center, delta, epsilon, domain=domain)
                if cert is None:
                    continue
                checked += 1
                if cert.detail["verdict"] == "certified":
                    assert exact.epsilon <= epsilon + 1e-7
                else:
                    assert exact.epsilon > epsilon - 1e-7
        assert checked > 0

    def test_layer_bounds_reuse(self, setting):
        layers, domain, center, delta = setting
        ball = perturbation_ball(center, delta, domain)
        shared = get_propagator("symbolic").propagate(layers, ball)
        direct = presolve_local(layers, center, delta, 1e6, domain=domain)
        reused = presolve_local(
            layers, center, delta, 1e6, domain=domain, layer_bounds=shared
        )
        assert np.allclose(direct.epsilons, reused.epsilons)
        assert reused.detail["bounds"] == "symbolic"


class TestPresolveGlobal:
    def test_generous_epsilon_certified(self, setting):
        layers, domain, _, delta = setting
        cert = presolve_global(layers, domain, delta, epsilon=1e6)
        assert cert is not None
        assert cert.method == "presolve"
        assert cert.detail["verdict"] == "certified"

    def test_tiny_epsilon_refuted(self, setting):
        layers, domain, _, delta = setting
        cert = presolve_global(layers, domain, delta, epsilon=1e-12)
        assert cert is not None
        assert cert.detail["verdict"] == "refuted"

    def test_verdicts_agree_with_exact_milp(self):
        rng = np.random.default_rng(2)
        checked = 0
        for trial in range(4):
            layers = random_chain(rng, depth=2, width=4)
            domain = Box.uniform(3, 0.0, 1.0)
            delta = 0.05
            exact = certify_exact_global(layers, domain, delta)
            assert exact.exact
            for factor in (0.3, 0.95, 1.05, 3.0):
                epsilon = max(exact.epsilon * factor, 1e-9)
                cert = presolve_global(layers, domain, delta, epsilon)
                if cert is None:
                    continue
                checked += 1
                if cert.detail["verdict"] == "certified":
                    assert exact.epsilon <= epsilon + 1e-7
                else:
                    assert exact.epsilon > epsilon - 1e-7
        assert checked > 0

    def test_certified_bound_dominates_attack(self, setting):
        """The proving and refuting sides must never cross."""
        layers, domain, _, delta = setting
        certified = presolve_global(layers, domain, delta, epsilon=1e6)
        refuted = presolve_global(layers, domain, delta, epsilon=1e-12)
        assert refuted.epsilon <= certified.epsilon + 1e-9


class TestPresolveManyParity:
    """Batched presolve is *bit-identical* to the per-query scalar tier.

    The contract (and what makes the bulk prefilter in
    ``repro.runtime.batch`` sound): entry ``q`` of a ``*_many`` result —
    verdict, ``epsilons`` array, output box, ``None`` fallthrough — must
    equal the scalar call on query ``q`` exactly, not approximately.
    """

    @staticmethod
    def assert_local_rows_match(layers, centers, deltas, epsilons, domain):
        batched = presolve_local_many(
            layers, centers, deltas, epsilons, domain=domain
        )
        for q in range(len(centers)):
            scalar = presolve_local(
                layers, centers[q], float(deltas[q]), float(epsilons[q]),
                domain=domain,
            )
            if scalar is None:
                assert batched[q] is None
                continue
            cert = batched[q]
            assert cert is not None
            assert cert.detail["verdict"] == scalar.detail["verdict"]
            np.testing.assert_array_equal(cert.epsilons, scalar.epsilons)
            np.testing.assert_array_equal(cert.output_lo, scalar.output_lo)
            np.testing.assert_array_equal(cert.output_hi, scalar.output_hi)
            assert cert.epsilon == scalar.epsilon

    @given(seed=st.integers(0, 2**20), queries=st.integers(1, 6))
    @settings(max_examples=20, deadline=None)
    def test_local_rows_match_scalar(self, seed, queries):
        rng = np.random.default_rng(seed)
        layers = random_chain(rng, depth=3)
        domain = Box.uniform(3, 0.0, 1.0)
        centers = domain.sample(rng, queries)
        deltas = rng.uniform(0.01, 0.15, size=queries)
        # Epsilon spread engineered to hit all three verdicts: tiny
        # (refuted), huge (certified), and near the bound (None window).
        ladder = np.array([1e-9, 1e6, 0.05, 0.3, 1.0, 3.0])
        epsilons = ladder[rng.integers(0, len(ladder), size=queries)]
        self.assert_local_rows_match(layers, centers, deltas, epsilons, domain)

    @given(seed=st.integers(0, 2**20), queries=st.integers(1, 6))
    @settings(max_examples=20, deadline=None)
    def test_global_rows_match_scalar(self, seed, queries):
        rng = np.random.default_rng(seed)
        layers = random_chain(rng, depth=3)
        domain = Box.uniform(3, 0.0, 1.0)
        deltas = rng.uniform(0.01, 0.15, size=queries)
        ladder = np.array([1e-9, 1e6, 0.05, 0.3, 1.0, 3.0])
        epsilons = ladder[rng.integers(0, len(ladder), size=queries)]
        batched = presolve_global_many(layers, domain, deltas, epsilons)
        for q in range(queries):
            scalar = presolve_global(
                layers, domain, float(deltas[q]), float(epsilons[q])
            )
            if scalar is None:
                assert batched[q] is None
                continue
            cert = batched[q]
            assert cert is not None
            assert cert.detail["verdict"] == scalar.detail["verdict"]
            np.testing.assert_array_equal(cert.epsilons, scalar.epsilons)
            assert cert.epsilon == scalar.epsilon

    def test_none_fallthrough_row_matches(self):
        # Seed 19 (see test_undecidable_epsilon_returns_none) leaves an
        # undecided ε window; that None must survive batching verbatim
        # while neighbouring decided rows still get certificates.
        layers = random_chain(np.random.default_rng(19), depth=3)
        domain = Box.uniform(3, 0.0, 1.0)
        center = np.array([0.4, 0.6, 0.5])
        delta = 0.05
        exact = certify_local_exact(layers, center, delta, domain=domain)
        ball = perturbation_ball(center, delta, domain)
        bounds = get_propagator("symbolic").propagate(layers, ball)
        base = affine_chain_forward(layers, center)
        ub = float(
            np.max(
                np.maximum(
                    np.abs(bounds.output.hi - base), np.abs(base - bounds.output.lo)
                )
            )
        )
        if ub <= exact.epsilon + 1e-9:
            pytest.skip("symbolic bound tight on this net: no undecided window")
        undecided_eps = 0.5 * (exact.epsilon + ub)
        centers = np.stack([center, center, center])
        deltas = np.full(3, delta)
        epsilons = np.array([1e6, undecided_eps, 1e-12])
        batched = presolve_local_many(
            layers, centers, deltas, epsilons, domain=domain
        )
        assert batched[0] is not None
        assert batched[0].detail["verdict"] == "certified"
        assert batched[1] is None
        assert batched[2] is not None
        assert batched[2].detail["verdict"] == "refuted"

    def test_parity_holds_with_zero_attack_samples(self):
        rng = np.random.default_rng(5)
        layers = random_chain(rng, depth=3)
        domain = Box.uniform(3, 0.0, 1.0)
        centers = domain.sample(rng, 4)
        deltas = np.full(4, 0.05)
        epsilons = np.array([1e-9, 1e6, 0.2, 1.0])
        batched = presolve_local_many(
            layers, centers, deltas, epsilons, domain=domain, attack_samples=0
        )
        for q in range(4):
            scalar = presolve_local(
                layers, centers[q], 0.05, float(epsilons[q]),
                domain=domain, attack_samples=0,
            )
            if scalar is None:
                assert batched[q] is None
            else:
                assert batched[q].detail["verdict"] == scalar.detail["verdict"]
                np.testing.assert_array_equal(batched[q].epsilons, scalar.epsilons)

    def test_parity_survives_forced_attack_chunking(self, monkeypatch):
        # Shrink the chunk budget so the attack runs one row at a time —
        # chunk boundaries must not change a single verdict.
        from repro.certify import presolve as presolve_mod

        rng = np.random.default_rng(6)
        layers = random_chain(rng, depth=3)
        domain = Box.uniform(3, 0.0, 1.0)
        centers = domain.sample(rng, 5)
        deltas = rng.uniform(0.02, 0.1, size=5)
        epsilons = np.array([1e-9, 1e-9, 1e6, 0.1, 0.5])
        unchunked = presolve_local_many(
            layers, centers, deltas, epsilons, domain=domain
        )
        monkeypatch.setattr(presolve_mod, "_ATTACK_CHUNK_ELEMS", 10)
        chunked = presolve_local_many(
            layers, centers, deltas, epsilons, domain=domain
        )
        for a, b in zip(unchunked, chunked):
            if a is None:
                assert b is None
            else:
                assert a.detail["verdict"] == b.detail["verdict"]
                np.testing.assert_array_equal(a.epsilons, b.epsilons)
        self.assert_local_rows_match(layers, centers, deltas, epsilons, domain)

    def test_dispatcher_routes_and_validates(self, setting):
        layers, domain, center, delta = setting
        local = presolve_many(
            layers, "local", centers=np.stack([center]),
            deltas=np.array([delta]), epsilons=np.array([1e6]), domain=domain,
        )
        assert local[0] is not None and local[0].detail["verdict"] == "certified"
        global_ = presolve_many(
            layers, "global", domain=domain,
            deltas=np.array([delta]), epsilons=np.array([1e6]),
        )
        assert global_[0] is not None
        with pytest.raises(ValueError, match="centers"):
            presolve_many(
                layers, "local", deltas=np.array([delta]),
                epsilons=np.array([1e6]),
            )
        with pytest.raises(ValueError, match="domain"):
            presolve_many(
                layers, "global", deltas=np.array([delta]),
                epsilons=np.array([1e6]),
            )
        with pytest.raises(ValueError, match="kind"):
            presolve_many(
                layers, "spectral", centers=np.stack([center]),
                deltas=np.array([delta]), epsilons=np.array([1e6]),
            )

    def test_scalar_deltas_and_epsilons_broadcast(self, setting):
        layers, domain, center, delta = setting
        centers = np.stack([center, center + 0.01])
        broadcast = presolve_local_many(
            layers, centers, delta, 1e6, domain=domain
        )
        explicit = presolve_local_many(
            layers, centers, np.full(2, delta), np.full(2, 1e6), domain=domain
        )
        for a, b in zip(broadcast, explicit):
            assert a is not None and b is not None
            np.testing.assert_array_equal(a.epsilons, b.epsilons)
