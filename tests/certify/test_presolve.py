"""Presolve tier: verdict soundness and agreement with the MILP answers."""

import numpy as np
import pytest

from repro.bounds import Box, get_propagator
from repro.certify import (
    certify_exact_global,
    certify_local_exact,
    presolve_global,
    presolve_local,
)
from repro.certify.presolve import perturbation_ball
from repro.nn.affine import AffineLayer, affine_chain_forward


def random_chain(rng, depth=2, width=5, in_dim=3, out_dim=2, scale=1.5):
    dims = [in_dim] + [width] * (depth - 1) + [out_dim]
    return [
        AffineLayer(
            scale * rng.standard_normal((dims[i + 1], dims[i])) / np.sqrt(dims[i]),
            0.2 * rng.standard_normal(dims[i + 1]),
            relu=i < depth - 1,
        )
        for i in range(depth)
    ]


@pytest.fixture(scope="module")
def setting():
    rng = np.random.default_rng(0)
    layers = random_chain(rng, depth=3)
    domain = Box.uniform(3, 0.0, 1.0)
    center = np.array([0.4, 0.6, 0.5])
    delta = 0.05
    return layers, domain, center, delta


class TestPresolveLocal:
    def test_generous_epsilon_certified(self, setting):
        layers, domain, center, delta = setting
        cert = presolve_local(layers, center, delta, epsilon=1e6, domain=domain)
        assert cert is not None
        assert cert.method == "presolve"
        assert cert.detail["verdict"] == "certified"
        assert not cert.exact
        assert cert.epsilon <= 1e6

    def test_tiny_epsilon_refuted(self, setting):
        layers, domain, center, delta = setting
        cert = presolve_local(layers, center, delta, epsilon=1e-12, domain=domain)
        assert cert is not None
        assert cert.detail["verdict"] == "refuted"
        # Refuted epsilons are attack lower bounds and must beat the target.
        assert cert.epsilon > 1e-12

    def test_undecidable_epsilon_returns_none(self):
        # Seed 19 is a net where the symbolic ball bound is measurably
        # looser than the exact optimum, leaving an undecided ε window.
        layers = random_chain(np.random.default_rng(19), depth=3)
        domain = Box.uniform(3, 0.0, 1.0)
        center = np.array([0.4, 0.6, 0.5])
        delta = 0.05
        exact = certify_local_exact(layers, center, delta, domain=domain)
        ball = perturbation_ball(center, delta, domain)
        bounds = get_propagator("symbolic").propagate(layers, ball)
        base = affine_chain_forward(layers, center)
        ub = float(
            np.max(
                np.maximum(
                    np.abs(bounds.output.hi - base), np.abs(base - bounds.output.lo)
                )
            )
        )
        if ub <= exact.epsilon + 1e-9:
            pytest.skip("symbolic bound tight on this net: no undecided window")
        epsilon = 0.5 * (exact.epsilon + ub)
        # bound cannot prove (ub > epsilon); attack cannot refute
        # (true epsilon < epsilon) — the tier must pass.
        assert presolve_local(layers, center, delta, epsilon, domain=domain) is None

    def test_verdicts_agree_with_milp(self):
        """Property (c): presolve answers match the exact MILP answers."""
        rng = np.random.default_rng(1)
        checked = 0
        for trial in range(8):
            layers = random_chain(rng, depth=int(rng.integers(2, 4)))
            domain = Box.uniform(3, 0.0, 1.0)
            center = domain.sample(rng)[0]
            delta = 0.08
            exact = certify_local_exact(layers, center, delta, domain=domain)
            for factor in (0.25, 0.9, 1.1, 4.0):
                epsilon = max(exact.epsilon * factor, 1e-9)
                cert = presolve_local(layers, center, delta, epsilon, domain=domain)
                if cert is None:
                    continue
                checked += 1
                if cert.detail["verdict"] == "certified":
                    assert exact.epsilon <= epsilon + 1e-7
                else:
                    assert exact.epsilon > epsilon - 1e-7
        assert checked > 0

    def test_layer_bounds_reuse(self, setting):
        layers, domain, center, delta = setting
        ball = perturbation_ball(center, delta, domain)
        shared = get_propagator("symbolic").propagate(layers, ball)
        direct = presolve_local(layers, center, delta, 1e6, domain=domain)
        reused = presolve_local(
            layers, center, delta, 1e6, domain=domain, layer_bounds=shared
        )
        assert np.allclose(direct.epsilons, reused.epsilons)
        assert reused.detail["bounds"] == "symbolic"


class TestPresolveGlobal:
    def test_generous_epsilon_certified(self, setting):
        layers, domain, _, delta = setting
        cert = presolve_global(layers, domain, delta, epsilon=1e6)
        assert cert is not None
        assert cert.method == "presolve"
        assert cert.detail["verdict"] == "certified"

    def test_tiny_epsilon_refuted(self, setting):
        layers, domain, _, delta = setting
        cert = presolve_global(layers, domain, delta, epsilon=1e-12)
        assert cert is not None
        assert cert.detail["verdict"] == "refuted"

    def test_verdicts_agree_with_exact_milp(self):
        rng = np.random.default_rng(2)
        checked = 0
        for trial in range(4):
            layers = random_chain(rng, depth=2, width=4)
            domain = Box.uniform(3, 0.0, 1.0)
            delta = 0.05
            exact = certify_exact_global(layers, domain, delta)
            assert exact.exact
            for factor in (0.3, 0.95, 1.05, 3.0):
                epsilon = max(exact.epsilon * factor, 1e-9)
                cert = presolve_global(layers, domain, delta, epsilon)
                if cert is None:
                    continue
                checked += 1
                if cert.detail["verdict"] == "certified":
                    assert exact.epsilon <= epsilon + 1e-7
                else:
                    assert exact.epsilon > epsilon - 1e-7
        assert checked > 0

    def test_certified_bound_dominates_attack(self, setting):
        """The proving and refuting sides must never cross."""
        layers, domain, _, delta = setting
        certified = presolve_global(layers, domain, delta, epsilon=1e6)
        refuted = presolve_global(layers, domain, delta, epsilon=1e-12)
        assert refuted.epsilon <= certified.epsilon + 1e-9
