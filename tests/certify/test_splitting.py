"""Input-splitting tier: verdict agreement, tiling invariant, deadlines."""

import numpy as np
import pytest

from repro.bounds import Box
from repro.certify import (
    SplitConfig,
    certify_exact_global,
    certify_global_split,
    certify_local_exact,
    certify_local_split,
)
from repro.zoo import get_network


def root_bound(layers, box):
    """Symbolic variation bound at the root (what the tier starts from)."""
    from repro.bounds import get_propagator
    from repro.certify.presolve import variation_from_reference
    from repro.nn.affine import affine_chain_forward

    bounds = get_propagator("symbolic").propagate(layers, box)
    base = affine_chain_forward(layers, box.center)
    out = bounds.output
    return float(variation_from_reference(out.lo, out.hi, base).max())


def undecided_epsilon(layers, center, delta, domain, exact_eps):
    """A target strictly between the exact ε and the root bound, or None.

    Such a target cannot be proved at the root (bound too loose) and
    cannot be refuted anywhere (it exceeds the true ε), so the tier is
    forced to actually split.
    """
    from repro.certify.presolve import perturbation_ball

    ball = perturbation_ball(center, delta, domain)
    ub = root_bound(layers, ball)
    if ub <= exact_eps * 1.0001:
        return None
    return 0.5 * (exact_eps + ub)


def random_chain(rng, depth=3, width=5, in_dim=3, out_dim=2, scale=1.5):
    from repro.nn.affine import AffineLayer

    dims = [in_dim] + [width] * (depth - 1) + [out_dim]
    return [
        AffineLayer(
            scale * rng.standard_normal((dims[i + 1], dims[i])) / np.sqrt(dims[i]),
            0.2 * rng.standard_normal(dims[i + 1]),
            relu=i < depth - 1,
        )
        for i in range(depth)
    ]


@pytest.fixture(scope="module")
def setting():
    rng = np.random.default_rng(0)
    layers = random_chain(rng, depth=3)
    domain = Box.uniform(3, 0.0, 1.0)
    center = np.array([0.4, 0.6, 0.5])
    delta = 0.05
    return layers, domain, center, delta


class TestConfigValidation:
    def test_bad_max_domains(self):
        with pytest.raises(ValueError):
            SplitConfig(max_domains=0)

    def test_bad_depth(self):
        with pytest.raises(ValueError):
            SplitConfig(max_depth=-1)

    def test_bad_time_limit(self):
        with pytest.raises(ValueError):
            SplitConfig(time_limit=0.0)
        with pytest.raises(ValueError):
            SplitConfig(time_limit=float("nan"))


class TestLocalSplit:
    def test_certified_and_refuted_basics(self, setting):
        layers, domain, center, delta = setting
        cert = certify_local_split(layers, center, delta, 1e6, domain=domain)
        assert cert.method == "split"
        assert cert.verdict == "certified"
        assert cert.exact
        refuted = certify_local_split(layers, center, delta, 1e-9, domain=domain)
        assert refuted.verdict == "refuted"
        assert refuted.epsilon > 1e-9  # witness beats the target

    def test_output_range_sound_on_every_verdict(self, setting):
        """output_lo/hi must enclose the true reachable outputs even for
        refuted (and interrupted) runs, where no subdomain hull exists."""
        layers, domain, center, delta = setting
        exact = certify_local_exact(layers, center, delta, domain=domain)
        for epsilon in (1e-9, exact.epsilon * 1.2):
            cert = certify_local_split(layers, center, delta, epsilon, domain=domain)
            assert np.all(cert.output_lo <= exact.output_lo + 1e-7)
            assert np.all(cert.output_hi >= exact.output_hi - 1e-7)

    def test_verdicts_agree_with_monolithic_milp(self):
        """Property: split verdicts == certify_local_exact verdicts."""
        rng = np.random.default_rng(1)
        checked = 0
        for trial in range(6):
            layers = random_chain(rng, depth=int(rng.integers(2, 4)))
            domain = Box.uniform(3, 0.0, 1.0)
            center = domain.sample(rng)[0]
            delta = 0.08
            exact = certify_local_exact(layers, center, delta, domain=domain)
            for factor in (0.3, 0.85, 1.15, 3.0):
                epsilon = max(exact.epsilon * factor, 1e-9)
                cert = certify_local_split(
                    layers, center, delta, epsilon, domain=domain
                )
                assert cert.verdict in ("certified", "refuted")
                checked += 1
                if cert.verdict == "certified":
                    assert exact.epsilon <= epsilon + 1e-7
                else:
                    assert exact.epsilon > epsilon - 1e-7
        assert checked > 0

    def test_verdicts_agree_on_zoo_network(self):
        """The satellite's zoo check: Table-1 DNN-1, both verdict sides."""
        entry = get_network(1)
        layers = entry.network.to_affine_layers()
        domain = Box.uniform(entry.network.input_dim, 0.0, 1.0)
        rng = np.random.default_rng(5)
        center = domain.sample(rng)[0]
        delta = 10 * entry.delta  # widen the ball so bounds are not trivial
        exact = certify_local_exact(layers, center, delta, domain=domain)
        for factor in (0.8, 1.25):
            epsilon = exact.epsilon * factor
            cert = certify_local_split(layers, center, delta, epsilon, domain=domain)
            expected = "certified" if exact.epsilon <= epsilon else "refuted"
            assert cert.verdict == expected

    def test_milp_leaf_path_agrees(self):
        """max_depth=0 forces a root-undecided query straight to a MILP
        leaf, so the verdict comes from the leaf solver alone."""
        rng = np.random.default_rng(19)
        layers = random_chain(rng, depth=3)
        domain = Box.uniform(3, 0.0, 1.0)
        center = np.array([0.4, 0.6, 0.5])
        delta = 0.05
        exact = certify_local_exact(layers, center, delta, domain=domain)
        epsilon = undecided_epsilon(layers, center, delta, domain, exact.epsilon)
        if epsilon is None:
            pytest.skip("symbolic bound tight on this net: no undecided window")
        cert = certify_local_split(
            layers, center, delta, epsilon, domain=domain,
            config=SplitConfig(max_depth=0),
        )
        assert cert.verdict == "certified"  # exact ε < target by choice
        assert cert.detail["milp_leaves"] == 1  # the root itself

    def test_certified_bound_is_sound(self, setting):
        layers, domain, center, delta = setting
        exact = certify_local_exact(layers, center, delta, domain=domain)
        cert = certify_local_split(
            layers, center, delta, exact.epsilon * 1.2, domain=domain
        )
        assert cert.verdict == "certified"
        # The per-output bounds must dominate the true variation.
        assert np.all(cert.epsilons >= exact.epsilons - 1e-7)


class TestTilingInvariant:
    """Emitted subdomains exactly tile the root box (the soundness core)."""

    @staticmethod
    def assert_exact_tiling(boxes, root_lo, root_hi):
        los = np.stack([lo for lo, _ in boxes])
        his = np.stack([hi for _, hi in boxes])
        # (a) containment in the root box
        assert np.all(los >= root_lo - 1e-12)
        assert np.all(his <= root_hi + 1e-12)
        # (b) no volume lost: the subdomain volumes sum to the root's
        root_volume = float(np.prod(root_hi - root_lo))
        volumes = np.prod(his - los, axis=1)
        assert np.sum(volumes) == pytest.approx(root_volume, rel=1e-9)
        # (c) no overlap: every pairwise intersection has zero volume
        for i in range(len(boxes)):
            inter_lo = np.maximum(los[i], los[i + 1 :])
            inter_hi = np.minimum(his[i], his[i + 1 :])
            overlap = np.prod(np.clip(inter_hi - inter_lo, 0.0, None), axis=1)
            assert np.all(overlap <= 1e-15)

    def test_local_leaves_tile_the_ball(self):
        rng = np.random.default_rng(3)
        layers = random_chain(rng, depth=3, width=8)
        domain = Box.uniform(3, 0.0, 1.0)
        center = np.array([0.5, 0.5, 0.5])
        delta = 0.2
        exact = certify_local_exact(layers, center, delta, domain=domain)
        epsilon = undecided_epsilon(layers, center, delta, domain, exact.epsilon)
        if epsilon is None:
            pytest.skip("symbolic bound tight on this net: no undecided window")
        config = SplitConfig(record_boxes=True, max_domains=64)
        cert = certify_local_split(
            layers, center, delta, epsilon, domain=domain, config=config,
        )
        assert cert.verdict == "certified"
        boxes = cert.detail["leaf_boxes"]
        assert len(boxes) > 1  # the run actually split
        from repro.certify.presolve import perturbation_ball

        ball = perturbation_ball(center, delta, domain)
        self.assert_exact_tiling(boxes, ball.lo, ball.hi)

    def test_global_leaves_tile_the_domain(self, setting):
        layers, domain, _, delta = setting
        g_exact = certify_exact_global(layers, domain, delta)
        config = SplitConfig(record_boxes=True, max_domains=64)
        cert = certify_global_split(
            layers, domain, delta, g_exact.epsilon * 1.05, config=config
        )
        assert cert.verdict == "certified"
        boxes = cert.detail["leaf_boxes"]
        assert len(boxes) > 1
        self.assert_exact_tiling(boxes, domain.lo, domain.hi)


class TestGlobalSplit:
    def test_verdicts_agree_with_exact_milp(self):
        rng = np.random.default_rng(2)
        checked = 0
        for trial in range(3):
            layers = random_chain(rng, depth=2, width=4)
            domain = Box.uniform(3, 0.0, 1.0)
            delta = 0.05
            exact = certify_exact_global(layers, domain, delta)
            assert exact.exact
            for factor in (0.4, 0.9, 1.1, 2.5):
                epsilon = max(exact.epsilon * factor, 1e-9)
                cert = certify_global_split(layers, domain, delta, epsilon)
                assert cert.verdict in ("certified", "refuted")
                checked += 1
                if cert.verdict == "certified":
                    assert exact.epsilon <= epsilon + 1e-7
                else:
                    assert exact.epsilon > epsilon - 1e-7
        assert checked > 0

    def test_twin_clipped_to_full_domain_not_leaf(self):
        """The leaf MILP must let the perturbed copy leave the leaf box
        (clipping it to the leaf would unsoundly shrink Problem 1): the
        split ε bound must therefore dominate the monolithic exact ε."""
        rng = np.random.default_rng(11)
        layers = random_chain(rng, depth=2, width=4)
        domain = Box.uniform(3, 0.0, 1.0)
        delta = 0.3  # large: pairs frequently straddle subdomain borders
        exact = certify_exact_global(layers, domain, delta)
        cert = certify_global_split(
            layers, domain, delta, exact.epsilon * 1.02,
            config=SplitConfig(max_domains=32),
        )
        assert cert.verdict == "certified"
        assert cert.epsilon >= exact.epsilon - 1e-7

    def test_refuted_records_witness_pair(self, setting):
        layers, domain, _, delta = setting
        cert = certify_global_split(layers, domain, delta, 1e-9)
        assert cert.verdict == "refuted"
        assert cert.exact


class TestDeadlineSoundness:
    def test_interrupted_run_is_undecided_with_finite_bound(self):
        rng = np.random.default_rng(4)
        layers = random_chain(rng, depth=3, width=10)
        domain = Box.uniform(3, 0.0, 1.0)
        center = np.array([0.5, 0.5, 0.5])
        delta = 0.15
        exact = certify_local_exact(layers, center, delta, domain=domain)
        # A deadline that expires immediately: nothing gets decided
        # beyond the root bound, which is too loose for this target.
        config = SplitConfig(time_limit=1e-9)
        cert = certify_local_split(
            layers, center, delta, exact.epsilon * 1.01, domain=domain,
            config=config,
        )
        if cert.verdict != "undecided":
            pytest.skip("query decided before the deadline could fire")
        assert not cert.exact
        assert np.all(np.isfinite(cert.epsilons))
        # The interval bound carried out must still be sound.
        assert np.all(cert.epsilons >= exact.epsilons - 1e-7)

    def test_global_interrupted_run_sound(self, setting):
        layers, domain, _, delta = setting
        exact = certify_exact_global(layers, domain, delta)
        cert = certify_global_split(
            layers, domain, delta, exact.epsilon * 1.01,
            config=SplitConfig(time_limit=1e-9),
        )
        if cert.verdict != "undecided":
            pytest.skip("query decided before the deadline could fire")
        assert not cert.exact
        assert np.all(np.isfinite(cert.epsilons))
        assert cert.epsilon >= exact.epsilon - 1e-7

    def test_unlimited_run_always_decides(self, setting):
        layers, domain, center, delta = setting
        exact = certify_local_exact(layers, center, delta, domain=domain)
        for factor in (0.9, 1.1):
            cert = certify_local_split(
                layers, center, delta, exact.epsilon * factor, domain=domain
            )
            assert cert.verdict in ("certified", "refuted")
            assert cert.exact


class TestParallelLeaves:
    def test_leaf_workers_match_serial(self, setting):
        layers, domain, center, delta = setting
        exact = certify_local_exact(layers, center, delta, domain=domain)
        epsilon = exact.epsilon * 1.05
        serial = certify_local_split(
            layers, center, delta, epsilon, domain=domain,
            config=SplitConfig(max_depth=1, seed=7),
        )
        parallel = certify_local_split(
            layers, center, delta, epsilon, domain=domain,
            config=SplitConfig(max_depth=1, seed=7, leaf_workers=2),
        )
        assert serial.verdict == parallel.verdict == "certified"
        assert np.allclose(serial.epsilons, parallel.epsilons)
