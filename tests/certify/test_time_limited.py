"""Soundness of certification under resource limits.

The paper's premise (Algorithm 1): a timed-out MILP still contributes a
sound bound.  ``certify_exact_global`` must therefore never raise under
a time limit, never use a limited incumbent objective on the bounding
side, and flag the certificate as non-exact when any solve was cut off.
"""

import math

import numpy as np
import pytest

from repro.bounds import Box
from repro.certify import certify_exact_global
from repro.milp.solution import SolveResult, SolveStatus
from repro.nn.affine import AffineLayer, affine_chain_forward
from repro.runtime import BatchCertifier, global_query


def hard_chain(rng, width=24, depth=3, in_dim=6):
    """A network with enough unstable neurons that tiny limits bite."""
    dims = [in_dim] + [width] * (depth - 1) + [1]
    return [
        AffineLayer(
            rng.standard_normal((dims[i + 1], dims[i])),
            0.05 * rng.standard_normal(dims[i + 1]),
            relu=i < depth - 1,
        )
        for i in range(depth)
    ]


@pytest.fixture(scope="module")
def hard():
    return hard_chain(np.random.default_rng(0))


@pytest.fixture(scope="module")
def domain():
    return Box.uniform(6, 0.0, 1.0)


class TestSoundBound:
    def test_prefers_dual_bound(self):
        r = SolveResult(
            status=SolveStatus.TIME_LIMIT, objective=1.0, bound=2.5
        )
        assert r.sound_bound() == 2.5

    def test_optimal_objective_fallback(self):
        r = SolveResult(status=SolveStatus.OPTIMAL, objective=1.25)
        assert r.sound_bound() == 1.25

    def test_limited_incumbent_is_never_a_bound(self):
        # The crux of the bug: a time-limited solve with only a primal
        # incumbent must yield None, not the (unsound) incumbent.
        r = SolveResult(status=SolveStatus.TIME_LIMIT, objective=1.0)
        assert r.sound_bound() is None

    def test_error_status(self):
        r = SolveResult(status=SolveStatus.ERROR)
        assert r.sound_bound() is None


class TestTimeLimitedExactGlobal:
    def test_tiny_limit_returns_finite_sound_eps(self, hard, domain):
        rng = np.random.default_rng(7)
        delta = 0.02
        cert = certify_exact_global(hard, domain, delta, time_limit=0.01)
        assert np.all(np.isfinite(cert.epsilons))
        assert not cert.exact
        assert cert.detail["limit_hits"] > 0
        # Soundness: any sampled twin evaluation must respect eps.
        for _ in range(200):
            x = domain.sample(rng)[0]
            xh = np.clip(x + rng.uniform(-delta, delta, 6), domain.lo, domain.hi)
            dist = abs(
                affine_chain_forward(hard, xh)[0] - affine_chain_forward(hard, x)[0]
            )
            assert dist <= cert.epsilons[0] + 1e-7

    def test_limited_never_tighter_than_exact(self, domain):
        # Small enough to solve exactly; the limited run may or may not
        # hit its limit, but must never certify a tighter epsilon.
        layers = hard_chain(np.random.default_rng(3), width=6, depth=2)
        delta = 0.02
        exact = certify_exact_global(layers, domain, delta)
        assert exact.exact
        limited = certify_exact_global(layers, domain, delta, time_limit=0.005)
        assert limited.epsilons[0] >= exact.epsilons[0] - 1e-7

    def test_btne_limited(self, hard, domain):
        cert = certify_exact_global(
            hard, domain, 0.02, encoding="btne", time_limit=0.01
        )
        assert np.all(np.isfinite(cert.epsilons))

    def test_non_limit_failure_still_raises(self, domain, monkeypatch):
        # Only resource-limit statuses may fall back to a bound; a
        # genuine solver failure must not be masked as a limit hit.
        layers = hard_chain(np.random.default_rng(2), width=4, depth=2)

        def broken_solve_objectives(model, objectives, backend="scipy", time_limit=None):
            return [
                SolveResult(status=SolveStatus.ERROR, message="boom")
                for _ in objectives
            ]

        monkeypatch.setattr(
            "repro.certify.exact.session_solve_objectives",
            broken_solve_objectives,
        )
        with pytest.raises(RuntimeError, match="status=error"):
            certify_exact_global(layers, domain, 0.02, time_limit=0.01)

    def test_unlimited_stays_exact(self, domain):
        small = hard_chain(np.random.default_rng(1), width=4, depth=2)
        cert = certify_exact_global(small, domain, 0.05)
        assert cert.exact
        assert cert.detail["limit_hits"] == 0


class TestBatchTimeLimits:
    def test_none_means_engine_default(self, hard, domain):
        q = global_query(hard, domain, 0.02)
        assert q.time_limit is None
        assert q.effective_time_limit() == 30.0

    def test_inf_means_unlimited(self, hard, domain):
        q = global_query(hard, domain, 0.02, time_limit=math.inf)
        assert q.effective_time_limit() is None

    def test_explicit_value_passes_through(self, hard, domain):
        q = global_query(hard, domain, 0.02, time_limit=0.25)
        assert q.effective_time_limit() == 0.25

    def test_nonpositive_rejected(self, hard, domain):
        with pytest.raises(ValueError, match="time_limit"):
            global_query(hard, domain, 0.02, time_limit=0.0)
        with pytest.raises(ValueError, match="time_limit"):
            global_query(hard, domain, 0.02, time_limit=-5.0)
        with pytest.raises(ValueError, match="time_limit"):
            # NaN would silently disable the safeguard at the solver.
            global_query(hard, domain, 0.02, time_limit=math.nan)

    def test_global_exact_batch_honors_limit(self, hard, domain):
        q = global_query(hard, domain, 0.02, time_limit=0.01, exact=True)
        results = BatchCertifier(max_workers=1).run([q])
        assert results[0].ok, results[0].error
        cert = results[0].certificate
        assert np.all(np.isfinite(cert.epsilons))
        assert not cert.exact

    def test_global_batch_with_refinement_honors_limit(self, hard, domain):
        # Algorithm 1 with refinement uses MILPs; a tiny limit must not
        # crash the query and the result must still be a certificate.
        q = global_query(
            hard, domain, 0.02, window=2, refine_count=2, time_limit=0.01
        )
        results = BatchCertifier(max_workers=1).run([q])
        assert results[0].ok, results[0].error
        assert np.all(np.isfinite(results[0].certificate.epsilons))
