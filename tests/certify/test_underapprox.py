"""Dataset-wise PGD under-approximation tests."""

import numpy as np
import pytest

from repro.bounds import Box
from repro.certify import certify_exact_global, pgd_underapproximation
from repro.nn import Dense, Network


@pytest.fixture(scope="module")
def net():
    rng = np.random.default_rng(3)
    return Network(
        (3,), [Dense(3, 5, relu=True, rng=rng), Dense(5, 2, rng=rng)]
    )


@pytest.fixture(scope="module")
def dataset():
    rng = np.random.default_rng(4)
    return rng.uniform(0, 1, (15, 3))


class TestPgdUnderapproximation:
    def test_is_lower_bound(self, net, dataset):
        delta = 0.05
        under = pgd_underapproximation(
            net, dataset, delta, steps=20, clip_lo=0.0, clip_hi=1.0
        )
        exact = certify_exact_global(net, Box.uniform(3, 0, 1), delta)
        assert np.all(under.epsilons <= exact.epsilons + 1e-7)

    def test_achievable(self, net, dataset):
        """ε̲ must be witnessed by an actual sample pair."""
        delta = 0.05
        under = pgd_underapproximation(
            net, dataset, delta, steps=20, clip_lo=0.0, clip_hi=1.0
        )
        # PGD reports only variations it actually achieved, so each
        # epsilon is a realizable output variation (> 0 for a generic net).
        assert np.all(under.epsilons >= 0.0)
        assert under.epsilon > 0.0

    def test_outputs_filter(self, net, dataset):
        under = pgd_underapproximation(
            net, dataset, 0.05, outputs=[1], steps=10
        )
        assert under.epsilons[0] == 0.0
        assert under.epsilons[1] > 0.0

    def test_max_samples(self, net, dataset):
        under = pgd_underapproximation(
            net, dataset, 0.05, steps=5, max_samples=3
        )
        assert under.detail["samples"] == 3

    def test_monotone_in_delta(self, net, dataset):
        small = pgd_underapproximation(net, dataset, 0.01, steps=15, seed=1)
        large = pgd_underapproximation(net, dataset, 0.1, steps=15, seed=1)
        assert large.epsilon >= small.epsilon - 1e-9

    def test_certificate_metadata(self, net, dataset):
        under = pgd_underapproximation(net, dataset, 0.05, steps=5)
        assert under.method == "pgd-under"
        assert not under.exact
        assert under.solve_time > 0
