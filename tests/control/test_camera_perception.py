"""Camera renderer and perception-model tests."""

import numpy as np
import pytest

from repro.control import CameraModel, train_perception_model
from repro.control.perception import build_perception_network


@pytest.fixture(scope="module")
def camera():
    return CameraModel(height=6, width=12)


class TestCamera:
    def test_image_shape_and_range(self, camera):
        img = camera.render(1.0)
        assert img.shape == (1, 6, 12)
        assert img.min() >= 0.0 and img.max() <= 1.0

    def test_deterministic(self, camera):
        a = camera.render(1.2, lateral=0.05, illumination=1.1)
        b = camera.render(1.2, lateral=0.05, illumination=1.1)
        assert np.array_equal(a, b)

    def test_closer_vehicle_is_larger(self, camera):
        """Nearer vehicles cover more dark pixels."""
        near = camera.render(0.5)
        far = camera.render(1.9)
        dark_near = (near < 0.3).sum()
        dark_far = (far < 0.3).sum()
        assert dark_near > dark_far

    def test_distance_monotonically_changes_image(self, camera):
        """Mean brightness varies monotonically enough with distance."""
        distances = np.linspace(0.5, 1.9, 15)
        means = [camera.render(d).mean() for d in distances]
        diffs = np.diff(means)
        assert (diffs > 0).mean() > 0.8  # mostly increasing (smaller car)

    def test_lateral_shift_moves_vehicle(self, camera):
        left = camera.render(1.0, lateral=-0.15)
        right = camera.render(1.0, lateral=0.15)
        assert not np.allclose(left, right)

    def test_illumination_scales(self, camera):
        dark = camera.render(1.0, illumination=0.8)
        bright = camera.render(1.0, illumination=1.2)
        assert bright.mean() > dark.mean()

    def test_render_batch(self, camera):
        rng = np.random.default_rng(0)
        batch = camera.render_batch(np.array([0.6, 1.0, 1.5]), rng=rng)
        assert batch.shape == (3, 1, 6, 12)

    def test_distance_clipped_to_validity(self, camera):
        # Out-of-range distances render like the clipped extremes.
        assert np.allclose(camera.render(0.01), camera.render(camera.d_min))


class TestPerception:
    def test_network_shape(self, camera):
        rng = np.random.default_rng(0)
        net = build_perception_network(camera, rng, conv_channels=(2,))
        assert net.input_shape == camera.image_shape
        assert net.output_dim == 1

    def test_training_learns_distance(self, camera):
        pm = train_perception_model(
            camera,
            n_samples=300,
            epochs=40,
            seed=0,
            conv_channels=(2,),
            lateral_range=0.0,
            illum_range=0.0,
            adversarial_rounds=1,
        )
        # Predictions must correlate strongly with the true distance.
        distances = np.linspace(0.5, 1.9, 20)
        preds = [pm.estimate(camera.render(d)) for d in distances]
        corr = np.corrcoef(distances, preds)[0, 1]
        assert corr > 0.9
        assert pm.model_inaccuracy < 0.5

    def test_model_inaccuracy_is_worst_case(self, camera):
        pm = train_perception_model(
            camera, n_samples=100, epochs=10, seed=1, conv_channels=(2,),
            adversarial_rounds=1,
        )
        assert pm.model_inaccuracy >= 0.0
