"""Plant dynamics and feedback-controller tests."""

import numpy as np
import pytest

from repro.control import AccDynamics, FeedbackController


@pytest.fixture()
def dyn():
    return AccDynamics()


@pytest.fixture()
def ctl():
    return FeedbackController()


class TestDynamics:
    def test_paper_matrices(self, dyn):
        assert np.allclose(dyn.a, [[1.0, -0.1], [0.0, 1.0]])
        assert np.allclose(dyn.b, [-0.005, 0.1])
        assert dyn.w1_bound == pytest.approx(0.2)
        assert np.allclose(dyn.w2_bound, [5e-4, 3e-5])

    def test_state_conversions_roundtrip(self, dyn):
        x = dyn.to_state(1.5, 0.5)
        assert np.allclose(x, [0.3, 0.1])
        d, v = dyn.to_raw(x)
        assert (d, v) == pytest.approx((1.5, 0.5))

    def test_step_nominal(self, dyn):
        x = np.array([0.1, 0.2])
        nxt = dyn.step(x, u=0.0)
        assert np.allclose(nxt, dyn.a @ x)

    def test_step_rejects_out_of_bound_w1(self, dyn):
        with pytest.raises(ValueError):
            dyn.step(np.zeros(2), 0.0, w1=0.5)

    def test_step_rejects_out_of_bound_w2(self, dyn):
        with pytest.raises(ValueError):
            dyn.step(np.zeros(2), 0.0, w2=np.array([0.1, 0.0]))

    def test_safe_state_bounds(self, dyn):
        lo, hi = dyn.safe_state_bounds()
        assert np.allclose(lo, [-0.7, -0.3])
        assert np.allclose(hi, [0.7, 0.3])

    def test_is_safe(self, dyn):
        assert dyn.is_safe(np.zeros(2))
        assert not dyn.is_safe(np.array([0.8, 0.0]))
        assert not dyn.is_safe(np.array([0.0, 0.35]))

    def test_sampled_disturbances_admissible(self, dyn):
        rng = np.random.default_rng(0)
        for _ in range(50):
            assert abs(dyn.sample_w1(rng)) <= dyn.w1_bound
            assert np.all(np.abs(dyn.sample_w2(rng)) <= dyn.w2_bound)

    def test_tracking_steady_state(self, dyn):
        """With v_e = v_r (x2 = -w1) the distance drift cancels."""
        x = np.array([0.0, -0.15])
        nxt = dyn.step(x, u=0.0, w1=0.15)
        assert nxt[0] == pytest.approx(0.0, abs=1e-12)


class TestController:
    def test_linear_law(self, ctl):
        x = np.array([0.2, -0.1])
        assert ctl.control(x) == pytest.approx(float(ctl.k @ x))

    def test_saturation(self):
        ctl = FeedbackController(u_limits=(-1.0, 1.0))
        assert ctl.control(np.array([100.0, 0.0])) == 1.0
        assert ctl.control(np.array([-100.0, 0.0])) == -1.0

    def test_closed_loop_matrix(self, dyn, ctl):
        acl = ctl.closed_loop_matrix(dyn.a, dyn.b)
        assert acl.shape == (2, 2)
        assert np.allclose(acl, dyn.a + np.outer(dyn.b, ctl.k))

    def test_default_gain_is_stabilizing(self, dyn, ctl):
        acl = ctl.closed_loop_matrix(dyn.a, dyn.b)
        assert np.max(np.abs(np.linalg.eigvals(acl))) < 1.0

    def test_closed_loop_converges(self, dyn, ctl):
        x = np.array([0.3, -0.1])
        for _ in range(500):
            x = dyn.step(x, ctl.control(x))
        assert np.linalg.norm(x) < 1e-3
