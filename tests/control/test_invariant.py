"""2-D polytope geometry and robust invariant set computation."""

import numpy as np
import pytest

from repro.control import AccDynamics, FeedbackController, Polytope2D
from repro.control.invariant import (
    disturbance_support,
    max_safe_estimation_error,
    robust_invariant_set,
)


class TestPolytope:
    def test_box_vertices(self):
        box = Polytope2D.from_box(np.array([0.0, 0.0]), np.array([2.0, 1.0]))
        verts = box.vertices()
        assert verts.shape == (4, 2)
        assert box.area() == pytest.approx(2.0)

    def test_contains(self):
        box = Polytope2D.from_box(np.array([-1, -1.0]), np.array([1, 1.0]))
        assert box.contains(np.zeros(2))
        assert not box.contains(np.array([2.0, 0.0]))

    def test_intersect(self):
        a = Polytope2D.from_box(np.array([0, 0.0]), np.array([2, 2.0]))
        b = Polytope2D.from_box(np.array([1, 1.0]), np.array([3, 3.0]))
        inter = a.intersect(b)
        assert inter.area() == pytest.approx(1.0)
        assert inter.contains(np.array([1.5, 1.5]))

    def test_empty_after_disjoint_intersection(self):
        a = Polytope2D.from_box(np.array([0, 0.0]), np.array([1, 1.0]))
        b = Polytope2D.from_box(np.array([2, 2.0]), np.array([3, 3.0]))
        assert a.intersect(b).is_empty()

    def test_support_function(self):
        box = Polytope2D.from_box(np.array([-1, -2.0]), np.array([1, 2.0]))
        assert box.support(np.array([1.0, 0.0])) == pytest.approx(1.0)
        assert box.support(np.array([0.0, -1.0])) == pytest.approx(2.0)

    def test_remove_redundancy_keeps_geometry(self):
        box = Polytope2D.from_box(np.array([0, 0.0]), np.array([1, 1.0]))
        # Add a redundant halfplane far away.
        noisy = Polytope2D(
            np.vstack([box.a, [[1.0, 0.0]]]), np.concatenate([box.b, [10.0]])
        )
        clean = noisy.remove_redundancy()
        assert clean.area() == pytest.approx(1.0)
        assert clean.a.shape[0] == 4

    def test_linear_preimage(self):
        box = Polytope2D.from_box(np.array([-1, -1.0]), np.array([1, 1.0]))
        half = box.linear_preimage(np.eye(2) * 2.0, np.zeros(4))
        # Pre-image of the box under x -> 2x is the half-size box.
        assert half.area() == pytest.approx(1.0)

    def test_triangle_area(self):
        tri = Polytope2D(
            np.array([[-1.0, 0.0], [0.0, -1.0], [1.0, 1.0]]),
            np.array([0.0, 0.0, 1.0]),
        )
        assert tri.area() == pytest.approx(0.5)


class TestDisturbanceSupport:
    def test_segment_generator(self):
        normals = np.array([[1.0, 0.0], [0.0, 1.0]])
        support = disturbance_support(normals, [(np.array([1.0, 0.0]), 0.5)])
        assert support == pytest.approx([0.5, 0.0])

    def test_box_disturbance(self):
        normals = np.array([[1.0, 0.0], [-1.0, -1.0]])
        support = disturbance_support(normals, [], box=np.array([0.1, 0.2]))
        assert support == pytest.approx([0.1, 0.3])

    def test_combined(self):
        normals = np.array([[1.0, 0.0]])
        support = disturbance_support(
            normals, [(np.array([2.0, 0.0]), 0.5)], box=np.array([0.1, 0.0])
        )
        assert support == pytest.approx([1.1])


class TestInvariantSet:
    def test_pure_contraction_keeps_whole_box(self):
        safe = Polytope2D.from_box(np.array([-1, -1.0]), np.array([1, 1.0]))
        inv = robust_invariant_set(np.eye(2) * 0.5, [], safe)
        assert inv.area() == pytest.approx(4.0, rel=1e-6)

    def test_one_step_invariance_property(self):
        """Sampled points of the invariant set stay inside after one
        worst-case-ish step (randomized disturbances)."""
        dyn = AccDynamics()
        ctl = FeedbackController()
        acl = ctl.closed_loop_matrix(dyn.a, dyn.b)
        lo, hi = dyn.safe_state_bounds()
        safe = Polytope2D.from_box(lo, hi)
        err = 0.1
        gens = [(dyn.b * ctl.k[0], err), (dyn.e, dyn.w1_bound)]
        inv = robust_invariant_set(acl, gens, safe, box=dyn.w2_bound)
        assert not inv.is_empty()
        rng = np.random.default_rng(0)
        verts = inv.vertices()
        for _ in range(200):
            w = rng.random(len(verts))
            x = (w / w.sum()) @ verts  # random convex combination
            disturbance = (
                dyn.b * ctl.k[0] * rng.uniform(-err, err)
                + dyn.e * rng.uniform(-dyn.w1_bound, dyn.w1_bound)
                + rng.uniform(-dyn.w2_bound, dyn.w2_bound)
            )
            nxt = acl @ x + disturbance
            assert inv.contains(nxt, tol=1e-6)

    def test_unstable_map_gives_small_or_empty(self):
        safe = Polytope2D.from_box(np.array([-1, -1.0]), np.array([1, 1.0]))
        inv = robust_invariant_set(
            np.array([[1.5, 0.0], [0.0, 0.3]]),
            [(np.array([1.0, 0.0]), 0.2)],
            safe,
        )
        assert inv.area() < 4.0

    def test_paper_tolerance_reproduced(self):
        """The calibrated loop tolerates ē ≈ 0.14 (paper's threshold)."""
        tol = max_safe_estimation_error(AccDynamics(), FeedbackController())
        assert 0.12 <= tol <= 0.16

    def test_tolerance_zero_without_feedback(self):
        # No feedback: the open loop is marginally stable and drifts
        # under w1, so no robust invariant set exists -> tolerance 0.
        ctl = FeedbackController(k=np.zeros(2))
        tol = max_safe_estimation_error(AccDynamics(), ctl)
        assert tol == 0.0

    def test_tolerance_monotone_in_disturbance(self):
        ctl = FeedbackController()
        tol_small = max_safe_estimation_error(AccDynamics(w1_bound=0.05), ctl)
        tol_large = max_safe_estimation_error(AccDynamics(w1_bound=0.2), ctl)
        assert tol_small >= tol_large - 1e-6
