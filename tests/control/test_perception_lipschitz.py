"""Perception training with hard Lipschitz caps (the case-study recipe)."""

import numpy as np
import pytest

from repro.bounds import Box
from repro.certify import CertifierConfig, GlobalRobustnessCertifier
from repro.control import CameraModel, train_perception_model
from repro.nn.lipschitz import linf_gain_upper_bound


@pytest.fixture(scope="module")
def capped_model():
    return train_perception_model(
        CameraModel(height=6, width=12, focal=0.6),
        n_samples=300,
        epochs=60,
        seed=0,
        conv_channels=(2,),
        weight_decay=0.0,
        lateral_range=0.0,
        illum_range=0.0,
        adversarial_rounds=1,
        lipschitz_caps=(2.5, 2.0, 1.6),
    )


class TestCappedPerception:
    def test_gain_respects_caps(self, capped_model):
        gain = linf_gain_upper_bound(capped_model.network)
        assert gain <= 2.5 * 2.0 * 1.6 + 1e-6

    def test_certified_bound_below_delta_times_gain(self, capped_model):
        """The LP certificate must beat the naive Lipschitz bound."""
        net = capped_model.network
        delta = 2 / 255
        domain = Box.uniform(net.input_dim, 0.0, 1.0)
        cert = GlobalRobustnessCertifier(
            net, CertifierConfig(window=1, refine_count=0)
        ).certify(domain, delta)
        naive = delta * linf_gain_upper_bound(net)
        # The interval/LP pipeline must never be worse than naive
        # Lipschitz composition on the distance channel.
        assert cert.epsilon <= naive * 1.05 + 1e-9

    def test_still_correlates_with_distance(self, capped_model):
        cam = capped_model.camera
        distances = np.linspace(0.5, 1.9, 15)
        preds = [capped_model.estimate(cam.render(d)) for d in distances]
        corr = np.corrcoef(distances, preds)[0, 1]
        assert corr > 0.8
