"""Closed-loop simulator and end-to-end safety verification."""

import numpy as np
import pytest

from repro.certify import CertifierConfig
from repro.control import (
    AccDynamics,
    CameraModel,
    ClosedLoopSimulator,
    train_perception_model,
    verify_acc_safety,
)


@pytest.fixture(scope="module")
def perception():
    """A small, quickly-trained perception model shared by the tests."""
    return train_perception_model(
        CameraModel(height=6, width=12),
        n_samples=400,
        epochs=80,
        seed=0,
        conv_channels=(2,),
        dense_width=24,
        lipschitz_caps=(2.8, 2.0, 1.8),
    )


class TestSimulator:
    def test_clean_episode_safe(self, perception):
        sim = ClosedLoopSimulator(perception)
        result = sim.run_episode(steps=50, seed=0, lateral_range=0.0, illum_range=0.0)
        assert result.safe
        assert result.steps_survived == 50
        assert len(result.distances) == 50

    def test_estimation_error_recorded(self, perception):
        sim = ClosedLoopSimulator(perception)
        result = sim.run_episode(steps=20, seed=1, lateral_range=0.0, illum_range=0.0)
        assert result.max_estimation_error > 0.0

    def test_attack_increases_error(self, perception):
        sim = ClosedLoopSimulator(perception)
        clean = sim.run_episode(steps=30, seed=2, lateral_range=0.0, illum_range=0.0)
        attacked = sim.run_episode(
            steps=30, seed=2, attack_delta=10 / 255, lateral_range=0.0, illum_range=0.0
        )
        assert attacked.max_estimation_error >= clean.max_estimation_error - 1e-6

    def test_error_bound_counting(self, perception):
        sim = ClosedLoopSimulator(perception)
        result = sim.run_episode(
            steps=20, seed=3, error_bound=1e-9, lateral_range=0.0, illum_range=0.0
        )
        assert result.error_exceedances > 0  # bound tiny -> every step exceeds

    def test_campaign_aggregates(self, perception):
        sim = ClosedLoopSimulator(perception)
        stats = sim.run_campaign(episodes=3, steps=20, seed=4, initial_spread=0.02)
        assert stats["episodes"] == 3
        assert 0.0 <= stats["unsafe_fraction"] <= 1.0
        assert len(stats["results"]) == 3

    def test_unsafe_detected_from_bad_start(self, perception):
        sim = ClosedLoopSimulator(perception)
        # Start right at the edge with hostile velocity: should violate.
        result = sim.run_episode(
            steps=100,
            seed=5,
            initial_state=np.array([0.69, 0.29]),
            lateral_range=0.0,
            illum_range=0.0,
        )
        assert isinstance(result.safe, bool)


class TestSafetyVerification:
    def test_verdict_structure(self, perception):
        verdict = verify_acc_safety(
            perception,
            delta=2 / 255,
            certifier_config=CertifierConfig(window=1, refine_count=0),
        )
        assert verdict.total_error == pytest.approx(
            verdict.model_inaccuracy + verdict.certified_variation
        )
        assert 0.10 < verdict.tolerated_error < 0.16
        assert verdict.safe == (verdict.total_error <= verdict.tolerated_error)
        assert "verdict" in verdict.summary()

    def test_larger_delta_larger_variation(self, perception):
        cfg = CertifierConfig(window=1, refine_count=0)
        small = verify_acc_safety(perception, delta=1 / 255, certifier_config=cfg)
        large = verify_acc_safety(perception, delta=8 / 255, certifier_config=cfg)
        assert large.certified_variation >= small.certified_variation - 1e-9
