"""Synthetic dataset generators: shapes, ranges, learnability, splits."""

import numpy as np
import pytest

from repro.data import load_auto_mpg, load_digits, standardize, train_test_split


class TestAutoMpg:
    def test_shapes_and_ranges(self):
        x, y = load_auto_mpg(200, seed=0)
        assert x.shape == (200, 7)
        assert y.shape == (200, 1)
        assert np.all(x >= 0) and np.all(x <= 1)
        assert np.all(y >= 0) and np.all(y <= 1)

    def test_deterministic_under_seed(self):
        x1, y1 = load_auto_mpg(50, seed=3)
        x2, y2 = load_auto_mpg(50, seed=3)
        assert np.array_equal(x1, x2)
        assert np.array_equal(y1, y2)

    def test_seed_changes_data(self):
        x1, _ = load_auto_mpg(50, seed=1)
        x2, _ = load_auto_mpg(50, seed=2)
        assert not np.array_equal(x1, x2)

    def test_weight_correlates_negatively_with_mpg(self):
        x, y = load_auto_mpg(2000, seed=0, noise=0.0)
        weight = x[:, 3]
        corr = np.corrcoef(weight, y[:, 0])[0, 1]
        assert corr < -0.4

    def test_model_year_correlates_positively(self):
        x, y = load_auto_mpg(2000, seed=0, noise=0.0)
        corr = np.corrcoef(x[:, 5], y[:, 0])[0, 1]
        assert corr > 0.2

    def test_linear_model_learns_it(self):
        x, y = load_auto_mpg(500, seed=0)
        xa = np.hstack([x, np.ones((500, 1))])
        coef, *_ = np.linalg.lstsq(xa, y, rcond=None)
        resid = y - xa @ coef
        assert resid.std() < y.std() * 0.7


class TestDigits:
    def test_shapes_and_ranges(self):
        x, y = load_digits(100, size=12, seed=0)
        assert x.shape == (100, 1, 12, 12)
        assert y.shape == (100,)
        assert x.min() >= 0.0 and x.max() <= 1.0
        assert set(np.unique(y)).issubset(set(range(10)))

    def test_deterministic_under_seed(self):
        x1, y1 = load_digits(30, seed=5)
        x2, y2 = load_digits(30, seed=5)
        assert np.array_equal(x1, x2)
        assert np.array_equal(y1, y2)

    def test_classes_visually_distinct(self):
        """Mean images of 0 and 1 must differ substantially."""
        x, y = load_digits(600, size=14, seed=0, noise=0.0)
        mean0 = x[y == 0].mean(axis=0)
        mean1 = x[y == 1].mean(axis=0)
        assert np.abs(mean0 - mean1).mean() > 0.05

    def test_intra_class_variation(self):
        x, y = load_digits(300, size=14, seed=0, noise=0.0)
        zeros = x[y == 0]
        assert zeros.shape[0] > 5
        assert zeros.std(axis=0).max() > 0.05

    def test_nearest_centroid_beats_chance(self):
        x, y = load_digits(800, size=14, seed=0)
        flat = x.reshape(len(x), -1)
        train_n = 600
        cents = np.stack(
            [flat[:train_n][y[:train_n] == c].mean(axis=0) for c in range(10)]
        )
        d = ((flat[train_n:, None, :] - cents[None]) ** 2).sum(axis=2)
        acc = (d.argmin(axis=1) == y[train_n:]).mean()
        assert acc > 0.5


class TestSplits:
    def test_split_sizes(self):
        x = np.arange(100).reshape(100, 1).astype(float)
        y = x.copy()
        xt, yt, xe, ye = train_test_split(x, y, test_fraction=0.2, seed=0)
        assert len(xe) == 20
        assert len(xt) == 80
        assert set(xt.ravel()) | set(xe.ravel()) == set(range(100))

    def test_invalid_fraction(self):
        x = np.zeros((10, 1))
        with pytest.raises(ValueError):
            train_test_split(x, x, test_fraction=1.5)

    def test_standardize(self):
        rng = np.random.default_rng(0)
        x = rng.normal(5.0, 2.0, (200, 3))
        xs, _, mean, std = standardize(x)
        assert np.allclose(xs.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(xs.std(axis=0), 1.0, atol=1e-6)

    def test_standardize_applies_train_stats_to_test(self):
        rng = np.random.default_rng(1)
        x_tr = rng.normal(0, 1, (100, 2))
        x_te = rng.normal(0, 1, (20, 2))
        xs_tr, xs_te, mean, std = standardize(x_tr, x_te)
        assert np.allclose(xs_te, (x_te - mean) / std)
