"""Property tests: encoded optima vs exhaustive sampling on random nets."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bounds import Box
from repro.encoding import encode_itne
from repro.milp.expr import Var
from repro.nn.affine import AffineLayer, affine_chain_forward


def _chain_from(seed: int, depth: int, width: int):
    rng = np.random.default_rng(seed)
    dims = [2] + [width] * (depth - 1) + [1]
    return [
        AffineLayer(
            rng.standard_normal((dims[i + 1], dims[i])) / np.sqrt(dims[i]),
            0.3 * rng.standard_normal(dims[i + 1]),
            relu=i < depth - 1,
        )
        for i in range(depth)
    ]


def _opt(enc, sense):
    h = enc.output_distance[0]
    expr = h.to_expr() if isinstance(h, Var) else h
    enc.model.set_objective(expr, sense=sense)
    return enc.model.solve().require_optimal().objective


@given(
    seed=st.integers(0, 10**6),
    depth=st.integers(2, 3),
    width=st.integers(2, 3),
)
@settings(max_examples=20, deadline=None)
def test_exact_itne_bounds_all_sampled_pairs(seed, depth, width):
    layers = _chain_from(seed, depth, width)
    box = Box.uniform(2, -1.0, 1.0)
    delta = 0.08
    hi = _opt(encode_itne(layers, box, delta), "max")
    lo = _opt(encode_itne(layers, box, delta), "min")

    rng = np.random.default_rng(seed ^ 0xABCD)
    for _ in range(150):
        x = box.sample(rng)[0]
        xh = np.clip(x + rng.uniform(-delta, delta, 2), box.lo, box.hi)
        d = affine_chain_forward(layers, xh)[0] - affine_chain_forward(layers, x)[0]
        assert lo - 1e-7 <= d <= hi + 1e-7


@given(seed=st.integers(0, 10**6))
@settings(max_examples=15, deadline=None)
def test_relaxed_contains_exact(seed):
    layers = _chain_from(seed, depth=3, width=3)
    box = Box.uniform(2, -1.0, 1.0)
    delta = 0.08
    exact_hi = _opt(encode_itne(layers, box, delta), "max")
    masks = [np.zeros(l.out_dim, bool) for l in layers]
    relaxed_hi = _opt(encode_itne(layers, box, delta, refine_mask=masks), "max")
    assert relaxed_hi >= exact_hi - 1e-7


@given(seed=st.integers(0, 10**6), frac=st.floats(0.2, 0.8))
@settings(max_examples=15, deadline=None)
def test_partial_refinement_monotone(seed, frac):
    """Refining any subset lands between fully-relaxed and exact."""
    layers = _chain_from(seed, depth=3, width=4)
    box = Box.uniform(2, -1.0, 1.0)
    delta = 0.08
    rng = np.random.default_rng(seed)
    masks_part = [rng.random(l.out_dim) < frac for l in layers]
    masks_none = [np.zeros(l.out_dim, bool) for l in layers]

    exact_hi = _opt(encode_itne(layers, box, delta), "max")
    part_hi = _opt(encode_itne(layers, box, delta, refine_mask=masks_part), "max")
    none_hi = _opt(encode_itne(layers, box, delta, refine_mask=masks_none), "max")
    assert exact_hi - 1e-7 <= part_hi <= none_hi + 1e-7
