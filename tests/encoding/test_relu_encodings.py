"""Exactness/soundness of big-M, triangle, and distance encodings."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoding import (
    encode_distance_relaxed,
    encode_relu_exact,
    encode_relu_triangle,
    eq4_score,
    eq6_bounds,
    eq6_score,
)
from repro.milp import Model


class TestBigM:
    @pytest.mark.parametrize("lb,ub", [(-2.0, 3.0), (-1.0, 0.5), (-0.1, 0.1)])
    def test_exactness_unstable(self, lb, ub):
        """max x s.t. y fixed must give exactly relu(y)."""
        for y_val in np.linspace(lb, ub, 7):
            m = Model()
            y = m.add_var(lb=lb, ub=ub)
            m.add_constr(y == float(y_val))
            x = encode_relu_exact(m, y, lb, ub)
            for sense in ("max", "min"):
                m.set_objective(x, sense=sense)
                r = m.solve().require_optimal()
                assert r.objective == pytest.approx(max(y_val, 0.0), abs=1e-7)

    def test_stable_inactive(self):
        m = Model()
        y = m.add_var(lb=-3, ub=-1)
        x = encode_relu_exact(m, y, -3, -1)
        assert (x.lb, x.ub) == (0.0, 0.0)
        assert m.num_binary == 0

    def test_stable_active(self):
        m = Model()
        y = m.add_var(lb=1, ub=2)
        x = encode_relu_exact(m, y, 1, 2)
        m.set_objective(x - y, sense="max")
        assert m.solve().objective == pytest.approx(0.0)
        assert m.num_binary == 0

    def test_invalid_bounds(self):
        m = Model()
        y = m.add_var(lb=0, ub=1)
        with pytest.raises(ValueError):
            encode_relu_exact(m, y, 2.0, 1.0)

    def test_binary_count(self):
        m = Model()
        y = m.add_var(lb=-1, ub=1)
        encode_relu_exact(m, y, -1, 1)
        assert m.num_binary == 1


class TestTriangle:
    def test_contains_relu_graph(self):
        """Every (y, relu(y)) point satisfies the triangle constraints."""
        lb, ub = -2.0, 3.0
        for y_val in np.linspace(lb, ub, 9):
            m = Model()
            y = m.add_var(lb=lb, ub=ub)
            m.add_constr(y == float(y_val))
            x = encode_relu_exact(m, y, lb, ub)  # exact point
            x_rel = encode_relu_triangle(m, y, lb, ub, name="rel")
            m.add_constr(x_rel == max(y_val, 0.0))
            m.set_objective(x, sense="max")
            assert m.solve().is_optimal  # feasible -> graph included

    def test_overapproximates_max(self):
        lb, ub = -1.0, 2.0
        m = Model()
        y = m.add_var(lb=lb, ub=ub)
        x = encode_relu_triangle(m, y, lb, ub)
        m.set_objective(x - y, sense="max")
        relaxed = m.solve().objective
        # Exact max of relu(y)-y is -lb = 1; triangle can only be >= that.
        assert relaxed >= 1.0 - 1e-9

    def test_no_binaries(self):
        m = Model()
        y = m.add_var(lb=-1, ub=1)
        encode_relu_triangle(m, y, -1, 1)
        assert m.num_binary == 0

    def test_upper_chord(self):
        # At y = ub the chord meets relu exactly.
        lb, ub = -1.0, 2.0
        m = Model()
        y = m.add_var(lb=lb, ub=ub)
        m.add_constr(y == ub)
        x = encode_relu_triangle(m, y, lb, ub)
        m.set_objective(x, sense="max")
        assert m.solve().objective == pytest.approx(ub)


class TestDistanceRelaxation:
    @given(st.floats(-2, 0), st.floats(0, 2), st.floats(-5, 5), st.floats(-2, 2))
    @settings(max_examples=150, deadline=None)
    def test_contains_true_distance(self, dy_lo, dy_hi, y, dy):
        """Each feasible (Δy, Δx=relu(y+Δy)−relu(y)) satisfies Eq. 6."""
        dy = float(np.clip(dy, dy_lo, dy_hi))
        dx_true = max(y + dy, 0.0) - max(y, 0.0)
        m = Model()
        dy_var = m.add_var(lb=dy_lo, ub=dy_hi)
        m.add_constr(dy_var == dy)
        dx = encode_distance_relaxed(m, dy_var, dy_lo, dy_hi)
        m.add_constr(dx == dx_true)
        m.set_objective(dx, sense="max")
        assert m.solve().is_optimal

    def test_extremes_match_eq6_bounds(self):
        dy_lo, dy_hi = -0.3, 0.2
        l, u = eq6_bounds(dy_lo, dy_hi)
        m = Model()
        dy = m.add_var(lb=dy_lo, ub=dy_hi)
        dx = encode_distance_relaxed(m, dy, dy_lo, dy_hi)
        m.set_objective(dx, sense="max")
        assert m.solve().objective == pytest.approx(u, abs=1e-9)
        m.set_objective(dx, sense="min")
        assert m.solve().objective == pytest.approx(l, abs=1e-9)

    def test_single_signed_exact_hull(self):
        # Δy >= 0 everywhere: 0 <= Δx <= Δy.
        m = Model()
        dy = m.add_var(lb=0.1, ub=0.5)
        dx = encode_distance_relaxed(m, dy, 0.1, 0.5)
        m.set_objective(dx - dy, sense="max")
        assert m.solve().objective == pytest.approx(0.0, abs=1e-9)
        m.set_objective(dx, sense="min")
        assert m.solve().objective == pytest.approx(0.0, abs=1e-9)

    def test_zero_width_pins_zero(self):
        m = Model()
        dy = m.add_var(lb=0.0, ub=0.0)
        dx = encode_distance_relaxed(m, dy, 0.0, 0.0)
        assert (dx.lb, dx.ub) == (0.0, 0.0)

    def test_invalid_bounds(self):
        m = Model()
        dy = m.add_var()
        with pytest.raises(ValueError):
            encode_distance_relaxed(m, dy, 0.5, -0.5)


class TestScores:
    def test_eq4_zero_for_stable(self):
        assert eq4_score(0.5, 2.0) == 0.0
        assert eq4_score(-2.0, -0.5) == 0.0

    def test_eq4_positive_unstable(self):
        assert eq4_score(-1.0, 1.0) == pytest.approx(0.5)

    def test_eq4_symmetry(self):
        assert eq4_score(-2.0, 1.0) == eq4_score(-1.0, 2.0)

    def test_eq6_magnitude(self):
        assert eq6_score(-0.3, 0.2) == pytest.approx(0.3)
        assert eq6_score(-0.1, 0.4) == pytest.approx(0.4)
