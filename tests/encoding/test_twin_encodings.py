"""BTNE/ITNE encodings: exactness, soundness, relaxation ordering."""

import numpy as np
import pytest

from repro.bounds import Box
from repro.encoding import encode_btne, encode_itne, encode_single_network
from repro.milp.expr import Var
from repro.nn.affine import AffineLayer, affine_chain_forward


def paper_example():
    """The 2-2-1 network of Fig. 1."""
    return [
        AffineLayer(np.array([[1.0, 0.5], [-0.5, 1.0]]), np.zeros(2), relu=True),
        AffineLayer(np.array([[1.0, -1.0]]), np.zeros(1), relu=True),
    ]


def random_chain(rng, depth=2, width=3, in_dim=2, out_dim=1):
    dims = [in_dim] + [width] * (depth - 1) + [out_dim]
    return [
        AffineLayer(
            rng.standard_normal((dims[i + 1], dims[i])),
            0.2 * rng.standard_normal(dims[i + 1]),
            relu=i < depth - 1,
        )
        for i in range(depth)
    ]


def _expr(handle):
    return handle.to_expr() if isinstance(handle, Var) else handle


def optimize_distance(enc, sense):
    enc.model.set_objective(_expr(enc.output_distance[0]), sense=sense)
    return enc.model.solve().require_optimal().objective


class TestSingleEncoding:
    def test_output_matches_network_at_fixed_input(self):
        rng = np.random.default_rng(0)
        layers = random_chain(rng, depth=3)
        x0 = rng.uniform(-1, 1, 2)
        enc = encode_single_network(layers, Box.point(x0))
        enc.model.set_objective(_expr(enc.output[0]), sense="max")
        got = enc.model.solve().require_optimal().objective
        assert got == pytest.approx(affine_chain_forward(layers, x0)[0], abs=1e-6)

    def test_range_contains_samples(self):
        rng = np.random.default_rng(1)
        layers = random_chain(rng, depth=2)
        box = Box.uniform(2, -1, 1)
        enc = encode_single_network(layers, box)
        enc.model.set_objective(_expr(enc.output[0]), sense="max")
        hi = enc.model.solve().require_optimal().objective
        enc2 = encode_single_network(layers, box)
        enc2.model.set_objective(_expr(enc2.output[0]), sense="min")
        lo = enc2.model.solve().require_optimal().objective
        for _ in range(100):
            out = affine_chain_forward(layers, box.sample(rng)[0])[0]
            assert lo - 1e-7 <= out <= hi + 1e-7

    def test_relaxed_dominates_exact(self):
        rng = np.random.default_rng(2)
        layers = random_chain(rng, depth=3)
        box = Box.uniform(2, -1, 1)
        exact = encode_single_network(layers, box)
        exact.model.set_objective(_expr(exact.output[0]), sense="max")
        exact_hi = exact.model.solve().require_optimal().objective
        relax = encode_single_network(
            layers, box, relax_mask=[np.ones(l.out_dim, bool) for l in layers]
        )
        relax.model.set_objective(_expr(relax.output[0]), sense="max")
        relax_hi = relax.model.solve().require_optimal().objective
        assert relax_hi >= exact_hi - 1e-8
        assert relax.model.num_binary == 0


class TestExactTwinEncodings:
    def test_paper_example_exact_bounds(self):
        layers = paper_example()
        box = Box.uniform(2, -1, 1)
        enc = encode_itne(layers, box, 0.1)
        assert optimize_distance(enc, "max") == pytest.approx(0.2, abs=1e-6)
        enc2 = encode_itne(layers, box, 0.1)
        assert optimize_distance(enc2, "min") == pytest.approx(-0.2, abs=1e-6)

    def test_btne_agrees_with_itne(self):
        rng = np.random.default_rng(3)
        for _ in range(5):
            layers = random_chain(rng, depth=2)
            box = Box.uniform(2, -1, 1)
            itne_hi = optimize_distance(encode_itne(layers, box, 0.05), "max")
            btne = encode_btne(layers, box, 0.05)
            btne.model.set_objective(btne.output_distance[0], sense="max")
            btne_hi = btne.model.solve().require_optimal().objective
            assert itne_hi == pytest.approx(btne_hi, abs=1e-6)

    def test_exact_dominates_sampling(self):
        rng = np.random.default_rng(4)
        layers = random_chain(rng, depth=2)
        box = Box.uniform(2, -1, 1)
        delta = 0.1
        hi = optimize_distance(encode_itne(layers, box, delta), "max")
        lo = optimize_distance(encode_itne(layers, box, delta), "min")
        for _ in range(300):
            x = box.sample(rng)[0]
            xh = np.clip(x + rng.uniform(-delta, delta, 2), box.lo, box.hi)
            d = (
                affine_chain_forward(layers, xh)[0]
                - affine_chain_forward(layers, x)[0]
            )
            assert lo - 1e-7 <= d <= hi + 1e-7

    def test_zero_delta_zero_distance(self):
        rng = np.random.default_rng(5)
        layers = random_chain(rng, depth=2)
        enc = encode_itne(layers, Box.uniform(2, -1, 1), 0.0)
        assert optimize_distance(enc, "max") == pytest.approx(0.0, abs=1e-7)

    def test_itne_feasible_solution_is_true_pair(self):
        """At the MILP optimum, decode (x, x̂) and check F really maps them."""
        layers = paper_example()
        box = Box.uniform(2, -1, 1)
        enc = encode_itne(layers, box, 0.1)
        enc.model.set_objective(_expr(enc.output_distance[0]), sense="max")
        r = enc.model.solve().require_optimal()
        x0 = np.array([r[v] for v in enc.input_vars])
        dx0 = np.array([r[v] for v in enc.input_dist_vars])
        true_dist = (
            affine_chain_forward(layers, x0 + dx0)[0]
            - affine_chain_forward(layers, x0)[0]
        )
        assert r.objective == pytest.approx(true_dist, abs=1e-6)


class TestRelaxedItne:
    def test_paper_lpr_number(self):
        """Fully-relaxed ITNE on the Fig. 1 example gives 0.275 (Fig. 4)."""
        layers = paper_example()
        box = Box.uniform(2, -1, 1)
        masks = [np.zeros(2, bool), np.zeros(1, bool)]
        enc = encode_itne(layers, box, 0.1, refine_mask=masks)
        assert enc.num_binaries == 0
        assert optimize_distance(enc, "max") == pytest.approx(0.275, abs=1e-6)

    def test_relaxation_sound_and_ordered(self):
        rng = np.random.default_rng(6)
        for _ in range(5):
            layers = random_chain(rng, depth=3)
            box = Box.uniform(2, -1, 1)
            exact_hi = optimize_distance(encode_itne(layers, box, 0.05), "max")
            relax_masks = [np.zeros(l.out_dim, bool) for l in layers]
            relax_hi = optimize_distance(
                encode_itne(layers, box, 0.05, refine_mask=relax_masks), "max"
            )
            assert relax_hi >= exact_hi - 1e-7

    def test_partial_refinement_between(self):
        rng = np.random.default_rng(7)
        layers = random_chain(rng, depth=3, width=4)
        box = Box.uniform(2, -1, 1)
        delta = 0.05
        exact_hi = optimize_distance(encode_itne(layers, box, delta), "max")
        none_mask = [np.zeros(l.out_dim, bool) for l in layers]
        all_relaxed = optimize_distance(
            encode_itne(layers, box, delta, refine_mask=none_mask), "max"
        )
        half_mask = [np.zeros(l.out_dim, bool) for l in layers]
        half_mask[0][:2] = True
        half = optimize_distance(
            encode_itne(layers, box, delta, refine_mask=half_mask), "max"
        )
        assert exact_hi - 1e-7 <= half <= all_relaxed + 1e-7

    def test_coupling_tightens_or_equal(self):
        rng = np.random.default_rng(8)
        layers = random_chain(rng, depth=3)
        box = Box.uniform(2, -1, 1)
        masks = [np.zeros(l.out_dim, bool) for l in layers]
        coupled = optimize_distance(
            encode_itne(layers, box, 0.05, refine_mask=masks, couple_second_copy=True),
            "max",
        )
        uncoupled = optimize_distance(
            encode_itne(layers, box, 0.05, refine_mask=masks, couple_second_copy=False),
            "max",
        )
        assert coupled <= uncoupled + 1e-9

    def test_second_input_clipping(self):
        """With clipping, x + Δx must stay inside the domain."""
        layers = paper_example()
        box = Box.uniform(2, 0.0, 1.0)
        enc = encode_itne(layers, box, 0.5, clip_second_input=True)
        enc.model.set_objective(
            _expr(enc.input_vars[0]) + _expr(enc.input_dist_vars[0]), sense="max"
        )
        assert enc.model.solve().require_optimal().objective <= 1.0 + 1e-9

    def test_delta_box_mismatch(self):
        layers = paper_example()
        with pytest.raises(ValueError):
            encode_itne(layers, Box.uniform(2, -1, 1), Box.uniform(3, -0.1, 0.1))
